"""End-to-end reproductions of the concrete findings reported in the
paper's RQ2 discussion (section V-B)."""

import pytest

from repro.core import SaintDroid
from repro.core.mismatch import MismatchKind
from repro.ir.builder import ClassBuilder

from tests.conftest import activity_class, make_apk


@pytest.fixture(scope="module")
def detector(framework, apidb):
    return SaintDroid(framework, apidb)


class TestOfflineCalendar:
    """Offline Calendar: getFragmentManager() (API 11) invoked from
    PreferencesActivity.onCreate with minSdkVersion 8."""

    def test_invocation_mismatch_on_levels_8_to_10(self, detector):
        builder = ClassBuilder(
            "org.sufficientlysecure.localcalendar.PreferencesActivity",
            super_name="android.preference.PreferenceActivity",
        )
        method = builder.method("onCreate", "(android.os.Bundle)void")
        method.invoke_virtual(
            "org.sufficientlysecure.localcalendar.PreferencesActivity",
            "getFragmentManager", "()android.app.FragmentManager",
        )
        method.return_void()
        builder.finish(method)
        apk = make_apk(
            [builder.build()],
            package="org.sufficientlysecure.localcalendar",
            label="Offline Calendar",
            min_sdk=8, target_sdk=21,
        )
        report = detector.analyze(apk)
        api = [m for m in report.mismatches
               if m.kind is MismatchKind.API_INVOCATION]
        assert len(api) == 1
        assert api[0].subject.name == "getFragmentManager"
        assert (api[0].missing_levels.lo, api[0].missing_levels.hi) == (8, 10)

    def test_fix_by_raising_min_sdk(self, detector):
        builder = ClassBuilder(
            "org.sufficientlysecure.localcalendar.PreferencesActivity",
            super_name="android.preference.PreferenceActivity",
        )
        method = builder.method("onCreate", "(android.os.Bundle)void")
        method.invoke_virtual(
            "org.sufficientlysecure.localcalendar.PreferencesActivity",
            "getFragmentManager", "()android.app.FragmentManager",
        )
        method.return_void()
        builder.finish(method)
        apk = make_apk(
            [builder.build()],
            package="org.sufficientlysecure.localcalendar",
            min_sdk=11, target_sdk=21,
        )
        assert detector.analyze(apk).by_kind().get("API", 0) == 0


class TestFosdemApp:
    """FOSDEM companion: ForegroundLinearLayout overrides
    View.drawableHotspotChanged (API 21) with minSdkVersion 15."""

    def layout_class(self):
        builder = ClassBuilder(
            "be.digitalia.fosdem.widgets.ForegroundLinearLayout",
            super_name="android.widget.LinearLayout",
        )
        builder.empty_method("drawableHotspotChanged", "(float,float)void")
        return builder.build()

    def test_callback_mismatch_on_15_to_20(self, detector):
        apk = make_apk(
            [activity_class("be.digitalia.fosdem"), self.layout_class()],
            package="be.digitalia.fosdem",
            label="FOSDEM",
            min_sdk=15, target_sdk=25,
        )
        report = detector.analyze(apk)
        apc = [m for m in report.mismatches
               if m.kind is MismatchKind.API_CALLBACK]
        assert len(apc) == 1
        assert apc[0].subject.class_name == "android.view.View"
        assert (apc[0].missing_levels.lo, apc[0].missing_levels.hi) == (15, 20)

    def test_fix_by_raising_min_sdk(self, detector):
        apk = make_apk(
            [activity_class("be.digitalia.fosdem"), self.layout_class()],
            package="be.digitalia.fosdem",
            min_sdk=21, target_sdk=25,
        )
        assert detector.analyze(apk).by_kind().get("APC", 0) == 0


class TestKolabNotes:
    """Kolab Notes: targets API 26, uses WRITE_EXTERNAL_STORAGE (via
    MediaStore insertImage) without the runtime request protocol."""

    def test_permission_request_mismatch(self, detector):
        builder = ClassBuilder("org.kore.kolabnotes.android.Exporter")
        method = builder.method("saveToSdCard")
        method.invoke_virtual(
            "android.provider.MediaStore$Images$Media", "insertImage",
            "(android.content.ContentResolver,android.graphics.Bitmap,"
            "java.lang.String,java.lang.String)java.lang.String",
        )
        method.return_void()
        builder.finish(method)
        apk = make_apk(
            [activity_class("org.kore.kolabnotes.android"),
             builder.build()],
            package="org.kore.kolabnotes.android",
            label="Kolab Notes",
            min_sdk=16, target_sdk=26,
            permissions=("android.permission.WRITE_EXTERNAL_STORAGE",),
        )
        report = detector.analyze(apk)
        prm = [m for m in report.mismatches
               if m.kind is MismatchKind.PERMISSION_REQUEST]
        assert len(prm) == 1
        assert prm[0].permission == (
            "android.permission.WRITE_EXTERNAL_STORAGE"
        )


class TestAdAway:
    """AdAway: targets API 22, uses WRITE_EXTERNAL_STORAGE — revocable
    when installed on API 23+ devices."""

    def test_permission_revocation_mismatch(self, detector):
        builder = ClassBuilder("org.adaway.Exporter")
        method = builder.method("exportHosts")
        method.invoke_virtual(
            "android.provider.MediaStore$Images$Media", "insertImage",
            "(android.content.ContentResolver,android.graphics.Bitmap,"
            "java.lang.String,java.lang.String)java.lang.String",
        )
        method.return_void()
        builder.finish(method)
        apk = make_apk(
            [activity_class("org.adaway"), builder.build()],
            package="org.adaway",
            label="AdAway",
            min_sdk=16, target_sdk=22,
            permissions=("android.permission.WRITE_EXTERNAL_STORAGE",),
        )
        report = detector.analyze(apk)
        prm = [m for m in report.mismatches
               if m.kind is MismatchKind.PERMISSION_REVOCATION]
        assert len(prm) == 1
        assert prm[0].missing_levels.lo == 23
