"""Property-based end-to-end tests: detector invariants over randomly
forged apps."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import SaintDroid
from repro.workload.appgen import AppForge
from repro.workload.groundtruth import Trait

#: Traits SAINTDroid is expected to detect (everything except code that
#: lives outside the APK and overrides hidden in anonymous classes).
DETECTABLE = {
    Trait.DIRECT,
    Trait.INHERITED,
    Trait.LIBRARY,
    Trait.SECONDARY_DEX,
    Trait.FORWARD_REMOVED,
    Trait.CALLBACK_MODELED,
    Trait.CALLBACK_UNMODELED,
    Trait.PERMISSION_REQUEST,
    Trait.PERMISSION_REVOCATION,
    Trait.PERMISSION_DEEP,
}


@pytest.fixture(scope="module")
def detector(framework, apidb):
    return SaintDroid(framework, apidb)


scenario_lists = st.lists(
    st.sampled_from(
        ["direct", "guarded", "caller_trap", "helper_trap", "inherited",
         "library", "secondary", "forward", "cb_modeled", "cb_unmodeled",
         "permission"]
    ),
    min_size=1,
    max_size=6,
)


def apply_scenario(forge, name):
    try:
        if name == "direct":
            forge.add_direct_issue()
        elif name == "guarded":
            forge.add_guarded_direct()
        elif name == "caller_trap":
            forge.add_caller_guard_trap()
        elif name == "helper_trap":
            forge.add_helper_guard_trap()
        elif name == "inherited":
            forge.add_inherited_issue()
        elif name == "library":
            forge.add_library_issue()
        elif name == "secondary":
            forge.add_secondary_dex_issue()
        elif name == "forward":
            forge.add_forward_removed_issue()
        elif name == "cb_modeled":
            forge.add_callback_issue(modeled=True)
        elif name == "cb_unmodeled":
            forge.add_callback_issue(modeled=False)
        elif name == "permission":
            if forge.target_sdk >= 23:
                forge.add_permission_request_issue()
            else:
                forge.add_permission_revocation_issue()
    except LookupError:
        pass  # no API fits this app's SDK window; skip the scenario


class TestDetectorInvariants:
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(0, 2**20),
        min_sdk=st.integers(8, 21),
        target_delta=st.integers(1, 8),
        scenarios=scenario_lists,
    )
    def test_detects_all_detectable_and_only_expected_extras(
        self, detector, apidb, picker, seed, min_sdk, target_delta,
        scenarios,
    ):
        target = min(29, min_sdk + target_delta + 1)
        forge = AppForge(
            "com.prop.hunt", "PropHunt",
            min_sdk=min_sdk, target_sdk=target,
            seed=seed, apidb=apidb, picker=picker,
        )
        for scenario in scenarios:
            apply_scenario(forge, scenario)
        forged = forge.build()
        report = detector.analyze(forged.apk)
        found = report.keys

        # Completeness: every detectable seeded issue is reported.
        for issue in forged.truth.issues:
            if issue.trait in DETECTABLE:
                assert issue.key in found, issue.description

        # Soundness-modulo-known-blind-spot: every report is either a
        # seeded issue or an expected false alarm of a seeded trap.
        expected_fps = {
            key for trap in forged.truth.traps for key in trap.fp_keys
        }
        for key in found:
            assert key in forged.truth.issue_keys or key in expected_fps

    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(seed=st.integers(0, 2**20), kloc=st.floats(0.1, 1.5))
    def test_clean_apps_are_clean(self, detector, apidb, picker, seed, kloc):
        forge = AppForge(
            "com.prop.clean", "PropClean",
            min_sdk=16, target_sdk=26,
            seed=seed, apidb=apidb, picker=picker,
        )
        forge.add_filler(kloc=kloc)
        forge.add_guarded_direct()
        report = detector.analyze(forge.build().apk)
        assert report.mismatches == []

    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(seed=st.integers(0, 2**20))
    def test_analysis_is_deterministic(self, detector, apidb, picker, seed):
        forge = AppForge(
            "com.prop.det", "PropDet",
            min_sdk=18, target_sdk=27,
            seed=seed, apidb=apidb, picker=picker,
        )
        forge.add_direct_issue()
        forge.add_callback_issue(modeled=False)
        apk = forge.build().apk
        assert detector.analyze(apk).keys == detector.analyze(apk).keys
