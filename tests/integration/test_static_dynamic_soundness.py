"""Cross-layer soundness: the static guard analysis must
over-approximate concrete execution.

For randomly generated guarded methods, whenever the interpreter
actually reaches a call at device level L, the static analysis must
have included L in that call's executable interval.  (The converse
need not hold — static analysis is conservative — but an execution
outside the static interval would be a soundness bug in the guard
analysis or the interpreter.)
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.guards import guard_at_invocations
from repro.analysis.intervals import ApiInterval
from repro.dynamic.device import DeviceProfile
from repro.dynamic.interpreter import CrashKind, Interpreter
from repro.ir.builder import ClassBuilder, MethodBuilder
from repro.ir.instructions import CmpOp
from repro.ir.types import MethodRef

from tests.conftest import activity_class, make_apk

#: A probe API known to exist at exactly [23, 29]; a MISSING_METHOD
#: crash below 23 is the tell-tale that the call executed.
PROBE_CLASS = "android.content.Context"
PROBE_NAME = "getColorStateList"
PROBE_DESC = "(int)android.content.res.ColorStateList"

guard_ops = st.sampled_from(
    [CmpOp.LT, CmpOp.LE, CmpOp.GT, CmpOp.GE, CmpOp.EQ, CmpOp.NE]
)


def random_guarded_method(steps):
    """Build a method with a random chain of SDK_INT branches around
    the probe call; returns (method, probe_present)."""
    builder = MethodBuilder(MethodRef("com.test.app.Rand", "run"))
    end = "end"
    for index, (op, constant) in enumerate(steps):
        builder.sdk_int(index % 4)
        builder.const_int(4 + index % 4, constant)
        builder.if_cmp(op, index % 4, 4 + index % 4, end)
    builder.invoke_virtual(PROBE_CLASS, PROBE_NAME, PROBE_DESC)
    builder.label(end)
    builder.return_void()
    return builder.build()


class TestStaticOverApproximatesDynamic:
    @settings(max_examples=40, deadline=None)
    @given(
        steps=st.lists(
            st.tuples(guard_ops, st.integers(2, 29)),
            min_size=0,
            max_size=3,
        ),
        min_sdk=st.integers(5, 21),
    )
    def test_execution_implies_static_reachability(
        self, apidb, steps, min_sdk
    ):
        method = random_guarded_method(steps)
        builder = ClassBuilder("com.test.app.Rand")
        builder.add(method)
        apk = make_apk(
            [activity_class(), builder.build()], min_sdk=min_sdk
        )

        # Static view of the probe call.
        app_interval = ApiInterval.of(min_sdk, 29)
        static = [
            interval
            for invoke, interval in guard_at_invocations(
                method, app_interval
            )
            if invoke.method.name == PROBE_NAME
        ]
        static_interval = static[0] if static else ApiInterval.empty()

        entry = MethodRef("com.test.app.Rand", "run", "()void")
        for level in range(min_sdk, 23):
            device = DeviceProfile(api_level=level)
            crash = Interpreter(apk, apidb, device).run(entry)
            executed = (
                crash is not None
                and crash.kind is CrashKind.MISSING_METHOD
                and crash.api.name == PROBE_NAME
            )
            if executed:
                assert level in static_interval, (
                    f"executed at {level} but static interval is "
                    f"{static_interval} (guards: {steps})"
                )

    @settings(max_examples=25, deadline=None)
    @given(
        guard_level=st.integers(3, 29),
        taken=st.sampled_from([CmpOp.GE, CmpOp.GT, CmpOp.LE, CmpOp.LT]),
    )
    def test_single_guard_exactness(self, apidb, guard_level, taken):
        """With a single clean guard, static and dynamic agree exactly
        (no over-approximation is *needed*)."""
        builder = MethodBuilder(MethodRef("com.test.app.One", "run"))
        builder.sdk_int(0)
        builder.const_int(1, guard_level)
        builder.if_cmp(taken.negate(), 0, 1, "skip")
        builder.invoke_virtual(PROBE_CLASS, PROBE_NAME, PROBE_DESC)
        builder.label("skip")
        builder.return_void()
        method = builder.build()
        clazz = ClassBuilder("com.test.app.One")
        clazz.add(method)
        apk = make_apk([activity_class(), clazz.build()], min_sdk=5)

        static = [
            interval
            for invoke, interval in guard_at_invocations(
                method, ApiInterval.of(5, 29)
            )
            if invoke.method.name == PROBE_NAME
        ]
        static_interval = static[0] if static else ApiInterval.empty()

        entry = MethodRef("com.test.app.One", "run", "()void")
        for level in range(5, 23):  # probe missing below 23
            crash = Interpreter(
                apk, apidb, DeviceProfile(api_level=level)
            ).run(entry)
            executed = crash is not None
            assert executed == (level in static_interval), (
                level, static_interval, taken, guard_level,
            )
