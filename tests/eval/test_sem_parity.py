"""SEM findings-fingerprint parity across every execution path.

A new mismatch kind must not disturb the orchestration invariants:
findings over a SEM-bearing corpus are identical on the serial path,
the process pool (``--jobs 2``), the class-artifact delta path
(``--dedup``), and the resident serve daemon.  SEM artifacts ride the
same codecs as every other kind, so any asymmetry here means a codec
or replay path dropped (or invented) semantic findings.
"""

from __future__ import annotations

import pytest

from repro.cache.classes import reset_class_stores
from repro.core.mismatch import MismatchKind
from repro.eval.runner import ToolSet, run_tools
from repro.workload.appgen import AppForge


@pytest.fixture(scope="module")
def corpus(apidb, picker):
    """Four apps, every one carrying at least one SEM scenario; the
    shared picker seeds overlap so the dedup arm sees repeat classes."""
    apps = []
    for index in range(4):
        forge = AppForge(
            f"com.semparity.app{index}",
            f"SemParity{index}",
            apidb=apidb,
            picker=picker,
            min_sdk=19,
            target_sdk=26,
            seed=900 + index,
        )
        forge.add_semantic_issue()
        forge.add_guarded_semantic()
        if index % 2:
            forge.add_direct_issue()
        apps.append(forge.build())
    return apps


@pytest.fixture(scope="module")
def store_dir(tmp_path_factory):
    return str(tmp_path_factory.mktemp("sem-class-store"))


@pytest.fixture(scope="module")
def lazy_run(framework, apidb, corpus):
    return run_tools(
        corpus,
        ToolSet.default(framework, apidb, include=("SAINTDroid",)),
    )


def test_corpus_actually_has_sem_findings(lazy_run):
    sem = [
        m
        for result in lazy_run.results
        for report in result.reports.values()
        for m in report.mismatches
        if m.kind is MismatchKind.SEMANTIC
    ]
    assert len(sem) == 4


def test_pooled_matches_serial(framework, apidb, corpus, lazy_run):
    pooled = run_tools(
        corpus,
        ToolSet.default(framework, apidb, include=("SAINTDroid",)),
        jobs=2,
    )
    assert (
        pooled.findings_fingerprint()
        == lazy_run.findings_fingerprint()
    )


def test_dedup_matches_lazy(
    framework, apidb, corpus, lazy_run, store_dir
):
    reset_class_stores()
    dedup = run_tools(
        corpus,
        ToolSet.default(
            framework, apidb, include=("SAINTDroid",),
            dedup=True, dedup_dir=store_dir,
        ),
    )
    assert (
        dedup.findings_fingerprint()
        == lazy_run.findings_fingerprint()
    )
    # Replay from the freshly-populated store, serial and pooled: SEM
    # facts must come back out of the artifacts, not just fall out of
    # re-analysis.
    reset_class_stores()
    replayed = run_tools(
        corpus,
        ToolSet.default(
            framework, apidb, include=("SAINTDroid",),
            dedup=True, dedup_dir=store_dir,
        ),
        jobs=2,
    )
    assert (
        replayed.findings_fingerprint()
        == lazy_run.findings_fingerprint()
    )
    reset_class_stores()


def test_serve_matches_lazy(
    spec, framework, apidb, corpus, lazy_run, tmp_path
):
    from repro.apk.serialization import apk_to_dict
    from repro.serve import AnalysisService, ServeConfig

    config = ServeConfig(
        workers=2,
        include=("SAINTDroid",),
        timeout_s=30.0,
        retry_backoff_s=0.0,
        journal=str(tmp_path / "wal.jsonl"),
        dedup=True,
        cache_dir=str(tmp_path / "cache"),
    )
    service = AnalysisService(
        config, spec, substrate=(framework, apidb)
    ).start()
    try:
        jobs = [
            service.submit(apk_to_dict(app.apk)) for app in corpus
        ]
        lazy_by_app = {
            r.app: r.findings_fingerprint() for r in lazy_run.results
        }
        for app, job in zip(corpus, jobs):
            done = service.wait(job.id, timeout_s=60.0)
            assert done is not None and done.terminal
            assert done.result is not None
            assert (
                done.result.findings_fingerprint()
                == lazy_by_app[app.apk.name]
            )
    finally:
        service.drain(timeout_s=30.0)
