"""Lazy vs deduplicated (delta) analysis: findings parity everywhere.

``--dedup`` is a pure performance substitution: replaying per-class
artifacts from the content-addressed store must never change what the
detector finds.  The contract, enforced here and by the CI
``dedup-parity`` job:

* ``findings_fingerprint`` is identical between a lazy and a dedup
  run over the same corpus — on the serial path, the process pool
  (``--jobs 2``), and the serve daemon;
* a corrupted store degrades to cache misses, never to different
  findings (or errors);
* a faulted app never publishes artifacts: the store stays exactly as
  it was before the doomed pipeline started.
"""

from __future__ import annotations

import pytest

from repro.cache.classes import registered_stores, reset_class_stores
from repro.eval.faults import FaultKind, FaultPlan, InjectedFault
from repro.eval.runner import ToolSet, analyze_app, run_tools
from repro.workload.appgen import ForgedApp
from repro.workload.benchsuite import build_benchmark_suite
from repro.workload.corpus import (
    OverlapConfig,
    generate_overlapping_corpus,
)
from repro.workload.groundtruth import GroundTruth

from ..conftest import activity_class, make_apk

#: Small but overlap-shaped: every member embeds the same library
#: layer, so the dedup arm actually exercises hits after app 0.
PARITY_CORPUS = OverlapConfig(
    count=4, library_kloc=3.0, unique_kloc=1.0, seed=192837
)


@pytest.fixture(scope="module")
def corpus(apidb):
    return [
        m.forged for m in generate_overlapping_corpus(PARITY_CORPUS, apidb)
    ]


@pytest.fixture(scope="module")
def store_dir(tmp_path_factory):
    return str(tmp_path_factory.mktemp("class-store"))


@pytest.fixture(scope="module")
def lazy_run(framework, apidb, corpus):
    return run_tools(
        corpus,
        ToolSet.default(framework, apidb, include=("SAINTDroid",)),
    )


@pytest.fixture(scope="module")
def dedup_run(framework, apidb, corpus, store_dir):
    reset_class_stores()
    return run_tools(
        corpus,
        ToolSet.default(
            framework, apidb, include=("SAINTDroid",),
            dedup=True, dedup_dir=store_dir,
        ),
    )


class TestFindingsParity:
    def test_serial_corpus_findings_identical(self, lazy_run, dedup_run):
        assert (
            lazy_run.findings_fingerprint()
            == dedup_run.findings_fingerprint()
        )

    def test_dedup_actually_deduplicates(self, dedup_run):
        stats = {}
        for store in registered_stores():
            for key, value in store.stats.as_dict().items():
                if not key.endswith("_rate"):
                    stats[key] = stats.get(key, 0) + value
        assert stats["hits"] > 0
        assert stats["stores"] > 0

    def test_full_fingerprints_differ_only_in_accounting(
        self, lazy_run, dedup_run
    ):
        """Modeled cost accounting IS expected to change (dedup
        implies the pre-summary shortcut) — the full fingerprint must
        therefore differ while findings agree, guarding against
        ``findings_fingerprint`` accidentally comparing nothing."""
        assert lazy_run.fingerprint() != dedup_run.fingerprint()

    def test_benchmark_suite_findings_identical(self, framework, apidb):
        """The replica suite concentrates every scenario kind the
        detectors know (guards, callbacks, permissions, dynamic
        loading), so parity here is parity where it matters.  The
        store is memory-only: dedup semantics must not depend on the
        disk tier."""
        apps = build_benchmark_suite(apidb, scale=0.25)
        lazy = run_tools(
            apps,
            ToolSet.default(framework, apidb, include=("SAINTDroid",)),
        )
        reset_class_stores()
        dedup = run_tools(
            apps,
            ToolSet.default(
                framework, apidb, include=("SAINTDroid",), dedup=True
            ),
        )
        assert (
            lazy.findings_fingerprint() == dedup.findings_fingerprint()
        )


class TestSchedulerParity:
    def test_pooled_dedup_matches_lazy(
        self, framework, apidb, corpus, lazy_run, store_dir
    ):
        """``--jobs 2`` — worker processes each open the shared store
        directory; artifacts written by one schedule must replay to
        the same findings."""
        pooled = run_tools(
            corpus,
            ToolSet.default(
                framework, apidb, include=("SAINTDroid",),
                dedup=True, dedup_dir=store_dir,
            ),
            jobs=2,
        )
        assert (
            pooled.findings_fingerprint()
            == lazy_run.findings_fingerprint()
        )

    def test_serve_dedup_matches_lazy(
        self, spec, framework, apidb, corpus, lazy_run, tmp_path
    ):
        """The resident daemon with ``dedup: true`` — jobs stream
        through pool workers that share one store directory."""
        from repro.apk.serialization import apk_to_dict
        from repro.serve import AnalysisService, ServeConfig

        config = ServeConfig(
            workers=2,
            include=("SAINTDroid",),
            timeout_s=30.0,
            retry_backoff_s=0.0,
            journal=str(tmp_path / "wal.jsonl"),
            dedup=True,
            cache_dir=str(tmp_path / "cache"),
        )
        service = AnalysisService(
            config, spec, substrate=(framework, apidb)
        ).start()
        try:
            jobs = [
                service.submit(apk_to_dict(app.apk)) for app in corpus
            ]
            lazy_by_app = {
                r.app: r.findings_fingerprint() for r in lazy_run.results
            }
            for app, job in zip(corpus, jobs):
                done = service.wait(job.id, timeout_s=60.0)
                assert done is not None and done.terminal
                assert done.result is not None
                assert (
                    done.result.findings_fingerprint()
                    == lazy_by_app[app.apk.name]
                )
        finally:
            service.drain(timeout_s=30.0)


class TestCorruptionResilience:
    def test_corrupt_store_degrades_to_misses_not_findings(
        self, framework, apidb, corpus, lazy_run, dedup_run, store_dir
    ):
        """Flip a byte in every on-disk artifact: the rerun must
        re-analyze (miss) and still match lazy findings."""
        from pathlib import Path

        entries = list(Path(store_dir).rglob("*.cls"))
        assert entries, "dedup run should have persisted artifacts"
        for path in entries:
            blob = bytearray(path.read_bytes())
            blob[len(blob) // 2] ^= 0xFF
            path.write_bytes(bytes(blob))

        reset_class_stores()
        rerun = run_tools(
            corpus,
            ToolSet.default(
                framework, apidb, include=("SAINTDroid",),
                dedup=True, dedup_dir=store_dir,
            ),
        )
        assert (
            rerun.findings_fingerprint()
            == lazy_run.findings_fingerprint()
        )
        corrupt = sum(s.stats.corrupt for s in registered_stores())
        assert corrupt > 0


class TestChaosDiscipline:
    def test_faulted_app_never_populates_the_store(
        self, framework, apidb, tmp_path
    ):
        """A pipeline killed mid-analysis must leave no trace: only
        the surviving app's classes are answerable afterwards."""
        doomed = make_apk(
            [activity_class(package="com.chaos.doomed")],
            package="com.chaos.doomed",
        )
        survivor = make_apk(
            [activity_class(package="com.chaos.survivor")],
            package="com.chaos.survivor",
        )
        apps = [
            ForgedApp(apk=apk, truth=GroundTruth(app=apk.name))
            for apk in (doomed, survivor)
        ]
        plan = FaultPlan(
            faults={0: InjectedFault(FaultKind.CRASH, fail_attempts=None)}
        )
        reset_class_stores()
        results = run_tools(
            apps,
            ToolSet.default(
                framework, apidb, include=("SAINTDroid",),
                dedup=True, dedup_dir=str(tmp_path / "chaos-store"),
            ),
            fault_plan=plan,
        )
        assert results.results[0].error is not None
        assert results.results[1].error is None

        (store,) = registered_stores()
        for clazz in survivor.dex_files[0].classes:
            assert store.get(clazz) is not None
        before = store.stats.misses
        for clazz in doomed.dex_files[0].classes:
            assert store.get(clazz) is None
        assert store.stats.misses > before
        reset_class_stores()
