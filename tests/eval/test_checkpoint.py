"""Tests for the checkpoint journal (kill/resume for corpus runs)."""

from __future__ import annotations

import json

import pytest

from repro.core.errors import AnalysisError, ErrorKind
from repro.eval import CheckpointError, CheckpointJournal, ToolSet, run_tools
from repro.eval.checkpoint import result_from_dict, result_to_dict
from repro.workload.corpus import CorpusConfig, generate_corpus

#: Chaos tier: opt in locally with -m slow; CI runs these in
#: the dedicated chaos job.
pytestmark = pytest.mark.slow


SMALL_CORPUS = CorpusConfig(count=5, kloc_median=1.5, kloc_max=4.0)
TOOLS = ("SAINTDroid", "CID")


@pytest.fixture(scope="module")
def small_corpus(apidb):
    return [member.forged for member in generate_corpus(SMALL_CORPUS, apidb)]


@pytest.fixture(scope="module")
def toolset(framework, apidb):
    return ToolSet.default(framework, apidb, include=TOOLS)


@pytest.fixture(scope="module")
def baseline(toolset, small_corpus):
    """One uninterrupted run to compare resumed runs against."""
    return run_tools(small_corpus, toolset)


class TestCodec:
    def test_result_round_trip_is_fingerprint_identical(self, baseline):
        for index, result in enumerate(baseline.results):
            doc = json.loads(json.dumps(result_to_dict(index, result)))
            restored_index, restored = result_from_dict(doc)
            assert restored_index == index
            assert restored.fingerprint() == result.fingerprint()

    def test_error_record_round_trips(self, baseline):
        failed = baseline.results[0]
        failed.error = AnalysisError(
            kind=ErrorKind.TIMEOUT, message="budget", attempts=3,
            retryable=True,
        )
        try:
            doc = json.loads(json.dumps(result_to_dict(0, failed)))
            _, restored = result_from_dict(doc)
            assert restored.error == failed.error
        finally:
            failed.error = None

    def test_restored_metrics_usable_for_tables(self, baseline):
        result = baseline.results[0]
        doc = result_to_dict(0, result)
        _, restored = result_from_dict(doc)
        for tool in TOOLS:
            original = result.reports[tool].metrics
            metrics = restored.reports[tool].metrics
            assert metrics.work_units == original.work_units
            assert metrics.memory_units == original.memory_units
            assert metrics.modeled_seconds == pytest.approx(
                original.modeled_seconds
            )


class TestJournal:
    def test_fresh_journal_loads_empty(self, tmp_path):
        journal = CheckpointJournal(tmp_path / "run.jsonl", tools=TOOLS)
        assert journal.load() == {}

    def test_append_then_load(self, tmp_path, baseline):
        journal = CheckpointJournal(tmp_path / "run.jsonl", tools=TOOLS)
        for index, result in enumerate(baseline.results[:3]):
            journal.append(index, result)
        restored = journal.load()
        assert sorted(restored) == [0, 1, 2]
        for index, result in restored.items():
            assert (
                result.fingerprint()
                == baseline.results[index].fingerprint()
            )

    def test_truncated_final_line_dropped(self, tmp_path, baseline):
        path = tmp_path / "run.jsonl"
        journal = CheckpointJournal(path, tools=TOOLS)
        journal.append(0, baseline.results[0])
        journal.append(1, baseline.results[1])
        # Kill mid-write: chop the final record in half.
        text = path.read_text()
        path.write_text(text[: len(text) - len(text.splitlines()[-1]) // 2 - 1])
        restored = journal.load()
        assert sorted(restored) == [0]

    def test_corrupt_middle_line_rejected(self, tmp_path, baseline):
        path = tmp_path / "run.jsonl"
        journal = CheckpointJournal(path, tools=TOOLS)
        journal.append(0, baseline.results[0])
        lines = path.read_text().splitlines()
        lines.insert(1, "{not json")
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(CheckpointError):
            journal.load()

    def test_tool_mismatch_rejected(self, tmp_path, baseline):
        path = tmp_path / "run.jsonl"
        CheckpointJournal(path, tools=TOOLS).append(0, baseline.results[0])
        other = CheckpointJournal(path, tools=("SAINTDroid",))
        with pytest.raises(CheckpointError):
            other.load()

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text(
            json.dumps(
                {"type": "header", "version": 999, "tools": list(TOOLS)}
            )
            + "\n"
        )
        with pytest.raises(CheckpointError):
            CheckpointJournal(path, tools=TOOLS).load()


class TestResume:
    def _truncate_to(self, path, records: int) -> None:
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[: 1 + records]) + "\n")

    def test_serial_resume_reproduces_fingerprint(
        self, tmp_path, toolset, small_corpus, baseline
    ):
        path = tmp_path / "run.jsonl"
        run_tools(small_corpus, toolset, checkpoint=path)
        self._truncate_to(path, 2)
        resumed = run_tools(small_corpus, toolset, checkpoint=path)
        assert resumed.resumed_indices == (0, 1)
        assert resumed.fingerprint() == baseline.fingerprint()

    def test_parallel_resume_reproduces_fingerprint(
        self, tmp_path, toolset, small_corpus, baseline
    ):
        path = tmp_path / "run.jsonl"
        run_tools(small_corpus, toolset, checkpoint=path)
        self._truncate_to(path, 2)
        resumed = run_tools(
            small_corpus, toolset, jobs=2, checkpoint=path
        )
        assert resumed.resumed_indices == (0, 1)
        assert resumed.fingerprint() == baseline.fingerprint()

    def test_fully_journaled_run_reanalyzes_nothing(
        self, tmp_path, toolset, small_corpus, baseline
    ):
        path = tmp_path / "run.jsonl"
        run_tools(small_corpus, toolset, checkpoint=path)
        seen: list[str] = []
        resumed = run_tools(
            small_corpus, toolset, checkpoint=path, progress=seen.append
        )
        assert seen == []  # nothing re-analyzed
        assert len(resumed.resumed_indices) == len(small_corpus)
        assert resumed.fingerprint() == baseline.fingerprint()

    def test_resume_appends_not_rewrites(
        self, tmp_path, toolset, small_corpus
    ):
        path = tmp_path / "run.jsonl"
        run_tools(small_corpus, toolset, checkpoint=path)
        self._truncate_to(path, 2)
        run_tools(small_corpus, toolset, checkpoint=path)
        records = [
            json.loads(line)
            for line in path.read_text().splitlines()
            if json.loads(line).get("type") == "result"
        ]
        assert sorted(r["index"] for r in records) == list(
            range(len(small_corpus))
        )
