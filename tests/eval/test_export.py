"""Tests for machine-readable result exports."""

import csv
import json

import pytest

from repro.eval.export import (
    export_accuracy_csv,
    export_memory_csv,
    export_run_json,
    export_timing_csv,
)
from repro.eval.runner import ToolSet, run_tools
from repro.workload.appgen import AppForge


@pytest.fixture(scope="module")
def small_run(framework, apidb, picker):
    toolset = ToolSet.default(
        framework, apidb, include=("SAINTDroid", "CID")
    )
    forge = AppForge(
        "com.export.app", "ExportApp", min_sdk=19, target_sdk=26,
        seed=3, apidb=apidb, picker=picker,
    )
    forge.add_direct_issue()
    forge.add_filler(kloc=0.2)
    # second app: crashes CID (multidex)
    forge2 = AppForge(
        "com.export.two", "ExportTwo", min_sdk=19, target_sdk=26,
        seed=4, apidb=apidb, picker=picker,
    )
    forge2.add_secondary_dex_issue()
    return run_tools([forge.build(), forge2.build()], toolset)


def read_csv(path):
    with open(path, newline="") as handle:
        return list(csv.DictReader(handle))


class TestCsvExports:
    def test_accuracy_csv(self, small_run, tmp_path):
        path = tmp_path / "accuracy.csv"
        export_accuracy_csv(small_run, path)
        rows = read_csv(path)
        assert {row["tool"] for row in rows} == {"SAINTDroid", "CID"}
        saint_api = next(
            row for row in rows
            if row["tool"] == "SAINTDroid" and row["group"] == "API"
        )
        assert int(saint_api["tp"]) == 2
        assert float(saint_api["precision"]) == 1.0

    def test_timing_csv_marks_failures(self, small_run, tmp_path):
        path = tmp_path / "timing.csv"
        export_timing_csv(small_run, path)
        rows = read_csv(path)
        failed = [row for row in rows if row["failed"] == "1"]
        assert len(failed) == 1
        assert failed[0]["tool"] == "CID"
        assert failed[0]["seconds"] == ""
        succeeded = [row for row in rows if row["failed"] == "0"]
        assert all(float(row["seconds"]) > 0 for row in succeeded)

    def test_memory_csv_skips_failures(self, small_run, tmp_path):
        path = tmp_path / "memory.csv"
        export_memory_csv(small_run, path)
        rows = read_csv(path)
        # 2 apps x 2 tools, minus the one CID failure.
        assert len(rows) == 3
        assert all(float(row["memory_mb"]) > 0 for row in rows)


class TestJsonExport:
    def test_full_dump(self, small_run, tmp_path):
        path = tmp_path / "run.json"
        export_run_json(small_run, path)
        payload = json.loads(path.read_text())
        assert len(payload) == 2
        by_app = {entry["app"]: entry for entry in payload}
        assert by_app["ExportApp"]["tools"]["SAINTDroid"]["findings"] == {
            "API": 1
        }
        cid_two = by_app["ExportTwo"]["tools"]["CID"]
        assert cid_two["failed"] is True
        assert "multidex" in cid_two["failureReason"]
        assert cid_two["modeledSeconds"] is None


class TestSweep:
    def test_framework_scale_sweep_shape(self):
        from repro.eval.sweep import sweep_framework_scale
        points = sweep_framework_scale((200, 600), probes_per_point=1)
        assert [p.bulk_classes for p in points] == [200, 600]
        small, large = points
        assert large.cid_memory_mb > small.cid_memory_mb
        assert large.memory_ratio > small.memory_ratio
        assert small.saintdroid_seconds > 0
        assert small.time_ratio > 1.0
