"""Tests for accuracy scoring."""

import pytest

from repro.analysis.intervals import ApiInterval
from repro.core.detector import AnalysisReport
from repro.core.metrics import AnalysisMetrics
from repro.core.mismatch import Mismatch, MismatchKind
from repro.eval.accuracy import (
    ConfusionCounts,
    KIND_GROUPS,
    score_app,
    score_apps,
)
from repro.ir.types import MethodRef
from repro.workload.groundtruth import GroundTruth, SeededIssue, Trait


def mismatch(caller="com.app.C", api="android.x.A"):
    return Mismatch(
        kind=MismatchKind.API_INVOCATION,
        app="App",
        location=MethodRef(caller, "m"),
        subject=MethodRef(api, "f", "()void"),
        missing_levels=ApiInterval.of(14, 22),
    )


def truth_with(*keys):
    truth = GroundTruth(app="App")
    for key in keys:
        truth.issues.append(
            SeededIssue(key=key, kind=key[0], trait=Trait.DIRECT)
        )
    return truth


def report_with(*mismatches, failed=False):
    metrics = AnalysisMetrics(tool="T", app="App")
    metrics.failed = failed
    return AnalysisReport(
        app="App", tool="T", mismatches=list(mismatches), metrics=metrics
    )


class TestConfusionCounts:
    def test_metrics(self):
        counts = ConfusionCounts(tp=8, fp=2, fn=2)
        assert counts.precision == 0.8
        assert counts.recall == 0.8
        assert counts.f1 == pytest.approx(0.8)

    def test_zero_division(self):
        empty = ConfusionCounts()
        assert empty.precision == 0.0
        assert empty.recall == 0.0
        assert empty.f1 == 0.0

    def test_add(self):
        a = ConfusionCounts(1, 2, 3)
        a.add(ConfusionCounts(4, 5, 6))
        assert (a.tp, a.fp, a.fn) == (5, 7, 9)


class TestScoreApp:
    def test_true_positive(self):
        m = mismatch()
        truth = truth_with(m.key)
        counts = score_app(report_with(m), truth, ("API",))
        assert (counts.tp, counts.fp, counts.fn) == (1, 0, 0)

    def test_false_positive(self):
        counts = score_app(
            report_with(mismatch()), truth_with(), ("API",)
        )
        assert (counts.tp, counts.fp, counts.fn) == (0, 1, 0)

    def test_false_negative(self):
        counts = score_app(
            report_with(), truth_with(mismatch().key), ("API",)
        )
        assert (counts.tp, counts.fp, counts.fn) == (0, 0, 1)

    def test_kind_filter(self):
        apc_key = ("APC", "App", "com.app.Hook", "onFoo()void")
        truth = truth_with(mismatch().key, apc_key)
        counts = score_app(report_with(mismatch()), truth, ("API",))
        assert (counts.tp, counts.fn) == (1, 0)  # APC key out of scope

    def test_failed_run_counts_truth_as_fn(self):
        m = mismatch()
        counts = score_app(
            report_with(m, failed=True), truth_with(m.key), ("API",)
        )
        assert (counts.tp, counts.fp, counts.fn) == (0, 0, 1)


class TestScoreApps:
    def test_aggregation_and_groups(self):
        m1, m2 = mismatch("com.app.A"), mismatch("com.app.B")
        pairs = [
            (report_with(m1), truth_with(m1.key)),
            (report_with(m2), truth_with()),  # an FP
        ]
        accuracy = score_apps("T", pairs)
        assert accuracy.group("API").tp == 1
        assert accuracy.group("API").fp == 1
        assert accuracy.group("ALL").tp == 1
        assert accuracy.failed_apps == []

    def test_failed_apps_recorded(self):
        pairs = [(report_with(failed=True), truth_with())]
        accuracy = score_apps("T", pairs)
        assert accuracy.failed_apps == ["App"]

    def test_kind_groups_cover_all_kinds(self):
        flattened = {
            kind for kinds in KIND_GROUPS.values() for kind in kinds
        }
        assert flattened == {
            "API", "APC", "PRM-request", "PRM-revocation", "SEM"
        }
