"""Tests for the parallel corpus-analysis engine.

The load-bearing property is *equivalence*: a parallel run must be
indistinguishable (fingerprint-identical) from a serial run over the
same corpus.  The rest is failure isolation — one poisoned app must
never cost the run the remaining apps — plus the scheduling and cache
accounting around it.
"""

from __future__ import annotations

import time

import pytest

from repro.cli import build_parser
from repro.core.errors import ErrorKind
from repro.eval import (
    AppTimeoutError,
    ParallelConfig,
    RunResults,
    ToolSet,
    analyze_app,
    run_tools,
    run_tools_parallel,
)
from repro.workload.appgen import ForgedApp
from repro.workload.corpus import CorpusConfig, generate_corpus
from repro.workload.groundtruth import GroundTruth

#: Small but non-trivial corpus: mixed targets, seeded issues, tiny
#: app bodies so the whole file stays fast.
SMALL_CORPUS = CorpusConfig(count=6, kloc_median=1.5, kloc_max=4.0)


@pytest.fixture(scope="module")
def small_corpus(apidb):
    return [member.forged for member in generate_corpus(SMALL_CORPUS, apidb)]


class _KaboomApk:
    """Picklable stand-in that detonates once a tool touches it."""

    name = "kaboom"
    label = "kaboom"
    dex_kloc = 0.1

    def __getattr__(self, attr):
        if attr.startswith("__"):
            raise AttributeError(attr)
        raise RuntimeError("kaboom: synthetic analysis crash")


def _kaboom():
    return ForgedApp(apk=_KaboomApk(), truth=GroundTruth(app="kaboom"))


class _SleepyTool:
    name = "Sleepy"

    def analyze(self, apk):
        time.sleep(5.0)
        raise AssertionError("deadline did not fire")


class TestEquivalence:
    def test_parallel_matches_serial(
        self, framework, apidb, small_corpus
    ):
        toolset = ToolSet.default(framework, apidb)
        serial = run_tools(small_corpus, toolset)
        parallel = run_tools(small_corpus, toolset, jobs=3, chunk_size=2)
        assert serial.fingerprint() == parallel.fingerprint()
        assert len(parallel) == len(small_corpus)
        assert [r.app for r in parallel.results] == [
            f.apk.name for f in small_corpus
        ]

    def test_parallel_cache_stats_merged(
        self, spec, small_corpus
    ):
        config = ParallelConfig(jobs=2, chunk_size=2, include=("SAINTDroid",))
        out = run_tools_parallel(small_corpus, spec, config)
        stats = out.cache_stats
        assert stats["workers"] >= 1
        # From the second app onward the framework image and database
        # memo tables are warm — hits must be nonzero.
        assert stats["framework"]["class_hits"] > 0
        assert stats["apidb"]["levels_hits"] > 0
        assert 0.0 < stats["apidb"]["hit_rate"] <= 1.0

    def test_empty_corpus(self, spec):
        out = run_tools_parallel([], spec, ParallelConfig(jobs=2))
        assert isinstance(out, RunResults)
        assert len(out) == 0


class TestFailureIsolation:
    def test_poisoned_app_does_not_kill_the_run(
        self, spec, small_corpus
    ):
        apps = [small_corpus[0], _kaboom(), small_corpus[1]]
        config = ParallelConfig(
            jobs=2, chunk_size=1, include=("SAINTDroid",)
        )
        out = run_tools_parallel(apps, spec, config)
        assert [r.app for r in out.results] == [
            small_corpus[0].apk.name, "kaboom", small_corpus[1].apk.name
        ]
        good_first, bad, good_last = out.results
        assert good_first.ok and good_last.ok
        assert not bad.ok
        assert bad.error.kind is ErrorKind.CRASH
        assert "RuntimeError" in bad.error.message
        assert not bad.error.retryable
        assert bad.reports == {}
        assert out.failed_apps == ("kaboom",)
        assert out.error_summary() == {"crash": 1}

    def test_serial_error_capture(self, framework, apidb):
        toolset = ToolSet.default(
            framework, apidb, include=("SAINTDroid",)
        )
        result = analyze_app(toolset, _kaboom())
        assert not result.ok
        assert result.error.kind is ErrorKind.CRASH
        assert "RuntimeError" in result.error.message
        assert result.error.traceback_tail  # last frames preserved
        assert result.reports == {}

    def test_timeout_is_recorded_not_raised(
        self, framework, apidb, small_corpus
    ):
        toolset = ToolSet(
            framework=framework, apidb=apidb, tools=[_SleepyTool()]
        )
        result = analyze_app(toolset, small_corpus[0], timeout_s=0.2)
        assert not result.ok
        assert result.error.kind is ErrorKind.TIMEOUT
        assert result.error.retryable

    def test_timeout_error_type(self):
        assert issubclass(AppTimeoutError, Exception)


class TestScheduling:
    def test_resolved_chunk_size_default(self):
        config = ParallelConfig(jobs=4)
        # 160 apps / 4 workers = 40 per worker -> several chunks each,
        # capped so pickling never dominates.
        assert 1 <= config.resolved_chunk_size(160) <= 16
        assert config.resolved_chunk_size(2) == 1

    def test_resolved_chunk_size_explicit(self):
        config = ParallelConfig(jobs=4, chunk_size=7)
        assert config.resolved_chunk_size(1000) == 7
        assert ParallelConfig(chunk_size=0).resolved_chunk_size(10) == 1

    def test_progress_callback_sees_every_app(self, spec, small_corpus):
        seen: list[str] = []
        config = ParallelConfig(jobs=2, include=("SAINTDroid",))
        run_tools_parallel(
            small_corpus[:3], spec, config, progress=seen.append
        )
        assert sorted(seen) == sorted(
            f.apk.name for f in small_corpus[:3]
        )


class TestCli:
    def test_jobs_flag_parses(self):
        parser = build_parser()
        assert parser.parse_args(["table", "2"]).jobs == 1
        assert parser.parse_args(["table", "2", "--jobs", "4"]).jobs == 4
        assert parser.parse_args(["rq2", "--jobs", "2"]).jobs == 2
        assert parser.parse_args(
            ["sweep", "--jobs", "3", "--bulk-sizes", "200", "400"]
        ).jobs == 3

    def test_robustness_flags_parse(self):
        parser = build_parser()
        args = parser.parse_args(
            [
                "rq2", "--max-retries", "2", "--retry-backoff", "0.5",
                "--timeout", "30", "--checkpoint", "run.jsonl",
            ]
        )
        assert args.max_retries == 2
        assert args.retry_backoff == 0.5
        assert args.timeout == 30.0
        assert args.checkpoint.name == "run.jsonl"
        defaults = parser.parse_args(["table", "2"])
        assert defaults.max_retries == 0
        assert defaults.checkpoint is None
