"""Retry-round edge cases of the orchestration engine.

Three boundaries the chaos suite's randomized plans do not pin down
exactly:

* a retryable fault that spends itself on the *final* allowed attempt
  is recovered, one that outlives the budget is quarantined after the
  final round — off-by-one here silently doubles or halves the retry
  budget;
* the checkpoint journal is appended *as results finalize inside a
  round*, not flushed at the end — a kill mid-round must lose at most
  the in-flight app;
* a ``--only-pass`` selection that starves a later pass of a
  ``provides`` dependency is a user error (exit 2), not a crash.
"""

from __future__ import annotations

import pytest

from repro.apk.serialization import save_apk
from repro.cli import main
from repro.eval import ToolSet, run_tools
from repro.eval.faults import FaultKind, FaultPlan, InjectedFault
from repro.workload.corpus import CorpusConfig, generate_corpus

from tests.conftest import activity_class, make_apk

MAX_RETRIES = 2


@pytest.fixture(scope="module")
def corpus(apidb):
    config = CorpusConfig(count=4, kloc_median=1.5, kloc_max=4.0)
    return [m.forged for m in generate_corpus(config, apidb)]


@pytest.fixture(scope="module")
def toolset(framework, apidb):
    return ToolSet.default(framework, apidb, include=("SAINTDroid",))


class TestFinalRoundBoundary:
    def test_fault_spent_on_final_attempt_is_recovered(
        self, corpus, toolset
    ):
        """fail_attempts == max_retries: the last allowed retry
        succeeds, so nothing may be quarantined."""
        plan = FaultPlan(
            faults={
                1: InjectedFault(
                    FaultKind.WORKER_DEATH, fail_attempts=MAX_RETRIES
                )
            }
        )
        run = run_tools(
            corpus,
            toolset,
            max_retries=MAX_RETRIES,
            fault_plan=plan,
        )
        assert run.quarantined == ()
        assert run.results[1].ok
        assert run.results[1].error is None

    def test_fault_outliving_budget_quarantines_after_final_round(
        self, corpus, toolset
    ):
        """fail_attempts == max_retries + 1: still failing on the
        final attempt, so the app ends quarantined with the whole
        budget spent."""
        plan = FaultPlan(
            faults={
                1: InjectedFault(
                    FaultKind.WORKER_DEATH,
                    fail_attempts=MAX_RETRIES + 1,
                )
            }
        )
        run = run_tools(
            corpus,
            toolset,
            max_retries=MAX_RETRIES,
            fault_plan=plan,
        )
        assert [r.app for r in run.quarantined] == [corpus[1].apk.name]
        error = run.results[1].error
        assert error is not None
        assert error.retryable
        assert error.attempts == MAX_RETRIES + 1
        # The other apps are untouched by the neighbour's retries.
        for index in (0, 2, 3):
            assert run.results[index].ok


class TestCheckpointMidRound:
    def test_journal_grows_inside_the_round(
        self, corpus, toolset, tmp_path
    ):
        """Every finalized app is journaled before the next one is
        dispatched: the line count observed from the progress callback
        (which fires after the append) climbs one app at a time."""
        path = tmp_path / "run.jsonl"
        observed: list[int] = []

        def watch(app: str) -> None:
            observed.append(
                len(path.read_text().splitlines())
                if path.exists()
                else 0
            )

        run = run_tools(
            corpus, toolset, checkpoint=path, progress=watch
        )
        assert all(r.ok for r in run.results)
        # One new journal line per finalized app (the absolute count
        # is offset by the journal header).
        final = len(path.read_text().splitlines())
        assert observed == list(
            range(final - len(corpus) + 1, final + 1)
        )

    def test_quarantined_apps_are_journaled_and_resumed(
        self, corpus, toolset, tmp_path
    ):
        """A permanently failing app lands in the journal too; the
        resumed run adopts the failure instead of re-analyzing."""
        path = tmp_path / "run.jsonl"
        plan = FaultPlan(
            faults={2: InjectedFault(FaultKind.CRASH, fail_attempts=None)}
        )
        first = run_tools(
            corpus, toolset, checkpoint=path, fault_plan=plan
        )
        assert [r.app for r in first.quarantined] == [corpus[2].apk.name]

        resumed = run_tools(corpus, toolset, checkpoint=path)
        assert resumed.resumed_indices == (0, 1, 2, 3)
        assert resumed.results[2].error is not None
        assert (
            resumed.results[2].error.kind
            == first.results[2].error.kind
        )


class TestOnlyPassStarvation:
    @pytest.fixture()
    def apk_path(self, tmp_path):
        apk = make_apk([activity_class()], min_sdk=21, target_sdk=28)
        path = tmp_path / "app.sapk"
        save_apk(apk, path)
        return path

    def test_starved_provides_exits_2(self, apk_path, capsys):
        """detect-api requires the scope slot that only
        manifest-ingest provides; selecting it alone is reported as a
        usage error, never a traceback."""
        code = main(
            ["analyze", str(apk_path), "--only-pass", "detect-api"]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")

    def test_self_sufficient_selection_still_runs(
        self, apk_path, capsys
    ):
        code = main(
            [
                "analyze",
                str(apk_path),
                "--only-pass",
                "manifest-ingest",
            ]
        )
        assert code == 0
        capsys.readouterr()

    def test_unknown_pass_name_exits_2(self, apk_path, capsys):
        code = main(
            ["analyze", str(apk_path), "--only-pass", "no-such-pass"]
        )
        assert code == 2
        assert "no-such-pass" in capsys.readouterr().err
