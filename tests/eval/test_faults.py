"""Chaos suite: corpus runs under deterministic fault injection.

The fault-tolerance layer is only trustworthy if it has been watched
surviving faults.  These tests inject crashes, hangs, corrupt
packages, and worker deaths into 10–30% of a small corpus — under the
serial loop and under a 2-worker pool — and assert the run completes,
quarantines exactly the apps the plan predicts (with typed error
records), recovers every transient fault, and that a killed
checkpointed run resumes to a bit-identical fingerprint.
"""

from __future__ import annotations

import pytest

from repro.core.errors import ErrorKind, WorkerLostError
from repro.eval import (
    FaultKind,
    FaultPlan,
    InjectedCrashError,
    InjectedFault,
    ToolSet,
    run_tools,
)
from repro.eval.faults import CorruptApkError
from repro.workload.corpus import CorpusConfig, generate_corpus

#: Chaos tier: opt in locally with -m slow; CI runs these in
#: the dedicated chaos job.
pytestmark = pytest.mark.slow


#: Tiny apps: the suite injects ~10 faults across several full runs.
CHAOS_CORPUS = CorpusConfig(count=10, kloc_median=1.0, kloc_max=3.0)
TOOLS = ("SAINTDroid",)
#: Hangs sleep longer than the per-app budget, so every injected hang
#: surfaces as a timeout.
TIMEOUT_S = 0.8
HANG_S = 2.0
MAX_RETRIES = 2

#: One fault per kind, mapped onto fixed corpus indices: a permanent
#: crash, a transient hang (recovered by retry), a permanent corrupt
#: package, a transient worker death, and a permanent hang (exhausts
#: the retry budget, quarantined as a timeout).
MIXED_PLAN = FaultPlan(
    faults={
        1: InjectedFault(FaultKind.CRASH, fail_attempts=None),
        3: InjectedFault(FaultKind.HANG, fail_attempts=1, hang_s=HANG_S),
        5: InjectedFault(FaultKind.CORRUPT, fail_attempts=None),
        6: InjectedFault(FaultKind.WORKER_DEATH, fail_attempts=1),
        8: InjectedFault(FaultKind.HANG, fail_attempts=None, hang_s=HANG_S),
    }
)

EXPECTED_KINDS = {
    1: ErrorKind.CRASH,
    5: ErrorKind.PARSE,
    8: ErrorKind.TIMEOUT,
}


@pytest.fixture(scope="module")
def chaos_corpus(apidb):
    return [member.forged for member in generate_corpus(CHAOS_CORPUS, apidb)]


@pytest.fixture(scope="module")
def toolset(framework, apidb):
    return ToolSet.default(framework, apidb, include=TOOLS)


@pytest.fixture(scope="module")
def clean_run(toolset, chaos_corpus):
    """Fault-free baseline for recovered-app comparisons."""
    return run_tools(chaos_corpus, toolset)


def _quarantined_indices(run) -> set[int]:
    return {
        index
        for index, result in enumerate(run.results)
        if result.error is not None
    }


class TestInjectedFault:
    def test_transient_fault_spends_itself(self):
        fault = InjectedFault(FaultKind.CRASH, fail_attempts=1)
        assert fault.fires(0)
        assert not fault.fires(1)
        with pytest.raises(InjectedCrashError):
            fault.trigger(0)
        fault.trigger(1)  # spent: no-op

    def test_permanent_fault_always_fires(self):
        fault = InjectedFault(FaultKind.CORRUPT, fail_attempts=None)
        for attempt in (0, 1, 5):
            assert fault.fires(attempt)
        with pytest.raises(CorruptApkError):
            fault.trigger(3)

    def test_worker_death_simulated_without_permission(self):
        fault = InjectedFault(FaultKind.WORKER_DEATH)
        with pytest.raises(WorkerLostError):
            fault.trigger(0, allow_process_death=False)


class TestFaultPlan:
    def test_generate_is_deterministic(self):
        one = FaultPlan.generate(100, fraction=0.2, seed=9)
        two = FaultPlan.generate(100, fraction=0.2, seed=9)
        assert one.faults == two.faults
        assert FaultPlan.generate(100, fraction=0.2, seed=10).faults != (
            one.faults
        )

    def test_generate_respects_fraction(self):
        plan = FaultPlan.generate(50, fraction=0.2, seed=1)
        assert len(plan) == 10
        assert all(0 <= index < 50 for index in plan.indices)

    def test_expected_quarantine(self):
        expected = MIXED_PLAN.expected_quarantine(MAX_RETRIES)
        # Permanent crash, permanent corrupt, permanent hang; the
        # transient hang and worker death are recovered by retries.
        assert expected == frozenset({1, 5, 8})
        # Without retries, every firing fault quarantines its app.
        assert MIXED_PLAN.expected_quarantine(0) == frozenset(
            {1, 3, 5, 6, 8}
        )


class TestSerialChaos:
    @pytest.fixture(scope="class")
    def chaos_run(self, toolset, chaos_corpus):
        return run_tools(
            chaos_corpus,
            toolset,
            timeout_s=TIMEOUT_S,
            max_retries=MAX_RETRIES,
            fault_plan=MIXED_PLAN,
        )

    def test_run_completes_with_exact_quarantine(
        self, chaos_run, chaos_corpus
    ):
        assert len(chaos_run) == len(chaos_corpus)
        assert _quarantined_indices(chaos_run) == set(
            MIXED_PLAN.expected_quarantine(MAX_RETRIES)
        )

    def test_quarantined_records_are_typed(self, chaos_run):
        for index, kind in EXPECTED_KINDS.items():
            error = chaos_run.results[index].error
            assert error is not None
            assert error.kind is kind
            assert chaos_run.results[index].reports == {}
        assert chaos_run.error_summary() == {
            "crash": 1, "parse": 1, "timeout": 1
        }

    def test_permanent_hang_exhausted_retry_budget(self, chaos_run):
        error = chaos_run.results[8].error
        assert error.retryable  # quarantined on budget, not on kind
        assert error.attempts == MAX_RETRIES + 1

    def test_recovered_apps_match_clean_run(self, chaos_run, clean_run):
        quarantined = MIXED_PLAN.expected_quarantine(MAX_RETRIES)
        for index, result in enumerate(chaos_run.results):
            if index in quarantined:
                continue
            assert (
                result.fingerprint()
                == clean_run.results[index].fingerprint()
            )


class TestParallelChaos:
    @pytest.fixture(scope="class")
    def generated_plan(self, chaos_corpus):
        # The acceptance configuration: 20% of the corpus faulted.
        plan = FaultPlan.generate(
            len(chaos_corpus), fraction=0.2, seed=5, hang_s=HANG_S
        )
        assert len(plan) == 2
        return plan

    @pytest.fixture(scope="class")
    def parallel_run(self, toolset, chaos_corpus):
        return run_tools(
            chaos_corpus,
            toolset,
            jobs=2,
            timeout_s=TIMEOUT_S,
            max_retries=MAX_RETRIES,
            fault_plan=MIXED_PLAN,
        )

    def test_pool_survives_mixed_faults(self, parallel_run, chaos_corpus):
        assert len(parallel_run) == len(chaos_corpus)
        assert [r.app for r in parallel_run.results] == [
            f.apk.name for f in chaos_corpus
        ]
        assert _quarantined_indices(parallel_run) == set(
            MIXED_PLAN.expected_quarantine(MAX_RETRIES)
        )

    def test_parallel_matches_serial_under_faults(
        self, parallel_run, toolset, chaos_corpus
    ):
        serial = run_tools(
            chaos_corpus,
            toolset,
            timeout_s=TIMEOUT_S,
            max_retries=MAX_RETRIES,
            fault_plan=MIXED_PLAN,
        )
        assert serial.fingerprint() == parallel_run.fingerprint()

    def test_generated_plan_acceptance(
        self, toolset, chaos_corpus, generated_plan
    ):
        run = run_tools(
            chaos_corpus,
            toolset,
            jobs=2,
            timeout_s=TIMEOUT_S,
            max_retries=MAX_RETRIES,
            fault_plan=generated_plan,
        )
        assert len(run) == len(chaos_corpus)
        assert _quarantined_indices(run) == set(
            generated_plan.expected_quarantine(MAX_RETRIES)
        )
        for result in run.quarantined:
            assert result.error.kind in set(ErrorKind)
            assert result.error.message

    def test_real_worker_death_is_recovered(self, toolset, chaos_corpus):
        # One transient worker death: the worker really os._exits, the
        # pool breaks, the engine rebuilds it and recovers the app.
        plan = FaultPlan(
            faults={2: InjectedFault(FaultKind.WORKER_DEATH)}
        )
        run = run_tools(
            chaos_corpus[:5],
            toolset,
            jobs=2,
            max_retries=1,
            fault_plan=plan,
        )
        assert run.failed_apps == ()
        assert len(run) == 5


class TestChaosResume:
    def test_kill_then_resume_reproduces_fingerprint(
        self, tmp_path, toolset, chaos_corpus
    ):
        kwargs = dict(
            timeout_s=TIMEOUT_S,
            max_retries=MAX_RETRIES,
            fault_plan=MIXED_PLAN,
        )
        uninterrupted = run_tools(chaos_corpus, toolset, **kwargs)

        path = tmp_path / "chaos.jsonl"
        run_tools(chaos_corpus, toolset, checkpoint=path, **kwargs)
        # "Kill" the run: keep the header and the first 4 records.
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:5]) + "\n")

        resumed = run_tools(chaos_corpus, toolset, checkpoint=path, **kwargs)
        assert len(resumed.resumed_indices) == 4
        assert resumed.fingerprint() == uninterrupted.fingerprint()

    def test_parallel_resume_under_faults(
        self, tmp_path, toolset, chaos_corpus
    ):
        kwargs = dict(
            timeout_s=TIMEOUT_S,
            max_retries=MAX_RETRIES,
            fault_plan=MIXED_PLAN,
        )
        uninterrupted = run_tools(chaos_corpus, toolset, **kwargs)

        path = tmp_path / "chaos.jsonl"
        run_tools(chaos_corpus, toolset, checkpoint=path, **kwargs)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:5]) + "\n")

        resumed = run_tools(
            chaos_corpus, toolset, jobs=2, checkpoint=path, **kwargs
        )
        assert resumed.fingerprint() == uninterrupted.fingerprint()
