"""Agreement-matrix properties (``saintdroid compare``).

Two layers: pure-function properties on hand-built joins (no analysis
at all), and the same invariants re-checked on a real seeded campaign
— label-completeness over the kind registry, agreement symmetry with
an exact-1.0 diagonal, and per-kind counts that sum to corpus totals.
"""

from __future__ import annotations

import pytest

from repro.core.kinds import family_of, registered_kinds
from repro.eval.compare import (
    AppJoin,
    CompareConfig,
    agreement_matrix,
    blind_spots,
    build_report,
    canonical_json,
    ordered_kind_values,
    pairwise_confusion,
    per_kind_matrix,
    run_compare,
    scenario_stats,
)

CONFIGS = ("A", "B", "C")


def _join(app, truth, reported):
    return AppJoin(
        app=app,
        truth_keys=frozenset(truth),
        reported={name: frozenset(keys) for name, keys in reported.items()},
        failed={name: False for name in reported},
    )


@pytest.fixture()
def joins():
    """Three apps with asymmetric tool behaviour: B misses one API
    issue, C reports a false positive and misses everything real."""
    k = lambda kind, n: (kind, "loc", f"subject-{n}")  # noqa: E731
    return [
        _join(
            "app-0",
            truth=[k("API", 0), k("APC", 1)],
            reported={
                "A": [k("API", 0), k("APC", 1)],
                "B": [k("API", 0)],
                "C": [k("API", 99)],
            },
        ),
        _join(
            "app-1",
            truth=[k("API", 2)],
            reported={
                "A": [k("API", 2)],
                "B": [k("API", 2)],
                "C": [],
            },
        ),
        _join(
            "app-2",
            truth=[],
            reported={"A": [], "B": [], "C": []},
        ),
    ]


class TestHandBuiltFixtures:
    def test_per_kind_matrix_is_label_complete(self, joins):
        matrix = per_kind_matrix(joins, CONFIGS)
        expected = set(ordered_kind_values())
        assert expected == {
            spec.value for spec in registered_kinds()
        }
        for name in CONFIGS:
            assert set(matrix[name]) == expected

    def test_per_kind_counts(self, joins):
        matrix = per_kind_matrix(joins, CONFIGS)
        api_a = matrix["A"]["API"]
        assert (api_a.tp, api_a.fp, api_a.fn) == (2, 0, 0)
        api_c = matrix["C"]["API"]
        assert (api_c.tp, api_c.fp, api_c.fn) == (0, 1, 2)
        apc_b = matrix["B"]["APC"]
        assert (apc_b.tp, apc_b.fp, apc_b.fn) == (0, 0, 1)

    def test_per_kind_counts_sum_to_corpus_totals(self, joins):
        matrix = per_kind_matrix(joins, CONFIGS)
        seeded = sum(len(j.truth_keys) for j in joins)
        for name in CONFIGS:
            reported = sum(len(j.reported[name]) for j in joins)
            assert (
                sum(c.actual for c in matrix[name].values()) == seeded
            )
            assert (
                sum(c.reported for c in matrix[name].values())
                == reported
            )

    def test_agreement_symmetric_with_unit_diagonal(self, joins):
        matrix = agreement_matrix(joins, CONFIGS)
        for a in CONFIGS:
            assert matrix[a][a] == 1.0
            for b in CONFIGS:
                assert matrix[a][b] == matrix[b][a]
                assert 0.0 <= matrix[a][b] <= 1.0

    def test_agreement_values(self, joins):
        matrix = agreement_matrix(joins, CONFIGS)
        # A∩B = {API0, API2}, A∪B = {API0, APC1, API2} → 2/3.
        assert matrix["A"]["B"] == round(2 / 3, 6)
        # C shares nothing with A: 0/4.
        assert matrix["A"]["C"] == 0.0

    def test_all_empty_reports_agree_vacuously(self):
        joins = [_join("app-0", truth=[], reported={"A": [], "B": []})]
        matrix = agreement_matrix(joins, ("A", "B"))
        assert matrix["A"]["B"] == 1.0

    def test_pairwise_confusion_mirrors(self, joins):
        matrix = pairwise_confusion(joins, CONFIGS)
        for a in CONFIGS:
            for b in CONFIGS:
                for kind, cell in matrix[a][b].items():
                    mirror = matrix[b][a][kind]
                    assert cell["both"] == mirror["both"]
                    assert cell["onlyA"] == mirror["onlyB"]
                    assert cell["neither"] == mirror["neither"]

    def test_pairwise_confusion_counts(self, joins):
        cell = pairwise_confusion(joins, CONFIGS)["A"]["C"]["API"]
        # A and C never report the same API key; C's FP is its own.
        assert cell == {
            "both": 0, "onlyA": 2, "onlyB": 1, "neither": 0,
        }
        apc = pairwise_confusion(joins, CONFIGS)["B"]["C"]["APC"]
        # The APC truth key escapes both B and C.
        assert apc["neither"] == 1

    def test_failed_config_counts_as_empty(self):
        k = ("API", "loc", "subject")
        join = AppJoin(
            app="app-0",
            truth_keys=frozenset([k]),
            reported={"A": frozenset([k]), "B": frozenset()},
            failed={"A": False, "B": True},
        )
        matrix = per_kind_matrix([join], ("A", "B"))
        assert matrix["B"]["API"].fn == 1
        assert matrix["B"]["API"].tp == 0

    def test_blind_spots_require_universal_miss(self):
        from repro.difftest.strategy import ScenarioTrace

        k = ("API", "loc", "s")
        traces = [[ScenarioTrace("scenario-x", (k,), ())]]
        joins = [
            _join("app-0", truth=[k], reported={"A": [k], "B": []})
        ]
        stats = scenario_stats(traces, joins, ("A", "B"))
        assert blind_spots(stats) == []  # A found it
        joins = [_join("app-0", truth=[k], reported={"A": [], "B": []})]
        stats = scenario_stats(traces, joins, ("A", "B"))
        spots = blind_spots(stats)
        assert [s["scenario"] for s in spots] == ["scenario-x"]
        assert spots[0]["seededIssues"] == 1


class TestSeededCampaign:
    """The same invariants on real campaign output."""

    @pytest.fixture(scope="class")
    def campaign(self, framework, apidb, picker):
        config = CompareConfig(
            seed=424, n_apps=12, configs=("SAINTDroid", "CID", "Lint")
        )
        return run_compare(
            config, substrate=(framework, apidb), picker=picker
        )

    def test_label_complete(self, campaign):
        report = campaign.report
        expected = list(ordered_kind_values())
        assert report["kinds"] == expected
        for name in report["campaign"]["configurations"]:
            assert list(report["perKind"][name]) == expected

    def test_counts_sum_to_corpus_totals(self, campaign):
        report = campaign.report
        seeded = report["corpus"]["seededIssues"]
        by_kind = report["corpus"]["seededIssuesByKind"]
        assert sum(by_kind.values()) == seeded
        for name in report["campaign"]["configurations"]:
            assert (
                sum(
                    cell["tp"] + cell["fn"]
                    for cell in report["perKind"][name].values()
                )
                == seeded
            )

    def test_agreement_matrix_properties(self, campaign):
        matrix = campaign.report["agreement"]
        configs = campaign.report["campaign"]["configurations"]
        for a in configs:
            assert matrix[a][a] == 1.0
            for b in configs:
                assert matrix[a][b] == matrix[b][a]

    def test_scenario_found_counts_bounded_by_issues(self, campaign):
        for row in campaign.report["perScenario"].values():
            for found in row["found"].values():
                assert 0 <= found <= row["issues"]

    def test_capability_families_consistent(self, campaign):
        capabilities = campaign.report["capabilities"]
        families = set(capabilities["families"])
        for name, observed in capabilities["observed"].items():
            assert set(observed) <= families
        for kind in campaign.report["kinds"]:
            assert family_of(kind) in families

    def test_report_is_canonical_json_stable(self, campaign):
        joins_doc = canonical_json(campaign.report)
        rebuilt = canonical_json(campaign.report)
        assert joins_doc == rebuilt


@pytest.mark.slow
class TestFullRoster:
    """Issue-mandated scale: a 50-app campaign across every
    registered configuration (CI's compare job runs this)."""

    @pytest.fixture(scope="class")
    def campaign(self, framework, apidb, picker):
        return run_compare(
            CompareConfig(seed=2026, n_apps=50),
            substrate=(framework, apidb),
            picker=picker,
        )

    def test_capability_crosscheck_passes(self, campaign):
        assert campaign.ok, campaign.report["capabilities"][
            "mismatches"
        ]

    def test_matrix_invariants_at_scale(self, campaign):
        report = campaign.report
        seeded = report["corpus"]["seededIssues"]
        configs = report["campaign"]["configurations"]
        assert len(configs) == 6
        for name in configs:
            assert (
                sum(
                    cell["tp"] + cell["fn"]
                    for cell in report["perKind"][name].values()
                )
                == seeded
            )
        matrix = report["agreement"]
        for a in configs:
            assert matrix[a][a] == 1.0
            for b in configs:
                assert matrix[a][b] == matrix[b][a]

    def test_ablations_agree_with_baseline_on_unablated_corpus(
        self, campaign
    ):
        # Eager loading must never change findings; the anonymous-
        # guard ablation only changes guarded-anonymous scenarios.
        matrix = campaign.report["agreement"]
        assert matrix["SAINTDroid"]["SAINTDroid-eager"] == 1.0
