"""Tests for the parallel engine's stats merging and loss synthesis.

`_merge_cache_stats` and `_worker_lost_results` are the two pure
helpers the pool backend leans on when things go wrong: the first
must stay honest about per-worker cache behavior (including the
degenerate no-snapshot case), the second must synthesize retryable
``worker-lost`` records that keep the run alive.  Both are also
exercised end-to-end here with a worker that actually dies mid-chunk.
"""

from __future__ import annotations

import pytest

from repro.core.errors import ErrorKind
from repro.eval.faults import FaultKind, FaultPlan, InjectedFault
from repro.eval.parallel import (
    ParallelConfig,
    _merge_cache_stats,
    _worker_lost_results,
    run_tools_parallel,
)
from repro.workload.corpus import CorpusConfig, generate_corpus

STATS_CORPUS = CorpusConfig(
    count=6, kloc_median=1.5, kloc_max=4.0, seed=4242
)


@pytest.fixture(scope="module")
def corpus(apidb):
    return [m.forged for m in generate_corpus(STATS_CORPUS, apidb)]


def _snapshot(
    class_hits=0,
    class_misses=0,
    image_hits=0,
    image_misses=0,
    resolve_hits=0,
    resolve_misses=0,
    levels_hits=0,
    levels_misses=0,
    permission_hits=0,
    permission_misses=0,
):
    return {
        "framework": {
            "class_hits": class_hits,
            "class_misses": class_misses,
            "image_hits": image_hits,
            "image_misses": image_misses,
        },
        "apidb": {
            "resolve_hits": resolve_hits,
            "resolve_misses": resolve_misses,
            "levels_hits": levels_hits,
            "levels_misses": levels_misses,
            "permission_hits": permission_hits,
            "permission_misses": permission_misses,
        },
    }


class TestMergeCacheStats:
    def test_empty_snapshots(self):
        merged = _merge_cache_stats({})
        assert merged["workers"] == 0
        assert merged["framework"]["hit_rate"] == 0.0
        assert merged["framework"]["per_worker_hit_rates"] == []
        assert merged["apidb"]["hit_rate"] == 0.0

    def test_counters_are_summed(self):
        merged = _merge_cache_stats(
            {
                101: _snapshot(
                    class_hits=90, class_misses=10, levels_hits=5
                ),
                202: _snapshot(
                    class_hits=30, class_misses=70, levels_misses=5
                ),
            }
        )
        assert merged["workers"] == 2
        assert merged["framework"]["class_hits"] == 120
        assert merged["framework"]["class_misses"] == 80
        assert merged["framework"]["hit_rate"] == pytest.approx(0.6)
        assert merged["apidb"]["levels_hits"] == 5
        assert merged["apidb"]["levels_misses"] == 5
        assert merged["apidb"]["hit_rate"] == pytest.approx(0.5)

    def test_per_worker_rates_expose_the_cold_worker(self):
        """The blended rate can look healthy while one worker
        re-materialized the whole framework — the sorted per-worker
        list is what the benchmark asserts against."""
        merged = _merge_cache_stats(
            {
                101: _snapshot(class_hits=990, class_misses=10),
                202: _snapshot(class_hits=0, class_misses=100),
            }
        )
        assert merged["framework"]["hit_rate"] == pytest.approx(0.9)
        assert merged["framework"]["per_worker_hit_rates"] == [
            0.0,
            0.99,
        ]

    def test_worker_with_no_class_traffic_counts_as_zero(self):
        merged = _merge_cache_stats({101: _snapshot()})
        assert merged["framework"]["per_worker_hit_rates"] == [0.0]


class TestWorkerLostResults:
    def test_every_chunk_entry_gets_a_retryable_record(self, corpus):
        chunk = [
            (0, corpus[0], 0),
            (3, corpus[3], 1),
        ]
        out = _worker_lost_results(
            chunk, BrokenProcessPoolStandin("pool broke")
        )
        assert [index for index, _ in out] == [0, 3]
        for (_, result), (_, forged, attempt) in zip(out, chunk):
            assert result.app == forged.apk.name
            assert result.truth == forged.truth
            assert result.kloc == forged.apk.dex_kloc
            assert result.error is not None
            assert result.error.kind is ErrorKind.WORKER_LOST
            assert result.error.retryable
            assert result.error.attempts == attempt + 1
            assert "BrokenProcessPoolStandin" in result.error.message

    def test_empty_chunk_is_fine(self):
        assert _worker_lost_results([], RuntimeError("x")) == []


class BrokenProcessPoolStandin(RuntimeError):
    """Stands in for concurrent.futures.BrokenProcessPool."""


class TestStatsAcrossRetryRounds:
    def test_worker_death_midchunk_still_merges_stats(
        self, spec, corpus
    ):
        """A worker dying mid-chunk poisons its pool; the retry round
        runs on a fresh pool with new pids.  The merged stats must
        reflect workers from BOTH rounds, and the transiently killed
        app must come back clean."""
        config = ParallelConfig(
            jobs=2,
            max_retries=1,
            fault_plan=FaultPlan(
                faults={
                    1: InjectedFault(
                        FaultKind.WORKER_DEATH, fail_attempts=1
                    )
                }
            ),
        )
        out = run_tools_parallel(corpus, spec, config)
        assert len(out) == len(corpus)
        assert out.results[1].error is None
        stats = out.cache_stats
        # At least one round-0 survivor plus the retry round's worker.
        assert stats["workers"] >= 2
        assert len(stats["framework"]["per_worker_hit_rates"]) == (
            stats["workers"]
        )
        assert stats["framework"]["class_hits"] > 0
