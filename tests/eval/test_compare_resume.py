"""Crash/resume equivalence for agreement campaigns.

A compare campaign journals each configuration's completed results to
its own JSONL checkpoint.  Killing the campaign mid-run (simulated by
truncating one journal mid-stream and deleting another entirely —
the on-disk state an actual ``kill -9`` leaves behind, including a
torn final record) and re-running against the same checkpoint
directory must reproduce the canonical report and the blind-spot
artifact byte for byte.  Worker-death injection from ``eval.faults``
covers the in-flight crash path on top of the on-disk one.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.eval.compare import (
    CompareConfig,
    blind_spot_document,
    canonical_json,
    run_compare,
)
from repro.eval.faults import FaultKind, FaultPlan, InjectedFault

CONFIGS = ("SAINTDroid", "CID")
SEED = 515
N_APPS = 10


@pytest.fixture(scope="module")
def baseline(framework, apidb, picker):
    """The uninterrupted campaign every resumed run must match."""
    result = run_compare(
        CompareConfig(seed=SEED, n_apps=N_APPS, configs=CONFIGS),
        substrate=(framework, apidb),
        picker=picker,
    )
    return (
        canonical_json(result.report),
        canonical_json(blind_spot_document(result.report)),
    )


def _campaign(tmp_path, framework, apidb, picker, **overrides):
    config = CompareConfig(
        seed=SEED,
        n_apps=N_APPS,
        configs=CONFIGS,
        checkpoint_dir=str(tmp_path / "ckpt"),
        **overrides,
    )
    return run_compare(
        config, substrate=(framework, apidb), picker=picker
    )


def _kill(checkpoint_dir: Path) -> None:
    """Leave the directory as a mid-campaign SIGKILL would: the first
    configuration's journal cut mid-stream with a torn final record,
    the second configuration never started."""
    first = checkpoint_dir / f"compare-{CONFIGS[0]}.jsonl"
    lines = first.read_text().splitlines(keepends=True)
    assert len(lines) == 1 + N_APPS  # header + one record per app
    first.write_text("".join(lines[:5]) + lines[5][: len(lines[5]) // 2])
    (checkpoint_dir / f"compare-{CONFIGS[1]}.jsonl").unlink()


def test_kill_and_resume_is_byte_identical(
    tmp_path, baseline, framework, apidb, picker
):
    full = _campaign(tmp_path, framework, apidb, picker)
    assert canonical_json(full.report) == baseline[0]

    _kill(tmp_path / "ckpt")
    resumed = _campaign(tmp_path, framework, apidb, picker)

    # Only the journaled prefix was restored; the rest re-analyzed.
    assert resumed.runs[CONFIGS[0]].resumed_indices == (0, 1, 2, 3)
    assert resumed.runs[CONFIGS[1]].resumed_indices == ()
    assert canonical_json(resumed.report) == baseline[0]
    assert (
        canonical_json(blind_spot_document(resumed.report))
        == baseline[1]
    )


def test_resume_crosses_schedulers(
    tmp_path, baseline, framework, apidb, picker
):
    """A serial campaign's journal resumes under ``--jobs 2`` — the
    checkpoint format carries no scheduler state."""
    _campaign(tmp_path, framework, apidb, picker)
    _kill(tmp_path / "ckpt")
    resumed = _campaign(tmp_path, framework, apidb, picker, jobs=2)
    assert resumed.runs[CONFIGS[0]].resumed_indices == (0, 1, 2, 3)
    assert canonical_json(resumed.report) == baseline[0]


def test_worker_death_recovery_matches_baseline(
    baseline, framework, apidb, picker
):
    """An in-flight worker death on a retrying pool changes nothing:
    the app is re-dispatched and the campaign's matrices are byte-
    identical to the fault-free run."""
    plan = FaultPlan(
        faults={
            3: InjectedFault(FaultKind.WORKER_DEATH, fail_attempts=1)
        }
    )
    result = run_compare(
        CompareConfig(
            seed=SEED,
            n_apps=N_APPS,
            configs=CONFIGS,
            jobs=2,
            max_retries=1,
            fault_plan=plan,
        ),
        substrate=(framework, apidb),
        picker=picker,
    )
    assert canonical_json(result.report) == baseline[0]


@pytest.mark.slow
def test_resume_crosses_into_serve_mode(
    tmp_path, baseline, framework, apidb, picker
):
    """A journal written by the corpus scheduler resumes through the
    serve daemon's batch-submission path: same file name, same tools
    tuple, same bytes out."""
    _campaign(tmp_path, framework, apidb, picker)
    _kill(tmp_path / "ckpt")
    resumed = _campaign(
        tmp_path, framework, apidb, picker, via_serve=True, jobs=2
    )
    assert resumed.runs[CONFIGS[0]].resumed_indices == (0, 1, 2, 3)
    assert canonical_json(resumed.report) == baseline[0]
