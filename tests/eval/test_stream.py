"""The streaming orchestration engine (:func:`run_stream`) and the
full-jitter backoff, unit-tested with stub sources/backends.

Stub entries reuse the engine's ``(index, forged, attempt)`` shape
with plain :class:`AppResult` values — no analysis, no processes — so
these pin the *scheduling* contract: every taken entry gets exactly
one terminal deliver, retryable failures re-enter with jittered
delays, and the loop ends only when the source is closed AND drained.
"""

from __future__ import annotations

import random

from repro.core.errors import AnalysisError, AnalysisPhase, ErrorKind
from repro.eval.orchestration import CorpusBackend, JobSource, run_stream
from repro.eval.runner import BACKOFF_CAP_FACTOR, _full_jitter_backoff
from repro.eval.runner import AppResult, _bounded_backoff
from repro.workload.groundtruth import GroundTruth


def _result(app: str, *, fail_kind: ErrorKind | None = None) -> AppResult:
    error = None
    if fail_kind is not None:
        error = AnalysisError(
            kind=fail_kind,
            phase=AnalysisPhase.TOOL,
            message="stub failure",
            retryable=fail_kind
            in (ErrorKind.TIMEOUT, ErrorKind.WORKER_LOST),
            attempts=1,
        )
    return AppResult(
        app=app, truth=GroundTruth(app=app), kloc=1.0, error=error
    )


class _ListSource(JobSource):
    """Feeds a fixed batch of entries, then reports closed."""

    def __init__(self, count: int) -> None:
        self.fresh = [(i, f"app-{i}", 0) for i in range(count)]
        self.delivered: list[tuple[int, int, AppResult]] = []

    def take(self, limit, timeout_s):
        if not self.fresh:
            return None
        out, self.fresh = self.fresh[:limit], self.fresh[limit:]
        return out

    def deliver(self, entry, result):
        self.delivered.append((entry[0], entry[2], result))


class _StubBackend(CorpusBackend):
    """Scripted per-index outcomes: ``fail_until[i]`` attempts fail
    retryably, then the entry succeeds."""

    def __init__(
        self,
        fail_until: dict[int, int] | None = None,
        permanent: frozenset[int] = frozenset(),
    ) -> None:
        self.fail_until = fail_until or {}
        self.permanent = permanent
        self.prepared = 0
        self.dispatched: list[tuple[int, int]] = []

    @property
    def spec(self):  # pragma: no cover — unused by run_stream
        return None

    @property
    def tool_names(self):
        return ("stub",)

    def prepare(self, cache_dir, pending=()):
        self.prepared += 1

    def run_round(self, pending, round_no):
        out = []
        for entry in pending:
            index, app, attempt = entry
            self.dispatched.append((index, attempt))
            if index in self.permanent:
                out.append((entry, _result(app, fail_kind=ErrorKind.CRASH)))
            elif attempt < self.fail_until.get(index, 0):
                out.append(
                    (entry, _result(app, fail_kind=ErrorKind.TIMEOUT))
                )
            else:
                out.append((entry, _result(app)))
        return out

    def finish(self, cache_dir):
        return {}

    def close(self):
        pass


class TestRunStream:
    def test_every_entry_delivered_exactly_once(self):
        source = _ListSource(9)
        stats = run_stream(source, _StubBackend(), batch_limit=4)
        assert stats["analyzed"] == 9
        assert stats["quarantined"] == 0
        assert sorted(i for i, _a, _r in source.delivered) == list(range(9))

    def test_retryable_failures_recover_within_budget(self):
        source = _ListSource(4)
        backend = _StubBackend(fail_until={2: 2})
        stats = run_stream(
            source, backend, max_retries=2, poll_s=0.01
        )
        assert stats["retried"] == 2
        assert stats["quarantined"] == 0
        by_index = {i: r for i, _a, r in source.delivered}
        assert by_index[2].error is None
        # The recovered entry was dispatched on attempts 0, 1, 2.
        assert [a for i, a in backend.dispatched if i == 2] == [0, 1, 2]

    def test_budget_exhaustion_quarantines_terminally(self):
        source = _ListSource(3)
        stats = run_stream(
            source,
            _StubBackend(fail_until={1: 99}),
            max_retries=2,
            poll_s=0.01,
        )
        assert stats["quarantined"] == 1
        delivered = {i: r for i, _a, r in source.delivered}
        assert len(source.delivered) == 3  # exactly one deliver each
        assert delivered[1].error is not None

    def test_non_retryable_failure_skips_the_retry_window(self):
        source = _ListSource(2)
        backend = _StubBackend(permanent=frozenset({0}))
        stats = run_stream(source, backend, max_retries=3)
        assert stats["retried"] == 0
        assert stats["quarantined"] == 1
        assert all(a == 0 for _i, a in backend.dispatched)

    def test_prepare_runs_once_on_first_batch(self):
        backend = _StubBackend()
        run_stream(_ListSource(6), backend, batch_limit=2)
        assert backend.prepared == 1

    def test_empty_closed_source_terminates_immediately(self):
        source = _ListSource(0)
        stats = run_stream(source, _StubBackend())
        assert stats["analyzed"] == 0


class TestFullJitterBackoff:
    def test_within_the_bounded_envelope(self):
        rng = random.Random(7)
        for attempt in range(1, 40):
            delay = _full_jitter_backoff(0.5, attempt, rng)
            assert 0.0 <= delay <= _bounded_backoff(0.5, attempt)
            assert delay <= 0.5 * BACKOFF_CAP_FACTOR

    def test_samples_the_full_interval(self):
        # AWS full jitter: uniform over [0, ceiling] — distinct draws
        # must actually differ (the whole point is decorrelation).
        rng = random.Random(11)
        draws = {
            round(_full_jitter_backoff(1.0, 3, rng), 6)
            for _ in range(16)
        }
        assert len(draws) > 1
        assert max(draws) <= _bounded_backoff(1.0, 3)

    def test_deterministic_under_a_seeded_rng(self):
        assert _full_jitter_backoff(
            1.0, 2, random.Random(42)
        ) == _full_jitter_backoff(1.0, 2, random.Random(42))

    def test_zero_base_is_immediate(self):
        assert _full_jitter_backoff(0.0, 5) == 0.0
