"""Lazy vs summarized exploration: findings parity, cost ordering.

The framework pre-summary mode exists purely as a performance
substitution — it must never change what the detector finds.  The
contract, enforced here and by the CI parity job:

* ``findings_fingerprint`` (mismatches + failure flags + error
  records) is identical between a lazy and a summarized run over the
  same corpus;
* the summarized mode's modeled work and memory are strictly lower
  (that is the whole point of the table);
* parallel summarized runs are full-fingerprint identical to serial
  summarized runs — including over the shared-memory attach path.
"""

from __future__ import annotations

import pytest

from repro.eval.runner import ToolSet, run_tools
from repro.workload.benchsuite import build_benchmark_suite
from repro.workload.corpus import CorpusConfig, generate_corpus

PARITY_CORPUS = CorpusConfig(
    count=8, kloc_median=2.0, kloc_max=6.0, seed=86420
)


@pytest.fixture(scope="module")
def corpus(apidb):
    return [m.forged for m in generate_corpus(PARITY_CORPUS, apidb)]


@pytest.fixture(scope="module")
def lazy_run(framework, apidb, corpus):
    return run_tools(
        corpus,
        ToolSet.default(framework, apidb, include=("SAINTDroid",)),
    )


@pytest.fixture(scope="module")
def summarized_run(framework, apidb, corpus):
    return run_tools(
        corpus,
        ToolSet.default(
            framework, apidb, include=("SAINTDroid",), summaries=True
        ),
    )


class TestFindingsParity:
    def test_corpus_findings_identical(self, lazy_run, summarized_run):
        assert (
            lazy_run.findings_fingerprint()
            == summarized_run.findings_fingerprint()
        )

    def test_benchmark_suite_findings_identical(self, framework, apidb):
        """The replica suite concentrates every scenario kind the
        detectors know (guards, callbacks, permissions, dynamic
        loading), so parity here is parity where it matters."""
        apps = build_benchmark_suite(apidb, scale=0.25)
        lazy = run_tools(
            apps,
            ToolSet.default(framework, apidb, include=("SAINTDroid",)),
        )
        summarized = run_tools(
            apps,
            ToolSet.default(
                framework, apidb, include=("SAINTDroid",),
                summaries=True,
            ),
        )
        assert (
            lazy.findings_fingerprint()
            == summarized.findings_fingerprint()
        )

    def test_full_fingerprints_differ_only_in_accounting(
        self, lazy_run, summarized_run
    ):
        """Work/memory units ARE expected to change — the full
        fingerprint must therefore differ while findings agree (guards
        against findings_fingerprint accidentally comparing nothing)."""
        assert lazy_run.fingerprint() != summarized_run.fingerprint()


class TestCostOrdering:
    def test_summarized_work_and_memory_are_lower(
        self, lazy_run, summarized_run
    ):
        lazy_work = summarized_work = 0
        lazy_memory = summarized_memory = 0
        for lazy_result, summarized_result in zip(
            lazy_run.results, summarized_run.results
        ):
            lazy_stats = (
                lazy_result.reports["SAINTDroid"].metrics.stats
            )
            summarized_stats = (
                summarized_result.reports["SAINTDroid"].metrics.stats
            )
            lazy_work += lazy_stats.work_units
            summarized_work += summarized_stats.work_units
            lazy_memory += lazy_stats.memory_units
            summarized_memory += summarized_stats.memory_units
        assert summarized_work < lazy_work
        assert summarized_memory < lazy_memory

    def test_summarized_mode_actually_summarizes(self, summarized_run):
        summarized_classes = sum(
            r.reports["SAINTDroid"].metrics.stats.classes_summarized
            for r in summarized_run.results
        )
        assert summarized_classes > 0


class TestSchedulerParity:
    def test_parallel_summarized_matches_serial(
        self, framework, apidb, corpus, summarized_run
    ):
        parallel = run_tools(
            corpus,
            ToolSet.default(
                framework, apidb, include=("SAINTDroid",),
                summaries=True,
            ),
            jobs=2,
        )
        assert parallel.fingerprint() == summarized_run.fingerprint()

    def test_shared_segment_attach_path_matches(
        self, framework, apidb, corpus, summarized_run, monkeypatch
    ):
        """Force the pool to publish + attach the shared-memory
        substrate segment even under fork, so the zero-copy path is
        exercised on every platform the tests run on."""
        monkeypatch.setenv("REPRO_FORCE_SHARED_SUBSTRATE", "1")
        parallel = run_tools(
            corpus,
            ToolSet.default(
                framework, apidb, include=("SAINTDroid",),
                summaries=True,
            ),
            jobs=2,
        )
        assert parallel.fingerprint() == summarized_run.fingerprint()
