"""Runner robustness: deadlines (signal + thread fallback), retries,
backoff bounds, and the failure-breakdown renderer."""

from __future__ import annotations

import signal
import time

import pytest

from repro.core.errors import AnalysisError, ErrorKind
from repro.eval import ToolSet, analyze_app, run_tools
from repro.eval.faults import FaultKind, FaultPlan, InjectedFault
from repro.eval.runner import (
    BACKOFF_CAP_FACTOR,
    AppTimeoutError,
    _app_deadline,
    _bounded_backoff,
    _call_with_thread_deadline,
)
from repro.eval.tables import failure_breakdown, render_failures
from repro.workload.corpus import CorpusConfig, generate_corpus

#: Chaos tier: opt in locally with -m slow; CI runs these in
#: the dedicated chaos job.
pytestmark = pytest.mark.slow

SMALL_CORPUS = CorpusConfig(count=3, kloc_median=1.0, kloc_max=3.0)


@pytest.fixture(scope="module")
def small_corpus(apidb):
    return [member.forged for member in generate_corpus(SMALL_CORPUS, apidb)]


@pytest.fixture(scope="module")
def toolset(framework, apidb):
    return ToolSet.default(framework, apidb, include=("SAINTDroid",))


class TestSignalDeadline:
    def test_handler_and_timer_restored(self):
        sentinel = lambda signum, frame: None  # noqa: E731
        previous = signal.signal(signal.SIGALRM, sentinel)
        signal.setitimer(signal.ITIMER_REAL, 60.0)
        try:
            with _app_deadline(5.0):
                pass
            assert signal.getsignal(signal.SIGALRM) is sentinel
            remaining, _ = signal.getitimer(signal.ITIMER_REAL)
            # The outer timer is re-armed with its remaining budget.
            assert 0.0 < remaining <= 60.0
        finally:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, previous)

    def test_no_timer_left_behind(self):
        with _app_deadline(5.0):
            pass
        remaining, _ = signal.getitimer(signal.ITIMER_REAL)
        assert remaining == 0.0

    def test_deadline_fires(self):
        with pytest.raises(AppTimeoutError):
            with _app_deadline(0.1):
                time.sleep(2.0)

    def test_none_is_no_op(self):
        with _app_deadline(None):
            pass
        remaining, _ = signal.getitimer(signal.ITIMER_REAL)
        assert remaining == 0.0


class TestThreadDeadline:
    def test_timeout_raised(self):
        with pytest.raises(AppTimeoutError):
            _call_with_thread_deadline(lambda: time.sleep(2.0), 0.1)

    def test_exception_propagated(self):
        def boom():
            raise ValueError("from the worker thread")

        with pytest.raises(ValueError, match="from the worker thread"):
            _call_with_thread_deadline(boom, 5.0)

    def test_completion_within_budget(self):
        ran = []
        _call_with_thread_deadline(lambda: ran.append(1), 5.0)
        assert ran == [1]

    def test_analyze_app_uses_fallback_without_sigalrm(
        self, monkeypatch, toolset, small_corpus
    ):
        # Simulate a platform with no SIGALRM: the fallback must still
        # turn a hang into a typed timeout record.
        monkeypatch.setattr(
            "repro.eval.runner._SIGALRM_AVAILABLE", False
        )
        fault = InjectedFault(
            FaultKind.HANG, fail_attempts=None, hang_s=2.0
        )
        result = analyze_app(
            toolset, small_corpus[0], timeout_s=0.2, fault=fault
        )
        assert not result.ok
        assert result.error.kind is ErrorKind.TIMEOUT
        assert result.error.retryable


class TestBackoff:
    def test_exponential_growth(self):
        assert _bounded_backoff(1.0, 1) == 1.0
        assert _bounded_backoff(1.0, 2) == 2.0
        assert _bounded_backoff(1.0, 3) == 4.0

    def test_bounded(self):
        for attempt in range(1, 40):
            assert _bounded_backoff(0.5, attempt) <= 0.5 * BACKOFF_CAP_FACTOR


class TestSerialRetries:
    def test_transient_fault_recovered(self, toolset, small_corpus):
        plan = FaultPlan(
            faults={0: InjectedFault(FaultKind.CRASH, fail_attempts=0)}
        )
        # fail_attempts=0 never fires; sanity-check the plumbing runs.
        run = run_tools(
            small_corpus, toolset, max_retries=1, fault_plan=plan
        )
        assert run.failed_apps == ()

    def test_retry_count_recorded(self, toolset, small_corpus):
        plan = FaultPlan(
            faults={
                1: InjectedFault(FaultKind.WORKER_DEATH, fail_attempts=2)
            }
        )
        run = run_tools(
            small_corpus, toolset, max_retries=1, fault_plan=plan
        )
        error = run.results[1].error
        assert error is not None
        assert error.kind is ErrorKind.WORKER_LOST
        assert error.attempts == 2  # first try + one retry

    def test_no_retries_without_budget(self, toolset, small_corpus):
        plan = FaultPlan(
            faults={
                1: InjectedFault(FaultKind.WORKER_DEATH, fail_attempts=1)
            }
        )
        run = run_tools(small_corpus, toolset, fault_plan=plan)
        assert run.results[1].error is not None
        assert run.results[1].error.attempts == 1


class TestFailureBreakdown:
    def test_breakdown_and_rendering(self, toolset, small_corpus):
        plan = FaultPlan(
            faults={0: InjectedFault(FaultKind.CRASH, fail_attempts=None)}
        )
        run = run_tools(small_corpus, toolset, fault_plan=plan)
        breakdown = failure_breakdown(run)
        assert breakdown["failed_apps"] == 1
        assert breakdown["by_kind"] == {"crash": 1}
        (row,) = breakdown["rows"]
        assert row["kind"] == "crash"
        assert row["attempts"] == 1
        text = render_failures(breakdown)
        assert "1/3 apps quarantined" in text
        assert row["app"] in text

    def test_clean_run_renders_one_line(self, toolset, small_corpus):
        run = run_tools(small_corpus, toolset)
        text = render_failures(failure_breakdown(run))
        assert text == "Failures: 0/3 apps quarantined"

    def test_error_summary_counts(self):
        from repro.eval import AppResult, RunResults
        from repro.workload.groundtruth import GroundTruth

        def failed(app, kind):
            return AppResult(
                app=app,
                truth=GroundTruth(app=app),
                error=AnalysisError(kind=kind),
            )

        run = RunResults(
            results=[
                failed("a", ErrorKind.CRASH),
                failed("b", ErrorKind.TIMEOUT),
                failed("c", ErrorKind.CRASH),
            ]
        )
        assert run.error_summary() == {"crash": 2, "timeout": 1}
