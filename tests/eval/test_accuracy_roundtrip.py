"""Ground truth <-> accuracy round trip.

Every issue and trap the generators can seed must be *countable*: its
kind maps into the precision/recall table groups, its keys survive
JSON serialization, and scoring closes the books (tp + fn == seeded
issues).  The difftest coverage apps exercise every scenario kind —
including the dead-code trap — so they double as the exhaustive
fixture here.
"""

from __future__ import annotations

import json

import pytest

from repro.core.detector import SaintDroid
from repro.difftest.strategy import ALL_KINDS, materialize, plan_apps
from repro.eval.accuracy import KIND_GROUPS, score_app, score_apps
from repro.workload.groundtruth import GroundTruth, Trait


@pytest.fixture(scope="module")
def coverage(apidb, picker):
    plans = plan_apps(2026, len(ALL_KINDS), coverage=True)
    return [materialize(plan, apidb, picker) for plan in plans]


@pytest.fixture(scope="module")
def scored_pairs(coverage, framework, apidb):
    tool = SaintDroid(framework, apidb)
    return [
        (tool.analyze(forged.apk), forged.truth) for forged in coverage
    ]


def test_every_trait_is_seedable(coverage):
    """The coverage apps exercise the full Trait enum — a new trait
    without a scenario would be untestable."""
    seen = set()
    for forged in coverage:
        seen.update(issue.trait for issue in forged.truth.issues)
        seen.update(trap.trait for trap in forged.truth.traps)
    assert seen == set(Trait)


def test_every_issue_kind_lands_in_the_tables(coverage):
    countable = set(KIND_GROUPS["ALL"])
    for forged in coverage:
        for issue in forged.truth.issues:
            assert issue.kind in countable
            assert issue.key[0] == issue.kind
        for trap in forged.truth.traps:
            for key in trap.fp_keys:
                assert key[0] in countable


def test_truth_json_round_trip(coverage):
    for forged in coverage:
        doc = json.loads(json.dumps(forged.truth.to_dict()))
        restored = GroundTruth.from_dict(doc)
        assert restored.issue_keys == forged.truth.issue_keys
        assert {
            (trap.trait, trap.fp_keys) for trap in restored.traps
        } == {
            (trap.trait, trap.fp_keys) for trap in forged.truth.traps
        }


def test_scoring_closes_the_books(scored_pairs):
    """Per app: tp + fn == seeded issues, for the ALL pool and for
    each per-kind group — no seeded issue can escape the tables."""
    for report, truth in scored_pairs:
        counts = score_app(report, truth, KIND_GROUPS["ALL"])
        assert counts.actual == len(truth.issue_keys)
        per_kind = sum(
            score_app(report, truth, KIND_GROUPS[name]).actual
            for name in ("API", "APC", "PRM", "SEM")
        )
        assert per_kind == len(truth.issue_keys)


def test_aggregation_matches_per_app_sum(scored_pairs):
    accuracy = score_apps("SAINTDroid", scored_pairs)
    for name, kinds in KIND_GROUPS.items():
        total = accuracy.group(name)
        tp = fp = fn = 0
        for report, truth in scored_pairs:
            counts = score_app(report, truth, kinds)
            tp += counts.tp
            fp += counts.fp
            fn += counts.fn
        assert (total.tp, total.fp, total.fn) == (tp, fp, fn)
        assert 0.0 <= total.precision <= 1.0
        assert 0.0 <= total.recall <= 1.0


def test_dead_code_trap_counts_as_false_positive(scored_pairs):
    """The dead-code trap (expected disagreement for the oracle) is
    still an accuracy FP: its key is outside the true-issue set but
    inside the countable kinds."""
    trapped = [
        (report, truth)
        for report, truth in scored_pairs
        if truth.traps_with_trait(Trait.TRAP_DEAD_CODE)
    ]
    assert trapped
    for report, truth in trapped:
        counts = score_app(report, truth, KIND_GROUPS["ALL"])
        expected = {
            key
            for trap in truth.traps_with_trait(Trait.TRAP_DEAD_CODE)
            for key in trap.fp_keys
        }
        assert expected <= set(report.keys)
        assert counts.fp >= len(expected)
