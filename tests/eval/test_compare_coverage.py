"""Kind-coverage gate: the agreement study must be able to *seed*
every registered mismatch kind, or it is structurally blind to it.

``scenario_kind_coverage`` materializes the corpus generator's
coverage prefix and maps each kind to the scenario kinds that seed it;
``missing_scenario_kinds`` is the gate.  A newly registered kind with
no scenario builder must fail the campaign with an actionable message
(pointing at ``scenario_builders`` / ``workload/appgen.py``), not
silently produce a zero column.
"""

from __future__ import annotations

import pytest

from repro.core.kinds import (
    MismatchKindSpec,
    api_shaped_key,
    register_kind,
    registered_kinds,
    unregister_kind,
)
from repro.eval.compare import (
    CompareConfig,
    CompareError,
    missing_scenario_kinds,
    run_compare,
    scenario_kind_coverage,
)


@pytest.fixture(scope="module")
def coverage(apidb, picker):
    return scenario_kind_coverage(apidb, picker)


class TestCoverage:
    def test_every_registered_kind_is_seedable(self, coverage):
        registered = {spec.value for spec in registered_kinds()}
        assert registered <= set(coverage), (
            "kinds with no seeding scenario: "
            f"{registered - set(coverage)}"
        )
        assert missing_scenario_kinds(coverage) == ()

    def test_sem_reachable_from_compare_corpus(self, coverage):
        # The registry-contributed scenarios count: SEM rides in via
        # core/sem.py's scenario_builders, not a hand-listed builder.
        assert "SEM" in coverage
        assert set(coverage["SEM"]) & {"semantic", "semantic-guarded"}

    def test_each_kind_names_its_seeding_scenarios(self, coverage):
        for kind, scenarios in coverage.items():
            assert scenarios, kind


class TestGate:
    @pytest.fixture()
    def orphan_kind(self):
        """A registered kind no scenario builder can seed."""
        register_kind(
            MismatchKindSpec(
                value="ORF",
                family="ORF",
                is_permission=False,
                key_fn=api_shaped_key,
                describe_fn=lambda m: "[ORF]",
            ),
            attr="ORPHAN_TEST_ONLY",
        )
        try:
            yield "ORF"
        finally:
            unregister_kind("ORF")

    def test_orphan_kind_is_reported(self, orphan_kind, coverage):
        assert missing_scenario_kinds(coverage) == (orphan_kind,)

    def test_campaign_fails_actionably(
        self, orphan_kind, framework, apidb, picker
    ):
        with pytest.raises(CompareError) as excinfo:
            run_compare(
                CompareConfig(
                    seed=3, n_apps=2, configs=("SAINTDroid",)
                ),
                substrate=(framework, apidb),
                picker=picker,
            )
        message = str(excinfo.value)
        assert "'ORF'" in message
        assert "scenario_builders" in message
        assert "workload/appgen.py" in message
