"""Tests for the experiment runner and the table/figure renderers,
driven by a miniature two-app workload."""

import pytest

from repro.eval.figures import (
    ascii_scatter,
    figure1_regions,
    figure3_series,
    figure4_series,
)
from repro.eval.runner import ToolSet, run_tools
from repro.eval.tables import (
    render_rq2,
    render_table1,
    render_table2,
    render_table3,
    render_table4,
    rq2_summary,
    table1_taxonomy,
    table2_accuracy,
    table3_times,
    table4_capabilities,
)
from repro.workload.appgen import AppForge


@pytest.fixture(scope="module")
def toolset(framework, apidb):
    return ToolSet.default(framework, apidb)


@pytest.fixture(scope="module")
def mini_run(toolset, apidb, picker):
    apps = []
    forge_a = AppForge(
        "com.mini.alpha", "Alpha", min_sdk=19, target_sdk=26,
        seed=1, apidb=apidb, picker=picker,
    )
    forge_a.add_direct_issue()
    forge_a.add_callback_issue(modeled=False)
    forge_a.add_caller_guard_trap()
    forge_a.add_filler(kloc=0.3)
    apps.append(forge_a.build())

    forge_b = AppForge(
        "com.mini.beta", "Beta", min_sdk=15, target_sdk=22,
        seed=2, apidb=apidb, picker=picker,
    )
    forge_b.add_permission_revocation_issue()
    forge_b.add_filler(kloc=0.2)
    apps.append(forge_b.build())
    return run_tools(apps, toolset), apps


class TestToolSet:
    def test_default_has_four_tools(self, toolset):
        assert [t.name for t in toolset.tools] == [
            "SAINTDroid", "CID", "CIDER", "Lint"
        ]

    def test_include_filter(self, framework, apidb):
        ts = ToolSet.default(framework, apidb, include=("SAINTDroid",))
        assert len(ts.tools) == 1


class TestRunner:
    def test_every_app_every_tool(self, mini_run):
        run, apps = mini_run
        assert len(run) == len(apps)
        for result in run.results:
            assert set(result.reports) == {
                "SAINTDroid", "CID", "CIDER", "Lint"
            }

    def test_accuracy_access(self, mini_run):
        run, _ = mini_run
        accuracy = run.accuracy("SAINTDroid")
        assert accuracy.group("ALL").tp >= 3
        assert accuracy.group("ALL").fn == 0

    def test_accuracies_all_tools(self, mini_run):
        run, _ = mini_run
        assert set(run.accuracies()) == {
            "SAINTDroid", "CID", "CIDER", "Lint"
        }


class TestTables:
    def test_table1_static(self):
        rows = table1_taxonomy()
        assert [r["abbr"] for r in rows] == ["API", "APC", "PRM"]
        text = render_table1()
        assert "Permission-induced" in text

    def test_table2(self, mini_run):
        run, _ = mini_run
        table = table2_accuracy(run)
        assert len(table.rows) == 2
        text = render_table2(table)
        assert "Alpha" in text and "Beta" in text
        assert "API+APC" in text

    def test_table3(self, mini_run):
        run, _ = mini_run
        rows = table3_times(run)
        assert len(rows) == 2
        text = render_table3(rows)
        assert "SAINTDroid" in text
        for row in rows:
            assert row["SAINTDroid"] is not None
            assert row["SAINTDroid"] < row["CID"]

    def test_table3_app_filter(self, mini_run):
        run, _ = mini_run
        rows = table3_times(run, apps=("Alpha",))
        assert [r["app"] for r in rows] == ["Alpha"]

    def test_table4(self, toolset):
        rows = table4_capabilities(toolset.tools)
        by_tool = {r["tool"]: r for r in rows}
        assert by_tool["SAINTDroid"] == {
            "tool": "SAINTDroid",
            "API": True, "APC": True, "PRM": True, "SEM": True,
        }
        assert not by_tool["CID"]["SEM"]
        assert not by_tool["CID"]["APC"]
        assert not by_tool["CIDER"]["API"]
        text = render_table4(rows)
        assert "SAINTDroid" in text

    def test_rq2_summary(self, mini_run):
        run, apps = mini_run
        results = [
            (result.reports["SAINTDroid"], result.truth,
             result.reports["SAINTDroid"].app == "Alpha")
            for result in run.results
        ]
        summary = rq2_summary(results)
        assert summary["total_apps"] == 2
        assert summary["api_total"] >= 1
        assert summary["revocation_apps"] == 1
        text = render_rq2(summary)
        assert "sampled precision" in text


class TestFigures:
    def test_figure1(self):
        regions = figure1_regions(23)
        assert regions[22] == "backward-mismatch-risk"
        assert regions[23] == "compatible"
        assert regions[24] == "forward-mismatch-risk"

    def test_figure3(self, mini_run):
        run, _ = mini_run
        data = figure3_series(run)
        assert len(data["scatter"]) == 2
        tools = {s.tool: s for s in data["summaries"]}
        assert tools["SAINTDroid"].average < tools["CID"].average

    def test_figure4(self, mini_run):
        run, _ = mini_run
        data = figure4_series(run)
        assert data["summary"]["SAINTDroid"]["average_mb"] < (
            data["summary"]["CID"]["average_mb"]
        )

    def test_ascii_scatter(self):
        text = ascii_scatter([(1.0, 1.0), (2.0, 4.0)], width=20, height=5)
        assert "*" in text
        assert "max 4.0" in text
        assert ascii_scatter([]) == "(no data)"
