"""End-to-end tests for persistent incremental runs.

The contract under test: a warm run over an unchanged corpus is
fingerprint-identical to the cold run that populated the cache — for
serial and parallel schedules, with and without checkpoints — and the
cache never masks a fault-injected or quarantined app.
"""

from __future__ import annotations

import pytest

from repro.cache import fingerprint_spec, snapshot_path
from repro.eval import ToolSet, run_tools
from repro.eval.faults import FaultKind, FaultPlan, InjectedFault
from repro.eval.tables import phase_breakdown, render_phases
from repro.workload.corpus import CorpusConfig, generate_corpus

SMALL_CORPUS = CorpusConfig(count=5, kloc_median=1.5, kloc_max=4.0)
TOOLS = ("SAINTDroid", "CID")


@pytest.fixture(scope="module")
def small_corpus(apidb):
    return [m.forged for m in generate_corpus(SMALL_CORPUS, apidb)]


@pytest.fixture(scope="module")
def toolset(framework, apidb):
    return ToolSet.default(framework, apidb, include=TOOLS)


@pytest.fixture(scope="module")
def baseline(toolset, small_corpus):
    """Uncached reference run."""
    return run_tools(small_corpus, toolset)


def fresh_toolset(framework, apidb):
    return ToolSet.default(framework, apidb, include=TOOLS)


class TestWarmRuns:
    def test_cold_then_warm_identical_fingerprints(
        self, tmp_path, framework, apidb, small_corpus, baseline
    ):
        cold = run_tools(
            small_corpus,
            fresh_toolset(framework, apidb),
            cache_dir=tmp_path,
        )
        assert cold.fingerprint() == baseline.fingerprint()
        assert cold.cached_indices == ()
        assert cold.cache_stats["results"]["stores"] == len(small_corpus)

        warm = run_tools(
            small_corpus,
            fresh_toolset(framework, apidb),
            cache_dir=tmp_path,
        )
        assert warm.fingerprint() == baseline.fingerprint()
        assert warm.cached_indices == tuple(range(len(small_corpus)))
        stats = warm.cache_stats["results"]
        assert stats["hits"] == len(small_corpus)
        assert stats["misses"] == 0
        assert all(result.from_cache for result in warm.results)

    def test_snapshot_written_by_corpus_run(
        self, tmp_path, framework, apidb, small_corpus
    ):
        run_tools(
            small_corpus,
            fresh_toolset(framework, apidb),
            cache_dir=tmp_path,
        )
        key = fingerprint_spec(framework.spec)
        assert snapshot_path(tmp_path, key).exists()

    def test_parallel_warm_equals_serial_cold(
        self, tmp_path, framework, apidb, small_corpus, baseline
    ):
        run_tools(
            small_corpus,
            fresh_toolset(framework, apidb),
            cache_dir=tmp_path,
        )
        parallel = run_tools(
            small_corpus,
            fresh_toolset(framework, apidb),
            jobs=2,
            cache_dir=tmp_path,
        )
        assert parallel.fingerprint() == baseline.fingerprint()
        assert parallel.cache_stats["results"]["hits"] == len(
            small_corpus
        )

    def test_parallel_cold_populates_cache(
        self, tmp_path, framework, apidb, small_corpus, baseline
    ):
        cold = run_tools(
            small_corpus,
            fresh_toolset(framework, apidb),
            jobs=2,
            cache_dir=tmp_path,
        )
        assert cold.fingerprint() == baseline.fingerprint()
        assert cold.cache_stats["results"]["stores"] == len(small_corpus)
        warm = run_tools(
            small_corpus,
            fresh_toolset(framework, apidb),
            cache_dir=tmp_path,
        )
        assert warm.fingerprint() == baseline.fingerprint()
        assert warm.cache_stats["results"]["hits"] == len(small_corpus)

    def test_corpus_change_invalidates_only_changed_apps(
        self, tmp_path, framework, apidb, small_corpus, baseline
    ):
        run_tools(
            small_corpus,
            fresh_toolset(framework, apidb),
            cache_dir=tmp_path,
        )
        # Swap one app for a differently-seeded one: only it misses.
        other = [
            m.forged
            for m in generate_corpus(
                CorpusConfig(count=5, kloc_median=1.5, kloc_max=4.0,
                             seed=SMALL_CORPUS.seed + 1),
                apidb,
            )
        ]
        edited = list(small_corpus)
        edited[2] = other[2]
        run = run_tools(
            edited, fresh_toolset(framework, apidb), cache_dir=tmp_path
        )
        stats = run.cache_stats["results"]
        assert stats["hits"] == 4
        assert stats["misses"] == 1
        assert stats["stores"] == 1
        assert 2 not in run.cached_indices

    def test_different_toolset_never_shares_entries(
        self, tmp_path, framework, apidb, small_corpus
    ):
        run_tools(
            small_corpus,
            fresh_toolset(framework, apidb),
            cache_dir=tmp_path,
        )
        other = run_tools(
            small_corpus,
            ToolSet.default(framework, apidb, include=("SAINTDroid",)),
            cache_dir=tmp_path,
        )
        stats = other.cache_stats["results"]
        assert stats["hits"] == 0
        assert stats["misses"] == len(small_corpus)


class TestChaosInterplay:
    def test_faulted_index_bypasses_warm_cache(
        self, tmp_path, framework, apidb, small_corpus
    ):
        run_tools(
            small_corpus,
            fresh_toolset(framework, apidb),
            cache_dir=tmp_path,
        )
        plan = FaultPlan(
            {2: InjectedFault(kind=FaultKind.CRASH, fail_attempts=None)}
        )
        chaos = run_tools(
            small_corpus,
            fresh_toolset(framework, apidb),
            cache_dir=tmp_path,
            fault_plan=plan,
            max_retries=1,
        )
        # The faulted app is quarantined even though a clean cached
        # entry exists for it, and nothing new is stored.
        assert not chaos.results[2].ok
        stats = chaos.cache_stats["results"]
        assert stats["hits"] == len(small_corpus) - 1
        assert stats["stores"] == 0
        assert 2 not in chaos.cached_indices

    def test_quarantine_set_matches_uncached_chaos_run(
        self, tmp_path, framework, apidb, small_corpus
    ):
        plan = FaultPlan(
            {
                1: InjectedFault(
                    kind=FaultKind.CRASH, fail_attempts=None
                ),
                3: InjectedFault(
                    kind=FaultKind.CRASH, fail_attempts=None
                ),
            }
        )
        uncached = run_tools(
            small_corpus,
            fresh_toolset(framework, apidb),
            fault_plan=plan,
            max_retries=1,
        )
        run_tools(
            small_corpus,
            fresh_toolset(framework, apidb),
            cache_dir=tmp_path,
        )
        cached = run_tools(
            small_corpus,
            fresh_toolset(framework, apidb),
            cache_dir=tmp_path,
            fault_plan=plan,
            max_retries=1,
        )
        assert cached.failed_apps == uncached.failed_apps

    def test_failed_results_never_enter_the_cache(
        self, tmp_path, framework, apidb, small_corpus
    ):
        plan = FaultPlan(
            {0: InjectedFault(kind=FaultKind.CRASH, fail_attempts=None)}
        )
        run_tools(
            small_corpus,
            fresh_toolset(framework, apidb),
            cache_dir=tmp_path,
            fault_plan=plan,
        )
        # Next clean run must re-analyze index 0 (miss), hit the rest.
        clean = run_tools(
            small_corpus,
            fresh_toolset(framework, apidb),
            cache_dir=tmp_path,
        )
        stats = clean.cache_stats["results"]
        assert stats["misses"] == 1
        assert stats["hits"] == len(small_corpus) - 1
        assert clean.results[0].ok


class TestCheckpointInterplay:
    def test_cache_hits_are_journaled(
        self, tmp_path, framework, apidb, small_corpus, baseline
    ):
        cache = tmp_path / "cache"
        run_tools(
            small_corpus,
            fresh_toolset(framework, apidb),
            cache_dir=cache,
        )
        journal = tmp_path / "run.jsonl"
        warm = run_tools(
            small_corpus,
            fresh_toolset(framework, apidb),
            cache_dir=cache,
            checkpoint=journal,
        )
        assert warm.fingerprint() == baseline.fingerprint()
        # A resume over the same journal restores everything without
        # touching cache or analysis.
        resumed = run_tools(
            small_corpus,
            fresh_toolset(framework, apidb),
            checkpoint=journal,
        )
        assert resumed.fingerprint() == baseline.fingerprint()
        assert resumed.resumed_indices == tuple(
            range(len(small_corpus))
        )


class TestPhaseTiming:
    def test_saintdroid_reports_pipeline_phases(self, baseline):
        report = baseline.results[0].reports["SAINTDroid"]
        phases = report.metrics.phase_seconds
        assert set(phases) == {"load", "explore", "guards", "detect"}
        assert phases["load"] == 0.0  # lazy loading: no eager phase
        assert phases["explore"] > 0.0
        assert phases["detect"] > 0.0

    def test_baselines_report_detect_phase(self, baseline):
        report = baseline.results[0].reports["CID"]
        phases = report.metrics.phase_seconds
        assert set(phases) == {"detect"}
        assert phases["detect"] == pytest.approx(
            report.metrics.wall_time_s
        )

    def test_eager_ablation_times_the_load_phase(
        self, framework, apidb, small_corpus
    ):
        from repro.core.detector import SaintDroid

        eager = SaintDroid(framework, apidb, lazy_loading=False)
        report = eager.analyze(small_corpus[0].apk)
        assert report.metrics.phase_seconds["load"] > 0.0

    def test_run_phase_totals_aggregate(self, baseline):
        totals = baseline.phase_totals()
        per_app = [r.phase_seconds() for r in baseline.results]
        assert totals["detect"] == pytest.approx(
            sum(p.get("detect", 0.0) for p in per_app)
        )

    def test_phase_breakdown_and_renderer(self, baseline):
        breakdown = phase_breakdown(baseline)
        assert breakdown["apps"] == len(baseline.results)
        assert breakdown["cached_apps"] == 0
        assert set(breakdown["per_tool"]) == set(TOOLS)
        text = render_phases(breakdown)
        assert "explore" in text
        assert "SAINTDroid" in text

    def test_phase_seconds_survive_the_cache(
        self, tmp_path, framework, apidb, small_corpus
    ):
        cold = run_tools(
            small_corpus,
            fresh_toolset(framework, apidb),
            cache_dir=tmp_path,
        )
        warm = run_tools(
            small_corpus,
            fresh_toolset(framework, apidb),
            cache_dir=tmp_path,
        )
        for phase, seconds in cold.phase_totals().items():
            assert warm.phase_totals()[phase] == pytest.approx(seconds)

    def test_export_includes_phase_seconds(self, tmp_path, baseline):
        import json

        from repro.eval import export_run_json

        path = tmp_path / "run.json"
        export_run_json(baseline, path)
        payload = json.loads(path.read_text())
        phases = payload[0]["tools"]["SAINTDroid"]["phaseSeconds"]
        assert set(phases) == {"load", "explore", "guards", "detect"}


class TestRetryRoundSubstrateReuse:
    def test_retry_rounds_inherit_parent_database(
        self, framework, apidb, small_corpus, baseline
    ):
        """A retrying parallel run (multiple fresh pools) stays
        fingerprint-identical and recovers the transient fault —
        with the parent-built database inherited by every round."""
        from repro.core.arm import cached_database

        # Worker death is retryable: round 1 dispatches the app on a
        # fresh pool, whose workers must inherit the substrate.
        plan = FaultPlan(
            {
                1: InjectedFault(
                    kind=FaultKind.WORKER_DEATH, fail_attempts=1
                )
            }
        )
        run = run_tools(
            small_corpus,
            fresh_toolset(framework, apidb),
            jobs=2,
            fault_plan=plan,
            max_retries=2,
        )
        assert run.fingerprint() == baseline.fingerprint()
        # The parent registered its substrate for worker inheritance.
        assert cached_database(framework.spec) is not None


class TestPassTiming:
    """Per-pass timing terms: populated, journaled, exported."""

    def test_saintdroid_pass_terms(self, baseline):
        report = baseline.results[0].reports["SAINTDroid"]
        passes = report.metrics.pass_seconds
        assert tuple(passes) == (
            "manifest-ingest", "clvm-load", "icfg-explore",
            "guard-propagation", "override-collection",
            "permission-annotation", "detect-api", "detect-apc",
            "detect-prm", "detect-sem",
        )

    def test_pass_seconds_survive_the_cache(
        self, tmp_path, framework, apidb, small_corpus
    ):
        run_tools(
            small_corpus,
            fresh_toolset(framework, apidb),
            cache_dir=tmp_path,
        )
        warm = run_tools(
            small_corpus,
            fresh_toolset(framework, apidb),
            cache_dir=tmp_path,
        )
        report = warm.results[0].reports["SAINTDroid"]
        assert report.metrics.pass_seconds
        assert all(result.from_cache for result in warm.results)

    def test_pass_seconds_survive_the_journal(
        self, tmp_path, framework, apidb, small_corpus, baseline
    ):
        journal = tmp_path / "run.jsonl"
        run_tools(
            small_corpus,
            fresh_toolset(framework, apidb),
            checkpoint=journal,
        )
        resumed = run_tools(
            small_corpus,
            fresh_toolset(framework, apidb),
            checkpoint=journal,
        )
        assert resumed.resumed_indices == tuple(
            range(len(small_corpus))
        )
        restored = resumed.results[0].reports["SAINTDroid"].metrics
        fresh = baseline.results[0].reports["SAINTDroid"].metrics
        assert set(restored.pass_seconds) == set(fresh.pass_seconds)

    def test_export_includes_pass_seconds(self, tmp_path, baseline):
        import json

        from repro.eval import export_run_json

        path = tmp_path / "run.json"
        export_run_json(baseline, path)
        payload = json.loads(path.read_text())
        passes = payload[0]["tools"]["SAINTDroid"]["passSeconds"]
        assert "icfg-explore" in passes
        assert "cid-detect-api" in payload[0]["tools"]["CID"]["passSeconds"]

    def test_breakdown_renders_per_pass_terms(self, baseline):
        breakdown = phase_breakdown(baseline)
        assert set(breakdown["per_pass"]) == set(TOOLS)
        assert "guard-propagation" in breakdown["per_pass"]["SAINTDroid"]
        text = render_phases(breakdown)
        assert "Per-pass terms:" in text
        assert "guard-propagation" in text
