"""Tests for the corpus-wide content-addressed class-artifact store.

The store's contract: lookups key on class *content* (plus framework
and config digests), disk corruption is a miss never an error, staged
artifacts publish only on an explicit end-of-pipeline commit, and the
directory's shared manifest keeps class artifacts inside the same LRU
byte budget as every other store.
"""

from __future__ import annotations

import pickle

from repro.cache.classes import (
    CLASS_ARTIFACT_VERSION,
    ClassArtifact,
    ClassStore,
    class_store,
    registered_stores,
    reset_class_stores,
)
from repro.cache.manifest import shared_manifest
from repro.ir import ClassBuilder


def make_class(name="MainActivity", calls=("getSystemService",)):
    builder = ClassBuilder(
        f"com.test.app.{name}", super_name="android.app.Activity"
    )
    method = builder.method("run")
    for call in calls:
        method.invoke_virtual("android.content.Context", call)
    method.return_void()
    builder.finish(method)
    return builder.build()


def make_store(tmp_path, *, fw="fw-digest", cfg="cfg-digest", **kwargs):
    return ClassStore(
        tmp_path, framework_fingerprint=fw, config_fingerprint=cfg, **kwargs
    )


def artifact_for(clazz):
    return ClassArtifact(
        effects=tuple(
            (("invoke", "virtual", ("android.app.Activity", "x", "()void")),)
            for _ in clazz.methods
        ),
        helpers={("isAtLeastN", "()boolean"): frozenset({24, 25})},
    )


def publish(store, clazz, artifact=None):
    """Stage and commit one artifact the way a pipeline run does."""
    key = store.key_for(clazz)
    store.begin_app()
    store.stage(key, artifact or artifact_for(clazz))
    store.commit_app()
    return key


class TestKeying:
    def test_identical_content_shares_a_key(self, tmp_path):
        store = make_store(tmp_path)
        a, b = make_class(), make_class()
        assert a is not b
        assert store.key_for(a) == store.key_for(b)

    def test_body_change_changes_key(self, tmp_path):
        store = make_store(tmp_path)
        assert store.key_for(make_class()) != store.key_for(
            make_class(calls=("getSystemService", "checkPermission"))
        )

    def test_framework_digest_partitions_the_store(self, tmp_path):
        clazz = make_class()
        published = make_store(tmp_path)
        publish(published, clazz)
        other_fw = make_store(tmp_path, fw="fw-digest-v2")
        assert other_fw.get(clazz) is None
        assert other_fw.stats.misses == 1

    def test_config_digest_partitions_the_store(self, tmp_path):
        clazz = make_class()
        publish(make_store(tmp_path), clazz)
        other_cfg = make_store(tmp_path, cfg="cfg-digest-v2")
        assert other_cfg.get(clazz) is None


class TestRoundTrip:
    def test_memory_hit_after_commit(self, tmp_path):
        store = make_store(tmp_path)
        clazz = make_class()
        assert store.get(clazz) is None
        publish(store, clazz)
        artifact = store.get(clazz)
        assert isinstance(artifact, ClassArtifact)
        assert store.stats.hits == 1 and store.stats.misses == 1

    def test_disk_round_trip_across_instances(self, tmp_path):
        clazz = make_class()
        first = make_store(tmp_path)
        publish(first, clazz)
        assert first.stats.stores == 1

        fresh = make_store(tmp_path)
        loaded = fresh.get(clazz)
        assert loaded is not None
        assert loaded.helpers == artifact_for(clazz).helpers
        assert fresh.stats.hits == 1

    def test_memory_only_store_never_touches_disk(self, tmp_path):
        store = ClassStore(
            None, framework_fingerprint="fw", config_fingerprint="cfg"
        )
        clazz = make_class()
        publish(store, clazz)
        assert store.get(clazz) is not None
        assert not list(tmp_path.iterdir())

    def test_guard_rows_accumulate_on_cached_artifact(self, tmp_path):
        store = make_store(tmp_path)
        clazz = make_class()
        key = publish(store, clazz)

        store.begin_app()
        row_key = ("run()void", 16, 30, "helpers-digest")
        rows = ((("android.app.Activity", "x", "()void"), 21, 30),)
        store.record_guard_rows(key, row_key, rows)
        store.commit_app()

        fresh = make_store(tmp_path)
        assert fresh.get(clazz).guard_rows[row_key] == rows


class TestCorruption:
    def _entry_path(self, store, clazz):
        return store._entry_path(store.key_for(clazz))

    def test_flipped_bytes_are_a_miss_and_dropped(self, tmp_path):
        clazz = make_class()
        publish(make_store(tmp_path), clazz)
        fresh = make_store(tmp_path)
        path = self._entry_path(fresh, clazz)
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        path.write_bytes(bytes(blob))

        assert fresh.get(clazz) is None
        assert fresh.stats.corrupt == 1
        assert fresh.stats.misses == 1
        assert not path.exists()

    def test_truncated_entry_is_a_miss(self, tmp_path):
        clazz = make_class()
        publish(make_store(tmp_path), clazz)
        fresh = make_store(tmp_path)
        path = self._entry_path(fresh, clazz)
        path.write_bytes(path.read_bytes()[:10])
        assert fresh.get(clazz) is None
        assert fresh.stats.corrupt == 1

    def test_artifact_version_bump_orphans_old_entries(self, tmp_path):
        import hashlib

        clazz = make_class()
        store = make_store(tmp_path)
        key = publish(store, clazz)
        path = store._entry_path(key)
        payload = pickle.dumps(
            (CLASS_ARTIFACT_VERSION + 1, artifact_for(clazz))
        )
        path.write_bytes(hashlib.sha256(payload).digest() + payload)

        fresh = make_store(tmp_path)
        assert fresh.get(clazz) is None
        assert fresh.stats.corrupt == 1


class TestStagingDiscipline:
    def test_staged_without_commit_never_publishes(self, tmp_path):
        store = make_store(tmp_path)
        clazz = make_class()
        store.begin_app()
        store.stage(store.key_for(clazz), artifact_for(clazz))
        # Pipeline aborts (fault/timeout/crash): the next app's
        # begin_app discards the stage instead of committing it.
        store.begin_app()
        store.commit_app()
        assert store.stats.discarded == 1
        assert store.get(clazz) is None
        fresh = make_store(tmp_path)
        assert fresh.get(clazz) is None

    def test_guard_rows_for_unpublished_artifact_are_dropped(
        self, tmp_path
    ):
        store = make_store(tmp_path)
        clazz = make_class()
        key = store.key_for(clazz)
        store.begin_app()
        store.record_guard_rows(key, ("sig", 16, 30, "d"), ())
        store.commit_app()  # no artifact staged or cached for the key
        assert store.get(clazz) is None


class TestEviction:
    def test_lru_bound_holds_for_class_artifacts(self, tmp_path):
        store = make_store(tmp_path, max_bytes=2_000)
        for index in range(20):
            publish(store, make_class(name=f"Bulk{index}"))
        assert store.stats.evicted > 0
        manifest = shared_manifest(tmp_path)
        assert manifest.total_bytes <= 2_000
        on_disk = list((tmp_path / "classes").rglob("*.cls"))
        assert len(on_disk) == len(manifest.entries)

    def test_adopt_untracked_brings_strays_under_the_budget(
        self, tmp_path
    ):
        store = make_store(tmp_path)
        clazz = make_class()
        key = publish(store, clazz)
        # Simulate a concurrent worker whose manifest save lost the
        # race: the entry file exists but the manifest forgot it.
        store._manifest.forget(store._relative(store._entry_path(key)))
        assert store.adopt_untracked() == 1
        assert store.adopt_untracked() == 0  # idempotent


class TestRegistry:
    def test_registry_shares_instances_per_scope(self, tmp_path):
        reset_class_stores()
        try:
            a = class_store(
                tmp_path, framework_fingerprint="f", config_fingerprint="c"
            )
            b = class_store(
                tmp_path, framework_fingerprint="f", config_fingerprint="c"
            )
            assert a is b
            c = class_store(
                tmp_path, framework_fingerprint="f2", config_fingerprint="c"
            )
            assert c is not a
            assert set(registered_stores()) == {a, c}
        finally:
            reset_class_stores()
        assert registered_stores() == ()
