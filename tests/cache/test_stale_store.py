"""Pre-SEM cache artifacts must invalidate cleanly.

Two mechanisms rotate the persistent caches when semantic deltas
joined the analysis substrate, and both are pinned here:

* the framework-spec fingerprint hashes every method's ``semantics``
  field unconditionally, so a spec that gains (or changes) a delta is
  a different framework as far as every content-addressed key is
  concerned;
* ``CLASS_ARTIFACT_VERSION`` was bumped, so artifacts pickled by a
  pre-SEM build degrade to misses — re-analyzed, never replayed into
  wrong findings.
"""

from __future__ import annotations

import hashlib
import pickle
from pathlib import Path

import pytest

import repro.cache.classes as classes_module
from repro.cache.classes import registered_stores, reset_class_stores
from repro.cache.fingerprint import fingerprint_spec
from repro.eval.runner import ToolSet, run_tools
from repro.framework.spec import (
    ClassHistory,
    FrameworkSpec,
    MethodHistory,
    SemanticDelta,
)
from repro.workload.appgen import AppForge


def _spec(semantics=()):
    return FrameworkSpec(
        (
            ClassHistory("java.lang.Object", super_name=None),
            ClassHistory(
                "android.x.Widget",
                methods=(
                    MethodHistory(
                        "tune", introduced=2, semantics=tuple(semantics)
                    ),
                ),
            ),
        )
    )


class TestSpecFingerprintRotation:
    def test_semantic_delta_rotates_the_digest(self):
        plain = _spec()
        delta = _spec(
            (SemanticDelta(24, "return-contract", "may return null"),)
        )
        assert fingerprint_spec(plain) != fingerprint_spec(delta)

    def test_delta_detail_is_part_of_the_digest(self):
        one = _spec(
            (SemanticDelta(24, "return-contract", "may return null"),)
        )
        other = _spec(
            (SemanticDelta(24, "return-contract", "always absolute"),)
        )
        assert fingerprint_spec(one) != fingerprint_spec(other)


class TestStaleArtifacts:
    @pytest.fixture()
    def corpus(self, apidb, picker):
        apps = []
        for index in range(2):
            forge = AppForge(
                f"com.stale.app{index}",
                f"Stale{index}",
                apidb=apidb,
                picker=picker,
                min_sdk=19,
                target_sdk=26,
                seed=700 + index,
            )
            forge.add_semantic_issue()
            forge.add_direct_issue()
            apps.append(forge.build())
        return apps

    def test_old_store_degrades_to_misses_never_wrong_findings(
        self, framework, apidb, corpus, tmp_path, monkeypatch
    ):
        store_dir = str(tmp_path / "store")
        lazy = run_tools(
            corpus,
            ToolSet.default(framework, apidb, include=("SAINTDroid",)),
        )

        # Populate the store as a pre-SEM build would have: same
        # artifacts, older version stamp.
        reset_class_stores()
        with monkeypatch.context() as patch:
            patch.setattr(classes_module, "CLASS_ARTIFACT_VERSION", 1)
            stale = run_tools(
                corpus,
                ToolSet.default(
                    framework, apidb, include=("SAINTDroid",),
                    dedup=True, dedup_dir=store_dir,
                ),
            )
        assert (
            stale.findings_fingerprint() == lazy.findings_fingerprint()
        )

        stale_entries = set(Path(store_dir).rglob("*.cls"))
        assert stale_entries

        # A current build over the stale store: the version is part of
        # the config fingerprint, so every pre-SEM entry is simply
        # unreachable — zero replays, full re-analysis, findings still
        # match the lazy run exactly.
        reset_class_stores()
        rerun = run_tools(
            corpus,
            ToolSet.default(
                framework, apidb, include=("SAINTDroid",),
                dedup=True, dedup_dir=store_dir,
            ),
        )
        assert (
            rerun.findings_fingerprint() == lazy.findings_fingerprint()
        )
        hits = sum(s.stats.hits for s in registered_stores())
        misses = sum(s.stats.misses for s in registered_stores())
        assert hits == 0 and misses > 0
        fresh_entries = (
            set(Path(store_dir).rglob("*.cls")) - stale_entries
        )
        assert fresh_entries, "rerun should key under the new version"
        reset_class_stores()

        # Second line of defense: an entry whose *payload* carries the
        # old version stamp under a current key (a downgraded build
        # re-stamping files, a partial restore) is dropped as corrupt,
        # never replayed.
        victim = sorted(fresh_entries)[0]
        blob = victim.read_bytes()
        artifact = pickle.loads(blob[32:])[1]
        payload = pickle.dumps(
            (1, artifact), protocol=pickle.HIGHEST_PROTOCOL
        )
        victim.write_bytes(hashlib.sha256(payload).digest() + payload)
        reset_class_stores()
        downgraded = run_tools(
            corpus,
            ToolSet.default(
                framework, apidb, include=("SAINTDroid",),
                dedup=True, dedup_dir=store_dir,
            ),
        )
        assert (
            downgraded.findings_fingerprint()
            == lazy.findings_fingerprint()
        )
        assert sum(s.stats.corrupt for s in registered_stores()) > 0
        reset_class_stores()
