"""Tests for content fingerprints: the cache's invalidation contract.

Every key must be stable under repetition and pure content changes
must produce new keys — invalidation is structural (different key),
never procedural (no "check freshness" code path exists to get wrong).
"""

from __future__ import annotations

import dataclasses

from repro.cache import (
    canonical_json,
    digest_json,
    fingerprint_apk,
    fingerprint_config,
    fingerprint_spec,
    result_key,
)
from repro.framework.catalog import build_spec

from ..conftest import activity_class, make_apk


class TestCanonicalJson:
    def test_key_order_is_irrelevant(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json(
            {"a": 2, "b": 1}
        )

    def test_digest_is_stable(self):
        assert digest_json({"x": [1, 2]}) == digest_json({"x": [1, 2]})

    def test_digest_differs_on_content(self):
        assert digest_json({"x": 1}) != digest_json({"x": 2})


class TestSpecFingerprint:
    def test_same_spec_same_fingerprint(self, spec):
        assert fingerprint_spec(spec) == fingerprint_spec(spec)

    def test_equal_specs_built_separately_agree(self):
        a = build_spec(bulk_classes=50, seed=3)
        b = build_spec(bulk_classes=50, seed=3)
        assert a is not b
        assert fingerprint_spec(a) == fingerprint_spec(b)

    def test_different_framework_different_fingerprint(self, spec):
        other = build_spec(bulk_classes=40, seed=3)
        assert fingerprint_spec(spec) != fingerprint_spec(other)

    def test_seed_change_changes_fingerprint(self):
        a = build_spec(bulk_classes=50, seed=3)
        b = build_spec(bulk_classes=50, seed=4)
        assert fingerprint_spec(a) != fingerprint_spec(b)


class TestApkFingerprint:
    def test_identical_builds_agree(self):
        a = make_apk([activity_class()])
        b = make_apk([activity_class()])
        assert fingerprint_apk(a) == fingerprint_apk(b)

    def test_manifest_change_changes_fingerprint(self):
        a = make_apk([activity_class()])
        b = make_apk([activity_class()], min_sdk=19)
        assert fingerprint_apk(a) != fingerprint_apk(b)

    def test_code_change_changes_fingerprint(self):
        a = make_apk([activity_class()])
        b = make_apk([activity_class(name="OtherActivity")])
        assert fingerprint_apk(a) != fingerprint_apk(b)

    def test_round_trip_through_serialization(self, tmp_path):
        from repro.apk.serialization import load_apk, save_apk

        apk = make_apk([activity_class()])
        path = tmp_path / "app.sapk"
        save_apk(apk, path)
        assert fingerprint_apk(load_apk(path)) == fingerprint_apk(apk)


class TestConfigFingerprint:
    def test_tool_set_matters(self):
        assert fingerprint_config(("SAINTDroid",)) != fingerprint_config(
            ("SAINTDroid", "CID")
        )

    def test_tool_order_matters(self):
        # Order determines report iteration order in AppResult.
        assert fingerprint_config(("CID", "Lint")) != fingerprint_config(
            ("Lint", "CID")
        )

    def test_options_matter(self):
        base = fingerprint_config(("SAINTDroid",))
        assert base == fingerprint_config(("SAINTDroid",), options={})
        assert base != fingerprint_config(
            ("SAINTDroid",), options={"eager": True}
        )


class TestResultKey:
    def test_each_input_contributes(self):
        base = result_key("apk", "fw", "cfg")
        assert base == result_key("apk", "fw", "cfg")
        assert base != result_key("apk2", "fw", "cfg")
        assert base != result_key("apk", "fw2", "cfg")
        assert base != result_key("apk", "fw", "cfg2")
