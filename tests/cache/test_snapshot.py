"""Tests for framework snapshots: write-once, corruption-as-miss."""

from __future__ import annotations

from repro.cache import (
    ensure_snapshot,
    fingerprint_spec,
    load_or_build_substrate,
    load_snapshot,
    snapshot_path,
    write_snapshot,
)
from repro.core.arm import build_api_database
from repro.framework.catalog import build_spec
from repro.framework.repository import FrameworkRepository


def _small_substrate():
    spec = build_spec(bulk_classes=40, seed=7)
    framework = FrameworkRepository(spec)
    return spec, framework, build_api_database(framework)


class TestRoundTrip:
    def test_load_returns_equivalent_substrate(self, tmp_path):
        spec, framework, apidb = _small_substrate()
        key = fingerprint_spec(spec)
        path = write_snapshot(tmp_path, key, framework, apidb)
        loaded = load_snapshot(path, key=key)
        assert loaded is not None
        loaded_framework, loaded_db = loaded
        assert sorted(loaded_framework.spec.class_names) == sorted(
            spec.class_names
        )
        # The mined database resolves the same classes.
        for name in list(spec.class_names)[:10]:
            assert (name in loaded_db) == (name in apidb)

    def test_snapshot_carries_warm_class_cache(self, tmp_path):
        spec, framework, apidb = _small_substrate()
        # Materialize a few classes so the cache has content.
        for name in list(spec.class_names)[:5]:
            framework.load_class_cached(name, 26)
        assert framework.export_class_cache()
        key = fingerprint_spec(spec)
        path = write_snapshot(tmp_path, key, framework, apidb)
        loaded_framework, _ = load_snapshot(path, key=key)
        assert (
            loaded_framework.export_class_cache().keys()
            == framework.export_class_cache().keys()
        )

    def test_ensure_snapshot_writes_once(self, tmp_path):
        spec, framework, apidb = _small_substrate()
        first = ensure_snapshot(tmp_path, framework, apidb)
        stamp = first.stat().st_mtime_ns
        second = ensure_snapshot(tmp_path, framework, apidb)
        assert first == second
        assert second.stat().st_mtime_ns == stamp


class TestDefectsAreMisses:
    def test_missing_file(self, tmp_path):
        assert load_snapshot(tmp_path / "nope.snapshot") is None

    def test_truncated_file(self, tmp_path):
        spec, framework, apidb = _small_substrate()
        key = fingerprint_spec(spec)
        path = write_snapshot(tmp_path, key, framework, apidb)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        assert load_snapshot(path, key=key) is None

    def test_bit_flip_fails_checksum(self, tmp_path):
        spec, framework, apidb = _small_substrate()
        key = fingerprint_spec(spec)
        path = write_snapshot(tmp_path, key, framework, apidb)
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        path.write_bytes(bytes(blob))
        assert load_snapshot(path, key=key) is None

    def test_key_mismatch_is_a_miss(self, tmp_path):
        spec, framework, apidb = _small_substrate()
        path = write_snapshot(tmp_path, "some-key", framework, apidb)
        assert load_snapshot(path, key="other-key") is None
        # Without a key constraint, the embedded key is trusted.
        assert load_snapshot(path) is not None

    def test_tiny_file(self, tmp_path):
        path = tmp_path / "tiny.snapshot"
        path.write_bytes(b"short")
        assert load_snapshot(path) is None


class TestLoadOrBuild:
    def test_builds_then_snapshots_then_loads(self, tmp_path):
        spec = build_spec(bulk_classes=40, seed=8)
        fw1, db1, source1 = load_or_build_substrate(tmp_path, spec)
        assert source1 == "built"
        assert snapshot_path(tmp_path, fingerprint_spec(spec)).exists()
        # Same spec object again: in-process memory wins.
        fw2, db2, source2 = load_or_build_substrate(tmp_path, spec)
        assert source2 == "memory"
        assert db2 is db1
        # A fresh-but-equal spec (new process in spirit) hits the disk
        # snapshot.
        fresh = build_spec(bulk_classes=40, seed=8)
        fw3, db3, source3 = load_or_build_substrate(tmp_path, fresh)
        assert source3 == "snapshot"

    def test_no_cache_dir_always_builds(self):
        spec = build_spec(bulk_classes=30, seed=9)
        _, _, source = load_or_build_substrate(None, spec)
        assert source == "built"
