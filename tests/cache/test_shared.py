"""Tests for shared substrate segments (publish/attach/cleanup)."""

from __future__ import annotations

import os

import pytest

from repro.cache import (
    SharedSubstrate,
    SharedSubstrateHandle,
    fingerprint_spec,
    restore_substrate,
    substrate_payload,
)

PAYLOAD = {"version": 3, "key": "k1", "numbers": list(range(64))}


class TestRoundtrip:
    @pytest.mark.parametrize("prefer_shm", [True, False])
    def test_publish_attach_payload(self, prefer_shm):
        with SharedSubstrate.publish(
            PAYLOAD, "k1", prefer_shm=prefer_shm
        ) as segment:
            attached = SharedSubstrate.attach(segment.handle)
            assert attached is not None
            assert attached.payload() == PAYLOAD
            attached.close()

    def test_handle_is_picklable(self):
        import pickle

        with SharedSubstrate.publish(PAYLOAD, "k1") as segment:
            clone = pickle.loads(pickle.dumps(segment.handle))
            assert clone == segment.handle
            attached = SharedSubstrate.attach(clone)
            assert attached is not None
            assert attached.payload() == PAYLOAD
            attached.close()

    def test_full_substrate_roundtrip(self, framework, apidb):
        key = fingerprint_spec(framework.spec)
        payload = substrate_payload(framework, apidb, key)
        with SharedSubstrate.publish(payload, key) as segment:
            attached = SharedSubstrate.attach(segment.handle)
            restored = restore_substrate(attached.payload(), key=key)
            assert restored is not None
            restored_framework, restored_db = restored
            assert (
                fingerprint_spec(restored_framework.spec) == key
            )
            assert restored_db.resolve is not None
            attached.close()


class TestGuards:
    def test_key_mismatch_is_a_miss(self):
        with SharedSubstrate.publish(PAYLOAD, "k1") as segment:
            wrong = SharedSubstrateHandle(
                kind=segment.handle.kind,
                name=segment.handle.name,
                key="other-key",
            )
            attached = SharedSubstrate.attach(wrong)
            assert attached is not None
            assert attached.payload() is None
            attached.close()

    def test_missing_segment_is_a_miss(self):
        gone = SharedSubstrateHandle(
            kind="shm", name="repro_no_such_segment", key="k1"
        )
        assert SharedSubstrate.attach(gone) is None
        gone_file = SharedSubstrateHandle(
            kind="file", name="/nonexistent/substrate.seg", key="k1"
        )
        assert SharedSubstrate.attach(gone_file) is None

    def test_corrupt_file_segment_is_a_miss(self, tmp_path):
        segment = SharedSubstrate.publish(
            PAYLOAD, "k1", prefer_shm=False
        )
        try:
            blob = bytearray(open(segment.handle.name, "rb").read())
            blob[4] ^= 0xFF
            with open(segment.handle.name, "wb") as fh:
                fh.write(bytes(blob))
            attached = SharedSubstrate.attach(segment.handle)
            assert attached is not None
            assert attached.payload() is None
            attached.close()
        finally:
            segment.close(unlink=True)


class TestLifecycle:
    def test_attach_after_unlink_is_a_miss(self):
        segment = SharedSubstrate.publish(PAYLOAD, "k1")
        handle = segment.handle
        segment.close(unlink=True)
        assert SharedSubstrate.attach(handle) is None

    def test_close_is_idempotent(self):
        segment = SharedSubstrate.publish(PAYLOAD, "k1")
        segment.close(unlink=True)
        segment.close(unlink=True)
        segment.close()
        assert segment.closed
        assert segment.payload() is None

    def test_context_manager_unlinks_for_the_owner(self):
        with SharedSubstrate.publish(PAYLOAD, "k1") as segment:
            handle = segment.handle
        assert segment.closed
        assert SharedSubstrate.attach(handle) is None

    def test_exception_path_still_unlinks(self):
        handle = None
        with pytest.raises(RuntimeError):
            with SharedSubstrate.publish(PAYLOAD, "k1") as segment:
                handle = segment.handle
                raise RuntimeError("mid-run failure")
        assert SharedSubstrate.attach(handle) is None

    def test_attacher_close_does_not_unlink(self):
        with SharedSubstrate.publish(PAYLOAD, "k1") as segment:
            first = SharedSubstrate.attach(segment.handle)
            first.close()
            second = SharedSubstrate.attach(segment.handle)
            assert second is not None
            assert second.payload() == PAYLOAD
            second.close()

    def test_file_segment_unlinked_on_close(self):
        segment = SharedSubstrate.publish(
            PAYLOAD, "k1", prefer_shm=False
        )
        path = segment.handle.name
        assert os.path.exists(path)
        segment.close(unlink=True)
        assert not os.path.exists(path)


class TestSigtermGuard:
    """A plain SIGTERM skips atexit entirely — the module-level signal
    guard is the only thing standing between `kill` and a leaked
    segment.  Exercised in a subprocess: handlers are process-global.
    """

    CHILD = """
import os, signal, sys, time
sys.path.insert(0, {src!r})
from repro.cache import SharedSubstrate

segment = SharedSubstrate.publish({{"x": 1}}, "sigterm-key")
print(segment.handle.kind, segment.handle.name, flush=True)
signal.pause()
"""

    def _run_child(self, sig):
        import subprocess
        import sys
        import time
        from pathlib import Path

        src = str(Path(__file__).resolve().parents[2] / "src")
        proc = subprocess.Popen(
            [sys.executable, "-c", self.CHILD.format(src=src)],
            stdout=subprocess.PIPE,
            text=True,
        )
        kind, name = proc.stdout.readline().split(None, 1)
        name = name.strip()
        proc.send_signal(sig)
        proc.wait(timeout=30)
        return kind, name, proc.returncode

    def _segment_path(self, kind, name):
        import pathlib

        if kind == "shm":
            return pathlib.Path("/dev/shm") / name.lstrip("/")
        return pathlib.Path(name)

    def test_sigterm_unlinks_published_segment(self):
        import signal

        kind, name, rc = self._run_child(signal.SIGTERM)
        path = self._segment_path(kind, name)
        assert path.exists() is False
        # The guard re-raises the default SIGTERM: the exit status
        # must still say "terminated by signal", not "clean exit".
        assert rc == -signal.SIGTERM

    def test_sigkill_leaks_but_shows_the_baseline(self):
        # Control: SIGKILL cannot be guarded, so the segment survives
        # — proving the SIGTERM test above passes because of the
        # guard, not because the OS cleans up for us.
        import signal

        kind, name, rc = self._run_child(signal.SIGKILL)
        path = self._segment_path(kind, name)
        try:
            assert path.exists()
            assert rc == -signal.SIGKILL
        finally:
            path.unlink(missing_ok=True)
