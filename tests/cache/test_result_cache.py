"""Tests for the per-app result cache and its manifest bookkeeping."""

from __future__ import annotations

import json

import pytest

from repro.cache import CacheManifest, ResultCache, fingerprint_apk
from repro.cache.manifest import atomic_write_text
from repro.core.errors import AnalysisError, ErrorKind
from repro.eval import ToolSet, analyze_app
from repro.workload.corpus import CorpusConfig, generate_corpus

TOOLS = ("SAINTDroid", "CID")


@pytest.fixture(scope="module")
def toolset(framework, apidb):
    return ToolSet.default(framework, apidb, include=TOOLS)


@pytest.fixture(scope="module")
def forged(apidb):
    config = CorpusConfig(count=1, kloc_median=1.0, kloc_max=2.0)
    return next(iter(generate_corpus(config, apidb))).forged


@pytest.fixture(scope="module")
def result(toolset, forged):
    return analyze_app(toolset, forged)


def _cache(tmp_path, **kwargs):
    defaults = dict(
        framework_fingerprint="fw", config_fingerprint="cfg"
    )
    defaults.update(kwargs)
    return ResultCache(tmp_path, **defaults)


class TestHitMiss:
    def test_miss_then_hit(self, tmp_path, forged, result):
        cache = _cache(tmp_path)
        fp = fingerprint_apk(forged.apk)
        assert cache.get(fp) is None
        assert cache.put(fp, result)
        restored = cache.get(fp)
        assert restored is not None
        assert restored.fingerprint() == result.fingerprint()
        assert restored.from_cache
        assert not result.from_cache
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.stores == 1

    def test_hit_preserves_phase_timings(
        self, tmp_path, forged, result
    ):
        cache = _cache(tmp_path)
        fp = fingerprint_apk(forged.apk)
        cache.put(fp, result)
        restored = cache.get(fp)
        assert restored.phase_seconds() == pytest.approx(
            result.phase_seconds()
        )

    def test_failed_results_are_refused(self, tmp_path, result):
        cache = _cache(tmp_path)
        result_copy = analyze_result_with_error(result)
        assert not cache.put("whatever", result_copy)
        assert cache.get("whatever") is None

    def test_framework_fingerprint_partitions(
        self, tmp_path, forged, result
    ):
        fp = fingerprint_apk(forged.apk)
        _cache(tmp_path, framework_fingerprint="fw1").put(fp, result)
        assert (
            _cache(tmp_path, framework_fingerprint="fw2").get(fp) is None
        )

    def test_config_fingerprint_partitions(
        self, tmp_path, forged, result
    ):
        fp = fingerprint_apk(forged.apk)
        _cache(tmp_path, config_fingerprint="a").put(fp, result)
        assert _cache(tmp_path, config_fingerprint="b").get(fp) is None


def analyze_result_with_error(result):
    from copy import copy

    failed = copy(result)
    failed.error = AnalysisError(
        kind=ErrorKind.CRASH, message="injected", attempts=1
    )
    return failed


class TestCorruption:
    def _stored(self, tmp_path, forged, result):
        cache = _cache(tmp_path)
        fp = fingerprint_apk(forged.apk)
        cache.put(fp, result)
        path = cache._entry_path(fp)
        assert path.exists()
        return cache, fp, path

    def test_truncated_entry_is_a_miss(self, tmp_path, forged, result):
        cache, fp, path = self._stored(tmp_path, forged, result)
        path.write_text(path.read_text()[:40])
        assert cache.get(fp) is None
        assert cache.stats.corrupt == 1
        assert not path.exists()  # dropped, will be re-stored

    def test_binary_garbage_is_a_miss(self, tmp_path, forged, result):
        cache, fp, path = self._stored(tmp_path, forged, result)
        path.write_bytes(b"\xff\xfe garbage \x00")
        assert cache.get(fp) is None
        assert cache.stats.corrupt == 1

    def test_wrong_schema_version_is_a_miss(
        self, tmp_path, forged, result
    ):
        cache, fp, path = self._stored(tmp_path, forged, result)
        doc = json.loads(path.read_text())
        doc["version"] = 999
        path.write_text(json.dumps(doc))
        assert cache.get(fp) is None
        assert cache.stats.corrupt == 1

    def test_valid_json_bad_payload_is_a_miss(
        self, tmp_path, forged, result
    ):
        cache, fp, path = self._stored(tmp_path, forged, result)
        path.write_text(json.dumps({"version": 1, "result": {"bogus": 1}}))
        assert cache.get(fp) is None
        assert cache.stats.corrupt == 1


class TestManifest:
    def test_corrupt_manifest_starts_empty(self, tmp_path):
        atomic_write_text(tmp_path / "manifest.json", "{not json")
        manifest = CacheManifest(tmp_path)
        assert manifest.entries == {}

    def test_wrong_version_starts_empty(self, tmp_path):
        atomic_write_text(
            tmp_path / "manifest.json",
            json.dumps({"version": 999, "entries": {"x": {}}}),
        )
        assert CacheManifest(tmp_path).entries == {}

    def test_save_load_round_trip(self, tmp_path):
        manifest = CacheManifest(tmp_path)
        manifest.record("results/ab/abc.json", 120)
        manifest.save()
        reloaded = CacheManifest(tmp_path)
        assert "results/ab/abc.json" in reloaded.entries
        assert reloaded.total_bytes == 120

    def test_prune_evicts_lru(self, tmp_path):
        manifest = CacheManifest(tmp_path, max_bytes=250)
        for index in range(3):
            relative = f"results/{index}.json"
            (tmp_path / "results").mkdir(exist_ok=True)
            (tmp_path / relative).write_text("x" * 100)
            manifest.record(relative, 100)
            manifest.entries[relative]["touched"] = float(index)
        evicted = manifest.prune()
        assert evicted == ["results/0.json"]
        assert not (tmp_path / "results/0.json").exists()
        assert (tmp_path / "results/2.json").exists()
        assert manifest.total_bytes == 200

    def test_eviction_through_result_cache(
        self, tmp_path, forged, result
    ):
        cache = _cache(tmp_path, max_bytes=1)  # everything over budget
        fp = fingerprint_apk(forged.apk)
        cache.put(fp, result)
        assert cache.stats.evicted == 1
        assert cache.get(fp) is None
