"""Unit tests for repro.ir.types."""

import pytest

from repro.ir.types import (
    FieldRef,
    MethodRef,
    SDK_INT_FIELD,
    is_anonymous_class,
    is_framework_class,
    outer_class,
    package_of,
    simple_name,
)


class TestMethodRef:
    def test_basic_fields(self):
        ref = MethodRef("com.app.Foo", "bar", "(int)void")
        assert ref.class_name == "com.app.Foo"
        assert ref.name == "bar"
        assert ref.descriptor == "(int)void"

    def test_signature_combines_name_and_descriptor(self):
        ref = MethodRef("com.app.Foo", "bar", "(int)void")
        assert ref.signature == "bar(int)void"

    def test_equality_distinguishes_overloads(self):
        a = MethodRef("com.app.Foo", "bar", "(int)void")
        b = MethodRef("com.app.Foo", "bar", "(long)void")
        assert a != b
        assert len({a, b}) == 2

    def test_requires_class_name(self):
        with pytest.raises(ValueError):
            MethodRef("", "bar")

    def test_requires_method_name(self):
        with pytest.raises(ValueError):
            MethodRef("com.app.Foo", "")

    def test_descriptor_must_be_parenthesized(self):
        with pytest.raises(ValueError):
            MethodRef("com.app.Foo", "bar", "int)void")

    def test_arity(self):
        assert MethodRef("C", "m", "()void").arity == 0
        assert MethodRef("C", "m", "(int)void").arity == 1
        assert MethodRef("C", "m", "(int,long,java.lang.String)void").arity == 3

    def test_return_type(self):
        assert MethodRef("C", "m", "()void").return_type == "void"
        assert MethodRef("C", "m", "(int)boolean").return_type == "boolean"

    def test_is_framework(self):
        assert MethodRef("android.app.Activity", "onCreate").is_framework
        assert not MethodRef("com.app.Main", "onCreate").is_framework

    def test_hashable(self):
        assert hash(MethodRef("C", "m")) == hash(MethodRef("C", "m"))


class TestFieldRef:
    def test_fields(self):
        ref = FieldRef("com.app.Foo", "count", "int")
        assert ref.class_name == "com.app.Foo"
        assert ref.name == "count"
        assert ref.type_name == "int"

    def test_requires_names(self):
        with pytest.raises(ValueError):
            FieldRef("", "count")
        with pytest.raises(ValueError):
            FieldRef("com.app.Foo", "")

    def test_sdk_int_field_constant(self):
        assert SDK_INT_FIELD.class_name == "android.os.Build$VERSION"
        assert SDK_INT_FIELD.name == "SDK_INT"
        assert SDK_INT_FIELD.is_framework


class TestNameHelpers:
    @pytest.mark.parametrize(
        "name,expected",
        [
            ("com.app.Foo$1", True),
            ("com.app.Foo$12", True),
            ("com.app.Foo", False),
            ("com.app.Foo$Inner", False),
            ("com.app.Foo$Inner$3", True),
        ],
    )
    def test_anonymous_detection(self, name, expected):
        assert is_anonymous_class(name) is expected

    def test_outer_class(self):
        assert outer_class("com.app.Foo$1") == "com.app.Foo"
        assert outer_class("com.app.Foo") == "com.app.Foo"

    def test_package_of(self):
        assert package_of("com.app.Foo") == "com.app"
        assert package_of("Foo") == ""

    def test_simple_name(self):
        assert simple_name("com.app.Foo") == "Foo"
        assert simple_name("Foo") == "Foo"

    @pytest.mark.parametrize(
        "name,expected",
        [
            ("android.app.Activity", True),
            ("java.lang.Object", True),
            ("dalvik.system.DexClassLoader", True),
            ("org.apache.http.client.HttpClient", True),
            ("com.example.app.Main", False),
            ("androidx.core.app.ActivityCompat", False),
        ],
    )
    def test_framework_namespace(self, name, expected):
        assert is_framework_class(name) is expected
