"""Unit tests for the instruction set."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ir.instructions import (
    CmpOp,
    ConstInt,
    Goto,
    IfCmp,
    IfCmpZero,
    Invoke,
    InvokeKind,
    Nop,
    Return,
    ReturnVoid,
    SdkIntLoad,
    Throw,
)
from repro.ir.types import MethodRef


class TestCmpOp:
    @given(st.integers(-50, 50), st.integers(-50, 50),
           st.sampled_from(list(CmpOp)))
    def test_negation_is_logical_complement(self, a, b, op):
        assert op.evaluate(a, b) != op.negate().evaluate(a, b)

    @given(st.integers(-50, 50), st.integers(-50, 50),
           st.sampled_from(list(CmpOp)))
    def test_swap_exchanges_operands(self, a, b, op):
        assert op.evaluate(a, b) == op.swap().evaluate(b, a)

    def test_negate_is_involution(self):
        for op in CmpOp:
            assert op.negate().negate() is op

    def test_swap_is_involution(self):
        for op in CmpOp:
            assert op.swap().swap() is op

    def test_evaluate_examples(self):
        assert CmpOp.LT.evaluate(1, 2)
        assert not CmpOp.LT.evaluate(2, 2)
        assert CmpOp.GE.evaluate(2, 2)
        assert CmpOp.NE.evaluate(1, 2)


class TestBranchStructure:
    def test_if_cmp_targets(self):
        instr = IfCmp(CmpOp.LT, 0, 1, "skip")
        assert instr.branch_targets == ("skip",)
        assert instr.falls_through

    def test_if_cmp_zero_targets(self):
        instr = IfCmpZero(CmpOp.EQ, 0, "zero")
        assert instr.branch_targets == ("zero",)
        assert instr.falls_through

    def test_goto_does_not_fall_through(self):
        instr = Goto("loop")
        assert instr.branch_targets == ("loop",)
        assert not instr.falls_through

    @pytest.mark.parametrize(
        "instr", [ReturnVoid(), Return(0), Throw(0)]
    )
    def test_terminators_do_not_fall_through(self, instr):
        assert not instr.falls_through
        assert instr.branch_targets == ()

    @pytest.mark.parametrize(
        "instr",
        [ConstInt(0, 1), SdkIntLoad(0), Nop(),
         Invoke(InvokeKind.VIRTUAL, MethodRef("C", "m"), ())],
    )
    def test_straightline_instructions_fall_through(self, instr):
        assert instr.falls_through
        assert instr.branch_targets == ()


class TestInvoke:
    def test_carries_method_and_args(self):
        ref = MethodRef("android.widget.Toast", "show")
        instr = Invoke(InvokeKind.VIRTUAL, ref, (1, 2))
        assert instr.method == ref
        assert instr.args == (1, 2)

    def test_kinds(self):
        assert InvokeKind.STATIC.value == "invoke-static"
        assert len(InvokeKind) == 5

    def test_instructions_are_hashable_values(self):
        a = ConstInt(0, 5)
        b = ConstInt(0, 5)
        assert a == b
        assert hash(a) == hash(b)
