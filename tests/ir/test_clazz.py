"""Unit tests for class definitions."""

import pytest

from repro.ir.builder import ClassBuilder
from repro.ir.clazz import Clazz, JAVA_LANG_OBJECT
from repro.ir.instructions import ReturnVoid
from repro.ir.method import Method, MethodBody
from repro.ir.types import MethodRef


def method_of(class_name, name, descriptor="()void"):
    return Method(
        ref=MethodRef(class_name, name, descriptor),
        body=MethodBody((ReturnVoid(),), {}),
    )


class TestClazz:
    def test_defaults(self):
        clazz = Clazz(name="com.app.Foo")
        assert clazz.super_name == JAVA_LANG_OBJECT
        assert clazz.origin == "app"
        assert clazz.method_count == 0

    def test_method_lookup_by_signature(self):
        clazz = Clazz(
            name="com.app.Foo",
            methods=(method_of("com.app.Foo", "bar", "(int)void"),),
        )
        assert clazz.method("bar(int)void") is not None
        assert clazz.method("bar()void") is None
        assert clazz.declares("bar(int)void")

    def test_duplicate_methods_rejected(self):
        with pytest.raises(ValueError):
            Clazz(
                name="com.app.Foo",
                methods=(
                    method_of("com.app.Foo", "bar"),
                    method_of("com.app.Foo", "bar"),
                ),
            )

    def test_foreign_methods_rejected(self):
        with pytest.raises(ValueError):
            Clazz(
                name="com.app.Foo",
                methods=(method_of("com.app.Other", "bar"),),
            )

    def test_self_super_rejected(self):
        with pytest.raises(ValueError):
            Clazz(name="com.app.Foo", super_name="com.app.Foo")

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Clazz(name="")

    def test_anonymous_classification(self):
        assert Clazz(name="com.app.Foo$1").is_anonymous
        assert not Clazz(name="com.app.Foo").is_anonymous

    def test_framework_classification(self):
        assert Clazz(name="android.view.View").is_framework
        assert not Clazz(name="com.app.View").is_framework

    def test_instruction_count_sums_bodies(self):
        builder = ClassBuilder("com.app.Foo")
        method = builder.method("a")
        method.const_int(0, 1).const_int(1, 2).return_void()
        builder.finish(method)
        builder.empty_method("b")
        clazz = builder.build()
        # a: 2 consts + return; b: bare return.
        assert clazz.instruction_count == 4

    def test_supertypes_include_interfaces(self):
        clazz = Clazz(
            name="com.app.Foo",
            super_name="com.app.Base",
            interfaces=("java.lang.Runnable",),
        )
        assert clazz.supertypes == ("com.app.Base", "java.lang.Runnable")
