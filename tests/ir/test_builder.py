"""Unit tests for the fluent IR builders."""

import pytest

from repro.ir.builder import ClassBuilder, MethodBuilder
from repro.ir.instructions import (
    CmpOp,
    ConstInt,
    IfCmp,
    Invoke,
    ReturnVoid,
    SdkIntLoad,
)
from repro.ir.types import MethodRef
from repro.ir.validate import validate_method


def builder(name="run", descriptor="()void"):
    return MethodBuilder(MethodRef("com.app.Foo", name, descriptor))


class TestMethodBuilder:
    def test_appends_implicit_return(self):
        method = builder().const_int(0, 1).build()
        assert isinstance(method.body.instructions[-1], ReturnVoid)

    def test_no_double_return(self):
        method = builder().return_void().build()
        returns = [
            i for i in method.body.instructions if isinstance(i, ReturnVoid)
        ]
        assert len(returns) == 1

    def test_labels_resolve(self):
        b = builder()
        b.if_cmpz(CmpOp.EQ, 0, "end")
        b.const_int(0, 1)
        b.label("end")
        b.return_void()
        method = b.build()
        assert method.body.resolve("end") == 2

    def test_duplicate_label_rejected(self):
        b = builder().label("x")
        with pytest.raises(ValueError):
            b.label("x")

    def test_dangling_label_rejected_at_build(self):
        b = builder().goto("nowhere")
        with pytest.raises(KeyError):
            b.build()

    def test_fresh_labels_unique(self):
        b = builder()
        first = b.fresh_label("L")
        b.label(first)
        second = b.fresh_label("L")
        assert first != second

    def test_guarded_call_shape(self):
        method = builder().guarded_call(
            23, "android.content.Context", "getColorStateList",
            "(int)android.content.res.ColorStateList",
        ).build()
        instructions = method.body.instructions
        assert isinstance(instructions[0], SdkIntLoad)
        assert isinstance(instructions[1], ConstInt)
        assert instructions[1].value == 23
        assert isinstance(instructions[2], IfCmp)
        assert instructions[2].op is CmpOp.LT
        assert isinstance(instructions[3], Invoke)
        validate_method(method)

    def test_guarded_call_max_shape(self):
        method = builder().guarded_call_max(
            22, "org.apache.http.client.HttpClient", "execute",
            "(org.apache.http.HttpRequest)org.apache.http.HttpResponse",
        ).build()
        branch = method.body.instructions[2]
        assert isinstance(branch, IfCmp)
        assert branch.op is CmpOp.GT
        validate_method(method)

    def test_invoke_helpers_set_kind(self):
        method = (
            builder()
            .invoke_virtual("C", "v")
            .invoke_static("C", "s")
            .invoke_direct("C", "d")
            .invoke_super("C", "p")
            .build()
        )
        kinds = [
            i.kind.value
            for i in method.body.instructions
            if isinstance(i, Invoke)
        ]
        assert kinds == [
            "invoke-virtual", "invoke-static", "invoke-direct",
            "invoke-super",
        ]


class TestClassBuilder:
    def test_builds_class_with_methods(self):
        cb = ClassBuilder("com.app.Foo", super_name="com.app.Base")
        cb.empty_method("a")
        cb.empty_method("b", "(int)void")
        clazz = cb.build()
        assert clazz.method_count == 2
        assert clazz.super_name == "com.app.Base"

    def test_rejects_foreign_method(self):
        cb = ClassBuilder("com.app.Foo")
        foreign = MethodBuilder(MethodRef("com.app.Bar", "m")).build()
        with pytest.raises(ValueError):
            cb.add(foreign)

    def test_method_returns_builder_for_own_class(self):
        cb = ClassBuilder("com.app.Foo")
        mb = cb.method("go", "(int)void")
        assert mb.ref.class_name == "com.app.Foo"
        cb.finish(mb)
        assert cb.build().declares("go(int)void")
