"""Unit tests for methods and method bodies."""

import pytest

from repro.ir.instructions import (
    ConstInt,
    Goto,
    IfCmp,
    CmpOp,
    Invoke,
    InvokeKind,
    Nop,
    ReturnVoid,
)
from repro.ir.method import Method, MethodBody, MethodFlags
from repro.ir.types import MethodRef


def body(*instructions, labels=None):
    return MethodBody(tuple(instructions), dict(labels or {}))


class TestMethodBody:
    def test_label_resolution(self):
        b = body(Nop(), ReturnVoid(), labels={"end": 1})
        assert b.resolve("end") == 1

    def test_undefined_label_raises(self):
        b = body(ReturnVoid())
        with pytest.raises(KeyError):
            b.resolve("nowhere")

    def test_label_outside_body_rejected(self):
        with pytest.raises(ValueError):
            body(ReturnVoid(), labels={"far": 5})

    def test_successors_fall_through(self):
        b = body(Nop(), ReturnVoid())
        assert b.successors(0) == (1,)

    def test_successors_terminator(self):
        b = body(Nop(), ReturnVoid())
        assert b.successors(1) == ()

    def test_successors_branch_and_fall_through(self):
        b = body(
            IfCmp(CmpOp.LT, 0, 1, "end"),
            Nop(),
            ReturnVoid(),
            labels={"end": 2},
        )
        assert set(b.successors(0)) == {1, 2}

    def test_successors_goto(self):
        b = body(Goto("top"), ReturnVoid(), labels={"top": 1})
        assert b.successors(0) == (1,)

    def test_invocations_in_order(self):
        first = Invoke(InvokeKind.VIRTUAL, MethodRef("C", "a"), ())
        second = Invoke(InvokeKind.STATIC, MethodRef("C", "b"), ())
        b = body(first, Nop(), second, ReturnVoid())
        assert b.invocations == (first, second)

    def test_terminates(self):
        assert body(ReturnVoid()).terminates
        assert body(Goto("x"), labels={"x": 0}).terminates
        assert not body(Nop()).terminates
        assert not MethodBody((), {}).terminates


class TestMethod:
    def test_carries_identity(self):
        ref = MethodRef("com.app.Foo", "bar", "(int)void")
        method = Method(ref=ref, body=body(ReturnVoid()))
        assert method.class_name == "com.app.Foo"
        assert method.name == "bar"
        assert method.descriptor == "(int)void"
        assert method.signature == "bar(int)void"

    def test_abstract_methods_cannot_carry_code(self):
        ref = MethodRef("com.app.Foo", "bar")
        with pytest.raises(ValueError):
            Method(
                ref=ref,
                flags=MethodFlags.ABSTRACT,
                body=body(ReturnVoid()),
            )

    def test_abstract_method_without_body(self):
        method = Method(
            ref=MethodRef("com.app.Foo", "bar"),
            flags=MethodFlags.ABSTRACT,
            body=None,
        )
        assert method.is_abstract
        assert not method.has_code
        assert method.invocations == ()

    def test_static_flag(self):
        method = Method(
            ref=MethodRef("C", "m"),
            flags=MethodFlags.STATIC,
            body=body(ReturnVoid()),
        )
        assert method.is_static

    def test_flags_combine(self):
        flags = MethodFlags.STATIC | MethodFlags.SYNTHETIC
        assert flags & MethodFlags.STATIC
        assert flags & MethodFlags.SYNTHETIC
        assert not flags & MethodFlags.ABSTRACT

    def test_has_code(self):
        with_code = Method(
            ref=MethodRef("C", "m"), body=body(ConstInt(0, 1), ReturnVoid())
        )
        assert with_code.has_code
