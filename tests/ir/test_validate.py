"""Unit tests for IR validation."""

import pytest

from repro.ir.builder import ClassBuilder, MethodBuilder
from repro.ir.clazz import Clazz
from repro.ir.instructions import ConstInt, Nop, ReturnVoid
from repro.ir.method import Method, MethodBody
from repro.ir.types import MethodRef
from repro.ir.validate import (
    MAX_REGISTER,
    ValidationError,
    validate_class,
    validate_method,
)


def raw_method(*instructions, labels=None):
    return Method(
        ref=MethodRef("com.app.Foo", "m"),
        body=MethodBody(tuple(instructions), dict(labels or {})),
    )


class TestValidateMethod:
    def test_accepts_builder_output(self):
        method = (
            MethodBuilder(MethodRef("com.app.Foo", "m"))
            .const_int(0, 1)
            .guarded_call(23, "android.content.Context", "getDrawable",
                          "(int)android.graphics.drawable.Drawable")
            .build()
        )
        validate_method(method)  # does not raise

    def test_rejects_fall_off_end(self):
        with pytest.raises(ValidationError, match="falls off"):
            validate_method(raw_method(Nop()))

    def test_rejects_register_out_of_range(self):
        with pytest.raises(ValidationError, match="out of range"):
            validate_method(
                raw_method(ConstInt(MAX_REGISTER + 1, 0), ReturnVoid())
            )

    def test_rejects_negative_register(self):
        with pytest.raises(ValidationError, match="out of range"):
            validate_method(raw_method(ConstInt(-1, 0), ReturnVoid()))

    def test_accepts_bodyless_method(self):
        method = Method(ref=MethodRef("com.app.Foo", "m"), body=None)
        validate_method(method)  # abstract/native: nothing to check


class TestValidateClass:
    def test_accepts_well_formed_class(self):
        builder = ClassBuilder("com.app.Foo")
        builder.empty_method("a")
        validate_class(builder.build())

    def test_rejects_bad_method_inside_class(self):
        bad = raw_method(Nop())
        clazz = Clazz(name="com.app.Foo", methods=(bad,))
        with pytest.raises(ValidationError):
            validate_class(clazz)
