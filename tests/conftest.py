"""Shared fixtures.

Everything expensive (framework spec, API database, picker) is
session-scoped: the default framework is immutable, so every test can
share one instance.
"""

from __future__ import annotations

import pytest

from repro.apk import Apk, Component, ComponentKind, DexFile, Manifest
from repro.core import build_api_database
from repro.framework import FrameworkRepository, default_spec
from repro.ir import ClassBuilder
from repro.workload.appgen import ApiPicker


@pytest.fixture(scope="session")
def spec():
    return default_spec()


@pytest.fixture(scope="session")
def framework(spec):
    return FrameworkRepository(spec)


@pytest.fixture(scope="session")
def apidb(framework):
    return build_api_database(framework)


@pytest.fixture(scope="session")
def picker(apidb):
    return ApiPicker(apidb)


def make_apk(
    classes,
    *,
    package="com.test.app",
    label="TestApp",
    min_sdk=21,
    target_sdk=26,
    max_sdk=None,
    permissions=(),
    secondary_classes=(),
    buildable=True,
):
    """Assemble a small APK around pre-built classes."""
    manifest = Manifest(
        package=package,
        min_sdk=min_sdk,
        target_sdk=target_sdk,
        max_sdk=max_sdk,
        permissions=tuple(permissions),
        components=(
            Component(f"{package}.MainActivity", ComponentKind.ACTIVITY),
        ),
        buildable=buildable,
    )
    dex_files = [DexFile("classes.dex", tuple(classes))]
    if secondary_classes:
        dex_files.append(
            DexFile("classes2.dex", tuple(secondary_classes), secondary=True)
        )
    return Apk(manifest=manifest, dex_files=tuple(dex_files), label=label)


def activity_class(
    package="com.test.app", name="MainActivity", extra_methods=()
):
    """A minimal activity class for APK assembly."""
    builder = ClassBuilder(
        f"{package}.{name}", super_name="android.app.Activity"
    )
    method = builder.method("onCreate", "(android.os.Bundle)void")
    method.invoke_super(
        "android.app.Activity", "onCreate", "(android.os.Bundle)void"
    )
    method.return_void()
    builder.finish(method)
    for finished in extra_methods:
        builder.add(finished)
    return builder.build()


@pytest.fixture()
def simple_apk():
    return make_apk([activity_class()])
