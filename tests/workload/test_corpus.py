"""Tests for the calibrated corpus generator."""

import itertools

import pytest

from repro.workload.corpus import CorpusConfig, generate_corpus
from repro.workload.groundtruth import Trait


@pytest.fixture(scope="module")
def sample(apidb):
    config = CorpusConfig(count=120, seed=7)
    return list(generate_corpus(config, apidb))


class TestGeneration:
    def test_count(self, sample):
        assert len(sample) == 120

    def test_deterministic(self, apidb):
        config = CorpusConfig(count=10, seed=3)
        first = [a.forged.apk for a in generate_corpus(config, apidb)]
        second = [a.forged.apk for a in generate_corpus(config, apidb)]
        assert first == second

    def test_lazy_generator(self, apidb):
        config = CorpusConfig(count=10_000, seed=3)
        head = list(
            itertools.islice(generate_corpus(config, apidb), 3)
        )
        assert len(head) == 3  # did not build 10k apps

    def test_unique_names(self, sample):
        names = [a.forged.apk.name for a in sample]
        assert len(set(names)) == len(names)


class TestCalibration:
    """Rates must track the paper's RQ2 statistics (binomial noise at
    n=120 allows generous tolerances)."""

    def test_modern_target_split(self, sample):
        modern = sum(1 for a in sample if a.modern_target)
        assert 0.35 <= modern / len(sample) <= 0.67
        for app in sample:
            target = app.forged.apk.manifest.target_sdk
            assert (target >= 23) == app.modern_target

    def test_api_flagged_fraction(self, sample):
        flagged = sum(
            1 for a in sample if a.forged.truth.issues_of_kind("API")
        )
        assert 0.26 <= flagged / len(sample) <= 0.58

    def test_apc_flagged_fraction(self, sample):
        flagged = sum(
            1 for a in sample if a.forged.truth.issues_of_kind("APC")
        )
        assert 0.08 <= flagged / len(sample) <= 0.34

    def test_api_sites_heavy_tail(self, sample):
        counts = [
            len(a.forged.truth.issues_of_kind("API"))
            for a in sample
            if a.forged.truth.issues_of_kind("API")
        ]
        assert max(counts) > 30  # outdated-library pile-ups exist

    def test_prm_rates(self, sample):
        modern = [a for a in sample if a.modern_target]
        legacy = [a for a in sample if not a.modern_target]
        request = sum(
            1 for a in modern
            if a.forged.truth.issues_of_kind("PRM-request")
        )
        revocation = sum(
            1 for a in legacy
            if a.forged.truth.issues_of_kind("PRM-revocation")
        )
        assert 0.02 <= request / max(1, len(modern)) <= 0.30
        assert 0.45 <= revocation / max(1, len(legacy)) <= 0.90

    def test_traps_accompany_flagged_apps(self, sample):
        flagged = [
            a for a in sample if a.forged.truth.issues_of_kind("API")
        ]
        with_traps = [
            a for a in flagged
            if a.forged.truth.traps_with_trait(Trait.TRAP_ANONYMOUS_GUARD)
        ]
        assert len(with_traps) >= len(flagged) // 2

    def test_sizes_bounded(self, sample):
        for app in sample:
            assert app.forged.apk.dex_kloc <= 90.0
