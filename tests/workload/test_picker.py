"""Tests for the ApiPicker's selection guarantees."""

import random

import pytest

from repro.apk.manifest import MAX_API_LEVEL
from repro.framework.permissions import is_dangerous
from repro.workload.appgen import ApiPicker


@pytest.fixture()
def rng():
    return random.Random(1)


class TestSafeApi:
    def test_full_lifetime_and_no_permissions(self, picker, apidb, rng):
        for _ in range(20):
            entry = picker.safe_api(rng)
            assert entry.lifetime == (2, MAX_API_LEVEL)
            assert not entry.callback
            dangerous = {
                p for p in apidb.permissions_for(entry.ref)
                if is_dangerous(p)
            }
            assert not dangerous


class TestNewApi:
    def test_introduction_window(self, picker, rng):
        for _ in range(20):
            entry = picker.new_api(rng, 21, 26)
            assert 21 <= entry.lifetime[0] <= 26
            assert entry.lifetime[1] == MAX_API_LEVEL
            assert not entry.callback

    def test_empty_window_raises(self, picker, rng):
        with pytest.raises(LookupError):
            picker.new_api(rng, 30, 40)

    def test_deterministic_under_seed(self, picker):
        a = picker.new_api(random.Random(9), 21, 26)
        b = picker.new_api(random.Random(9), 21, 26)
        assert a.ref == b.ref


class TestRemovedApi:
    def test_alive_then_removed(self, picker, rng):
        for _ in range(10):
            entry = picker.removed_api(rng, 14)
            introduced, last = entry.lifetime
            assert introduced <= 14 <= last
            assert last < MAX_API_LEVEL


class TestSubclassableNewApi:
    def test_class_predates_method(self, picker, apidb, rng):
        for _ in range(15):
            entry = picker.subclassable_new_api(rng, 19, 20, 28)
            class_entry = apidb.clazz(entry.class_name)
            assert min(class_entry.levels) <= 19
            assert 20 <= entry.lifetime[0] <= 28


class TestNewCallback:
    def test_modeled_filter(self, picker, rng):
        modeled_classes = {
            "android.app.Activity", "android.app.Fragment",
            "android.app.Service", "android.webkit.WebView",
        }
        for _ in range(10):
            entry = picker.new_callback(rng, 14, 29, modeled=True)
            assert entry.callback
            assert entry.class_name in modeled_classes

    def test_unmodeled_filter(self, picker, rng):
        modeled_classes = {
            "android.app.Activity", "android.app.Fragment",
            "android.app.Service", "android.webkit.WebView",
        }
        for _ in range(10):
            entry = picker.new_callback(rng, 14, 29, modeled=False)
            assert entry.callback
            assert entry.class_name not in modeled_classes

    def test_never_the_permission_hook(self, picker, rng):
        for _ in range(30):
            entry = picker.new_callback(rng, 20, 29)
            assert entry.name != "onRequestPermissionsResult"


class TestPermissionApi:
    def test_bounded_dangerous_set(self, picker, apidb, rng):
        for _ in range(10):
            entry, permissions = picker.permission_api(rng)
            assert 1 <= len(permissions) <= 2
            assert all(is_dangerous(p) for p in permissions)
            assert entry.lifetime == (2, MAX_API_LEVEL)

    def test_deep_has_no_direct_enforcement(self, picker, apidb, rng):
        for _ in range(10):
            entry, permissions = picker.permission_api(rng, deep=True)
            direct = {
                p
                for p in apidb.permission_map.permissions_for(
                    entry.ref, deep=False
                )
                if is_dangerous(p)
            }
            assert not direct
            assert permissions

    def test_shallow_enforces_directly(self, picker, apidb, rng):
        for _ in range(10):
            entry, _ = picker.permission_api(rng, deep=False)
            direct = {
                p
                for p in apidb.permission_map.permissions_for(
                    entry.ref, deep=False
                )
                if is_dangerous(p)
            }
            assert direct
