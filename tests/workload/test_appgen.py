"""Integration tests for the app forge: every scenario must produce
exactly the detector behaviour it promises, for every tool."""

import pytest

from repro.baselines import Cid, Cider, Lint
from repro.core import SaintDroid
from repro.workload.appgen import AppForge
from repro.workload.groundtruth import Trait


@pytest.fixture(scope="module")
def tools(framework, apidb):
    return {
        "SAINTDroid": SaintDroid(framework, apidb),
        "CID": Cid(framework, apidb),
        "CIDER": Cider(framework, apidb),
        "Lint": Lint(framework, apidb),
    }


def forge(apidb, picker, seed=5, min_sdk=19, target_sdk=26):
    return AppForge(
        "com.scenario.app", "ScenarioApp",
        min_sdk=min_sdk, target_sdk=target_sdk,
        seed=seed, apidb=apidb, picker=picker,
    )


def reported(tool, forged, kind=None):
    report = tool.analyze(forged.apk)
    keys = report.keys
    if kind is not None:
        keys = {k for k in keys if k[0] == kind}
    return keys


class TestDirectIssue:
    def test_all_api_tools_detect(self, tools, apidb, picker):
        f = forge(apidb, picker)
        issue = f.add_direct_issue()
        forged = f.build()
        for name in ("SAINTDroid", "CID", "Lint"):
            assert issue.key in reported(tools[name], forged), name
        assert issue.key not in reported(tools["CIDER"], forged)


class TestGuardedDirect:
    def test_nobody_reports(self, tools, apidb, picker):
        f = forge(apidb, picker)
        f.add_guarded_direct()
        forged = f.build()
        for name, tool in tools.items():
            assert reported(tool, forged) == frozenset(), name


class TestCallerGuardTrap:
    def test_only_context_insensitive_tools_fooled(self, tools, apidb, picker):
        f = forge(apidb, picker)
        trap = f.add_caller_guard_trap()
        forged = f.build()
        assert reported(tools["SAINTDroid"], forged) == frozenset()
        assert trap.fp_keys[0] in reported(tools["CID"], forged)
        assert trap.fp_keys[0] in reported(tools["Lint"], forged)


class TestAnonymousGuardTrap:
    def test_saintdroid_false_positive(self, tools, apidb, picker):
        f = forge(apidb, picker)
        trap = f.add_anonymous_guard_trap()
        forged = f.build()
        assert trap.fp_keys[0] in reported(tools["SAINTDroid"], forged)

    def test_ablation_fixes_it(self, framework, apidb, picker):
        fixed = SaintDroid(
            framework, apidb, propagate_guards_into_anonymous=True
        )
        f = forge(apidb, picker)
        trap = f.add_anonymous_guard_trap()
        forged = f.build()
        assert trap.fp_keys[0] not in reported(fixed, forged)


class TestInheritedIssue:
    def test_only_saintdroid_resolves_hierarchy(self, tools, apidb, picker):
        f = forge(apidb, picker)
        issue = f.add_inherited_issue()
        forged = f.build()
        assert issue.key in reported(tools["SAINTDroid"], forged)
        assert issue.key not in reported(tools["CID"], forged)
        assert issue.key not in reported(tools["Lint"], forged)


class TestLibraryIssue:
    def test_lint_source_scope_misses(self, tools, apidb, picker):
        f = forge(apidb, picker)
        issue = f.add_library_issue()
        forged = f.build()
        assert issue.key in reported(tools["SAINTDroid"], forged)
        assert issue.key in reported(tools["CID"], forged)
        assert issue.key not in reported(tools["Lint"], forged)


class TestSecondaryDexIssue:
    def test_only_saintdroid_reaches_late_bound_code(
        self, tools, apidb, picker
    ):
        f = forge(apidb, picker)
        issue = f.add_secondary_dex_issue()
        forged = f.build()
        assert issue.key in reported(tools["SAINTDroid"], forged)
        cid_report = tools["CID"].analyze(forged.apk)
        assert cid_report.metrics.failed  # multidex crash
        assert issue.key not in reported(tools["Lint"], forged)


class TestExternalDynamicIssue:
    def test_nobody_can_see_outside_the_apk(self, tools, apidb, picker):
        f = forge(apidb, picker)
        issue = f.add_external_dynamic_issue()
        forged = f.build()
        for name, tool in tools.items():
            assert issue.key not in reported(tool, forged), name


class TestForwardRemovedIssue:
    def test_api_tools_detect_removal(self, tools, apidb, picker):
        f = forge(apidb, picker, min_sdk=14, target_sdk=22)
        issue = f.add_forward_removed_issue()
        forged = f.build()
        assert issue.key in reported(tools["SAINTDroid"], forged)
        assert issue.key in reported(tools["CID"], forged)


class TestCallbackScenarios:
    def test_modeled_callback_detected_by_both(self, tools, apidb, picker):
        f = forge(apidb, picker)
        issue = f.add_callback_issue(modeled=True)
        forged = f.build()
        assert issue.key in reported(tools["SAINTDroid"], forged)
        assert issue.key in reported(tools["CIDER"], forged)

    def test_unmodeled_callback_only_saintdroid(self, tools, apidb, picker):
        f = forge(apidb, picker)
        issue = f.add_callback_issue(modeled=False)
        forged = f.build()
        assert issue.key in reported(tools["SAINTDroid"], forged)
        assert issue.key not in reported(tools["CIDER"], forged)

    def test_anonymous_callback_missed_by_all(self, tools, apidb, picker):
        f = forge(apidb, picker)
        issue = f.add_callback_issue(modeled=False, anonymous=True)
        forged = f.build()
        assert issue.trait is Trait.CALLBACK_ANONYMOUS
        assert issue.key not in reported(tools["SAINTDroid"], forged)
        assert issue.key not in reported(tools["CIDER"], forged)


class TestPermissionScenarios:
    def test_request_issue_only_saintdroid(self, tools, apidb, picker):
        f = forge(apidb, picker)
        issues = f.add_permission_request_issue()
        forged = f.build()
        for issue in issues:
            assert issue.key in reported(tools["SAINTDroid"], forged)
            assert issue.key not in reported(tools["CID"], forged)

    def test_deep_request_issue(self, tools, apidb, picker):
        f = forge(apidb, picker)
        issues = f.add_permission_request_issue(deep=True)
        forged = f.build()
        for issue in issues:
            assert issue.trait is Trait.PERMISSION_DEEP
            assert issue.key in reported(tools["SAINTDroid"], forged)

    def test_revocation_issue(self, tools, apidb, picker):
        f = forge(apidb, picker, min_sdk=14, target_sdk=22)
        issues = f.add_permission_revocation_issue()
        forged = f.build()
        for issue in issues:
            assert issue.key in reported(tools["SAINTDroid"], forged)

    def test_protocol_prevents_request_issue(self, tools, apidb, picker):
        f = forge(apidb, picker)
        f.implement_permission_protocol()
        with pytest.raises(ValueError):
            f.add_permission_request_issue()

    def test_request_requires_modern_target(self, apidb, picker):
        f = forge(apidb, picker, min_sdk=14, target_sdk=22)
        with pytest.raises(ValueError):
            f.add_permission_request_issue()

    def test_revocation_requires_legacy_target(self, apidb, picker):
        f = forge(apidb, picker)
        with pytest.raises(ValueError):
            f.add_permission_revocation_issue()


class TestForgeMechanics:
    def test_deterministic_for_seed(self, apidb, picker):
        def build():
            f = forge(apidb, picker, seed=99)
            f.add_direct_issue()
            f.add_callback_issue(modeled=False)
            f.add_filler(kloc=0.5)
            return f.build()

        first, second = build(), build()
        assert first.apk == second.apk
        assert first.truth.issue_keys == second.truth.issue_keys

    def test_filler_size_approximate(self, apidb, picker):
        f = forge(apidb, picker)
        f.add_filler(kloc=2.0)
        forged = f.build()
        assert 1_500 <= forged.apk.instruction_count <= 3_500

    def test_clean_app_reports_nothing(self, tools, apidb, picker):
        f = forge(apidb, picker)
        f.add_filler(kloc=1.0)
        forged = f.build()
        assert reported(tools["SAINTDroid"], forged) == frozenset()


class TestHelperGuardTrap:
    def test_saintdroid_sees_through_the_helper(self, tools, apidb, picker):
        f = forge(apidb, picker)
        trap = f.add_helper_guard_trap()
        forged = f.build()
        assert trap.fp_keys[0] not in reported(tools["SAINTDroid"], forged)
        # Per-method tools cannot connect the helper's result to the
        # SDK check inside it.
        assert trap.fp_keys[0] in reported(tools["CID"], forged)
        assert trap.fp_keys[0] in reported(tools["Lint"], forged)
