"""Tests for ground-truth records and key serialization."""

import pytest

from repro.ir.types import MethodRef
from repro.workload.groundtruth import (
    GroundTruth,
    SeededIssue,
    SeededTrap,
    Trait,
    key_from_json,
    key_to_json,
)


def api_key():
    return (
        "API", "App",
        MethodRef("com.app.C", "m"),
        ("android.x.A", "f", "(int)void"),
    )


class TestKeys:
    def test_json_round_trip_api_key(self):
        key = api_key()
        assert key_from_json(key_to_json(key)) == key

    def test_json_round_trip_apc_key(self):
        key = ("APC", "App", "com.app.Hook", "onAttach()void")
        assert key_from_json(key_to_json(key)) == key

    def test_json_round_trip_prm_key(self):
        key = ("PRM-request", "App", "android.permission.CAMERA")
        assert key_from_json(key_to_json(key)) == key

    def test_encoded_form_is_json_safe(self):
        import json
        json.dumps(key_to_json(api_key()))  # must not raise


class TestGroundTruth:
    def build(self):
        truth = GroundTruth(app="App")
        truth.issues.append(
            SeededIssue(key=api_key(), kind="API", trait=Trait.DIRECT)
        )
        truth.issues.append(
            SeededIssue(
                key=("APC", "App", "com.app.Hook", "onFoo()void"),
                kind="APC",
                trait=Trait.CALLBACK_UNMODELED,
            )
        )
        truth.traps.append(
            SeededTrap(
                fp_keys=(api_key(),), trait=Trait.TRAP_ANONYMOUS_GUARD
            )
        )
        return truth

    def test_issue_keys(self):
        truth = self.build()
        assert len(truth.issue_keys) == 2

    def test_kind_and_trait_queries(self):
        truth = self.build()
        assert len(truth.issues_of_kind("API")) == 1
        assert len(truth.issues_with_trait(Trait.CALLBACK_UNMODELED)) == 1
        assert len(truth.traps_with_trait(Trait.TRAP_ANONYMOUS_GUARD)) == 1

    def test_merge_same_app(self):
        truth = self.build()
        other = GroundTruth(app="App")
        other.issues.append(
            SeededIssue(
                key=("PRM-request", "App", "p"),
                kind="PRM-request",
                trait=Trait.PERMISSION_REQUEST,
            )
        )
        truth.merge(other)
        assert len(truth.issues) == 3

    def test_merge_different_app_rejected(self):
        with pytest.raises(ValueError):
            self.build().merge(GroundTruth(app="Other"))

    def test_dict_round_trip(self):
        truth = self.build()
        restored = GroundTruth.from_dict(truth.to_dict())
        assert restored.app == truth.app
        assert restored.issue_keys == truth.issue_keys
        assert [t.fp_keys for t in restored.traps] == [
            t.fp_keys for t in truth.traps
        ]
        assert [i.trait for i in restored.issues] == [
            i.trait for i in truth.issues
        ]
