"""Tests for the benchmark-suite replicas: composition anchors from
the paper and determinism."""

import pytest

from repro.workload.benchsuite import (
    BENCHMARK_SPECS,
    CIDER_BENCH,
    CID_BENCH,
    build_benchmark_app,
    build_benchmark_suite,
)
from repro.workload.groundtruth import Trait


@pytest.fixture(scope="module")
def suite(apidb):
    # Small filler scale: composition (not size) is under test here.
    return build_benchmark_suite(apidb, scale=0.02)


class TestComposition:
    def test_nineteen_apps(self, suite):
        assert len(suite) == 19
        assert len(CIDER_BENCH) == 12
        assert len(CID_BENCH) == 7

    def test_unique_labels_and_packages(self):
        labels = [s.label for s in BENCHMARK_SPECS]
        packages = [s.package for s in BENCHMARK_SPECS]
        assert len(set(labels)) == len(labels)
        assert len(set(packages)) == len(packages)

    def test_apc_totals_match_paper(self, suite):
        """42 callback issues in total, 2 of them anonymous (the two
        SAINTDroid misses reported in the paper)."""
        apc = [
            issue
            for forged in suite
            for issue in forged.truth.issues_of_kind("APC")
        ]
        assert len(apc) == 42
        anonymous = [
            i for i in apc if i.trait is Trait.CALLBACK_ANONYMOUS
        ]
        assert len(anonymous) == 2

    def test_external_dynamic_issue_count(self, suite):
        external = [
            issue
            for forged in suite
            for issue in forged.truth.issues_with_trait(
                Trait.EXTERNAL_DYNAMIC
            )
        ]
        assert len(external) == 4

    def test_cid_dash_apps_carry_secondary_dex(self, suite):
        by_name = {forged.apk.name: forged for forged in suite}
        for label in ("AFWall+", "NetworkMonitor", "PassAndroid"):
            assert by_name[label].apk.secondary_dex_files, label
        assert not by_name["Padland"].apk.secondary_dex_files

    def test_nyaapantsu_is_unbuildable(self, suite):
        by_name = {forged.apk.name: forged for forged in suite}
        assert not by_name["NyaaPantsu"].apk.manifest.buildable
        others = [f for f in suite if f.apk.name != "NyaaPantsu"]
        assert all(f.apk.manifest.buildable for f in others)

    def test_sdk_ranges_plausible(self):
        for spec in BENCHMARK_SPECS:
            assert 10 <= spec.min_sdk <= 21
            assert 22 <= spec.target_sdk <= 27

    def test_truth_apps_match_apk_labels(self, suite):
        for forged in suite:
            assert forged.truth.app == forged.apk.name


class TestDeterminism:
    def test_same_scale_same_apps(self, apidb):
        spec = BENCHMARK_SPECS[0]
        a = build_benchmark_app(spec, apidb, scale=0.02)
        b = build_benchmark_app(spec, apidb, scale=0.02)
        assert a.apk == b.apk
        assert a.truth.issue_keys == b.truth.issue_keys

    def test_scale_changes_size_not_truth(self, apidb):
        spec = BENCHMARK_SPECS[0]
        small = build_benchmark_app(spec, apidb, scale=0.02)
        large = build_benchmark_app(spec, apidb, scale=0.05)
        assert large.apk.instruction_count > small.apk.instruction_count
        assert large.truth.issue_keys == small.truth.issue_keys

    def test_suite_filter(self, apidb):
        cid_only = build_benchmark_suite(
            apidb, scale=0.02, suites=("CID-Bench",)
        )
        assert len(cid_only) == 7
