"""Serve-suite fixtures.

The session substrate (``framework``/``apidb`` from the root
conftest) is passed straight into :meth:`AnalysisService` /
:meth:`PoolSupervisor.start`, so the daemon tests never pay a second
substrate build — forked workers inherit the session's objects as
copy-on-write pages exactly like production fork pools do.
"""

from __future__ import annotations

import pytest

from repro.apk.serialization import apk_to_dict
from repro.serve import AnalysisService, ServeConfig

from tests.conftest import activity_class, make_apk


def serve_apk(tag: str, **kwargs):
    """A small distinct package per ``tag`` (distinct fingerprints)."""
    package = f"com.serve.{tag}"
    return make_apk(
        [activity_class(package=package)], package=package, **kwargs
    )


def serve_apk_doc(tag: str, **kwargs) -> dict:
    return apk_to_dict(serve_apk(tag, **kwargs))


@pytest.fixture()
def substrate(framework, apidb):
    return (framework, apidb)


@pytest.fixture()
def make_service(spec, substrate, tmp_path):
    """Factory for started in-process daemons; drains leftovers."""
    services: list[AnalysisService] = []

    def _make(**overrides) -> AnalysisService:
        defaults = dict(
            workers=2,
            include=("SAINTDroid",),
            timeout_s=10.0,
            max_retries=2,
            retry_backoff_s=0.0,
            journal=str(tmp_path / f"wal{len(services)}.jsonl"),
        )
        defaults.update(overrides)
        config = ServeConfig(**defaults)
        service = AnalysisService(config, spec, substrate=substrate)
        services.append(service)
        return service.start()

    yield _make
    for service in services:
        service.drain(timeout_s=30.0)
