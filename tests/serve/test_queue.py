"""Admission control and JobSource semantics of the serve queue."""

from __future__ import annotations

import pytest

from repro.eval.faults import FaultKind, FaultPlan, InjectedFault
from repro.serve.jobs import JobState
from repro.serve.journal import ServeJournal
from repro.serve.queue import (
    JobQueue,
    MalformedJobError,
    OversizedJobError,
    QueueClosedError,
    QueueFullError,
)

from .conftest import serve_apk_doc


def _clean_result(app: str):
    from repro.eval.runner import AppResult
    from repro.workload.groundtruth import GroundTruth

    return AppResult(app=app, truth=GroundTruth(app=app), kloc=1.0)


def _failed_result(app: str):
    from repro.core.errors import (
        AnalysisError,
        AnalysisPhase,
        ErrorKind,
    )
    from repro.eval.runner import AppResult
    from repro.workload.groundtruth import GroundTruth

    return AppResult(
        app=app,
        truth=GroundTruth(app=app),
        kloc=1.0,
        error=AnalysisError(
            kind=ErrorKind.CRASH,
            phase=AnalysisPhase.TOOL,
            message="boom",
            retryable=False,
            attempts=1,
        ),
    )


def _drain_one(queue: JobQueue):
    """Pop one entry the way the dispatcher does."""
    entries = queue.take(1, timeout_s=0.0)
    assert entries
    return entries[0]


class TestAdmission:
    def test_malformed_is_rejected_at_the_edge(self):
        queue = JobQueue()
        with pytest.raises(MalformedJobError):
            queue.submit({"not": "an apk"})
        with pytest.raises(MalformedJobError):
            queue.submit("not even a dict")
        assert queue.stats()["rejected_malformed"] == 2
        assert queue.depth() == 0

    def test_oversized_is_shed(self):
        queue = JobQueue(max_apk_bytes=64)
        with pytest.raises(OversizedJobError):
            queue.submit(serve_apk_doc("big"))
        assert queue.stats()["rejected_oversize"] == 1

    def test_full_queue_rejects_with_retry_hint(self):
        queue = JobQueue(limit=1, retry_after_s=0.7)
        queue.submit(serve_apk_doc("q0"))
        with pytest.raises(QueueFullError) as excinfo:
            queue.submit(serve_apk_doc("q1"))
        assert excinfo.value.retry_after_s == 0.7
        assert excinfo.value.status == 429
        assert excinfo.value.to_doc()["retryAfterS"] == 0.7

    def test_closed_queue_admits_nothing(self):
        queue = JobQueue()
        queue.close()
        with pytest.raises(QueueClosedError):
            queue.submit(serve_apk_doc("late"))

    def test_idempotent_resubmission_by_id(self):
        queue = JobQueue()
        first = queue.submit(serve_apk_doc("idem"), job_id="client-1")
        again = queue.submit(serve_apk_doc("idem"), job_id="client-1")
        assert again is first
        assert queue.stats()["submitted"] == 1


class TestLifecycle:
    def test_take_deliver_complete(self):
        queue = JobQueue()
        job = queue.submit(serve_apk_doc("life"))
        assert job.state is JobState.QUEUED
        entry = _drain_one(queue)
        assert job.state is JobState.RUNNING
        assert entry[0] == job.seq
        queue.deliver(entry, _clean_result(job.app))
        assert job.state is JobState.COMPLETED
        assert job.attempts == 1
        waited = queue.wait(job.id, timeout_s=1.0)
        assert waited is job and waited.terminal

    def test_failed_delivery_quarantines(self):
        queue = JobQueue()
        job = queue.submit(serve_apk_doc("poison"))
        queue.deliver(_drain_one(queue), _failed_result(job.app))
        assert job.state is JobState.QUARANTINED
        assert queue.stats()["quarantined"] == 1

    def test_dedup_hit_is_terminal_on_admission(self):
        queue = JobQueue()
        job = queue.submit(serve_apk_doc("dup"))
        queue.deliver(_drain_one(queue), _clean_result(job.app))
        twin = queue.submit(serve_apk_doc("dup"))
        assert twin.terminal and twin.dedup
        assert twin.result is job.result
        assert queue.stats()["dedup_hits"] == 1
        assert queue.depth() == 0  # no slot was spent

    def test_quarantined_results_are_never_dedup_sources(self):
        queue = JobQueue()
        job = queue.submit(serve_apk_doc("sick"))
        queue.deliver(_drain_one(queue), _failed_result(job.app))
        twin = queue.submit(serve_apk_doc("sick"))
        assert not twin.terminal  # must be re-analyzed, not replayed

    def test_take_returns_none_only_when_closed_and_drained(self):
        queue = JobQueue()
        job = queue.submit(serve_apk_doc("drain"))
        queue.close()
        entry = _drain_one(queue)
        # Closed but an entry is in flight: stream must stay alive.
        assert queue.take(1, timeout_s=0.0) == []
        queue.deliver(entry, _clean_result(job.app))
        assert queue.take(1, timeout_s=0.0) is None


class TestStreamFaults:
    def test_partial_write_fault_tears_then_heals(self, tmp_path):
        plan = FaultPlan(
            faults={
                0: InjectedFault(
                    FaultKind.PARTIAL_WRITE, fail_attempts=1
                )
            }
        )
        journal = ServeJournal(
            tmp_path / "wal.jsonl", tools=("SAINTDroid",), fsync=False
        )
        queue = JobQueue(journal=journal, fault_plan=plan)
        job = queue.submit(serve_apk_doc("tear"))
        journal.close()
        assert queue.stats()["torn_writes"] == 1
        recovery = ServeJournal(
            tmp_path / "wal.jsonl", tools=("SAINTDroid",)
        ).load()
        # The torn line is counted AND the intact re-append admitted
        # the job — the ack the client saw stays truthful.
        assert recovery.corrupt == 1
        assert job.id in recovery.jobs

    def test_slow_consumer_fault_stalls_take(self):
        plan = FaultPlan(
            faults={
                0: InjectedFault(
                    FaultKind.SLOW_CONSUMER,
                    fail_attempts=1,
                    hang_s=0.05,
                )
            }
        )
        queue = JobQueue(fault_plan=plan)
        queue.submit(serve_apk_doc("stall"))
        import time

        start = time.monotonic()
        entries = queue.take(1, timeout_s=0.0)
        elapsed = time.monotonic() - start
        assert entries and elapsed >= 0.05
        assert queue.stats()["stalls"] == 1
