"""The write-ahead journal: durability, torn writes, lenient replay."""

from __future__ import annotations

import json

from repro.serve.jobs import Job, JobState
from repro.serve.journal import ServeJournal

from tests.conftest import activity_class, make_apk
from .conftest import serve_apk

TOOLS = ("SAINTDroid",)


def _job(seq: int, app: str = "app") -> Job:
    return Job(id=f"j{seq}", seq=seq, app=app, fingerprint=f"fp{seq}")


def _journal(tmp_path, name="wal.jsonl") -> ServeJournal:
    return ServeJournal(tmp_path / name, tools=TOOLS, fsync=False)


def _clean_result(app: str = "app"):
    from repro.eval.runner import AppResult
    from repro.workload.groundtruth import GroundTruth

    return AppResult(app=app, truth=GroundTruth(app=app), kloc=1.0)


class TestWal:
    def test_header_written_once(self, tmp_path):
        journal = _journal(tmp_path)
        apk = serve_apk("hdr")
        journal.append_job(_job(0), apk)
        journal.append_job(_job(1), apk)
        journal.close()
        lines = (tmp_path / "wal.jsonl").read_text().splitlines()
        headers = [
            line for line in lines
            if json.loads(line).get("type") == "header"
        ]
        assert len(headers) == 1
        assert json.loads(headers[0])["kind"] == "serve"

    def test_job_roundtrip(self, tmp_path):
        journal = _journal(tmp_path)
        apk = serve_apk("rt")
        job = _job(3, app=apk.name)
        assert journal.append_job(job, apk, {"app": apk.name})
        journal.close()
        recovery = _journal(tmp_path).load()
        assert recovery.corrupt == 0
        assert recovery.max_seq == 3
        recovered = recovery.jobs["j3"]
        assert not recovered.terminal
        assert recovered.job.replayed
        assert recovered.apk_doc is not None
        assert recovered.truth_doc == {"app": apk.name}
        assert recovery.pending()[0].job.id == "j3"

    def test_result_marks_terminal(self, tmp_path):
        journal = _journal(tmp_path)
        apk = serve_apk("term")
        job = _job(0, app=apk.name)
        journal.append_job(job, apk)
        job.state = JobState.COMPLETED
        job.attempts = 1
        job.result = _clean_result(apk.name)
        journal.append_result(job)
        journal.close()
        recovery = _journal(tmp_path).load()
        assert recovery.pending() == []
        restored = recovery.terminal()[0].job
        assert restored.state is JobState.COMPLETED
        assert restored.attempts == 1
        assert restored.result is not None
        assert (
            restored.result.fingerprint()
            == job.result.fingerprint()
        )


class TestTornWrites:
    def test_torn_append_is_skipped_not_fatal(self, tmp_path):
        journal = _journal(tmp_path)
        apk = serve_apk("torn")
        assert not journal.append_job(_job(0), apk, tear=True)
        # The WAL self-heals: the very next append is intact.
        assert journal.append_job(_job(1), apk)
        journal.close()
        recovery = _journal(tmp_path).load()
        assert recovery.corrupt == 1
        assert set(recovery.jobs) == {"j1"}

    def test_truncated_tail_like_kill_minus_nine(self, tmp_path):
        journal = _journal(tmp_path)
        apk = serve_apk("trunc")
        journal.append_job(_job(0), apk)
        journal.append_job(_job(1), apk)
        journal.close()
        path = tmp_path / "wal.jsonl"
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) - 40])  # tear the last record
        recovery = _journal(tmp_path).load()
        assert recovery.corrupt == 1
        assert set(recovery.jobs) == {"j0"}
        # A restarted daemon appends safely onto the torn tail.
        journal = _journal(tmp_path)
        journal.append_job(_job(2), apk)
        journal.close()
        recovery = _journal(tmp_path).load()
        assert set(recovery.jobs) == {"j0", "j2"}
        assert recovery.corrupt == 1

    def test_result_without_job_record_is_adopted(self, tmp_path):
        journal = _journal(tmp_path)
        job = _job(5, app="orphan")
        job.state = JobState.QUARANTINED
        job.result = _clean_result("orphan")
        journal.append_result(job)
        journal.close()
        recovery = _journal(tmp_path).load()
        restored = recovery.jobs["j5"].job
        assert restored.terminal
        assert restored.state is JobState.QUARANTINED
        assert recovery.pending() == []


class TestEmpty:
    def test_missing_file_is_empty_recovery(self, tmp_path):
        recovery = _journal(tmp_path, "absent.jsonl").load()
        assert recovery.jobs == {}
        assert recovery.corrupt == 0
        assert recovery.max_seq == -1
