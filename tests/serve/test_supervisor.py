"""The supervised worker pool: dispatch, death, hangs, respawn."""

from __future__ import annotations

import os
import signal

import pytest

from repro.core.errors import ErrorKind
from repro.eval.faults import FaultKind, FaultPlan, InjectedFault
from repro.eval.runner import ToolSet, analyze_app
from repro.serve.supervisor import PoolSupervisor

from tests.conftest import activity_class, make_apk
from repro.workload.appgen import ForgedApp
from repro.workload.groundtruth import GroundTruth


def _forged(tag: str) -> ForgedApp:
    package = f"com.sup.{tag}"
    apk = make_apk(
        [activity_class(package=package)], package=package
    )
    return ForgedApp(apk=apk, truth=GroundTruth(app=apk.name))


@pytest.fixture()
def supervisor(spec, framework, apidb):
    sup = PoolSupervisor(
        spec,
        workers=2,
        include=("SAINTDroid",),
        timeout_s=10.0,
        hang_timeout_s=20.0,
    )
    sup.start((framework, apidb))
    yield sup
    sup.close()


class TestDispatch:
    def test_round_results_match_in_process_analysis(
        self, supervisor, framework, apidb
    ):
        entries = [(i, _forged(f"d{i}"), 0) for i in range(4)]
        out = supervisor.run_round(entries, 0)
        assert len(out) == 4
        toolset = ToolSet.default(
            framework, apidb, include=("SAINTDroid",)
        )
        by_seq = {entry[0]: result for entry, result in out}
        for seq, forged, _attempt in entries:
            expected = analyze_app(toolset, forged)
            assert (
                by_seq[seq].fingerprint() == expected.fingerprint()
            )

    def test_pool_survives_consecutive_rounds(self, supervisor):
        for round_no in range(3):
            entries = [(round_no * 10, _forged(f"r{round_no}"), 0)]
            out = supervisor.run_round(entries, round_no)
            assert out[0][1].error is None
        assert supervisor.restarts == 0
        assert supervisor.liveness()["alive"] == 2


class TestWorkerDeath:
    def test_killed_worker_is_synthesized_and_respawned(
        self, supervisor
    ):
        plan = FaultPlan(
            faults={
                1: InjectedFault(
                    FaultKind.WORKER_DEATH, fail_attempts=1
                )
            }
        )
        supervisor.fault_plan = plan
        entries = [(i, _forged(f"k{i}"), 0) for i in range(3)]
        out = supervisor.run_round(entries, 0)
        assert len(out) == 3
        by_seq = {entry[0]: result for entry, result in out}
        lost = by_seq[1]
        assert lost.error is not None
        assert lost.error.kind is ErrorKind.WORKER_LOST
        assert lost.error.retryable
        # The other entries were unharmed.
        assert by_seq[0].error is None
        assert by_seq[2].error is None
        assert supervisor.restarts >= 1
        liveness = supervisor.liveness()
        assert liveness["alive"] == liveness["workers"] == 2
        # The slot is genuinely usable again (retry attempt 1: the
        # transient fault is spent, the app recovers).
        supervisor.fault_plan = None
        retry = supervisor.run_round([(1, _forged("k1"), 1)], 1)
        assert retry[0][1].error is None

    def test_externally_killed_worker(self, supervisor):
        victim = supervisor.liveness()["pids"][0]
        os.kill(victim, signal.SIGKILL)
        out = supervisor.run_round([(7, _forged("ext"), 0)], 0)
        # Either the dead slot was respawned before dispatch (clean
        # result) or its loss was synthesized retryably; both keep
        # the daemon alive and the pool full.
        assert len(out) == 1
        result = out[0][1]
        assert result.error is None or result.error.retryable
        liveness = supervisor.liveness()
        assert liveness["alive"] == 2


class TestHungWorker:
    def test_wedged_worker_is_killed_and_replaced(
        self, spec, framework, apidb
    ):
        sup = PoolSupervisor(
            spec,
            workers=1,
            include=("SAINTDroid",),
            timeout_s=None,  # no in-worker deadline: force the
            hang_timeout_s=0.5,  # parent-side backstop to fire
        )
        sup.start((framework, apidb))
        try:
            plan = FaultPlan(
                faults={
                    0: InjectedFault(
                        FaultKind.HANG, fail_attempts=1, hang_s=30.0
                    )
                }
            )
            sup.fault_plan = plan
            out = sup.run_round([(0, _forged("hang"), 0)], 0)
            result = out[0][1]
            assert result.error is not None
            assert result.error.kind is ErrorKind.WORKER_LOST
            assert sup.restarts == 1
            assert sup.liveness()["alive"] == 1
        finally:
            sup.close()


class TestClose:
    def test_close_is_idempotent_and_clears_the_pool(
        self, spec, framework, apidb
    ):
        sup = PoolSupervisor(spec, workers=2, include=("SAINTDroid",))
        sup.start((framework, apidb))
        pids = [p for p in sup.liveness()["pids"] if p]
        sup.close()
        sup.close()
        for pid in pids:
            with pytest.raises(ProcessLookupError):
                os.kill(pid, 0)
