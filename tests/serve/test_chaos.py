"""Chaos acceptance for the daemon (ISSUE 7).

Two layers:

* in-process — a seeded :meth:`FaultPlan.generate_serve` run mixing
  worker crashes, hangs, corrupt packages, slow-consumer stalls, torn
  journal writes, and a second SIGTERM mid-drain.  Every job must end
  terminal, the quarantine set must equal the plan's prediction, and
  no shared-memory segment may survive the drain.
* subprocess — a real ``python -m repro serve`` daemon killed with
  ``SIGKILL`` mid-corpus; a second daemon on the same journal must
  replay to fingerprint-identical results with no double-reporting.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.apk.serialization import apk_to_dict
from repro.eval.faults import FaultKind, FaultPlan
from repro.serve import ServeClient
from repro.serve.jobs import JobState

from .conftest import serve_apk

pytestmark = pytest.mark.slow

CORPUS = 12
# Seed 3 plants corrupt (permanent → quarantine), slow-consumer,
# worker-death, partial-write, and the mid-drain SIGTERM — one of
# every failure domain the daemon claims to absorb.
SEED = 3


class TestInProcessChaos:
    def test_faulted_run_loses_nothing(self, make_service):
        plan = FaultPlan.generate_serve(
            CORPUS,
            fraction=0.34,
            seed=SEED,
            hang_s=1.0,
            drain_sigterm=True,
        )
        assert plan.has_kind(FaultKind.SLOW_CONSUMER)
        assert plan.has_kind(FaultKind.PARTIAL_WRITE)
        assert plan.has_kind(FaultKind.DRAIN_SIGTERM)
        service = make_service(
            fault_plan=plan, timeout_s=5.0, max_retries=2
        )
        jobs = [
            service.submit(apk_to_dict(serve_apk(f"chaos{i}")))
            for i in range(CORPUS)
        ]
        assert service.drain(timeout_s=120.0) == "drained"

        # Acceptance: every accepted job reached a terminal state.
        assert all(job.terminal for job in jobs)
        quarantined = {
            job.seq for job in jobs
            if job.state is JobState.QUARANTINED
        }
        assert quarantined == set(plan.expected_quarantine(2))
        health = service.health()
        stats = health["queue"]
        assert stats["completed"] + stats["quarantined"] == CORPUS
        # The stream-layer degradations actually fired...
        assert stats["stalls"] == 1
        assert stats["torn_writes"] == 1
        # ...and the second SIGTERM mid-drain was absorbed.
        assert health["drain_reentries"] >= 1
        # Worker deaths were survived by respawning, not by limping.
        assert health["pool"]["restarts"] >= 1

    def test_drain_unlinks_the_shared_segment(
        self, make_service, monkeypatch
    ):
        monkeypatch.setenv("REPRO_FORCE_SHARED_SUBSTRATE", "1")
        service = make_service()
        segment = service.supervisor._segment
        assert segment is not None, "forced segment was not published"
        handle = segment.handle
        job = service.submit(apk_to_dict(serve_apk("seg")))
        assert service.wait(job.id, timeout_s=60.0).terminal
        assert service.drain(timeout_s=60.0) == "drained"
        if handle.kind == "shm":
            assert not (Path("/dev/shm") / handle.name).exists()
        else:
            assert not Path(handle.name).exists()


def _wait_for_line(proc, needle: str, timeout_s: float) -> str:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            time.sleep(0.05)
            continue
        if needle in line:
            return line
    raise AssertionError(f"daemon never printed {needle!r}")


def _spawn_daemon(wal: Path, tmp_path: Path, tag: str):
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0",
            "--workers", "2",
            "--journal", str(wal),
            "--no-cache",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        cwd=str(tmp_path),
        env={
            **os.environ,
            "PYTHONPATH": str(
                Path(__file__).resolve().parents[2] / "src"
            ),
            # Work accounting follows hash-dependent traversal order;
            # pin the seed so fingerprints compare across processes.
            "PYTHONHASHSEED": "0",
        },
    )
    line = _wait_for_line(proc, "serving on ", 90.0)
    url = line.split("serving on ", 1)[1].strip()
    return proc, url


def _processes_mentioning(needle: str) -> list[int]:
    """Pids of live processes whose cmdline contains ``needle``."""
    found = []
    for entry in Path("/proc").iterdir():
        if not entry.name.isdigit() or int(entry.name) == os.getpid():
            continue
        try:
            cmdline = (entry / "cmdline").read_bytes()
        except OSError:
            continue
        if needle.encode() in cmdline:
            found.append(int(entry.name))
    return found


class TestKillMinusNineRecovery:
    def test_journal_replay_is_fingerprint_identical(self, tmp_path):
        apks = [serve_apk(f"k9-{i}") for i in range(6)]
        wal = tmp_path / "wal.jsonl"

        # Baseline: an uninterrupted daemon over the same corpus.
        proc_c, url_c = _spawn_daemon(
            tmp_path / "baseline.jsonl", tmp_path, "c"
        )
        baseline = []
        try:
            client = ServeClient(url_c, timeout_s=10.0)
            for apk in apks:
                doc = client.submit_retry(apk)
                done = client.wait(doc["id"], timeout_s=120.0)
                assert done["state"] == "completed", done
                baseline.append(ServeClient.result_of(done))
        finally:
            proc_c.send_signal(signal.SIGTERM)
            assert proc_c.wait(timeout=60) == 0

        proc_a, url_a = _spawn_daemon(wal, tmp_path, "a")
        job_ids = []
        try:
            client = ServeClient(url_a, timeout_s=10.0)
            for apk in apks:
                doc = client.submit_retry(apk)
                job_ids.append(doc["id"])
            # Let analysis genuinely start, then murder the daemon.
            time.sleep(0.5)
        finally:
            proc_a.send_signal(signal.SIGKILL)
            proc_a.wait(timeout=30)

        proc_b, url_b = _spawn_daemon(wal, tmp_path, "b")
        try:
            client = ServeClient(url_b, timeout_s=10.0)
            finished = {}
            for job_id in job_ids:
                doc = client.wait(job_id, timeout_s=120.0)
                assert doc["state"] == "completed", doc
                finished[job_id] = ServeClient.result_of(doc)
            # No job was lost and none was double-tracked.
            assert len(finished) == len(job_ids) == 6

            # Adopted + replayed results are fingerprint-identical to
            # the uninterrupted daemon's.
            for expected, job_id in zip(baseline, job_ids):
                assert (
                    finished[job_id].fingerprint()
                    == expected.fingerprint()
                )

            # The survivor actually recovered from the journal.
            health = client.healthz()
            assert health["recovery"]["terminal"] + health[
                "recovery"
            ]["pending"] >= 1
        finally:
            proc_b.send_signal(signal.SIGTERM)
            assert proc_b.wait(timeout=60) == 0

        # Daemon A's forked workers must notice the kill -9 (their
        # parent-death watchdog) and exit — no orphaned processes.
        deadline = time.monotonic() + 15.0
        while time.monotonic() < deadline:
            if not _processes_mentioning(str(wal)):
                break
            time.sleep(0.5)
        assert not _processes_mentioning(str(wal))

        # The journal never double-reports: one result record per id.
        counts: dict[str, int] = {}
        for line in wal.read_text().splitlines():
            try:
                doc = json.loads(line)
            except json.JSONDecodeError:
                continue  # the SIGKILL may legitimately tear a line
            if doc.get("type") == "result":
                counts[doc["id"]] = counts.get(doc["id"], 0) + 1
        assert counts, "no results were journaled"
        assert all(n == 1 for n in counts.values()), counts
