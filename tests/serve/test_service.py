"""End-to-end daemon behaviour: parity, HTTP, drain, recovery."""

from __future__ import annotations

import threading

import pytest

from repro.eval.runner import ToolSet, analyze_app
from repro.serve import ServeClient, ServeClientError, start_server
from repro.serve.jobs import JobState
from repro.workload.appgen import ForgedApp
from repro.workload.groundtruth import GroundTruth

from .conftest import serve_apk, serve_apk_doc


class TestEndToEnd:
    def test_daemon_results_match_serial_analysis(
        self, make_service, framework, apidb
    ):
        service = make_service()
        docs = {tag: serve_apk_doc(tag) for tag in ("e0", "e1", "e2")}
        jobs = {tag: service.submit(doc) for tag, doc in docs.items()}
        toolset = ToolSet.default(
            framework, apidb, include=("SAINTDroid",)
        )
        for tag, job in jobs.items():
            done = service.wait(job.id, timeout_s=60.0)
            assert done is not None and done.terminal
            assert done.state is JobState.COMPLETED
            apk = serve_apk(tag)
            expected = analyze_app(
                toolset,
                ForgedApp(apk=apk, truth=GroundTruth(app=apk.name)),
            )
            assert (
                done.result.fingerprint() == expected.fingerprint()
            )

    def test_duplicate_fingerprint_answered_from_cache(
        self, make_service
    ):
        service = make_service()
        first = service.submit(serve_apk_doc("twin"))
        assert service.wait(first.id, timeout_s=60.0).terminal
        second = service.submit(serve_apk_doc("twin"))
        assert second.terminal and second.dedup
        assert second.result is first.result
        assert service.health()["queue"]["dedup_hits"] == 1


class TestHttp:
    def test_http_submit_wait_and_health(self, make_service):
        service = make_service()
        server = start_server(service)
        try:
            host, port = server.server_address[:2]
            client = ServeClient(f"http://{host}:{port}")
            ok, ready_doc = client.readyz()
            assert ok, ready_doc
            doc = client.submit(serve_apk("http"))
            done = client.wait(doc["id"], timeout_s=60.0)
            assert done["state"] == "completed"
            result = ServeClient.result_of(done)
            assert result.ok
            health = client.healthz()
            assert health["status"] == "ok"
            assert health["pool"]["alive"] == 2
        finally:
            server.shutdown()
            server.server_close()

    def test_http_rejections_carry_status_codes(self, make_service):
        service = make_service(max_apk_bytes=64)
        server = start_server(service)
        try:
            host, port = server.server_address[:2]
            client = ServeClient(f"http://{host}:{port}")
            with pytest.raises(ServeClientError) as oversize:
                client.submit(serve_apk("fat"))
            assert oversize.value.status == 413
            with pytest.raises(ServeClientError) as malformed:
                client.submit({"garbage": True})
            assert malformed.value.status == 400
            with pytest.raises(ServeClientError) as missing:
                client.job("job-does-not-exist")
            assert missing.value.status == 404
        finally:
            server.shutdown()
            server.server_close()


class TestDrain:
    def test_drain_finishes_in_flight_then_refuses(
        self, make_service
    ):
        service = make_service()
        job = service.submit(serve_apk_doc("dr"))
        assert service.drain(timeout_s=60.0) == "drained"
        assert job.terminal  # in-flight work finished, not dropped
        assert service.drained.is_set()
        with pytest.raises(Exception) as closed:
            service.submit(serve_apk_doc("late"))
        assert getattr(closed.value, "status", None) == 503
        assert service.health()["status"] == "drained"
        ok, doc = service.ready()
        assert not ok

    def test_drain_is_idempotent(self, make_service):
        service = make_service()
        assert service.drain(timeout_s=60.0) == "drained"
        assert service.drain(timeout_s=60.0) == "drained"

    def test_concurrent_drains_collapse_to_one(self, make_service):
        service = make_service()
        for tag in ("c0", "c1", "c2", "c3"):
            service.submit(serve_apk_doc(tag))
        outcomes = []
        threads = [
            threading.Thread(
                target=lambda: outcomes.append(
                    service.drain(timeout_s=60.0)
                )
            )
            for _ in range(3)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(90.0)
        assert "drained" in outcomes
        # Losers either reported in-progress or arrived after the
        # winner finished; nobody deadlocked or double-closed.
        assert all(o in ("drained", "already-draining") for o in outcomes)
        assert service.drained.is_set()


class TestRecovery:
    def test_restart_replays_pending_and_adopts_terminal(
        self, make_service, tmp_path
    ):
        wal = str(tmp_path / "recovery.jsonl")
        first = make_service(journal=wal)
        done_job = first.submit(serve_apk_doc("kept"))
        assert first.wait(done_job.id, timeout_s=60.0).terminal
        # Queue a job and tear the daemon down WITHOUT letting the
        # dispatcher finish it: close the pool out from under the
        # service the way a crash would, journal intact.
        first.queue.close()
        first.drain(timeout_s=60.0)
        # Simulate the lost job: append a job record with no result.
        from repro.serve.jobs import Job, new_job_id
        from repro.serve.journal import ServeJournal

        apk = serve_apk("lost")
        journal = ServeJournal(wal, tools=("SAINTDroid",))
        pending = Job(
            id="job-lost", seq=99, app=apk.name, fingerprint=None
        )
        journal.append_job(pending, apk)
        journal.close()

        second = make_service(journal=wal)
        recovery = second.health()["recovery"]
        assert recovery["terminal"] >= 1
        assert recovery["pending"] >= 1
        # The finished job was adopted terminally — NOT re-run.
        adopted = second.job(done_job.id)
        assert adopted is not None and adopted.terminal
        assert adopted.replayed
        assert (
            adopted.result.fingerprint()
            == done_job.result.fingerprint()
        )
        # The unfinished job was replayed to completion.
        replayed = second.wait("job-lost", timeout_s=60.0)
        assert replayed is not None and replayed.terminal
        assert replayed.replayed
        assert second.health()["queue"]["replayed"] >= 1
        # Fresh submissions never collide with recovered sequence ids.
        fresh = second.submit(serve_apk_doc("fresh"))
        assert fresh.seq > 99


class TestStatsz:
    def test_statsz_reports_cumulative_cache_counters(
        self, make_service, tmp_path
    ):
        """The capacity-planning endpoint: a dedup daemon's class-store
        hit rate is visible (and climbs) as its corpus streams in."""
        service = make_service(
            dedup=True, cache_dir=str(tmp_path / "statsz-cache")
        )
        for tag in ("s0", "s1", "s2"):
            job = service.submit(serve_apk_doc(tag))
            done = service.wait(job.id, timeout_s=60.0)
            assert done is not None and done.terminal

        server = start_server(service)
        try:
            host, port = server.server_address[:2]
            doc = ServeClient(f"http://{host}:{port}").statsz()
        finally:
            server.shutdown()
            server.server_close()

        assert doc["dedup"] is True
        assert doc["uptime_s"] >= 0.0
        assert "hits" in doc["result_cache"]
        caches = doc["worker_caches"]
        assert caches["workers"] >= 1
        assert "hit_rate" in caches["framework"]
        assert "hit_rate" in caches["apidb"]
        classes = caches["classes"]
        assert classes["hits"] + classes["misses"] > 0
        assert 0.0 <= classes["hit_rate"] <= 1.0
        assert "store_sizes" in doc

        # Drain flushes worker stores and adopts their manifest rows:
        # the on-disk footprint per store becomes visible.
        service.drain(timeout_s=30.0)
        sizes = service.statsz()["store_sizes"]
        assert sizes["classes"]["entries"] > 0
        assert sizes["classes"]["bytes"] > 0

    def test_statsz_without_cache_dir_is_still_live(self, make_service):
        service = make_service()
        doc = service.statsz()
        assert doc["dedup"] is False
        assert doc["result_cache"] is None
        assert "store_sizes" not in doc
