"""Tests for the command-line interface."""

import json

import pytest

from repro.apk.serialization import save_apk
from repro.cli import build_parser, main
from repro.ir.builder import ClassBuilder

from tests.conftest import activity_class, make_apk


@pytest.fixture()
def listing1_path(tmp_path):
    builder = ClassBuilder("com.test.app.Screen")
    method = builder.method("render")
    method.invoke_virtual(
        "android.content.Context", "getColorStateList",
        "(int)android.content.res.ColorStateList",
    )
    method.return_void()
    builder.finish(method)
    apk = make_apk([activity_class(), builder.build()],
                   min_sdk=21, target_sdk=28)
    path = tmp_path / "app.sapk"
    save_apk(apk, path)
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_analyze_defaults(self):
        args = build_parser().parse_args(["analyze", "x.sapk"])
        assert args.tool == "SAINTDroid"
        assert not args.eager


class TestCommands:
    def test_analyze_text(self, listing1_path, capsys):
        assert main(["analyze", str(listing1_path)]) == 0
        out = capsys.readouterr().out
        assert "getColorStateList" in out
        assert "API=1" in out

    def test_analyze_json(self, listing1_path, capsys):
        assert main(["analyze", str(listing1_path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["tool"] == "SAINTDroid"
        assert payload["mismatches"][0]["kind"] == "API"
        assert payload["mismatches"][0]["missingLevels"] == [21, 22]

    def test_analyze_with_baseline(self, listing1_path, capsys):
        assert main(["analyze", str(listing1_path), "--tool", "Lint"]) == 0
        assert "Lint analysis" in capsys.readouterr().out

    def test_table1(self, capsys):
        assert main(["table", "1"]) == 0
        assert "Table I" in capsys.readouterr().out

    def test_table4(self, capsys):
        assert main(["table", "4"]) == 0
        out = capsys.readouterr().out
        assert "SAINTDroid" in out and "CIDER" in out

    def test_figure1(self, capsys):
        assert main(["figure", "1", "--app-level", "23"]) == 0
        assert "compatible" in capsys.readouterr().out

    def test_apidb_query(self, capsys):
        assert main([
            "apidb", "android.app.Activity",
            "getColorStateList(int)android.content.res.ColorStateList",
        ]) == 0
        out = capsys.readouterr().out
        assert "23..29" in out

    def test_apidb_class_listing(self, capsys):
        assert main(["apidb", "android.app.Fragment"]) == 0
        out = capsys.readouterr().out
        assert "onAttach(android.content.Context)void" in out
        assert "[callback]" in out

    def test_apidb_unknown_class(self, capsys):
        assert main(["apidb", "no.such.Class"]) == 1

    def test_gen_bench_writes_files(self, tmp_path, capsys):
        assert main(["gen-bench", str(tmp_path), "--scale", "0.01"]) == 0
        sapks = list(tmp_path.glob("*.sapk"))
        truths = list(tmp_path.glob("*.truth.json"))
        assert len(sapks) == 19
        assert len(truths) == 19
        doc = json.loads(truths[0].read_text())
        assert "issues" in doc


class TestVerifyAndRepairCommands:
    @pytest.fixture()
    def buggy_path(self, tmp_path, apidb, picker):
        from repro.workload.appgen import AppForge
        forge = AppForge(
            "com.cli.buggy", "CliBuggy", min_sdk=19, target_sdk=26,
            seed=8, apidb=apidb, picker=picker,
        )
        forge.add_direct_issue()
        forge.add_anonymous_guard_trap()
        path = tmp_path / "buggy.sapk"
        save_apk(forge.build().apk, path)
        return path

    def test_verify_command(self, buggy_path, capsys):
        assert main(["verify", str(buggy_path)]) == 0
        out = capsys.readouterr().out
        assert "confirmed" in out
        assert "refuted" in out

    def test_repair_command(self, buggy_path, tmp_path, capsys):
        output = tmp_path / "fixed.sapk"
        assert main([
            "repair", str(buggy_path), str(output), "--check"
        ]) == 0
        out = capsys.readouterr().out
        assert "guard-inserted" in out
        assert output.exists()
        assert "re-analysis" in out


class TestUpdateImpactCommand:
    def test_breaking_update_exit_code(self, tmp_path, capsys):
        from repro.ir import ClassBuilder
        builder = ClassBuilder("com.cli.net.Net")
        method = builder.method("fetch")
        method.invoke_virtual(
            "org.apache.http.client.HttpClient", "execute",
            "(org.apache.http.HttpRequest)org.apache.http.HttpResponse",
        )
        method.return_void()
        builder.finish(method)
        apk = make_apk([activity_class("com.cli.net"), builder.build()],
                       package="com.cli.net", min_sdk=14, target_sdk=22)
        path = tmp_path / "net.sapk"
        save_apk(apk, path)
        code = main([
            "update-impact", str(path), "--from", "22", "--to", "23",
        ])
        out = capsys.readouterr().out
        assert code == 2  # behaviour changes
        assert "BREAKS" in out

    def test_stable_update_exit_code(self, simple_apk, tmp_path, capsys):
        path = tmp_path / "stable.sapk"
        save_apk(simple_apk, path)
        code = main([
            "update-impact", str(path), "--from", "21", "--to", "26",
        ])
        assert code == 0
        assert "stable" in capsys.readouterr().out


class TestDeviceScopeOption:
    def test_devices_flag_scopes_findings(self, listing1_path, capsys):
        assert main([
            "analyze", str(listing1_path), "--devices", "23", "29",
        ]) == 0
        out = capsys.readouterr().out
        assert "API=0" in out


class TestCliErrorHandling:
    def test_missing_file(self, capsys):
        assert main(["analyze", "/no/such/file.sapk"]) == 1
        assert "no such file" in capsys.readouterr().err

    def test_invalid_package(self, tmp_path, capsys):
        bad = tmp_path / "bad.sapk"
        bad.write_text("{not json")
        assert main(["analyze", str(bad)]) == 1
        assert "not a valid .sapk" in capsys.readouterr().err


class TestPassesCommand:
    def test_lists_every_tool(self, capsys):
        assert main(["passes"]) == 0
        out = capsys.readouterr().out
        for tool in ("SAINTDroid", "CID", "CIDER", "Lint"):
            assert tool in out
        assert "manifest-ingest" in out
        assert "lint-build" in out

    def test_tool_filter(self, capsys):
        assert main(["passes", "--tool", "CIDER"]) == 0
        out = capsys.readouterr().out
        assert "cider-load" in out
        assert "manifest-ingest" not in out

    def test_eager_configuration_shows_the_extra_pass(self, capsys):
        assert main(["passes", "--tool", "SAINTDroid"]) == 0
        lazy_out = capsys.readouterr().out
        assert main(["passes", "--tool", "SAINTDroid", "--eager"]) == 0
        eager_out = capsys.readouterr().out
        assert "eager-load" not in lazy_out
        assert "eager-load" in eager_out


class TestPassSelectionFlags:
    def test_skip_pass_removes_findings(self, listing1_path, capsys):
        assert main([
            "analyze", str(listing1_path), "--skip-pass", "detect-api",
        ]) == 0
        assert "API=0" in capsys.readouterr().out

    def test_unknown_pass_exits_2(self, listing1_path, capsys):
        assert main([
            "analyze", str(listing1_path), "--skip-pass", "bogus",
        ]) == 2
        err = capsys.readouterr().err
        assert "available:" in err

    def test_starved_only_selection_exits_2(self, listing1_path, capsys):
        assert main([
            "analyze", str(listing1_path), "--only-pass", "detect-api",
        ]) == 2
        assert "requires" in capsys.readouterr().err


class TestAnalyzeExitCodes:
    def test_failed_analysis_exits_2(self, tmp_path, capsys):
        # Lint on an unbuildable app: the report is produced (failed,
        # no findings) and the exit code is nonzero for scripts.
        apk = make_apk([activity_class()], buildable=False)
        path = tmp_path / "unbuildable.sapk"
        save_apk(apk, path)
        assert main(["analyze", str(path), "--tool", "Lint"]) == 2
        assert "Lint" in capsys.readouterr().out

    def test_failed_analysis_json_carries_reason(self, tmp_path, capsys):
        apk = make_apk([activity_class()], buildable=False)
        path = tmp_path / "unbuildable.sapk"
        save_apk(apk, path)
        assert main([
            "analyze", str(path), "--tool", "Lint", "--json",
        ]) == 2
        payload = json.loads(capsys.readouterr().out)
        assert payload["failed"] is True
        assert payload["failureReason"]
