"""Tests for pipeline configurations: tools as pass tuples."""

import pytest

from repro.baselines.passes import (
    cid_pipeline,
    cider_pipeline,
    lint_pipeline,
)
from repro.pipeline import (
    Pass,
    PipelineConfig,
    SAINTDROID_PHASES,
    saintdroid_pipeline,
)


class _Produces(Pass):
    name = "produces"
    provides = ("thing",)

    def run(self, ctx):
        ctx.provide("thing", 1)


class _Consumes(Pass):
    name = "consumes"
    requires = ("thing",)

    def run(self, ctx):
        ctx.get("thing")


class TestValidation:
    def test_duplicate_pass_name_rejected(self):
        with pytest.raises(ValueError, match="twice"):
            PipelineConfig(
                tool="broken", passes=(_Produces(), _Produces())
            )

    def test_require_without_provider_rejected(self):
        with pytest.raises(ValueError, match="no earlier pass"):
            PipelineConfig(tool="broken", passes=(_Consumes(),))

    def test_provider_must_come_first(self):
        # Dataflow is positional: a later provider does not satisfy an
        # earlier consumer.
        with pytest.raises(ValueError, match="no earlier pass"):
            PipelineConfig(
                tool="broken", passes=(_Consumes(), _Produces())
            )

    def test_provider_of_names_the_first_provider(self):
        config = PipelineConfig(
            tool="ok", passes=(_Produces(), _Consumes())
        )
        assert config.provider_of("thing") == "produces"
        assert config.provider_of("missing") is None


class TestSaintDroidConfig:
    def test_lazy_pass_order(self):
        config = saintdroid_pipeline()
        assert config.pass_names == (
            "manifest-ingest",
            "clvm-load",
            "icfg-explore",
            "guard-propagation",
            "override-collection",
            "permission-annotation",
            "detect-api",
            "detect-apc",
            "detect-prm",
            "detect-sem",
        )
        assert config.phase_keys == SAINTDROID_PHASES
        assert not config.single_detect_phase
        assert config.modeled_budget_s is None

    def test_eager_ablation_inserts_one_pass(self):
        lazy = saintdroid_pipeline(lazy_loading=True)
        eager = saintdroid_pipeline(lazy_loading=False)
        assert set(eager.pass_names) - set(lazy.pass_names) == {
            "eager-load"
        }
        # The eager load runs after modeling, before detection.
        names = eager.pass_names
        assert names.index("eager-load") < names.index("detect-api")
        assert names.index("eager-load") > names.index(
            "permission-annotation"
        )

    def test_anonymous_ablation_is_a_constructor_knob(self):
        config = saintdroid_pipeline(
            propagate_guards_into_anonymous=True
        )
        guard = config.passes[config.pass_names.index(
            "guard-propagation"
        )]
        assert guard._into_anonymous is True


class TestBaselineConfigs:
    @pytest.mark.parametrize(
        "factory,tool,names",
        [
            (cid_pipeline, "CID",
             ("cid-load", "cid-scan", "cid-detect-api")),
            (cider_pipeline, "CIDER",
             ("cider-load", "cider-detect-apc")),
            (lint_pipeline, "Lint",
             ("lint-build", "lint-source-scan", "lint-detect-api")),
        ],
    )
    def test_baseline_shape(self, factory, tool, names):
        config = factory()
        assert config.tool == tool
        assert config.pass_names == names
        # Baselines model monolithic tools: one detect bucket covering
        # the whole wall time, under the paper's analysis budget.
        assert config.single_detect_phase
        assert config.modeled_budget_s == 600.0
