"""Tests for the pass manager: hooks, selection, finalize contract."""

import pytest

from repro.baselines import Cid
from repro.core import SaintDroid
from repro.ir.builder import ClassBuilder
from repro.pipeline import (
    Pass,
    PassManager,
    PipelineConfig,
    PipelineError,
    PipelineHook,
)

from tests.conftest import activity_class, make_apk


def busy_apk():
    """Three mismatch kinds in one app: an unguarded API invocation,
    an unhandled callback, and a permission request."""
    invoker = ClassBuilder(
        "com.test.app.Screen", super_name="android.app.Activity"
    )
    method = invoker.method("render")
    method.invoke_virtual(
        "android.content.Context", "getColorStateList",
        "(int)android.content.res.ColorStateList",
    )
    method.invoke_virtual(
        "android.hardware.Camera", "open", "()android.hardware.Camera"
    )
    method.return_void()
    invoker.finish(method)
    fragment = ClassBuilder(
        "com.test.app.GameFragment", super_name="android.app.Fragment"
    )
    fragment.empty_method("onAttach", "(android.content.Context)void")
    return make_apk(
        [activity_class(), invoker.build(), fragment.build()],
        min_sdk=14, target_sdk=28,
    )


class _Recorder(PipelineHook):
    def __init__(self):
        self.events = []

    def on_pass_start(self, ctx, pass_):
        self.events.append(("start", pass_.name))

    def on_pass_end(self, ctx, pass_, seconds):
        assert seconds >= 0.0
        self.events.append(("end", pass_.name))

    def on_pass_error(self, ctx, pass_, exc):
        self.events.append(("error", pass_.name, type(exc).__name__))


@pytest.fixture(scope="module")
def detector(framework, apidb):
    return SaintDroid(framework, apidb)


class TestHooks:
    def test_start_end_pairs_in_pipeline_order(
        self, detector, simple_apk
    ):
        recorder = _Recorder()
        detector.analyze(simple_apk, hooks=(recorder,))
        starts = [name for kind, name in recorder.events
                  if kind == "start"]
        assert tuple(starts) == detector.passes
        # Every start is immediately followed by its own end.
        for position in range(0, len(recorder.events), 2):
            kind, name = recorder.events[position]
            assert (kind, recorder.events[position + 1]) == (
                "start", ("end", name)
            )

    def test_error_hook_fires_and_exception_propagates(
        self, framework, apidb, simple_apk
    ):
        class Boom(Pass):
            name = "boom"

            def run(self, ctx):
                raise RuntimeError("kaboom")

        manager = PassManager(
            PipelineConfig(tool="test", passes=(Boom(),)),
            framework, apidb,
        )
        recorder = _Recorder()
        with pytest.raises(RuntimeError, match="kaboom"):
            manager.run(simple_apk, hooks=(recorder,))
        assert recorder.events == [
            ("start", "boom"), ("error", "boom", "RuntimeError")
        ]


class TestSelection:
    def test_skip_pass_drops_its_findings(self, detector):
        full = detector.analyze(busy_apk())
        trimmed = detector.analyze(
            busy_apk(), skip_passes=("detect-apc",)
        )
        assert full.by_kind().get("APC", 0) == 1
        assert trimmed.by_kind().get("APC", 0) == 0
        assert trimmed.by_kind()["API"] == full.by_kind()["API"]

    def test_only_pass_runs_a_prefix(self, detector):
        report = detector.analyze(
            busy_apk(),
            only_passes=(
                "manifest-ingest", "clvm-load", "icfg-explore",
                "guard-propagation", "permission-annotation",
                "detect-api",
            ),
        )
        assert report.by_kind().get("API", 0) >= 1
        assert report.by_kind().get("APC", 0) == 0

    def test_unknown_pass_name_is_a_pipeline_error(self, detector):
        with pytest.raises(PipelineError, match="available:"):
            detector.analyze(busy_apk(), skip_passes=("bogus",))

    def test_starved_selection_names_the_providers(self, detector):
        with pytest.raises(PipelineError) as excinfo:
            detector.analyze(busy_apk(), only_passes=("detect-api",))
        message = str(excinfo.value)
        assert "requires" in message
        assert "manifest-ingest" in message


class TestFinalize:
    def test_mismatches_sorted_by_key(self, detector):
        report = detector.analyze(busy_apk())
        assert len(report.mismatches) >= 3
        keys = [m.sort_key for m in report.mismatches]
        assert keys == sorted(keys)

    def test_pass_seconds_covers_every_pass(self, detector, simple_apk):
        report = detector.analyze(simple_apk)
        assert tuple(report.metrics.pass_seconds) == detector.passes
        assert all(
            seconds >= 0.0
            for seconds in report.metrics.pass_seconds.values()
        )

    def test_saintdroid_phase_vocabulary(self, detector, simple_apk):
        report = detector.analyze(simple_apk)
        assert set(report.metrics.phase_seconds) == {
            "load", "explore", "guards", "detect"
        }
        assert report.metrics.phase_seconds["load"] == 0.0

    def test_baseline_single_detect_phase(
        self, framework, apidb, simple_apk
    ):
        report = Cid(framework, apidb).analyze(simple_apk)
        metrics = report.metrics
        assert set(metrics.phase_seconds) == {"detect"}
        assert metrics.phase_seconds["detect"] == metrics.wall_time_s
