"""Tests for the pass registry and the Pass base class."""

import pytest

import repro.baselines.passes  # noqa: F401 — registers baseline passes
from repro.pipeline import Pass, register_pass, registered_passes

SAINTDROID_PASSES = {
    "manifest-ingest",
    "clvm-load",
    "icfg-explore",
    "eager-load",
    "guard-propagation",
    "override-collection",
    "permission-annotation",
    "detect-api",
    "detect-apc",
    "detect-prm",
}

BASELINE_PASSES = {
    "cid-load",
    "cid-scan",
    "cid-detect-api",
    "cider-load",
    "cider-detect-apc",
    "lint-build",
    "lint-source-scan",
    "lint-detect-api",
}


class TestRegistry:
    def test_every_stage_is_registered(self):
        names = set(registered_passes())
        assert SAINTDROID_PASSES <= names
        assert BASELINE_PASSES <= names

    def test_registry_is_sorted_by_name(self):
        names = list(registered_passes())
        assert names == sorted(names)

    def test_duplicate_name_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            @register_pass
            class Impostor(Pass):
                name = "manifest-ingest"

    def test_nameless_pass_rejected(self):
        with pytest.raises(ValueError, match="no pass name"):
            @register_pass
            class Nameless(Pass):
                pass

    def test_reregistering_same_class_is_idempotent(self):
        cls = registered_passes()["manifest-ingest"]
        assert register_pass(cls) is cls


class TestPassBase:
    def test_describe_is_first_docstring_line(self):
        class Documented(Pass):
            """Summary line.

            Body paragraph the listing must not show.
            """
            name = "documented"

        assert Documented().describe() == "Summary line."

    def test_describe_falls_back_to_name(self):
        class Undocumented(Pass):
            name = "undocumented"

        Undocumented.__doc__ = None
        assert Undocumented().describe() == "undocumented"

    def test_run_is_abstract(self):
        with pytest.raises(NotImplementedError):
            Pass().run(None)

    def test_declared_dataflow_matches_registry(self):
        # Every registered pass declares tuples, never mutable lists.
        for cls in registered_passes().values():
            assert isinstance(cls.requires, tuple)
            assert isinstance(cls.provides, tuple)
