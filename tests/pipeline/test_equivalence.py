"""Pipeline-equivalence guarantees.

Two invariants the refactor must preserve forever:

* the two CLVM loading strategies are *accuracy-equivalent* — eager
  and lazy configurations find exactly the same mismatch keys (they
  differ only in cost accounting);
* the scheduler is *fingerprint-irrelevant* — serial, process-pool,
  and cache-warm executions of the same corpus produce bit-identical
  run fingerprints, because all three drive the same pipeline object
  through the same orchestration engine.
"""

import pytest

from repro.core import SaintDroid
from repro.eval import ToolSet, run_tools
from repro.workload.corpus import CorpusConfig, generate_corpus

CORPUS = CorpusConfig(count=8, kloc_median=1.0, kloc_max=3.0)


@pytest.fixture(scope="module")
def corpus(apidb):
    return [m.forged for m in generate_corpus(CORPUS, apidb)]


class TestLoadingParity:
    """Satellite: eager and lazy loading agree on every finding."""

    def test_same_mismatch_keys_on_every_app(
        self, framework, apidb, corpus
    ):
        lazy = SaintDroid(framework, apidb, lazy_loading=True)
        eager = SaintDroid(framework, apidb, lazy_loading=False)
        compared = 0
        for forged in corpus:
            lazy_report = lazy.analyze(forged.apk)
            eager_report = eager.analyze(forged.apk)
            assert lazy_report.keys == eager_report.keys
            compared += len(lazy_report.keys)
        assert compared > 0  # the corpus actually exercised findings

    def test_configs_differ_only_in_load_accounting(
        self, framework, apidb, corpus
    ):
        lazy = SaintDroid(framework, apidb, lazy_loading=True)
        eager = SaintDroid(framework, apidb, lazy_loading=False)
        apk = corpus[0].apk
        lazy_metrics = lazy.analyze(apk).metrics
        eager_metrics = eager.analyze(apk).metrics
        assert lazy_metrics.phase_seconds["load"] == 0.0
        assert eager_metrics.phase_seconds["load"] > 0.0
        assert "eager-load" not in lazy_metrics.pass_seconds
        assert "eager-load" in eager_metrics.pass_seconds


class TestSchedulerEquivalence:
    """Serial, parallel, and cache-warm runs share one fingerprint."""

    def test_three_ways_one_fingerprint(
        self, framework, apidb, corpus, tmp_path
    ):
        cache_dir = tmp_path / "cache"
        toolset = ToolSet.default(
            framework, apidb, include=("SAINTDroid", "CID")
        )
        serial = run_tools(
            corpus, toolset, cache_dir=cache_dir
        )
        parallel = run_tools(
            corpus, toolset, jobs=2, cache_dir=cache_dir
        )
        warm = run_tools(corpus, toolset, cache_dir=cache_dir)
        assert serial.fingerprint() == parallel.fingerprint()
        assert serial.fingerprint() == warm.fingerprint()
        # The warm run did no analysis: every app came from the cache
        # the serial run populated.
        assert len(warm.cached_indices) == len(corpus)

    def test_skipping_cache_still_matches(
        self, framework, apidb, corpus
    ):
        toolset = ToolSet.default(
            framework, apidb, include=("SAINTDroid",)
        )
        cold = run_tools(corpus, toolset)
        pooled = run_tools(corpus, toolset, jobs=2)
        assert cold.fingerprint() == pooled.fingerprint()
