"""Unit tests for framework revision histories."""

import pytest

from repro.framework.spec import ClassHistory, FrameworkSpec, MethodHistory
from repro.ir.types import MethodRef


class TestMethodHistory:
    def test_exists_within_lifetime(self):
        history = MethodHistory("m", introduced=11, removed=23)
        assert not history.exists_at(10)
        assert history.exists_at(11)
        assert history.exists_at(22)
        assert not history.exists_at(23)

    def test_never_removed(self):
        history = MethodHistory("m", introduced=5)
        assert history.exists_at(29)
        assert history.lifetime == (5, 29)

    def test_lifetime_with_removal(self):
        history = MethodHistory("m", introduced=5, removed=9)
        assert history.lifetime == (5, 8)

    def test_removed_must_follow_introduced(self):
        with pytest.raises(ValueError):
            MethodHistory("m", introduced=10, removed=10)

    def test_introduced_bounds(self):
        with pytest.raises(ValueError):
            MethodHistory("m", introduced=1)

    def test_signature(self):
        assert MethodHistory("m", "(int)void").signature == "m(int)void"


class TestClassHistory:
    def test_methods_at_filters_by_level(self):
        history = ClassHistory(
            "android.x.C",
            methods=(
                MethodHistory("old", introduced=2),
                MethodHistory("new", introduced=23),
            ),
        )
        assert {m.name for m in history.methods_at(22)} == {"old"}
        assert {m.name for m in history.methods_at(23)} == {"old", "new"}

    def test_absent_class_has_no_methods(self):
        history = ClassHistory(
            "android.x.C", introduced=11,
            methods=(MethodHistory("m", introduced=11),),
        )
        assert history.methods_at(10) == ()

    def test_method_cannot_predate_class(self):
        with pytest.raises(ValueError):
            ClassHistory(
                "android.x.C", introduced=11,
                methods=(MethodHistory("m", introduced=5),),
            )

    def test_duplicate_method_histories_rejected(self):
        with pytest.raises(ValueError):
            ClassHistory(
                "android.x.C",
                methods=(MethodHistory("m"), MethodHistory("m")),
            )


def tiny_spec():
    return FrameworkSpec(
        (
            ClassHistory("java.lang.Object", super_name=None),
            ClassHistory(
                "android.x.Base",
                methods=(
                    MethodHistory("shared", introduced=2),
                    MethodHistory("later", introduced=21),
                ),
            ),
            ClassHistory(
                "android.x.Child",
                super_name="android.x.Base",
                introduced=5,
                methods=(MethodHistory("own", introduced=5),),
            ),
        )
    )


class TestFrameworkSpec:
    def test_method_exists_with_inheritance(self):
        spec = tiny_spec()
        assert spec.method_exists("android.x.Child", "own()void", 5)
        assert spec.method_exists("android.x.Child", "shared()void", 5)
        assert not spec.method_exists("android.x.Child", "later()void", 20)
        assert spec.method_exists("android.x.Child", "later()void", 21)

    def test_method_exists_respects_class_lifetime(self):
        spec = tiny_spec()
        assert not spec.method_exists("android.x.Child", "own()void", 4)

    def test_find_method_walks_ancestors(self):
        spec = tiny_spec()
        found = spec.find_method("android.x.Child", "shared()void")
        assert found is not None and found.name == "shared"
        assert spec.find_method("android.x.Child", "nope()void") is None

    def test_supertype_chain(self):
        spec = tiny_spec()
        assert spec.supertype_chain("android.x.Child") == (
            "android.x.Base", "java.lang.Object",
        )

    def test_class_names_at(self):
        spec = tiny_spec()
        assert "android.x.Child" not in spec.class_names_at(4)
        assert "android.x.Child" in spec.class_names_at(5)

    def test_duplicate_class_rejected(self):
        with pytest.raises(ValueError):
            FrameworkSpec(
                (ClassHistory("android.x.A"), ClassHistory("android.x.A"))
            )

    def test_validate_rejects_unknown_super(self):
        spec = FrameworkSpec(
            (ClassHistory("android.x.A", super_name="android.x.Missing"),)
        )
        with pytest.raises(ValueError, match="unknown super"):
            spec.validate()

    def test_validate_rejects_super_introduced_later(self):
        spec = FrameworkSpec(
            (
                ClassHistory("android.x.Late", introduced=21),
                ClassHistory(
                    "android.x.A", super_name="android.x.Late", introduced=2
                ),
            )
        )
        with pytest.raises(ValueError, match="introduced later"):
            spec.validate()

    def test_validate_rejects_dangling_call_target(self):
        spec = FrameworkSpec(
            (
                ClassHistory(
                    "android.x.A",
                    methods=(
                        MethodHistory(
                            "m",
                            calls=(MethodRef("android.x.Gone", "g"),),
                        ),
                    ),
                ),
            )
        )
        with pytest.raises(ValueError, match="not in spec"):
            spec.validate()
