"""Tests for the versioned framework repository."""

import pytest

from repro.framework.repository import FrameworkRepository


class TestFrameworkRepository:
    def test_lazy_class_lookup(self, framework):
        clazz = framework.load_class("android.app.Activity", 23)
        assert clazz is not None
        assert clazz.name == "android.app.Activity"

    def test_lookup_is_cached(self, framework):
        first = framework.load_class("android.view.View", 21)
        second = framework.load_class("android.view.View", 21)
        assert first is second

    def test_absent_class_is_none_and_cached(self, framework):
        assert framework.load_class("android.app.Fragment", 10) is None
        assert framework.load_class("android.app.Fragment", 10) is None

    def test_level_bounds_enforced(self, framework):
        with pytest.raises(ValueError):
            framework.load_class("android.app.Activity", 1)
        with pytest.raises(ValueError):
            framework.load_class("android.app.Activity", 30)
        with pytest.raises(ValueError):
            framework.load_image(0)

    def test_owns_vs_defines(self, framework):
        assert framework.owns("android.future.Unknown")
        assert not framework.defines("android.future.Unknown")
        assert framework.defines("android.app.Activity")
        assert not framework.owns("com.example.app.Main")

    def test_image_has_every_alive_class(self, framework):
        image = framework.load_image(23)
        assert set(image) == set(framework.class_names(23))

    def test_image_grows_with_level_mostly(self, framework):
        # Platform growth dominates removals across the modeled range.
        assert framework.image_class_count(29) > framework.image_class_count(5)

    def test_image_instruction_count_positive(self, framework):
        assert framework.image_instruction_count(23) > 10_000

    def test_default_spec_used_when_none_given(self):
        repo = FrameworkRepository()
        assert repo.defines("android.app.Activity")
