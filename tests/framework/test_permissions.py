"""Tests for the permission model."""

from repro.framework.permissions import (
    DANGEROUS_PERMISSIONS,
    PERMISSION_GROUPS,
    PermissionMap,
    is_dangerous,
)
from repro.ir.types import MethodRef


class TestDangerousPermissions:
    def test_paper_count_of_26(self):
        assert len(DANGEROUS_PERMISSIONS) == 26

    def test_no_duplicates(self):
        assert len(set(DANGEROUS_PERMISSIONS)) == len(DANGEROUS_PERMISSIONS)

    def test_nine_groups(self):
        assert len(PERMISSION_GROUPS) == 9

    def test_classification(self):
        assert is_dangerous("android.permission.CAMERA")
        assert is_dangerous("android.permission.WRITE_EXTERNAL_STORAGE")
        assert not is_dangerous("android.permission.INTERNET")
        assert not is_dangerous("android.permission.VIBRATE")

    def test_groups_cover_flat_list(self):
        flattened = {
            p for group in PERMISSION_GROUPS.values() for p in group
        }
        assert flattened == set(DANGEROUS_PERMISSIONS)


class TestPermissionMap:
    def test_deep_vs_direct(self):
        api = MethodRef("android.x.A", "m")
        pmap = PermissionMap(
            direct={},
            transitive={api: frozenset({"android.permission.CAMERA"})},
        )
        assert pmap.permissions_for(api, deep=True)
        assert not pmap.permissions_for(api, deep=False)

    def test_dangerous_filter(self):
        api = MethodRef("android.x.A", "m")
        pmap = PermissionMap(
            direct={},
            transitive={
                api: frozenset(
                    {
                        "android.permission.CAMERA",
                        "android.permission.INTERNET",
                    }
                )
            },
        )
        assert pmap.dangerous_permissions_for(api) == frozenset(
            {"android.permission.CAMERA"}
        )

    def test_add_direct_merges(self):
        api = MethodRef("android.x.A", "m")
        pmap = PermissionMap()
        pmap.add_direct(api, frozenset({"a"}))
        pmap.add_direct(api, frozenset({"b"}))
        assert pmap.direct[api] == frozenset({"a", "b"})

    def test_add_direct_ignores_empty(self):
        pmap = PermissionMap()
        pmap.add_direct(MethodRef("android.x.A", "m"), frozenset())
        assert not pmap.direct

    def test_unmapped_method_is_empty(self):
        pmap = PermissionMap()
        assert pmap.permissions_for(MethodRef("android.x.A", "m")) == frozenset()
