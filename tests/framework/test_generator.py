"""Tests for framework image materialization."""

from repro.framework.generator import (
    DISPATCH_PREFIX,
    ENFORCEMENT_METHOD,
    materialize_class,
    materialize_image,
)
from repro.ir.instructions import ConstString, Invoke


class TestMaterializeClass:
    def test_absent_class_returns_none(self, spec):
        assert materialize_class(spec, "android.app.Fragment", 10) is None
        assert materialize_class(spec, "no.such.Class", 23) is None

    def test_present_class_has_framework_origin(self, spec):
        clazz = materialize_class(spec, "android.app.Activity", 23)
        assert clazz is not None
        assert clazz.origin == "framework"
        assert clazz.super_name == "android.content.ContextWrapper"

    def test_methods_filtered_by_level(self, spec):
        at_22 = materialize_class(spec, "android.content.Context", 22)
        at_23 = materialize_class(spec, "android.content.Context", 23)
        signature = (
            "getColorStateList(int)android.content.res.ColorStateList"
        )
        assert not at_22.declares(signature)
        assert at_23.declares(signature)

    def test_callbacks_have_empty_bodies(self, spec):
        activity = materialize_class(spec, "android.app.Activity", 23)
        on_create = activity.method("onCreate(android.os.Bundle)void")
        assert len(on_create.body) == 1  # bare return: a default hook

    def test_regular_methods_have_padding(self, spec):
        context = materialize_class(spec, "android.content.Context", 23)
        method = context.method(
            "getSystemService(java.lang.String)java.lang.Object"
        )
        assert len(method.body) > 2

    def test_dispatcher_invokes_callbacks(self, spec):
        activity = materialize_class(spec, "android.app.Activity", 23)
        dispatchers = [
            m for m in activity.methods
            if m.name.startswith(DISPATCH_PREFIX)
        ]
        assert len(dispatchers) == 1
        targets = {
            i.method.name
            for i in dispatchers[0].body.instructions
            if isinstance(i, Invoke)
        }
        assert "onCreate" in targets
        assert "onRequestPermissionsResult" in targets

    def test_permission_enforcement_idiom(self, spec):
        camera = materialize_class(spec, "android.hardware.Camera", 23)
        method = camera.method("open()android.hardware.Camera")
        instructions = method.body.instructions
        enforcement_calls = [
            i for i in instructions
            if isinstance(i, Invoke) and i.method == ENFORCEMENT_METHOD
        ]
        assert len(enforcement_calls) == 1
        strings = [
            i.value for i in instructions if isinstance(i, ConstString)
        ]
        assert "android.permission.CAMERA" in strings

    def test_call_edges_filtered_by_level(self, spec):
        geocoder = materialize_class(spec, "android.location.Geocoder", 23)
        method = geocoder.method(
            "getFromLocation(double,double,int)java.util.List"
        )
        targets = {
            i.method.class_name
            for i in method.body.instructions
            if isinstance(i, Invoke)
        }
        assert "android.location.LocationManager" in targets

    def test_value_returning_method_returns(self, spec):
        context = materialize_class(spec, "android.content.Context", 23)
        method = context.method("checkSelfPermission(java.lang.String)int")
        assert method.body.terminates


class TestMaterializeImage:
    def test_image_respects_level(self, spec):
        image_22 = materialize_image(spec, 22)
        image_23 = materialize_image(spec, 23)
        assert "org.apache.http.client.HttpClient" in image_22
        assert "org.apache.http.client.HttpClient" not in image_23

    def test_image_classes_are_self_consistent(self, spec):
        image = materialize_image(spec, 21)
        for clazz in list(image.values())[:50]:
            for method in clazz.methods:
                assert method.body is None or method.body.terminates
