"""Tests for the framework catalog: curated real facts and bulk
generation determinism."""

from repro.framework.catalog import (
    build_spec,
    bulk_histories,
    curated_histories,
    default_spec,
)


class TestCuratedFacts:
    """Documented Android API facts the benchmarks rely on."""

    def test_get_color_state_list_introduced_at_23(self, spec):
        signature = (
            "getColorStateList(int)android.content.res.ColorStateList"
        )
        assert not spec.method_exists("android.content.Context", signature, 22)
        assert spec.method_exists("android.content.Context", signature, 23)

    def test_activity_inherits_context_api(self, spec):
        signature = (
            "getColorStateList(int)android.content.res.ColorStateList"
        )
        assert spec.method_exists("android.app.Activity", signature, 23)

    def test_get_fragment_manager_introduced_at_11(self, spec):
        signature = "getFragmentManager()android.app.FragmentManager"
        assert not spec.method_exists("android.app.Activity", signature, 10)
        assert spec.method_exists("android.app.Activity", signature, 11)

    def test_fragment_on_attach_context_at_23(self, spec):
        signature = "onAttach(android.content.Context)void"
        assert not spec.method_exists("android.app.Fragment", signature, 22)
        assert spec.method_exists("android.app.Fragment", signature, 23)

    def test_drawable_hotspot_changed_at_21(self, spec):
        signature = "drawableHotspotChanged(float,float)void"
        assert not spec.method_exists("android.view.View", signature, 20)
        assert spec.method_exists("android.view.View", signature, 21)

    def test_apache_http_removed_at_23(self, spec):
        signature = (
            "execute(org.apache.http.HttpRequest)org.apache.http.HttpResponse"
        )
        owner = "org.apache.http.client.HttpClient"
        assert spec.method_exists(owner, signature, 22)
        assert not spec.method_exists(owner, signature, 23)

    def test_runtime_permission_protocol_at_23(self, spec):
        request = "requestPermissions(java.lang.String[],int)void"
        result = "onRequestPermissionsResult(int,java.lang.String[],int[])void"
        assert not spec.method_exists("android.app.Activity", request, 22)
        assert spec.method_exists("android.app.Activity", request, 23)
        assert spec.method_exists("android.app.Activity", result, 23)

    def test_notification_builder_get_notification_removed_at_16(self, spec):
        signature = "getNotification()android.app.Notification"
        owner = "android.app.Notification$Builder"
        assert spec.method_exists(owner, signature, 15)
        assert not spec.method_exists(owner, signature, 16)

    def test_camera_requires_camera_permission(self, spec):
        history = spec.find_method(
            "android.hardware.Camera", "open()android.hardware.Camera"
        )
        assert "android.permission.CAMERA" in history.permissions

    def test_geocoder_calls_location_manager(self, spec):
        history = spec.find_method(
            "android.location.Geocoder",
            "getFromLocation(double,double,int)java.util.List",
        )
        assert not history.permissions  # enforcement is deeper
        assert any(
            callee.class_name == "android.location.LocationManager"
            for callee in history.calls
        )

    def test_curated_histories_have_unique_names(self):
        names = [h.name for h in curated_histories()]
        assert len(names) == len(set(names))


class TestBulkGeneration:
    def test_deterministic_for_seed(self):
        first = bulk_histories(count=40, seed=7)
        second = bulk_histories(count=40, seed=7)
        assert [h.name for h in first] == [h.name for h in second]
        assert first == second

    def test_different_seeds_differ(self):
        a = bulk_histories(count=40, seed=1)
        b = bulk_histories(count=40, seed=2)
        assert [h.name for h in a] != [h.name for h in b]

    def test_count_respected(self):
        assert len(bulk_histories(count=25, seed=0)) == 25

    def test_some_callbacks_and_permissions_exist(self):
        histories = bulk_histories(count=300, seed=3)
        callbacks = sum(
            1 for h in histories for m in h.methods if m.callback
        )
        enforcing = sum(
            1 for h in histories for m in h.methods if m.permissions
        )
        assert callbacks > 0
        assert enforcing > 0

    def test_small_spec_validates(self):
        spec = build_spec(bulk_classes=50, seed=11)
        assert len(spec) > 50  # curated + bulk

    def test_default_spec_is_cached(self):
        assert default_spec() is default_spec()
