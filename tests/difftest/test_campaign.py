"""Campaign driver: deterministic reports, end-to-end detection of a
seeded detector bug, and orchestration passthrough."""

from __future__ import annotations

import json

import pytest

from repro.difftest.campaign import (
    CampaignConfig,
    run_campaign,
    write_mutation_report,
    write_report,
)
from repro.difftest.mutation import MUTANT_CATALOG, apply_mutant
from repro.difftest.strategy import ALL_KINDS


def _config(**overrides) -> CampaignConfig:
    defaults = dict(
        seed=123, n_apps=6, coverage=False, mutation=False, shrink=True
    )
    defaults.update(overrides)
    return CampaignConfig(**defaults)


def test_fixed_seed_report_is_byte_identical(framework, apidb):
    first = run_campaign(_config(), framework=framework, apidb=apidb)
    second = run_campaign(_config(), framework=framework, apidb=apidb)
    assert first.render_report() == second.render_report()
    assert first.apps_examined == 6
    assert first.ok


def test_parallel_run_matches_serial(framework, apidb):
    serial = run_campaign(_config(), framework=framework, apidb=apidb)
    pooled = run_campaign(
        _config(jobs=2), framework=framework, apidb=apidb
    )
    assert serial.render_report() == pooled.render_report()


def test_report_shape(framework, apidb, tmp_path):
    result = run_campaign(_config(), framework=framework, apidb=apidb)
    doc = json.loads(result.render_report())
    assert doc["campaign"]["seed"] == 123
    assert doc["campaign"]["scenarioKinds"] == list(ALL_KINDS)
    assert doc["truncated"] is False
    assert len(doc["apps"]) == 6
    path = write_report(result, tmp_path / "report.json")
    assert path.read_text() == result.render_report()
    assert write_mutation_report(result, tmp_path / "mut.json") is None


def test_budget_truncation_is_recorded(framework, apidb):
    result = run_campaign(
        _config(budget_s=0.0), framework=framework, apidb=apidb
    )
    assert result.truncated
    assert result.apps_examined < 6


@pytest.mark.slow
def test_campaign_catches_and_shrinks_seeded_bug(
    framework, apidb, tmp_path
):
    """End-to-end acceptance: an interval-logic mutant in the detector
    is caught by the coverage apps, shrunk to <= 3 scenarios, and
    written out as a pytest regression file."""
    mutant = next(
        m for m in MUTANT_CATALOG if m.name == "refine-lt-off-by-one"
    )
    corpus = tmp_path / "corpus"
    config = CampaignConfig(
        seed=2026,
        n_apps=len(ALL_KINDS),
        coverage=True,
        mutation=False,
        shrink=True,
        corpus_dir=str(corpus),
    )
    with apply_mutant(mutant):
        result = run_campaign(config, framework=framework, apidb=apidb)

    assert not result.ok
    assert result.disagreements
    assert result.shrink_results
    for shrunk in result.shrink_results:
        assert len(shrunk.plan.scenarios) <= 3
    written = sorted(corpus.glob("test_regression_*.py"))
    assert written
    names = {
        entry.get("regressionFile") for entry in result.disagreements
    }
    assert {path.name for path in written} <= names
