"""SEM scenarios under the differential oracle.

The acceptance bar for the new kind: the coverage plans now include
``semantic`` and ``semantic-guarded`` apps, the oracle agrees with the
static detector on both (zero disagreements), and a seeded semantic
issue can never hide — stripping it from the report surfaces a
``STATIC_FN`` with kind ``SEM``.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.difftest.campaign import CampaignConfig, run_campaign
from repro.difftest.oracle import Classification, DISAGREEMENTS
from repro.difftest.strategy import ALL_KINDS, materialize, plan_apps

SEM_KINDS = ("semantic", "semantic-guarded")


def test_coverage_includes_sem_kinds():
    assert set(SEM_KINDS) <= set(ALL_KINDS)


@pytest.fixture(scope="module")
def coverage(tool, oracle, apidb, picker):
    """kind -> (forged app, static report, oracle records)."""
    out = {}
    for plan in plan_apps(2026, len(ALL_KINDS), coverage=True):
        kind = plan.scenarios[0].kind
        if kind not in SEM_KINDS:
            continue
        forged = materialize(plan, apidb, picker)
        report = tool.analyze(forged.apk)
        out[kind] = (forged, report, oracle.examine(forged, report))
    return out


def test_both_sem_kinds_materialize(coverage):
    assert set(coverage) == set(SEM_KINDS)


def test_sem_coverage_never_disagrees(coverage):
    for kind, (_, _, records) in coverage.items():
        bad = [r for r in records if r.classification in DISAGREEMENTS]
        assert not bad, f"{kind}: {bad}"


def test_semantic_issue_is_confirmed(coverage):
    _, report, records = coverage["semantic"]
    assert any(m.kind.value == "SEM" for m in report.mismatches)
    assert Classification.AGREE_CONFIRMED in {
        r.classification for r in records
    }


def test_guarded_semantic_is_silent(coverage):
    _, report, records = coverage["semantic-guarded"]
    assert not any(m.kind.value == "SEM" for m in report.mismatches)
    assert not any(
        r.classification in DISAGREEMENTS for r in records
    )


def test_suppressed_sem_finding_becomes_static_fn(oracle, coverage):
    """Zero-static-FN acceptance: drop the SEM finding and the
    interpreter-observed behavior change must convict the detector."""
    forged, report, _ = coverage["semantic"]
    kept = tuple(
        m for m in report.mismatches if m.kind.value != "SEM"
    )
    records = oracle.examine(forged, replace(report, mismatches=kept))
    fn = [
        r for r in records
        if r.classification is Classification.STATIC_FN
    ]
    assert fn
    assert all(r.kind == "SEM" for r in fn)
    assert all(r.level is not None for r in fn)


@pytest.mark.slow
def test_short_campaign_with_sem_kinds(framework, apidb):
    """A coverage-prefixed campaign (one app per scenario kind,
    including both SEM kinds) completes without a disagreement."""
    result = run_campaign(
        CampaignConfig(
            seed=2026,
            n_apps=len(ALL_KINDS),
            coverage=True,
            mutation=False,
            shrink=True,
        ),
        framework=framework,
        apidb=apidb,
    )
    assert result.ok, result.disagreements
    assert result.apps_examined == len(ALL_KINDS)
    kinds = {plan.scenarios[0].kind for plan in result.plans}
    assert set(SEM_KINDS) <= kinds
