"""Mutation testing of the detector: the catalog, the patch/restore
contract, and (slow) the full 100% kill requirement."""

from __future__ import annotations

import pytest

from repro.analysis.intervals import ApiInterval
from repro.core.apidb import ApiDatabase
from repro.difftest.mutation import (
    MUTANT_CATALOG,
    Mutant,
    apply_mutant,
    run_mutation_pass,
)
from repro.difftest.strategy import ALL_KINDS, plan_apps
from repro.ir.instructions import CmpOp


def test_catalog_is_large_enough():
    assert len(MUTANT_CATALOG) >= 10
    names = [mutant.name for mutant in MUTANT_CATALOG]
    assert len(names) == len(set(names))
    assert all(mutant.description for mutant in MUTANT_CATALOG)


def test_apply_mutant_restores_originals():
    pristine_refine = vars(ApiInterval)["refine"]
    pristine_missing = vars(ApiDatabase)["missing_levels"]
    for mutant in MUTANT_CATALOG:
        with apply_mutant(mutant):
            pass
    assert vars(ApiInterval)["refine"] is pristine_refine
    assert vars(ApiDatabase)["missing_levels"] is pristine_missing


def test_apply_mutant_changes_behavior_then_reverts():
    interval = ApiInterval.of(20, 28)
    original = interval.refine(CmpOp.LT, 24)
    mutant = next(
        m for m in MUTANT_CATALOG if m.name == "refine-lt-off-by-one"
    )
    with apply_mutant(mutant):
        mutated = interval.refine(CmpOp.LT, 24)
    assert original.hi == 23
    assert mutated.hi == 24
    assert interval.refine(CmpOp.LT, 24) == original


def test_survivors_are_listed_by_name(tool, apidb, picker):
    noop = Mutant("noop-mutant", "changes nothing, must survive", list)
    plans = plan_apps(2026, 2, coverage=True)
    result = run_mutation_pass(
        plans, tool, apidb, picker, catalog=(noop,)
    )
    assert result.killed == 0
    assert result.survivors == ("noop-mutant",)
    assert result.score == "0/1"
    doc = result.to_dict()
    assert doc["survivors"] == ["noop-mutant"]
    assert doc["outcomes"][0]["killed"] is False


@pytest.mark.slow
def test_full_catalog_is_killed(tool, apidb, picker):
    plans = plan_apps(2026, len(ALL_KINDS), coverage=True)
    result = run_mutation_pass(plans, tool, apidb, picker)
    assert result.total == len(MUTANT_CATALOG)
    assert result.survivors == (), (
        f"surviving mutants: {result.survivors}"
    )
    assert result.score == f"{len(MUTANT_CATALOG)}/{len(MUTANT_CATALOG)}"
    for outcome in result.outcomes:
        assert outcome.killed_by
        assert outcome.evidence is not None
