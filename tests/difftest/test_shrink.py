"""Shrinking acceptance: a seeded interval-logic bug in the detector
is caught by the campaign apps and reduced to a minimal repro
automatically."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.difftest.mutation import MUTANT_CATALOG, apply_mutant
from repro.difftest.oracle import DISAGREEMENTS
from repro.difftest.shrink import (
    build_apk_reproducer,
    build_reproducer,
    shrink_apk,
    shrink_plan,
    signature_digest,
    write_regression_file,
)
from repro.difftest.strategy import (
    ALL_KINDS,
    ScenarioSpec,
    materialize,
    plan_apps,
)


def _mutant(name):
    return next(m for m in MUTANT_CATALOG if m.name == name)


@pytest.fixture(scope="module")
def fat_plan():
    """A legacy-guard app padded with unrelated scenarios + filler."""
    base = plan_apps(2026, len(ALL_KINDS), coverage=True)
    legacy = next(
        p for p in base if p.scenarios[0].kind == "legacy-guard"
    )
    padding = (
        ScenarioSpec("direct", 101),
        ScenarioSpec("library", 102),
        ScenarioSpec("guarded-direct", 103),
        ScenarioSpec("inherited", 104),
    )
    return replace(
        legacy,
        scenarios=legacy.scenarios + padding,
        filler_kloc=0.5,
    )


def test_interval_mutant_shrinks_to_minimal_plan(
    tool, oracle, apidb, picker, framework, fat_plan, tmp_path
):
    with apply_mutant(_mutant("refine-lt-off-by-one")):
        forged = materialize(fat_plan, apidb, picker)
        records = oracle.examine(forged, tool.analyze(forged.apk))
        found = [
            r for r in records if r.classification in DISAGREEMENTS
        ]
        assert found, "the seeded interval bug went unnoticed"
        signature = found[0].signature
        reproduces = build_reproducer(
            tool, oracle, apidb, picker, signature
        )
        assert reproduces(fat_plan)
        shrunk, evaluations = shrink_plan(fat_plan, reproduces)
        assert reproduces(shrunk)

    # Automatic reduction to <= 3 scenarios (here: exactly the guard).
    assert len(shrunk.scenarios) <= 3
    assert shrunk.filler_kloc == 0.0
    assert {s.kind for s in shrunk.scenarios} == {"legacy-guard"}
    assert evaluations >= len(fat_plan.scenarios)

    # The emitted regression file passes against the fixed detector.
    path = write_regression_file(tmp_path, shrunk, signature)
    assert path.name == (
        f"test_regression_{signature_digest(signature)}.py"
    )
    namespace: dict = {}
    exec(compile(path.read_text(), str(path), "exec"), namespace)
    regression = next(
        value
        for name, value in namespace.items()
        if name.startswith("test_no_regression_")
    )
    regression(framework, apidb, picker)


def test_apk_level_reduction(tool, oracle, apidb, picker, fat_plan):
    with apply_mutant(_mutant("refine-lt-off-by-one")):
        forged = materialize(fat_plan, apidb, picker)
        records = oracle.examine(forged, tool.analyze(forged.apk))
        signature = next(
            r.signature
            for r in records
            if r.classification in DISAGREEMENTS
        )
        reproduces = build_apk_reproducer(
            tool, oracle, forged.truth, signature
        )
        assert reproduces(forged.apk)
        reduced, stats = shrink_apk(forged.apk, reproduces)
        assert reproduces(reduced)

    before = sum(len(d.classes) for d in forged.apk.dex_files)
    after = sum(len(d.classes) for d in reduced.dex_files)
    assert after < before
    assert stats["classes_removed"] == before - after
    assert stats["evaluations"] > 0


def test_regression_filename_is_stable():
    signature = ("static-fp", "API", "android.x.C.m()void")
    assert signature_digest(signature) == signature_digest(signature)
