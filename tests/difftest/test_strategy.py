"""Strategy layer: deterministic plans, deterministic materialization."""

from __future__ import annotations

import json

from repro.difftest.strategy import (
    ALL_KINDS,
    AppPlan,
    PERMISSION_KINDS,
    materialize,
    plan_apps,
)


def _fingerprint(forged):
    """Everything that matters for reproducibility, hashable."""
    apk = forged.apk
    return (
        tuple(
            (clazz.name, tuple(m.signature for m in clazz.methods))
            for clazz in apk.all_classes
        ),
        apk.instruction_count,
        json.dumps(forged.truth.to_dict(), sort_keys=True),
    )


def test_plan_apps_is_deterministic():
    assert plan_apps(99, 12) == plan_apps(99, 12)


def test_different_seeds_differ():
    assert plan_apps(1, 12) != plan_apps(2, 12)


def test_coverage_prefix_spans_every_kind():
    plans = plan_apps(2026, len(ALL_KINDS), coverage=True)
    covered = {spec.kind for plan in plans for spec in plan.scenarios}
    assert covered == set(ALL_KINDS)


def test_random_apps_are_well_formed():
    for plan in plan_apps(5, 10, coverage=False):
        assert 1 <= len(plan.scenarios) <= 6
        assert plan.min_sdk <= plan.target_sdk
        permission_kinds = [
            s for s in plan.scenarios if s.kind in PERMISSION_KINDS
        ]
        assert len(permission_kinds) <= 1


def test_plan_json_round_trip():
    for plan in plan_apps(11, 6):
        payload = json.loads(json.dumps(plan.to_dict()))
        assert AppPlan.from_dict(payload) == plan


def test_without_drops_exactly_one_scenario():
    plan = plan_apps(3, len(ALL_KINDS) + 4, coverage=True)[-1]
    assert len(plan.scenarios) >= 2
    reduced = plan.without(0)
    assert len(reduced.scenarios) == len(plan.scenarios) - 1
    assert reduced.scenarios == plan.scenarios[1:]


def test_materialize_is_deterministic(apidb, picker):
    plans = plan_apps(42, 6)
    first = [_fingerprint(materialize(p, apidb, picker)) for p in plans]
    second = [_fingerprint(materialize(p, apidb, picker)) for p in plans]
    assert first == second


def test_filler_only_adds_code(apidb, picker):
    from dataclasses import replace

    plan = plan_apps(8, 1, coverage=True)[0]
    lean = materialize(replace(plan, filler_kloc=0.0), apidb, picker)
    fat = materialize(replace(plan, filler_kloc=1.0), apidb, picker)
    assert fat.apk.instruction_count > lean.apk.instruction_count
    assert json.dumps(lean.truth.to_dict(), sort_keys=True) == json.dumps(
        fat.truth.to_dict(), sort_keys=True
    )
