"""Oracle semantics on the coverage apps: agreement by default,
expected static FPs on the designed blind spots, level-sensitive
false-negative detection."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.difftest.oracle import Classification, DISAGREEMENTS
from repro.difftest.strategy import ALL_KINDS, materialize, plan_apps


@pytest.fixture(scope="module")
def coverage(tool, oracle, apidb, picker):
    """kind -> (forged app, static report, oracle records)."""
    out = {}
    for plan in plan_apps(2026, len(ALL_KINDS), coverage=True):
        kind = plan.scenarios[0].kind
        forged = materialize(plan, apidb, picker)
        report = tool.analyze(forged.apk)
        out[kind] = (forged, report, oracle.examine(forged, report))
    return out


def _classifications(coverage, kind):
    return {record.classification for record in coverage[kind][2]}


def test_unmutated_detector_never_disagrees(coverage):
    for kind, (_, _, records) in coverage.items():
        bad = [r for r in records if r.classification in DISAGREEMENTS]
        assert not bad, f"{kind}: {bad}"


def test_direct_issue_is_confirmed(coverage):
    assert Classification.AGREE_CONFIRMED in _classifications(
        coverage, "direct"
    )


def test_inverted_guard_is_a_real_issue(coverage):
    assert Classification.AGREE_CONFIRMED in _classifications(
        coverage, "inverted-guard"
    )


def test_guarded_call_is_silent(coverage):
    assert coverage["guarded-direct"][2] == []


def test_dead_code_is_expected_static_fp(coverage):
    assert _classifications(coverage, "dead-code") == {
        Classification.EXPECTED_STATIC_FP
    }


def test_anonymous_guard_is_expected_static_fp(coverage):
    assert Classification.EXPECTED_STATIC_FP in _classifications(
        coverage, "anonymous-guard"
    )


def test_callback_finding_is_static_only(coverage):
    assert Classification.AGREE_STATIC_ONLY in _classifications(
        coverage, "callback-modeled"
    )


def test_suppressed_finding_becomes_static_fn(oracle, coverage):
    """Strip the static report of a confirmed app: the crash the
    interpreter still observes must surface as a false negative."""
    forged, report, _ = coverage["direct"]
    records = oracle.examine(forged, replace(report, mismatches=()))
    fn = [
        r
        for r in records
        if r.classification is Classification.STATIC_FN
    ]
    assert fn
    assert all(r.kind == "API" for r in fn)
    assert all(r.level is not None for r in fn)


def test_signature_is_level_free(coverage):
    for _, _, records in coverage.values():
        for record in records:
            signature = record.signature
            assert signature == (
                record.classification.value,
                record.kind,
                record.subject,
            )
            assert all(isinstance(part, str) for part in signature)


def test_records_are_sorted_and_serializable(coverage):
    for _, _, records in coverage.values():
        keys = [
            (r.classification.value, r.kind, r.subject) for r in records
        ]
        assert keys == sorted(keys)
        for record in records:
            doc = record.to_dict()
            assert doc["app"] and doc["classification"]
