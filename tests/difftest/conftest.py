"""Difftest fixtures: one detector instance for the whole session."""

from __future__ import annotations

import pytest

from repro.core.detector import SaintDroid
from repro.difftest.oracle import DifferentialOracle


@pytest.fixture(scope="session")
def tool(framework, apidb):
    return SaintDroid(framework, apidb)


@pytest.fixture(scope="session")
def oracle(apidb):
    return DifferentialOracle(apidb)
