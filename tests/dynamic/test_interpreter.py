"""Tests for the concrete IR interpreter."""

import pytest

from repro.core.apidb import ApiClassEntry, ApiDatabase, ApiEntry
from repro.dynamic.device import DeviceProfile
from repro.dynamic.interpreter import (
    Crash,
    CrashKind,
    ExecutionBudgetExceeded,
    Interpreter,
)
from repro.framework.permissions import DANGEROUS_PERMISSIONS, PermissionMap
from repro.ir.builder import ClassBuilder
from repro.ir.instructions import CmpOp
from repro.ir.types import MethodRef

from tests.conftest import activity_class, make_apk

GCSL_DESC = "(int)android.content.res.ColorStateList"
ALL_GRANTS = frozenset(DANGEROUS_PERMISSIONS)


def run_entry(apk, apidb, level, entry, granted=ALL_GRANTS):
    device = DeviceProfile(api_level=level, granted_permissions=granted)
    return Interpreter(apk, apidb, device).run(entry)


class TestDeviceProfile:
    def test_level_bounds(self):
        with pytest.raises(ValueError):
            DeviceProfile(api_level=1)

    def test_install_time_model_grants_everything(self):
        device = DeviceProfile(api_level=22)
        assert device.permits("android.permission.CAMERA")

    def test_runtime_model_requires_grant(self):
        device = DeviceProfile(api_level=23)
        assert not device.permits("android.permission.CAMERA")
        assert device.granting("android.permission.CAMERA").permits(
            "android.permission.CAMERA"
        )


class TestMissingMethodCrashes:
    def unguarded_apk(self):
        builder = ClassBuilder("com.test.app.Screen")
        method = builder.method("render")
        method.invoke_virtual(
            "android.content.Context", "getColorStateList", GCSL_DESC
        )
        method.return_void()
        builder.finish(method)
        return make_apk([activity_class(), builder.build()],
                        min_sdk=21, target_sdk=28)

    def test_crashes_below_introduction(self, apidb):
        apk = self.unguarded_apk()
        entry = MethodRef("com.test.app.Screen", "render", "()void")
        crash = run_entry(apk, apidb, 21, entry)
        assert crash is not None
        assert crash.kind is CrashKind.MISSING_METHOD
        assert crash.api.name == "getColorStateList"
        assert crash.api_level == 21

    def test_survives_at_introduction(self, apidb):
        apk = self.unguarded_apk()
        entry = MethodRef("com.test.app.Screen", "render", "()void")
        assert run_entry(apk, apidb, 23, entry) is None

    def test_guard_prevents_crash(self, apidb):
        builder = ClassBuilder("com.test.app.Safe")
        method = builder.method("render")
        method.guarded_call(
            23, "android.content.Context", "getColorStateList", GCSL_DESC
        )
        method.return_void()
        builder.finish(method)
        apk = make_apk([activity_class(), builder.build()], min_sdk=21)
        entry = MethodRef("com.test.app.Safe", "render", "()void")
        assert run_entry(apk, apidb, 21, entry) is None
        assert run_entry(apk, apidb, 23, entry) is None

    def test_crash_through_call_chain(self, apidb):
        helper = ClassBuilder("com.test.app.Helper")
        inner = helper.method("inner")
        inner.invoke_virtual(
            "android.content.Context", "getColorStateList", GCSL_DESC
        )
        inner.return_void()
        helper.finish(inner)
        outer = ClassBuilder("com.test.app.Outer")
        method = outer.method("go")
        method.invoke_virtual("com.test.app.Helper", "inner")
        method.return_void()
        outer.finish(method)
        apk = make_apk([activity_class(), helper.build(), outer.build()],
                       min_sdk=21)
        crash = run_entry(
            apk, apidb, 21, MethodRef("com.test.app.Outer", "go", "()void")
        )
        assert crash is not None
        assert crash.location.class_name == "com.test.app.Helper"

    def test_inherited_api_crash(self, apidb):
        builder = ClassBuilder(
            "com.test.app.Custom", super_name="android.widget.TextView"
        )
        method = builder.method("refresh")
        method.invoke_virtual(
            "com.test.app.Custom", "setTextAppearance", "(int)void"
        )
        method.return_void()
        builder.finish(method)
        apk = make_apk([activity_class(), builder.build()], min_sdk=19)
        crash = run_entry(
            apk, apidb, 19,
            MethodRef("com.test.app.Custom", "refresh", "()void"),
        )
        assert crash is not None
        assert crash.api.class_name == "android.widget.TextView"


class TestPermissionCrashes:
    def camera_apk(self):
        builder = ClassBuilder("com.test.app.Cam")
        method = builder.method("shoot")
        method.invoke_virtual(
            "android.hardware.Camera", "open", "()android.hardware.Camera"
        )
        method.return_void()
        builder.finish(method)
        return make_apk([activity_class(), builder.build()],
                        min_sdk=19, target_sdk=26,
                        permissions=("android.permission.CAMERA",))

    def test_denied_on_runtime_device(self, apidb):
        apk = self.camera_apk()
        entry = MethodRef("com.test.app.Cam", "shoot", "()void")
        crash = run_entry(apk, apidb, 24, entry, granted=frozenset())
        assert crash is not None
        assert crash.kind is CrashKind.PERMISSION_DENIED
        assert crash.permission == "android.permission.CAMERA"

    def test_granted_runs_clean(self, apidb):
        apk = self.camera_apk()
        entry = MethodRef("com.test.app.Cam", "shoot", "()void")
        assert run_entry(apk, apidb, 24, entry) is None

    def test_install_time_device_never_denies(self, apidb):
        apk = self.camera_apk()
        entry = MethodRef("com.test.app.Cam", "shoot", "()void")
        assert run_entry(apk, apidb, 22, entry, granted=frozenset()) is None


class TestTrampolining:
    def anonymous_apk(self):
        listener = ClassBuilder(
            "com.test.app.Panel$1", interfaces=("java.lang.Runnable",)
        )
        run = listener.method("run")
        run.invoke_virtual(
            "android.content.Context", "getColorStateList", GCSL_DESC
        )
        run.return_void()
        listener.finish(run)
        panel = ClassBuilder("com.test.app.Panel")
        setup = panel.method("setup")
        setup.sdk_int(0)
        setup.const_int(1, 23)
        setup.if_cmp(CmpOp.LT, 0, 1, "skip")
        setup.new_instance(2, "com.test.app.Panel$1")
        setup.invoke_virtual(
            "android.os.Handler", "post", "(java.lang.Runnable)boolean",
            args=(2,),
        )
        setup.label("skip")
        setup.return_void()
        panel.finish(setup)
        return make_apk([activity_class(), listener.build(), panel.build()],
                        min_sdk=19)

    def test_guarded_registration_never_crashes(self, apidb):
        apk = self.anonymous_apk()
        entry = MethodRef("com.test.app.Panel", "setup", "()void")
        # Below 23 the listener is never posted; at/above 23 the API
        # exists.  No level crashes: the static FP is dynamically
        # refutable.
        for level in (19, 21, 22, 23, 26):
            assert run_entry(apk, apidb, level, entry) is None, level

    def test_unguarded_registration_crashes_via_trampoline(self, apidb):
        listener = ClassBuilder(
            "com.test.app.Bad$1", interfaces=("java.lang.Runnable",)
        )
        run = listener.method("run")
        run.invoke_virtual(
            "android.content.Context", "getColorStateList", GCSL_DESC
        )
        run.return_void()
        listener.finish(run)
        bad = ClassBuilder("com.test.app.Bad")
        setup = bad.method("setup")
        setup.new_instance(0, "com.test.app.Bad$1")
        setup.invoke_virtual(
            "android.os.Handler", "post", "(java.lang.Runnable)boolean",
            args=(0,),
        )
        setup.return_void()
        bad.finish(setup)
        apk = make_apk([activity_class(), listener.build(), bad.build()],
                       min_sdk=19)
        crash = run_entry(
            apk, apidb, 19,
            MethodRef("com.test.app.Bad", "setup", "()void"),
        )
        assert crash is not None
        assert crash.location.class_name == "com.test.app.Bad$1"


class TestTrampolineLifetime:
    """Regression: callback trampolining must honor the callback's
    lifetime.  The database's callback set is level-agnostic, so
    selecting overrides by membership alone runs hooks on devices
    where the framework does not (yet, or any longer) invoke them."""

    def removed_callback_db(self):
        # Hand-built framework: a callback whose last level is 22 and
        # a sink method alive only at level 2, so any trampolined run
        # of the callback body crashes with MISSING_METHOD.
        widget = ApiClassEntry(
            name="android.fake.Widget",
            super_name=None,
            levels=frozenset(range(2, 30)),
        )
        widget.methods["onLegacyEvent()void"] = ApiEntry(
            "android.fake.Widget", "onLegacyEvent", "()void",
            levels=frozenset(range(2, 23)), callback=True,
        )
        widget.methods["gone()void"] = ApiEntry(
            "android.fake.Widget", "gone", "()void",
            levels=frozenset({2}),
        )
        bus = ApiClassEntry(
            name="android.fake.Bus",
            super_name=None,
            levels=frozenset(range(2, 30)),
        )
        bus.methods["post(java.lang.Object)void"] = ApiEntry(
            "android.fake.Bus", "post", "(java.lang.Object)void",
            levels=frozenset(range(2, 30)),
        )
        return ApiDatabase(
            {"android.fake.Widget": widget, "android.fake.Bus": bus},
            PermissionMap(),
        )

    def removed_callback_apk(self):
        listener = ClassBuilder(
            "com.test.app.Legacy", super_name="android.fake.Widget"
        )
        hook = listener.method("onLegacyEvent")
        hook.invoke_virtual("android.fake.Widget", "gone")
        hook.return_void()
        listener.finish(hook)
        registrar = ClassBuilder("com.test.app.Registrar")
        setup = registrar.method("setup")
        setup.new_instance(0, "com.test.app.Legacy")
        setup.invoke_virtual(
            "android.fake.Bus", "post", "(java.lang.Object)void",
            args=(0,),
        )
        setup.return_void()
        registrar.finish(setup)
        return make_apk(
            [activity_class(), listener.build(), registrar.build()],
            min_sdk=19,
        )

    def test_live_callback_still_trampolines(self):
        apk = self.removed_callback_apk()
        crash = run_entry(
            apk, self.removed_callback_db(), 22,
            MethodRef("com.test.app.Registrar", "setup", "()void"),
        )
        assert crash is not None
        assert crash.kind is CrashKind.MISSING_METHOD
        assert crash.api.name == "gone"
        assert crash.location.class_name == "com.test.app.Legacy"

    def test_removed_callback_does_not_run_past_last_level(self):
        # Boundary regression: at 23 the hook no longer exists on the
        # device, so the framework never dispatches it — its body must
        # not execute (it used to, crashing on the dead sink call).
        apk = self.removed_callback_apk()
        assert run_entry(
            apk, self.removed_callback_db(), 23,
            MethodRef("com.test.app.Registrar", "setup", "()void"),
        ) is None

    def multiwindow_apk(self):
        # Real framework: onMultiWindowModeChanged arrived at 24; its
        # body calls an Apache HTTP API that was removed at 23.
        split = ClassBuilder(
            "com.test.app.Split", super_name="android.app.Activity"
        )
        hook = split.method("onMultiWindowModeChanged", "(boolean)void")
        hook.invoke_virtual(
            "org.apache.http.client.HttpClient", "execute",
            "(org.apache.http.HttpRequest)org.apache.http.HttpResponse",
        )
        hook.return_void()
        split.finish(hook)
        registrar = ClassBuilder("com.test.app.Reg")
        setup = registrar.method("setup")
        setup.new_instance(0, "com.test.app.Split")
        setup.invoke_virtual(
            "android.os.Handler", "post", "(java.lang.Runnable)boolean",
            args=(0,),
        )
        setup.return_void()
        registrar.finish(setup)
        return make_apk(
            [activity_class(), split.build(), registrar.build()],
            min_sdk=19,
        )

    def test_hook_not_dispatched_before_introduction(self, apidb):
        # At 22 and 23 the device has no onMultiWindowModeChanged, so
        # the stale Apache call inside it is unreachable.  23 is the
        # boundary that used to crash (Apache gone, hook trampolined).
        apk = self.multiwindow_apk()
        entry = MethodRef("com.test.app.Reg", "setup", "()void")
        for level in (22, 23):
            assert run_entry(apk, apidb, level, entry) is None, level

    def test_hook_dispatched_from_introduction(self, apidb):
        apk = self.multiwindow_apk()
        entry = MethodRef("com.test.app.Reg", "setup", "()void")
        crash = run_entry(apk, apidb, 24, entry)
        assert crash is not None
        assert crash.kind is CrashKind.MISSING_METHOD
        assert crash.api.name == "execute"
        assert crash.location.class_name == "com.test.app.Split"


class TestBudgets:
    def test_infinite_loop_hits_budget(self, apidb):
        builder = ClassBuilder("com.test.app.Spin")
        method = builder.method("forever")
        method.label("top")
        method.const_int(0, 1)
        method.goto("top")
        builder.finish(method)
        apk = make_apk([activity_class(), builder.build()])
        device = DeviceProfile(api_level=23)
        interpreter = Interpreter(
            apk, apidb, device, max_steps=1000
        )
        with pytest.raises(ExecutionBudgetExceeded):
            interpreter.run(
                MethodRef("com.test.app.Spin", "forever", "()void")
            )

    def test_recursion_hits_budget(self, apidb):
        builder = ClassBuilder("com.test.app.Rec")
        method = builder.method("loop")
        method.invoke_virtual("com.test.app.Rec", "loop")
        method.return_void()
        builder.finish(method)
        apk = make_apk([activity_class(), builder.build()])
        device = DeviceProfile(api_level=23)
        interpreter = Interpreter(apk, apidb, device, max_depth=10)
        with pytest.raises(ExecutionBudgetExceeded):
            interpreter.run(
                MethodRef("com.test.app.Rec", "loop", "()void")
            )

    def test_app_throw_is_a_crash(self, apidb):
        builder = ClassBuilder("com.test.app.Thrower")
        method = builder.method("boom")
        method.new_instance(0, "java.lang.RuntimeException")
        method.throw(0)
        builder.finish(method)
        apk = make_apk([activity_class(), builder.build()])
        crash = run_entry(
            apk, apidb, 23,
            MethodRef("com.test.app.Thrower", "boom", "()void"),
        )
        assert crash is not None
        assert crash.kind is CrashKind.APP_THROW


class TestHelperGuards:
    def helper_apk(self):
        utils = ClassBuilder("com.test.app.VersionUtils")
        helper = utils.method("isAtLeastM", "()boolean")
        helper.sdk_int(0)
        helper.const_int(1, 23)
        helper.if_cmp(CmpOp.LT, 0, 1, "no")
        helper.const_int(2, 1)
        helper.return_value(2)
        helper.label("no")
        helper.const_int(2, 0)
        helper.return_value(2)
        utils.finish(helper)

        gate = ClassBuilder("com.test.app.Gate")
        method = gate.method("applyFeature")
        method.invoke_virtual(
            "com.test.app.VersionUtils", "isAtLeastM", "()boolean"
        )
        method.move_result(0)
        method.if_cmpz(CmpOp.EQ, 0, "skip")
        method.invoke_virtual(
            "android.content.Context", "getColorStateList", GCSL_DESC
        )
        method.label("skip")
        method.return_void()
        gate.finish(method)
        return make_apk([activity_class(), utils.build(), gate.build()],
                        min_sdk=19)

    def test_helper_guard_respected_at_runtime(self, apidb):
        apk = self.helper_apk()
        entry = MethodRef("com.test.app.Gate", "applyFeature", "()void")
        # Below 23 the helper returns false and the call never runs;
        # at 23+ the API exists.  No crash at any level.
        for level in (19, 21, 22, 23, 26, 29):
            assert run_entry(apk, apidb, level, entry) is None, level

    def test_inverted_helper_crashes_where_expected(self, apidb):
        utils = ClassBuilder("com.test.app.BadUtils")
        helper = utils.method("isLegacy", "()boolean")
        helper.sdk_int(0)
        helper.const_int(1, 23)
        helper.if_cmp(CmpOp.GE, 0, 1, "no")
        helper.const_int(2, 1)
        helper.return_value(2)
        helper.label("no")
        helper.const_int(2, 0)
        helper.return_value(2)
        utils.finish(helper)

        gate = ClassBuilder("com.test.app.BadGate")
        method = gate.method("applyFeature")
        method.invoke_virtual(
            "com.test.app.BadUtils", "isLegacy", "()boolean"
        )
        method.move_result(0)
        method.if_cmpz(CmpOp.EQ, 0, "skip")
        # Developer inverted the check: calls the new API on LEGACY.
        method.invoke_virtual(
            "android.content.Context", "getColorStateList", GCSL_DESC
        )
        method.label("skip")
        method.return_void()
        gate.finish(method)
        apk = make_apk([activity_class(), utils.build(), gate.build()],
                       min_sdk=19)
        entry = MethodRef("com.test.app.BadGate", "applyFeature", "()void")
        crash = run_entry(apk, apidb, 20, entry)
        assert crash is not None  # legacy device takes the broken path
        assert run_entry(apk, apidb, 24, entry) is None
