"""Tests for the dynamic verifier over forged scenario apps."""

import pytest

from repro.core import SaintDroid
from repro.dynamic.verifier import DynamicVerifier, Verdict
from repro.workload.appgen import AppForge


@pytest.fixture(scope="module")
def detector(framework, apidb):
    return SaintDroid(framework, apidb)


def forge(apidb, picker, **kwargs):
    defaults = dict(min_sdk=19, target_sdk=26, seed=13)
    defaults.update(kwargs)
    return AppForge(
        "com.verify.app", "VerifyApp",
        apidb=apidb, picker=picker, **defaults,
    )


def verify_single(detector, apidb, forged, key):
    report = detector.analyze(forged.apk)
    verifier = DynamicVerifier(forged.apk, apidb)
    result = verifier.verify_all(report)
    matches = [v for v in result.verified if v.mismatch.key == key]
    assert len(matches) == 1, (key, [str(v.mismatch.key) for v in result.verified])
    return matches[0], result


class TestVerdicts:
    def test_direct_issue_confirmed(self, detector, apidb, picker):
        f = forge(apidb, picker)
        issue = f.add_direct_issue()
        verified, _ = verify_single(detector, apidb, f.build(), issue.key)
        assert verified.verdict is Verdict.CONFIRMED
        assert verified.evidence is not None
        assert verified.evidence.api_level in issue.key[3] or True

    def test_anonymous_trap_refuted(self, detector, apidb, picker):
        f = forge(apidb, picker)
        trap = f.add_anonymous_guard_trap()
        verified, _ = verify_single(
            detector, apidb, f.build(), trap.fp_keys[0]
        )
        assert verified.verdict is Verdict.REFUTED
        assert verified.evidence is None

    def test_permission_request_confirmed(self, detector, apidb, picker):
        f = forge(apidb, picker)
        issue = f.add_permission_request_issue()[0]
        verified, _ = verify_single(detector, apidb, f.build(), issue.key)
        assert verified.verdict is Verdict.CONFIRMED
        assert verified.evidence.permission == issue.key[2]

    def test_revocation_confirmed(self, detector, apidb, picker):
        f = forge(apidb, picker, target_sdk=22, min_sdk=16)
        issue = f.add_permission_revocation_issue()[0]
        verified, _ = verify_single(detector, apidb, f.build(), issue.key)
        assert verified.verdict is Verdict.CONFIRMED

    def test_callback_is_static_only(self, detector, apidb, picker):
        f = forge(apidb, picker)
        issue = f.add_callback_issue(modeled=False)
        verified, _ = verify_single(detector, apidb, f.build(), issue.key)
        assert verified.verdict is Verdict.STATIC_ONLY

    def test_multi_permission_call_confirms_every_permission(
        self, detector, apidb, picker
    ):
        """One call needing several dangerous permissions: each
        finding is probed with only its own permission withheld, so
        the first denial cannot mask the later ones (regression for a
        bug the difftest fuzzer found)."""
        issues = ()
        for seed in range(60):
            f = forge(apidb, picker, seed=seed)
            issues = f.add_permission_request_issue(deep=True)
            if len(issues) >= 2:
                break
        assert len(issues) >= 2, "picker never produced a 2-permission API"
        forged = f.build()
        report = detector.analyze(forged.apk)
        verifier = DynamicVerifier(forged.apk, apidb)
        wanted = {issue.key for issue in issues}
        verdicts = {
            v.mismatch.key[2]: v
            for v in verifier.verify_all(report).verified
            if v.mismatch.key in wanted
        }
        assert set(verdicts) == {issue.key[2] for issue in issues}
        for permission, verified in verdicts.items():
            assert verified.verdict is Verdict.CONFIRMED, permission
            assert verified.evidence.permission == permission

    def test_inherited_issue_confirmed(self, detector, apidb, picker):
        f = forge(apidb, picker)
        issue = f.add_inherited_issue()
        verified, _ = verify_single(detector, apidb, f.build(), issue.key)
        assert verified.verdict is Verdict.CONFIRMED


class TestStaticPlusDynamicPrecision:
    def test_surviving_mismatches_drop_only_refuted(
        self, detector, apidb, picker
    ):
        f = forge(apidb, picker)
        direct = f.add_direct_issue()
        trap = f.add_anonymous_guard_trap()
        callback = f.add_callback_issue(modeled=False)
        forged = f.build()
        report = detector.analyze(forged.apk)
        verifier = DynamicVerifier(forged.apk, apidb)
        result = verifier.verify_all(report)

        surviving = {m.key for m in result.surviving_mismatches()}
        assert direct.key in surviving
        assert callback.key in surviving          # static-only retained
        assert trap.fp_keys[0] not in surviving   # FP eliminated

    def test_combined_pipeline_reaches_full_precision(
        self, detector, apidb, picker
    ):
        """Static + dynamic = zero false positives on the API kind
        (the paper's motivation for the dynamic complement)."""
        f = forge(apidb, picker, seed=31)
        truth_keys = set()
        for _ in range(2):
            truth_keys.add(f.add_direct_issue().key)
        truth_keys.add(f.add_inherited_issue().key)
        for _ in range(3):
            f.add_anonymous_guard_trap()
        f.add_caller_guard_trap()
        forged = f.build()

        report = detector.analyze(forged.apk)
        static_api = {k for k in report.keys if k[0] == "API"}
        assert static_api - truth_keys  # static alone has FPs

        verifier = DynamicVerifier(forged.apk, apidb)
        result = verifier.verify_all(report)
        surviving_api = {
            m.key for m in result.surviving_mismatches()
            if m.key[0] == "API"
        }
        assert surviving_api == truth_keys  # dynamic removes them all


class TestHarness:
    def test_entry_points_exclude_anonymous(self, apidb, picker):
        f = forge(apidb, picker)
        f.add_anonymous_guard_trap()
        forged = f.build()
        verifier = DynamicVerifier(forged.apk, apidb)
        assert all(
            "$" not in entry.class_name.split(".")[-1]
            or not entry.class_name.split("$")[-1].isdigit()
            for entry in verifier.entry_points()
        )

    def test_crash_cache_reused(self, detector, apidb, picker):
        f = forge(apidb, picker)
        f.add_direct_issue()
        forged = f.build()
        verifier = DynamicVerifier(forged.apk, apidb)
        from repro.dynamic.device import DeviceProfile
        device = DeviceProfile(api_level=20)
        first = verifier.observed_crashes(device)
        second = verifier.observed_crashes(device)
        assert first is second
