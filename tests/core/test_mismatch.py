"""Tests for the mismatch model."""

import pytest

from repro.analysis.intervals import ApiInterval
from repro.core.mismatch import Mismatch, MismatchKind
from repro.ir.types import MethodRef


def api_mismatch(app="App", caller="com.app.C", api="android.x.A"):
    return Mismatch(
        kind=MismatchKind.API_INVOCATION,
        app=app,
        location=MethodRef(caller, "m"),
        subject=MethodRef(api, "f", "(int)void"),
        missing_levels=ApiInterval.of(14, 22),
    )


class TestValidation:
    def test_permission_kind_requires_permission(self):
        with pytest.raises(ValueError):
            Mismatch(
                kind=MismatchKind.PERMISSION_REQUEST,
                app="App",
                location=MethodRef("com.app.C", "m"),
                subject=MethodRef("android.x.A", "f"),
                missing_levels=ApiInterval.of(23, 29),
            )

    def test_api_kind_requires_subject(self):
        with pytest.raises(ValueError):
            Mismatch(
                kind=MismatchKind.API_INVOCATION,
                app="App",
                location=MethodRef("com.app.C", "m"),
                subject=None,
                missing_levels=ApiInterval.of(14, 22),
            )


class TestKeys:
    def test_key_stable_across_levels_and_messages(self):
        a = api_mismatch()
        b = Mismatch(
            kind=MismatchKind.API_INVOCATION,
            app="App",
            location=MethodRef("com.app.C", "m"),
            subject=MethodRef("android.x.A", "f", "(int)void"),
            missing_levels=ApiInterval.of(14, 18),
            message="different",
        )
        assert a.key == b.key

    def test_key_distinguishes_locations(self):
        assert api_mismatch(caller="com.app.C").key != (
            api_mismatch(caller="com.app.D").key
        )

    def test_key_distinguishes_apps(self):
        assert api_mismatch(app="A").key != api_mismatch(app="B").key

    def test_callback_key_uses_class_and_signature(self):
        mismatch = Mismatch(
            kind=MismatchKind.API_CALLBACK,
            app="App",
            location=MethodRef("com.app.Hook", "onAttach",
                               "(android.content.Context)void"),
            subject=MethodRef("android.app.Fragment", "onAttach",
                              "(android.content.Context)void"),
            missing_levels=ApiInterval.of(15, 22),
        )
        assert mismatch.key == (
            "APC", "App", "com.app.Hook",
            "onAttach(android.content.Context)void",
        )

    def test_permission_key_ignores_location(self):
        a = Mismatch(
            kind=MismatchKind.PERMISSION_REQUEST,
            app="App",
            location=MethodRef("com.app.C", "m"),
            subject=MethodRef("android.x.A", "f"),
            missing_levels=ApiInterval.of(23, 29),
            permission="android.permission.CAMERA",
        )
        b = Mismatch(
            kind=MismatchKind.PERMISSION_REQUEST,
            app="App",
            location=MethodRef("com.app.Other", "n"),
            subject=MethodRef("android.y.B", "g"),
            missing_levels=ApiInterval.of(23, 29),
            permission="android.permission.CAMERA",
        )
        assert a.key == b.key


class TestPresentation:
    def test_kind_classification(self):
        assert MismatchKind.PERMISSION_REQUEST.is_permission
        assert MismatchKind.PERMISSION_REVOCATION.is_permission
        assert not MismatchKind.API_INVOCATION.is_permission

    def test_describe_mentions_parts(self):
        text = api_mismatch().describe()
        assert "com.app.C" in text
        assert "android.x.A" in text
        assert "[14, 22]" in text

    def test_describe_permission(self):
        mismatch = Mismatch(
            kind=MismatchKind.PERMISSION_REVOCATION,
            app="App",
            location=MethodRef("com.app.C", "m"),
            subject=MethodRef("android.x.A", "f"),
            missing_levels=ApiInterval.of(23, 29),
            permission="android.permission.CAMERA",
        )
        assert "CAMERA" in mismatch.describe()
        assert "revocable" in mismatch.describe()
