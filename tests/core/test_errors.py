"""Tests for the structured error taxonomy (repro.core.errors)."""

from __future__ import annotations

import pytest

from repro.core.errors import (
    RETRYABLE_KINDS,
    AnalysisError,
    AnalysisPhase,
    ErrorKind,
    WorkerLostError,
    classify_exception,
    diagnostics_error,
    tag_phase,
)
from repro.apk.diagnostics import DiagnosticCode, IngestDiagnostic
from repro.eval.runner import AppTimeoutError


class TestClassification:
    def test_timeout(self):
        error = classify_exception(AppTimeoutError("budget exceeded"))
        assert error.kind is ErrorKind.TIMEOUT
        assert error.retryable

    def test_worker_lost(self):
        error = classify_exception(WorkerLostError("gone"))
        assert error.kind is ErrorKind.WORKER_LOST
        assert error.retryable

    def test_resource(self):
        assert classify_exception(MemoryError()).kind is ErrorKind.RESOURCE
        assert classify_exception(
            OSError("too many open files")
        ).kind is ErrorKind.RESOURCE

    def test_generic_crash_not_retryable(self):
        error = classify_exception(RuntimeError("boom"))
        assert error.kind is ErrorKind.CRASH
        assert not error.retryable
        assert error.phase is AnalysisPhase.TOOL

    def test_parse_by_type_name(self):
        class CorruptApkError(Exception):
            pass

        error = classify_exception(CorruptApkError("bad dex"))
        assert error.kind is ErrorKind.PARSE
        assert error.phase is AnalysisPhase.APK
        assert not error.retryable

    def test_retryable_kinds_consistency(self):
        for kind in ErrorKind:
            error = AnalysisError(kind=kind, retryable=kind in RETRYABLE_KINDS)
            assert error.retryable == (kind in RETRYABLE_KINDS)

    def test_message_truncated(self):
        error = classify_exception(RuntimeError("x" * 10_000))
        assert len(error.message) <= 300

    def test_traceback_tail_captured(self):
        def inner():
            raise ValueError("deep failure")

        def outer():
            inner()

        try:
            outer()
        except ValueError as exc:
            error = classify_exception(exc)
        assert 1 <= len(error.traceback_tail) <= 3
        assert any("inner" in frame for frame in error.traceback_tail)
        # Innermost frame last.
        assert "inner" in error.traceback_tail[-1]


class TestPhaseTagging:
    def test_tag_phase_attributes_failure(self):
        with pytest.raises(RuntimeError) as excinfo:
            with tag_phase(AnalysisPhase.AUM):
                raise RuntimeError("modeling failed")
        error = classify_exception(excinfo.value)
        assert error.phase is AnalysisPhase.AUM

    def test_innermost_tag_wins(self):
        with pytest.raises(RuntimeError) as excinfo:
            with tag_phase(AnalysisPhase.TOOL):
                with tag_phase(AnalysisPhase.AMD):
                    raise RuntimeError("detection failed")
        assert classify_exception(excinfo.value).phase is AnalysisPhase.AMD

    def test_explicit_phase_overrides_tag(self):
        with pytest.raises(RuntimeError) as excinfo:
            with tag_phase(AnalysisPhase.AMD):
                raise RuntimeError("boom")
        error = classify_exception(excinfo.value, phase=AnalysisPhase.ARM)
        assert error.phase is AnalysisPhase.ARM


class TestRecord:
    def test_str(self):
        error = AnalysisError(
            kind=ErrorKind.TIMEOUT,
            phase=AnalysisPhase.AUM,
            message="budget exceeded",
        )
        assert str(error) == "timeout/aum: budget exceeded"

    def test_with_attempts(self):
        error = AnalysisError(kind=ErrorKind.TIMEOUT)
        assert error.with_attempts(3).attempts == 3
        assert error.attempts == 1  # frozen original untouched

    def test_fingerprint_excludes_attempts_and_traceback(self):
        one = AnalysisError(
            kind=ErrorKind.CRASH,
            message="boom",
            attempts=1,
            traceback_tail=("a.py:1 in f",),
        )
        other = AnalysisError(
            kind=ErrorKind.CRASH,
            message="boom",
            attempts=3,
            traceback_tail=("b.py:9 in g",),
        )
        assert one.fingerprint() == other.fingerprint()

    def test_json_round_trip(self):
        error = AnalysisError(
            kind=ErrorKind.WORKER_LOST,
            phase=AnalysisPhase.TOOL,
            message="worker process lost",
            retryable=True,
            traceback_tail=("runner.py:42 in analyze_app",),
            attempts=2,
        )
        assert AnalysisError.from_dict(error.to_dict()) == error


class TestDiagnosticsError:
    def test_folds_diagnostics_into_message(self):
        diags = (
            IngestDiagnostic(DiagnosticCode.MISSING_PACKAGE, "repaired"),
            IngestDiagnostic(DiagnosticCode.NO_DEX_FILES),
        )
        error = diagnostics_error(diags)
        assert error.kind is ErrorKind.PARSE
        assert error.phase is AnalysisPhase.APK
        assert DiagnosticCode.MISSING_PACKAGE in error.message

    def test_empty_diagnostics(self):
        error = diagnostics_error(())
        assert error.message == "malformed package"
