"""Tests for the 'death on update' analysis."""

import pytest

from repro.core import SaintDroid
from repro.core.aum import ApiUsageModeler
from repro.core.evolution import diff_reports, update_impact
from repro.ir.builder import ClassBuilder

from tests.conftest import activity_class, make_apk

GCSL_DESC = "(int)android.content.res.ColorStateList"
HTTP_DESC = "(org.apache.http.HttpRequest)org.apache.http.HttpResponse"


@pytest.fixture(scope="module")
def modeler(framework, apidb):
    return ApiUsageModeler(framework, apidb)


def apache_user():
    builder = ClassBuilder("com.test.app.Net")
    method = builder.method("fetch")
    method.invoke_virtual(
        "org.apache.http.client.HttpClient", "execute", HTTP_DESC
    )
    method.return_void()
    builder.finish(method)
    return builder.build()


def colors_user(guard_level=None):
    builder = ClassBuilder("com.test.app.Screen")
    method = builder.method("render")
    if guard_level is None:
        method.invoke_virtual(
            "android.content.Context", "getColorStateList", GCSL_DESC
        )
    else:
        method.guarded_call(
            guard_level, "android.content.Context",
            "getColorStateList", GCSL_DESC,
        )
    method.return_void()
    builder.finish(method)
    return builder.build()


class TestUpdateImpact:
    def test_removed_api_breaks_on_update(self, modeler, apidb):
        apk = make_apk([activity_class(), apache_user()],
                       min_sdk=14, target_sdk=22)
        model = modeler.build(apk)
        impact = update_impact(model, apidb, 22, 23)
        assert len(impact.breaking_calls) == 1
        assert impact.breaking_calls[0].api.name == "execute"
        assert not impact.is_stable
        assert "BREAKS" in impact.describe()

    def test_introduced_api_heals_on_update(self, modeler, apidb):
        apk = make_apk([activity_class(), colors_user()],
                       min_sdk=21, target_sdk=28)
        model = modeler.build(apk)
        impact = update_impact(model, apidb, 22, 23)
        assert len(impact.healed_calls) == 1
        assert impact.healed_calls[0].api.name == "getColorStateList"

    def test_guarded_call_does_not_break(self, modeler, apidb):
        # The call only runs on >= 23 anyway; updating 22 -> 23 cannot
        # "heal" something that never executed, nor break anything.
        apk = make_apk([activity_class(), colors_user(guard_level=23)],
                       min_sdk=21, target_sdk=28)
        model = modeler.build(apk)
        impact = update_impact(model, apidb, 20, 22)
        assert impact.breaking_calls == []
        assert impact.healed_calls == []

    def test_activated_hook(self, modeler, apidb):
        hook = ClassBuilder(
            "com.test.app.NotesFragment", super_name="android.app.Fragment"
        )
        hook.empty_method("onAttach", "(android.content.Context)void")
        apk = make_apk([activity_class(), hook.build()],
                       min_sdk=15, target_sdk=26)
        model = modeler.build(apk)
        impact = update_impact(model, apidb, 22, 23)
        assert any(
            h.signature == "onAttach(android.content.Context)void"
            for h in impact.activated_hooks
        )
        reverse = update_impact(model, apidb, 23, 22)
        assert any(
            h.signature == "onAttach(android.content.Context)void"
            for h in reverse.silenced_hooks
        )

    def test_permission_model_shift(self, modeler, apidb):
        cam = ClassBuilder("com.test.app.Cam")
        shoot = cam.method("shoot")
        shoot.invoke_virtual(
            "android.hardware.Camera", "open", "()android.hardware.Camera"
        )
        shoot.return_void()
        cam.finish(shoot)
        apk = make_apk([activity_class(), cam.build()],
                       min_sdk=16, target_sdk=22,
                       permissions=("android.permission.CAMERA",))
        model = modeler.build(apk)
        assert update_impact(model, apidb, 22, 24).permission_model_shift
        assert not update_impact(model, apidb, 23, 26).permission_model_shift
        assert not update_impact(model, apidb, 20, 22).permission_model_shift

    def test_stable_app(self, modeler, apidb, simple_apk):
        model = modeler.build(simple_apk)
        impact = update_impact(model, apidb, 21, 26)
        assert impact.is_stable
        assert "stable" in impact.describe()


class TestReportDiff:
    @pytest.fixture(scope="class")
    def detector(self, framework, apidb):
        return SaintDroid(framework, apidb)

    def test_fixed_and_introduced(self, detector):
        v1 = make_apk([activity_class(), colors_user()],
                      min_sdk=21, target_sdk=28, label="App v1")
        v2 = make_apk(
            [activity_class(), colors_user(guard_level=23), apache_user()],
            min_sdk=21, target_sdk=28, label="App v2",
        )
        diff = diff_reports(detector.analyze(v1), detector.analyze(v2))
        assert len(diff.fixed) == 1          # the guard fixed the call
        assert len(diff.introduced) == 1     # the apache usage is new
        assert diff.regressed
        assert "1 introduced, 1 fixed" in diff.summary()

    def test_carried_over(self, detector):
        apk = make_apk([activity_class(), colors_user()],
                       min_sdk=21, target_sdk=28)
        diff = diff_reports(detector.analyze(apk), detector.analyze(apk))
        assert diff.introduced == [] and diff.fixed == []
        assert len(diff.carried) == 1

    def test_labels_do_not_matter(self, detector):
        a = make_apk([activity_class(), colors_user()],
                     min_sdk=21, target_sdk=28, label="Alpha")
        b = make_apk([activity_class(), colors_user()],
                     min_sdk=21, target_sdk=28, label="Beta")
        diff = diff_reports(detector.analyze(a), detector.analyze(b))
        assert len(diff.carried) == 1
        assert not diff.regressed
