"""Tests for metrics and the cost model."""

from repro.analysis.clvm import (
    CLASS_OVERHEAD_UNITS,
    FRAMEWORK_RETENTION,
    LoadStats,
)
from repro.core.metrics import (
    AnalysisMetrics,
    BASE_MEMORY_MB,
    BASE_SECONDS,
    MB_PER_MEMORY_UNIT,
    SECONDS_PER_WORK_UNIT,
)


class TestLoadStats:
    def test_record_load_splits_by_origin(self, framework):
        stats = LoadStats()
        app_class = framework.load_class("android.widget.Toast", 23)
        stats.record_load(app_class)
        assert stats.framework_classes_loaded == 1
        assert stats.instructions_loaded == app_class.instruction_count
        assert (
            stats.framework_instructions_loaded
            == app_class.instruction_count
        )

    def test_memory_units_release_framework_bodies(self):
        stats = LoadStats(
            classes_loaded=2,
            instructions_loaded=1000,
            framework_instructions_loaded=600,
        )
        expected_released = int(600 * (1 - FRAMEWORK_RETENTION))
        assert stats.memory_units == (
            2 * CLASS_OVERHEAD_UNITS + 1000 - expected_released
        )

    def test_memory_units_eager_retains_everything(self):
        stats = LoadStats(
            classes_loaded=2,
            instructions_loaded=1000,
            framework_instructions_loaded=600,
            retain_framework_bodies=True,
        )
        assert stats.memory_units == 2 * CLASS_OVERHEAD_UNITS + 1000

    def test_work_units_include_load_overhead(self):
        stats = LoadStats(classes_loaded=4, instructions_analyzed=100)
        assert stats.work_units == 100 + 4 * CLASS_OVERHEAD_UNITS // 4


class TestAnalysisMetrics:
    def test_modeled_seconds(self):
        metrics = AnalysisMetrics(tool="T", app="A", extra_work_units=10_000)
        assert metrics.modeled_seconds == (
            BASE_SECONDS + 10_000 * SECONDS_PER_WORK_UNIT
        )

    def test_modeled_memory(self):
        metrics = AnalysisMetrics(
            tool="T", app="A", extra_memory_units=20_000
        )
        assert metrics.modeled_memory_mb == (
            BASE_MEMORY_MB + 20_000 * MB_PER_MEMORY_UNIT
        )

    def test_stats_and_extras_combine(self):
        stats = LoadStats(classes_loaded=4, instructions_analyzed=100)
        metrics = AnalysisMetrics(
            tool="T", app="A", stats=stats, extra_work_units=50
        )
        assert metrics.work_units == stats.work_units + 50

    def test_failure_fields(self):
        metrics = AnalysisMetrics(tool="T", app="A")
        assert not metrics.failed
        metrics.failed = True
        metrics.failure_reason = "timeout"
        assert metrics.failure_reason == "timeout"


class TestWarmLoadAccounting:
    def test_record_load_counts_warm_framework_reuse(self, framework):
        stats = LoadStats()
        clazz = framework.load_class("android.widget.Toast", 23)
        stats.record_load(clazz)
        stats.record_load(clazz, warm=True)
        assert stats.framework_classes_reused == 1
        assert (
            stats.framework_instructions_reused == clazz.instruction_count
        )
        assert stats.framework_reuse_rate == 0.5

    def test_app_classes_are_never_reused(self, framework):
        from tests.conftest import activity_class

        stats = LoadStats()
        app_clazz = activity_class()
        stats.record_load(app_clazz, warm=True)
        assert stats.framework_classes_reused == 0
        assert stats.framework_reuse_rate == 0.0

    def test_warm_loads_do_not_change_the_cost_model(self, framework):
        clazz = framework.load_class("android.widget.Toast", 23)
        cold = LoadStats()
        cold.record_load(clazz)
        warm = LoadStats()
        warm.record_load(clazz, warm=True)
        # Warm accounting is observational only: identical work and
        # memory whatever the cache did, so a corpus run's modeled
        # costs never depend on analysis order or worker placement.
        assert cold.work_units == warm.work_units
        assert cold.memory_units == warm.memory_units
        cold_metrics = AnalysisMetrics(tool="T", app="A", stats=cold)
        warm_metrics = AnalysisMetrics(tool="T", app="A", stats=warm)
        assert cold_metrics.modeled_seconds == warm_metrics.modeled_seconds
        assert (
            cold_metrics.modeled_memory_mb == warm_metrics.modeled_memory_mb
        )
        assert warm_metrics.framework_classes_reused == 1
        assert warm_metrics.warm_load_fraction == 1.0
        assert cold_metrics.warm_load_fraction == 0.0
