"""Tests for the SaintDroid facade, including the paper's listings as
end-to-end cases and the eager-loading ablation."""

import pytest

from repro.core import SaintDroid
from repro.core.mismatch import MismatchKind
from repro.ir.builder import ClassBuilder

from tests.conftest import activity_class, make_apk


@pytest.fixture(scope="module")
def detector(framework, apidb):
    return SaintDroid(framework, apidb)


def listing1_apk():
    """Paper Listing 1: target 28, minSdk 21, unguarded
    getColorStateList (API 23) in onCreate."""
    builder = ClassBuilder(
        "com.test.app.MainActivity", super_name="android.app.Activity"
    )
    method = builder.method("onCreate", "(android.os.Bundle)void")
    method.invoke_super(
        "android.app.Activity", "onCreate", "(android.os.Bundle)void"
    )
    method.invoke_virtual(
        "com.test.app.MainActivity", "getColorStateList",
        "(int)android.content.res.ColorStateList",
    )
    method.return_void()
    builder.finish(method)
    return make_apk([builder.build()], min_sdk=21, target_sdk=28)


class TestPaperListings:
    def test_listing1_invocation_mismatch(self, detector):
        report = detector.analyze(listing1_apk())
        api = [m for m in report.mismatches
               if m.kind is MismatchKind.API_INVOCATION]
        assert len(api) == 1
        assert api[0].subject.name == "getColorStateList"
        assert (api[0].missing_levels.lo, api[0].missing_levels.hi) == (21, 22)

    def test_listing2_callback_mismatch(self, detector):
        # Simple Solitaire: Fragment.onAttach(Context) @23, minSdk < 23.
        builder = ClassBuilder(
            "com.test.app.GameFragment", super_name="android.app.Fragment"
        )
        builder.empty_method("onAttach", "(android.content.Context)void")
        apk = make_apk([activity_class(), builder.build()],
                       min_sdk=14, target_sdk=23)
        report = detector.analyze(apk)
        apc = [m for m in report.mismatches
               if m.kind is MismatchKind.API_CALLBACK]
        assert len(apc) == 1
        assert apc[0].subject.name == "onAttach"

    def test_listing3_permission_mismatch(self, detector):
        builder = ClassBuilder(
            "com.test.app.CaptureActivity", super_name="android.app.Activity"
        )
        method = builder.method("onCreate", "(android.os.Bundle)void")
        method.invoke_virtual(
            "android.hardware.Camera", "open", "()android.hardware.Camera"
        )
        method.return_void()
        builder.finish(method)
        apk = make_apk([activity_class(), builder.build()],
                       min_sdk=21, target_sdk=26)
        report = detector.analyze(apk)
        assert report.by_kind().get("PRM-request", 0) == 1


class TestReportContents:
    def test_report_identity(self, detector, simple_apk):
        report = detector.analyze(simple_apk)
        assert report.app == simple_apk.name
        assert report.tool == "SAINTDroid"
        assert report.metrics is not None
        assert report.metrics.wall_time_s > 0
        assert report.model is not None

    def test_clean_app_has_no_mismatches(self, detector, simple_apk):
        report = detector.analyze(simple_apk)
        assert report.mismatches == []

    def test_keys_are_set_of_mismatch_keys(self, detector):
        report = detector.analyze(listing1_apk())
        assert len(report.keys) == len(report.mismatches)

    def test_capabilities_cover_all_kinds(self, detector):
        assert detector.capabilities == {"API", "APC", "PRM", "SEM"}
        assert not detector.requires_source


class TestEagerAblation:
    def test_same_findings_more_memory(self, framework, apidb):
        lazy = SaintDroid(framework, apidb)
        eager = SaintDroid(framework, apidb, lazy_loading=False)
        apk = listing1_apk()
        lazy_report = lazy.analyze(apk)
        eager_report = eager.analyze(apk)
        assert lazy_report.keys == eager_report.keys
        assert (
            eager_report.metrics.memory_units
            > lazy_report.metrics.memory_units
        )
        assert (
            eager_report.metrics.stats.framework_classes_loaded
            == framework.image_class_count(29)
        )


class TestDeviceLevelScoping:
    """The paper's 'set of Android framework versions' input."""

    def test_scoping_above_introduction_clears_finding(
        self, framework, apidb
    ):
        from repro.analysis.intervals import ApiInterval
        detector = SaintDroid(framework, apidb)
        apk = listing1_apk()  # unguarded API-23 call, minSdk 21
        full = detector.analyze(apk)
        assert full.by_kind().get("API", 0) == 1
        scoped = detector.analyze(apk, ApiInterval.of(23, 29))
        assert scoped.by_kind().get("API", 0) == 0

    def test_scoping_to_vulnerable_levels_keeps_finding(
        self, framework, apidb
    ):
        from repro.analysis.intervals import ApiInterval
        detector = SaintDroid(framework, apidb)
        scoped = detector.analyze(listing1_apk(), ApiInterval.of(21, 22))
        api = [m for m in scoped.mismatches
               if m.kind is MismatchKind.API_INVOCATION]
        assert len(api) == 1
        assert (api[0].missing_levels.lo, api[0].missing_levels.hi) == (21, 22)

    def test_pre_23_scope_suppresses_permission_findings(
        self, framework, apidb
    ):
        from repro.analysis.intervals import ApiInterval
        from repro.ir.builder import ClassBuilder
        detector = SaintDroid(framework, apidb)
        cam = ClassBuilder("com.test.app.Cam")
        shoot = cam.method("shoot")
        shoot.invoke_virtual(
            "android.hardware.Camera", "open", "()android.hardware.Camera"
        )
        shoot.return_void()
        cam.finish(shoot)
        apk = make_apk([activity_class(), cam.build()],
                       min_sdk=16, target_sdk=26,
                       permissions=("android.permission.CAMERA",))
        full = detector.analyze(apk)
        assert full.by_kind().get("PRM-request", 0) == 1
        scoped = detector.analyze(apk, ApiInterval.of(16, 22))
        assert scoped.by_kind().get("PRM-request", 0) == 0

    def test_disjoint_scope_returns_nothing(self, framework, apidb):
        from repro.analysis.intervals import ApiInterval
        detector = SaintDroid(framework, apidb)
        apk = listing1_apk()
        scoped = detector.analyze(apk, ApiInterval.of(2, 10))
        assert scoped.mismatches == []
