"""Tests for the API Usage Modeler, especially interprocedural guard
propagation and the anonymous-class blind spot."""

import pytest

from repro.analysis.intervals import ApiInterval
from repro.core.aum import ApiUsageModeler
from repro.ir.builder import ClassBuilder
from repro.ir.instructions import CmpOp
from repro.ir.types import MethodRef

from tests.conftest import activity_class, make_apk

GCSL_DESC = "(int)android.content.res.ColorStateList"


@pytest.fixture()
def modeler(framework, apidb):
    return ApiUsageModeler(framework, apidb)


def usage_interval(model, api_name):
    found = [u for u in model.usages if u.api.name == api_name]
    assert found, [str(u.api) for u in model.usages]
    interval = found[0].interval
    for extra in found[1:]:
        interval = interval.join(extra.interval)
    return interval


class TestDirectUsages:
    def test_unguarded_call_has_app_interval(self, modeler):
        builder = ClassBuilder("com.test.app.S")
        method = builder.method("render")
        method.invoke_virtual(
            "android.content.Context", "getColorStateList", GCSL_DESC
        )
        method.return_void()
        builder.finish(method)
        apk = make_apk([activity_class(), builder.build()],
                       min_sdk=21, target_sdk=28)
        model = modeler.build(apk)
        assert usage_interval(model, "getColorStateList") == (
            ApiInterval.of(21, 29)
        )

    def test_guarded_call_is_refined(self, modeler):
        builder = ClassBuilder("com.test.app.S")
        method = builder.method("render")
        method.guarded_call(
            23, "android.content.Context", "getColorStateList", GCSL_DESC
        )
        method.return_void()
        builder.finish(method)
        apk = make_apk([activity_class(), builder.build()],
                       min_sdk=21, target_sdk=28)
        model = modeler.build(apk)
        assert usage_interval(model, "getColorStateList") == (
            ApiInterval.of(23, 29)
        )


class TestInterproceduralPropagation:
    def caller_guard_apk(self):
        helper = ClassBuilder("com.test.app.Helper")
        apply_method = helper.method("applyFeature")
        apply_method.invoke_virtual(
            "android.content.Context", "getColorStateList", GCSL_DESC
        )
        apply_method.return_void()
        helper.finish(apply_method)

        coordinator = ClassBuilder("com.test.app.Coordinator")
        update = coordinator.method("update")
        update.sdk_int(0)
        update.const_int(1, 23)
        update.if_cmp(CmpOp.LT, 0, 1, "skip")
        update.invoke_virtual("com.test.app.Helper", "applyFeature")
        update.label("skip")
        update.return_void()
        coordinator.finish(update)
        return make_apk(
            [activity_class(), helper.build(), coordinator.build()],
            min_sdk=21, target_sdk=28,
        )

    def test_guard_in_caller_protects_callee(self, modeler):
        model = modeler.build(self.caller_guard_apk())
        assert usage_interval(model, "getColorStateList") == (
            ApiInterval.of(23, 29)
        )

    def test_uncalled_method_uses_app_interval(self, modeler):
        builder = ClassBuilder("com.test.app.Dead")
        method = builder.method("never")
        method.invoke_virtual(
            "android.content.Context", "getColorStateList", GCSL_DESC
        )
        method.return_void()
        builder.finish(method)
        apk = make_apk([activity_class(), builder.build()],
                       min_sdk=21, target_sdk=28)
        model = modeler.build(apk)
        assert usage_interval(model, "getColorStateList") == (
            ApiInterval.of(21, 29)
        )


class TestAnonymousBlindSpot:
    def anonymous_apk(self):
        listener = ClassBuilder(
            "com.test.app.Panel$1", interfaces=("java.lang.Runnable",)
        )
        run = listener.method("run")
        run.invoke_virtual(
            "android.content.Context", "getColorStateList", GCSL_DESC
        )
        run.return_void()
        listener.finish(run)

        panel = ClassBuilder("com.test.app.Panel")
        setup = panel.method("setup")
        setup.sdk_int(0)
        setup.const_int(1, 23)
        setup.if_cmp(CmpOp.LT, 0, 1, "skip")
        setup.new_instance(2, "com.test.app.Panel$1")
        setup.invoke_virtual(
            "android.os.Handler", "post", "(java.lang.Runnable)boolean",
            args=(2,),
        )
        setup.label("skip")
        setup.return_void()
        panel.finish(setup)
        return make_apk(
            [activity_class(), listener.build(), panel.build()],
            min_sdk=21, target_sdk=28,
        )

    def test_default_mode_drops_guard(self, framework, apidb):
        modeler = ApiUsageModeler(framework, apidb)
        model = modeler.build(self.anonymous_apk())
        assert usage_interval(model, "getColorStateList") == (
            ApiInterval.of(21, 29)  # guard lost: the documented FP source
        )

    def test_ablation_mode_keeps_guard(self, framework, apidb):
        modeler = ApiUsageModeler(
            framework, apidb, propagate_guards_into_anonymous=True
        )
        model = modeler.build(self.anonymous_apk())
        assert usage_interval(model, "getColorStateList") == (
            ApiInterval.of(23, 29)
        )


class TestOverrides:
    def test_framework_override_recorded(self, modeler):
        hook = ClassBuilder("com.test.app.Hook", super_name="android.view.View")
        hook.empty_method("drawableHotspotChanged", "(float,float)void")
        apk = make_apk([activity_class(), hook.build()])
        model = modeler.build(apk)
        records = [
            r for r in model.overrides
            if r.signature == "drawableHotspotChanged(float,float)void"
        ]
        assert len(records) == 1
        assert records[0].framework_class == "android.view.View"

    def test_anonymous_overrides_skipped(self, modeler):
        hook = ClassBuilder(
            "com.test.app.Hook$1", super_name="android.view.View"
        )
        hook.empty_method("drawableHotspotChanged", "(float,float)void")
        host = ClassBuilder("com.test.app.Hook")
        attach = host.method("attach")
        attach.new_instance(0, "com.test.app.Hook$1")
        attach.return_void()
        host.finish(attach)
        apk = make_apk([activity_class(), hook.build(), host.build()])
        model = modeler.build(apk)
        assert not any(
            r.app_class == "com.test.app.Hook$1" for r in model.overrides
        )

    def test_own_methods_not_recorded(self, modeler, simple_apk):
        model = modeler.build(simple_apk)
        assert all(
            r.signature != "myOwnHelper()void" for r in model.overrides
        )


class TestPermissionUses:
    def test_dangerous_api_annotated(self, modeler):
        builder = ClassBuilder("com.test.app.Cam")
        method = builder.method("shoot")
        method.invoke_virtual(
            "android.hardware.Camera", "open", "()android.hardware.Camera"
        )
        method.return_void()
        builder.finish(method)
        apk = make_apk([activity_class(), builder.build()])
        model = modeler.build(apk)
        uses = [u for u in model.permission_uses if u.api.name == "open"]
        assert uses
        assert "android.permission.CAMERA" in uses[0].permissions

    def test_safe_api_not_annotated(self, modeler, simple_apk):
        model = modeler.build(simple_apk)
        assert model.permission_uses == []


class TestContextWidening:
    def test_many_guard_contexts_widen_to_app_interval(
        self, framework, apidb
    ):
        """A callee invoked under more distinct guard intervals than
        MAX_CONTEXTS_PER_METHOD falls back to the app interval — a
        sound (conservative) cap on context explosion."""
        from repro.core.aum import MAX_CONTEXTS_PER_METHOD

        helper = ClassBuilder("com.test.app.Helper")
        apply_method = helper.method("applyFeature")
        apply_method.invoke_virtual(
            "android.content.Context", "getColorStateList", GCSL_DESC
        )
        apply_method.return_void()
        helper.finish(apply_method)

        callers = []
        for index in range(MAX_CONTEXTS_PER_METHOD + 3):
            caller = ClassBuilder(f"com.test.app.Caller{index}")
            update = caller.method("update")
            update.sdk_int(0)
            update.const_int(1, 16 + index)  # a distinct guard each
            update.if_cmp(CmpOp.LT, 0, 1, "skip")
            update.invoke_virtual("com.test.app.Helper", "applyFeature")
            update.label("skip")
            update.return_void()
            caller.finish(update)
            callers.append(caller.build())

        apk = make_apk(
            [activity_class(), helper.build(), *callers],
            min_sdk=14, target_sdk=28,
        )
        modeler = ApiUsageModeler(framework, apidb)
        model = modeler.build(apk)
        # Widening keeps the analysis sound: the joined interval must
        # cover every caller's guard range.
        interval = usage_interval(model, "getColorStateList")
        assert interval.lo <= 16
        assert interval.hi == 29
