"""Tests for report rendering."""

import pytest

from repro.core import SaintDroid
from repro.core.report import render_report, render_summary_line
from repro.ir.builder import ClassBuilder

from tests.conftest import activity_class, make_apk


@pytest.fixture(scope="module")
def mixed_report(framework, apidb):
    screen = ClassBuilder("com.test.app.Screen")
    method = screen.method("render")
    method.invoke_virtual(
        "android.content.Context", "getColorStateList",
        "(int)android.content.res.ColorStateList",
    )
    method.return_void()
    screen.finish(method)
    cam = ClassBuilder("com.test.app.Cam")
    shoot = cam.method("shoot")
    shoot.invoke_virtual(
        "android.hardware.Camera", "open", "()android.hardware.Camera"
    )
    shoot.return_void()
    cam.finish(shoot)
    apk = make_apk(
        [activity_class(), screen.build(), cam.build()],
        min_sdk=21, target_sdk=26,
        permissions=("android.permission.CAMERA",),
    )
    return SaintDroid(framework, apidb).analyze(apk)


class TestRendering:
    def test_summary_line_counts(self, mixed_report):
        line = render_summary_line(mixed_report)
        assert "API=1" in line
        assert "PRM-request=1" in line
        assert "APC=0" in line

    def test_full_report_sections(self, mixed_report):
        text = render_report(mixed_report)
        assert "SAINTDroid analysis" in text
        assert "-- API (1) --" in text
        assert "-- PRM-request (1) --" in text
        assert "getColorStateList" in text

    def test_verbose_includes_metrics(self, mixed_report):
        text = render_report(mixed_report, verbose=True)
        assert "classes loaded" in text
        assert "modeled memory" in text

    def test_non_verbose_omits_metrics(self, mixed_report):
        assert "classes loaded" not in render_report(mixed_report)
