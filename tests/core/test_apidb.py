"""Tests for the API database."""

from repro.analysis.intervals import ApiInterval
from repro.ir.types import MethodRef


GCSL = "getColorStateList(int)android.content.res.ColorStateList"


class TestExistence:
    def test_direct_declaration(self, apidb):
        assert apidb.exists("android.content.Context", GCSL, 23)
        assert not apidb.exists("android.content.Context", GCSL, 22)

    def test_inherited_declaration(self, apidb):
        assert apidb.exists("android.app.Activity", GCSL, 23)
        assert not apidb.exists("android.app.Activity", GCSL, 22)

    def test_unknown_class(self, apidb):
        assert not apidb.exists("no.such.Class", "m()void", 23)

    def test_class_lifetime_gates_inherited_methods(self, apidb):
        # HttpClient removed at 23: even "always-present" methods die
        # with their class.
        signature = (
            "execute(org.apache.http.HttpRequest)org.apache.http.HttpResponse"
        )
        owner = "org.apache.http.impl.client.DefaultHttpClient"
        assert apidb.exists(owner, signature, 22)
        assert not apidb.exists(owner, signature, 23)


class TestMissingLevels:
    def test_hull_of_missing(self, apidb):
        missing = apidb.missing_levels(
            "android.content.Context", GCSL, ApiInterval.of(21, 29)
        )
        assert missing == ApiInterval.of(21, 22)

    def test_fully_supported_is_empty(self, apidb):
        missing = apidb.missing_levels(
            "android.content.Context", GCSL, ApiInterval.of(23, 29)
        )
        assert missing.is_empty

    def test_forward_removal(self, apidb):
        signature = (
            "execute(org.apache.http.HttpRequest)org.apache.http.HttpResponse"
        )
        missing = apidb.missing_levels(
            "org.apache.http.client.HttpClient",
            signature,
            ApiInterval.of(14, 29),
        )
        assert missing == ApiInterval.of(23, 29)


class TestCallbacks:
    def test_callback_entry(self, apidb):
        entry = apidb.callback_entry(
            "android.app.Fragment", "onAttach(android.content.Context)void"
        )
        assert entry is not None and entry.callback
        assert entry.lifetime[0] == 23

    def test_non_callback_is_none(self, apidb):
        assert apidb.callback_entry(
            "android.content.Context",
            "getSystemService(java.lang.String)java.lang.Object",
        ) is None

    def test_callback_inherited_from_ancestor(self, apidb):
        # WebView extends ViewGroup extends View.
        entry = apidb.callback_entry(
            "android.webkit.WebView",
            "drawableHotspotChanged(float,float)void",
        )
        assert entry is not None
        assert entry.class_name == "android.view.View"

    def test_callbacks_of_includes_ancestors(self, apidb):
        names = {e.signature for e in apidb.callbacks_of("android.webkit.WebView")}
        assert "drawableHotspotChanged(float,float)void" in names


class TestPermissions:
    def test_direct_permission(self, apidb):
        ref = MethodRef(
            "android.hardware.Camera", "open", "()android.hardware.Camera"
        )
        assert "android.permission.CAMERA" in apidb.permissions_for(ref)

    def test_transitive_permission(self, apidb):
        ref = MethodRef(
            "android.location.Geocoder",
            "getFromLocation",
            "(double,double,int)java.util.List",
        )
        deep = apidb.permissions_for(ref, deep=True)
        shallow = apidb.permissions_for(ref, deep=False)
        assert "android.permission.ACCESS_FINE_LOCATION" in deep
        assert "android.permission.ACCESS_FINE_LOCATION" not in shallow

    def test_inherited_resolution_for_permissions(self, apidb):
        # Calling through a subclass ref still maps to the declaration.
        ref = MethodRef(
            "android.hardware.Camera", "open", "(int)android.hardware.Camera"
        )
        assert apidb.permissions_for(ref)


class TestIntrospection:
    def test_hierarchy(self, apidb):
        ancestors = apidb.ancestors("android.app.Activity")
        assert ancestors[0] == "android.content.ContextWrapper"
        assert "android.content.Context" in ancestors

    def test_api_count_grows_with_level(self, apidb):
        assert apidb.api_count_at(29) > apidb.api_count_at(5)

    def test_resolve_walks_chain(self, apidb):
        entry = apidb.resolve("android.app.Activity", GCSL)
        assert entry is not None
        assert entry.class_name == "android.content.Context"

    def test_contains_and_len(self, apidb):
        assert "android.app.Activity" in apidb
        assert len(apidb) > 1000
        assert apidb.method_count > 10_000
