"""Tests for the API database."""

import pytest

from repro.analysis.intervals import ApiInterval
from repro.core.arm import mine_spec
from repro.ir.types import MethodRef


GCSL = "getColorStateList(int)android.content.res.ColorStateList"


class TestExistence:
    def test_direct_declaration(self, apidb):
        assert apidb.exists("android.content.Context", GCSL, 23)
        assert not apidb.exists("android.content.Context", GCSL, 22)

    def test_inherited_declaration(self, apidb):
        assert apidb.exists("android.app.Activity", GCSL, 23)
        assert not apidb.exists("android.app.Activity", GCSL, 22)

    def test_unknown_class(self, apidb):
        assert not apidb.exists("no.such.Class", "m()void", 23)

    def test_class_lifetime_gates_inherited_methods(self, apidb):
        # HttpClient removed at 23: even "always-present" methods die
        # with their class.
        signature = (
            "execute(org.apache.http.HttpRequest)org.apache.http.HttpResponse"
        )
        owner = "org.apache.http.impl.client.DefaultHttpClient"
        assert apidb.exists(owner, signature, 22)
        assert not apidb.exists(owner, signature, 23)


class TestMissingLevels:
    def test_hull_of_missing(self, apidb):
        missing = apidb.missing_levels(
            "android.content.Context", GCSL, ApiInterval.of(21, 29)
        )
        assert missing == ApiInterval.of(21, 22)

    def test_fully_supported_is_empty(self, apidb):
        missing = apidb.missing_levels(
            "android.content.Context", GCSL, ApiInterval.of(23, 29)
        )
        assert missing.is_empty

    def test_forward_removal(self, apidb):
        signature = (
            "execute(org.apache.http.HttpRequest)org.apache.http.HttpResponse"
        )
        missing = apidb.missing_levels(
            "org.apache.http.client.HttpClient",
            signature,
            ApiInterval.of(14, 29),
        )
        assert missing == ApiInterval.of(23, 29)


class TestCallbacks:
    def test_callback_entry(self, apidb):
        entry = apidb.callback_entry(
            "android.app.Fragment", "onAttach(android.content.Context)void"
        )
        assert entry is not None and entry.callback
        assert entry.lifetime[0] == 23

    def test_non_callback_is_none(self, apidb):
        assert apidb.callback_entry(
            "android.content.Context",
            "getSystemService(java.lang.String)java.lang.Object",
        ) is None

    def test_callback_inherited_from_ancestor(self, apidb):
        # WebView extends ViewGroup extends View.
        entry = apidb.callback_entry(
            "android.webkit.WebView",
            "drawableHotspotChanged(float,float)void",
        )
        assert entry is not None
        assert entry.class_name == "android.view.View"

    def test_callbacks_of_includes_ancestors(self, apidb):
        names = {e.signature for e in apidb.callbacks_of("android.webkit.WebView")}
        assert "drawableHotspotChanged(float,float)void" in names


class TestPermissions:
    def test_direct_permission(self, apidb):
        ref = MethodRef(
            "android.hardware.Camera", "open", "()android.hardware.Camera"
        )
        assert "android.permission.CAMERA" in apidb.permissions_for(ref)

    def test_transitive_permission(self, apidb):
        ref = MethodRef(
            "android.location.Geocoder",
            "getFromLocation",
            "(double,double,int)java.util.List",
        )
        deep = apidb.permissions_for(ref, deep=True)
        shallow = apidb.permissions_for(ref, deep=False)
        assert "android.permission.ACCESS_FINE_LOCATION" in deep
        assert "android.permission.ACCESS_FINE_LOCATION" not in shallow

    def test_inherited_resolution_for_permissions(self, apidb):
        # Calling through a subclass ref still maps to the declaration.
        ref = MethodRef(
            "android.hardware.Camera", "open", "(int)android.hardware.Camera"
        )
        assert apidb.permissions_for(ref)


class TestIntrospection:
    def test_hierarchy(self, apidb):
        ancestors = apidb.ancestors("android.app.Activity")
        assert ancestors[0] == "android.content.ContextWrapper"
        assert "android.content.Context" in ancestors

    def test_api_count_grows_with_level(self, apidb):
        assert apidb.api_count_at(29) > apidb.api_count_at(5)

    def test_resolve_walks_chain(self, apidb):
        entry = apidb.resolve("android.app.Activity", GCSL)
        assert entry is not None
        assert entry.class_name == "android.content.Context"

    def test_contains_and_len(self, apidb):
        assert "android.app.Activity" in apidb
        assert len(apidb) > 1000
        assert apidb.method_count > 10_000


@pytest.fixture(scope="module")
def fresh_db(spec):
    """A private database instance whose cache counters start at zero
    (the session-scoped ``apidb`` is shared and already warm)."""
    return mine_spec(spec)


class TestMemoization:
    def test_resolve_counts_miss_then_hit(self, fresh_db):
        before = fresh_db.cache_counters.resolve_misses
        first = fresh_db.resolve("android.app.Activity", GCSL)
        second = fresh_db.resolve("android.app.Activity", GCSL)
        assert first is second and first is not None
        assert fresh_db.cache_counters.resolve_misses == before + 1
        assert fresh_db.cache_counters.resolve_hits >= 1

    def test_exists_and_missing_levels_share_one_walk(self, fresh_db):
        counters = fresh_db.cache_counters
        misses = counters.levels_misses
        assert fresh_db.exists("android.app.Activity", GCSL, 23)
        # Same (class, signature): every later query is a cache hit,
        # whichever entry point asks.
        hits = counters.levels_hits
        assert not fresh_db.exists("android.app.Activity", GCSL, 22)
        span = fresh_db.missing_levels(
            "android.app.Activity", GCSL, ApiInterval.of(21, 29)
        )
        assert (span.lo, span.hi) == (21, 22)
        assert counters.levels_misses == misses + 1
        assert counters.levels_hits >= hits + 2

    def test_memoized_answers_match_fresh_database(self, apidb, spec):
        # The warm session database and a cold one must agree
        # everywhere we probe — memoization is invisible.
        cold = mine_spec(spec)
        probes = [
            ("android.app.Activity", GCSL),
            ("android.content.Context", GCSL),
            ("no.such.Class", "m()void"),
        ]
        for name, signature in probes:
            for level in range(21, 30):
                assert apidb.exists(name, signature, level) == cold.exists(
                    name, signature, level
                )

    def test_permissions_for_memoized(self, fresh_db):
        ref = MethodRef(
            "android.app.Activity", "getColorStateList",
            "(int)android.content.res.ColorStateList",
        )
        counters = fresh_db.cache_counters
        misses = counters.permission_misses
        first = fresh_db.permissions_for(ref, deep=True)
        second = fresh_db.permissions_for(ref, deep=True)
        assert first is second
        assert counters.permission_misses == misses + 1
        # deep=False is a distinct cache entry, not a stale answer.
        fresh_db.permissions_for(ref, deep=False)
        assert counters.permission_misses == misses + 2

    def test_reset_cache_counters(self, fresh_db):
        fresh_db.resolve("android.app.Activity", GCSL)
        assert fresh_db.cache_counters.hits + fresh_db.cache_counters.misses
        fresh_db.reset_cache_counters()
        assert fresh_db.cache_counters.hits == 0
        assert fresh_db.cache_counters.misses == 0
        # The memo tables themselves survive a counter reset.
        before = fresh_db.cache_counters.resolve_hits
        fresh_db.resolve("android.app.Activity", GCSL)
        assert fresh_db.cache_counters.resolve_hits == before + 1

    def test_hit_rate_bounds(self, fresh_db):
        fresh_db.reset_cache_counters()
        assert fresh_db.cache_counters.hit_rate == 0.0
        # A signature no earlier test touched: one miss, one hit.
        fresh_db.resolve("android.view.View", GCSL)
        fresh_db.resolve("android.view.View", GCSL)
        assert 0.0 < fresh_db.cache_counters.hit_rate < 1.0


class TestLevelCounts:
    def test_api_count_at_matches_manual_scan(self, apidb):
        for level in (5, 23, 29):
            manual = sum(
                1
                for entry in apidb._classes.values()
                for method in entry.methods.values()
                if level in method.levels
            )
            assert apidb.api_count_at(level) == manual

    def test_out_of_range_level_rejected(self, apidb):
        with pytest.raises(ValueError):
            apidb.api_count_at(1)
        with pytest.raises(ValueError):
            apidb.api_count_at(99)
