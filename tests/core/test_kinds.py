"""Registry invariants for the mismatch-kind registry.

These tests are the PR's acceptance gate for the refactor: the core
layers must consume kinds only through the registry, keys must not
depend on registration order, and the facade must keep the calling
conventions of the enum it replaced.
"""

from __future__ import annotations

import pickle
import re
from pathlib import Path

import pytest

from repro.analysis.intervals import ApiInterval
from repro.core.kinds import (
    MismatchKind,
    MismatchKindSpec,
    api_shaped_key,
    family_of,
    kind_families,
    kind_groups,
    register_kind,
    registered_kinds,
    registered_sweeps,
    scenario_contributions,
    unregister_kind,
)
from repro.core.mismatch import Mismatch
from repro.ir.types import MethodRef

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


def _sample_mismatches() -> list[Mismatch]:
    caller = MethodRef("com.app.Screen", "render", "()void")
    api = MethodRef("android.view.View", "setElevation", "(float)void")
    return [
        Mismatch(
            kind=MismatchKind.API_INVOCATION,
            app="App",
            location=caller,
            subject=api,
            missing_levels=ApiInterval.of(16, 20),
        ),
        Mismatch(
            kind=MismatchKind.API_CALLBACK,
            app="App",
            location=MethodRef("com.app.Hook", "onStop", "()void"),
            subject=MethodRef("android.app.Activity", "onStop", "()void"),
            missing_levels=ApiInterval.of(16, 20),
        ),
        Mismatch(
            kind=MismatchKind.PERMISSION_REQUEST,
            app="App",
            location=caller,
            subject=None,
            missing_levels=ApiInterval.of(23, 29),
            permission="android.permission.CAMERA",
        ),
        Mismatch(
            kind=MismatchKind.SEMANTIC,
            app="App",
            location=caller,
            subject=api,
            missing_levels=ApiInterval.of(16, 20),
        ),
    ]


class TestFacade:
    def test_call_returns_registered_singleton(self):
        assert MismatchKind("API") is MismatchKind.API_INVOCATION
        assert MismatchKind("SEM") is MismatchKind.SEMANTIC

    def test_call_unknown_value_raises(self):
        with pytest.raises(ValueError, match="not a valid MismatchKind"):
            MismatchKind("XYZ")

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError):
            MismatchKind.NO_SUCH_KIND

    def test_iteration_in_registration_order(self):
        values = [kind.value for kind in MismatchKind]
        assert values == [
            "API", "APC", "PRM-request", "PRM-revocation", "SEM"
        ]
        assert len(MismatchKind) == 5

    def test_isinstance_against_facade(self):
        assert isinstance(MismatchKind.API_INVOCATION, MismatchKind)
        assert not isinstance("API", MismatchKind)

    def test_enum_compatible_surface(self):
        kind = MismatchKind.API_INVOCATION
        assert kind.name == "API_INVOCATION"
        assert kind.value == "API"
        assert not kind.is_permission
        assert MismatchKind.PERMISSION_REQUEST.is_permission

    def test_pickle_resolves_to_singleton(self):
        for kind in MismatchKind:
            clone = pickle.loads(pickle.dumps(kind))
            assert clone is kind

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_kind(
                MismatchKindSpec(
                    value="API",
                    family="API",
                    is_permission=False,
                    key_fn=api_shaped_key,
                    describe_fn=str,
                ),
                attr="API_AGAIN",
            )


class TestRegistrationOrderStability:
    """``Mismatch.key``/``sort_key`` must not observe the registry's
    shape: registering (and unregistering) an unrelated kind leaves
    every existing finding's identity bit-identical."""

    def test_keys_stable_across_registration(self):
        samples = _sample_mismatches()
        before = [(m.key, m.sort_key, m.describe()) for m in samples]
        register_kind(
            MismatchKindSpec(
                value="TST",
                family="TST",
                is_permission=False,
                key_fn=api_shaped_key,
                describe_fn=lambda m: "[TST]",
            ),
            attr="TEST_ONLY",
        )
        try:
            after = [(m.key, m.sort_key, m.describe()) for m in samples]
            assert after == before
        finally:
            unregister_kind("TST")
        assert [(m.key, m.sort_key, m.describe()) for m in samples] == before
        assert "TST" not in [k.value for k in MismatchKind]

    def test_key_leads_with_kind_value(self):
        for mismatch in _sample_mismatches():
            assert mismatch.key[0] == mismatch.kind.value
            assert mismatch.sort_key[0] == mismatch.kind.value


class TestDerivedViews:
    def test_families_in_registration_order(self):
        assert kind_families() == ("API", "APC", "PRM", "SEM")

    def test_family_order_survives_reregistration(self):
        """Regression: ``kind_families()`` must follow first-
        registration order, not dict insertion order — a plugin that
        unregisters and re-registers a kind (the TST dance above, or a
        reloaded extension) must not shuffle every consumer's column
        order."""
        before = kind_families()
        spec = next(
            s for s in registered_kinds() if s.value == "APC"
        )
        unregister_kind("APC")
        try:
            register_kind(spec, attr="API_CALLBACK")
            # Re-registered last, yet the family keeps its original
            # column position.
            assert kind_families() == before
        finally:
            if "APC" not in [s.value for s in registered_kinds()]:
                register_kind(spec, attr="API_CALLBACK")
        assert kind_families() == before

    def test_family_of(self):
        assert family_of("PRM-request") == "PRM"
        assert family_of("SEM") == "SEM"
        with pytest.raises(ValueError):
            family_of("nope")

    def test_kind_groups_cover_everything(self):
        groups = kind_groups()
        assert groups["API"] == ("API",)
        assert groups["PRM"] == ("PRM-request", "PRM-revocation")
        assert groups["SEM"] == ("SEM",)
        assert groups["API+APC"] == ("API", "APC")
        assert set(groups["ALL"]) == {
            kind.value for kind in registered_kinds()
        }

    def test_scenario_contributions_from_sem(self):
        names = [name for name, _ in scenario_contributions()]
        assert names == ["semantic", "semantic-guarded"]

    def test_sweeps_cover_three_crash_kinds(self):
        crash_kinds = [sweep.crash_kind for sweep in registered_sweeps()]
        assert crash_kinds == [
            "missing-method", "permission-denied", "behavior-change"
        ]


class TestNoHardCodedCapabilities:
    """Satellite: every tool's capability row is derived from its
    registered detector passes — no frozen kind-literal sets remain in
    the baselines or the core detector."""

    FORBIDDEN = re.compile(
        r"""frozenset\(\s*\{\s*['"](API|APC|PRM|SEM)['"]"""
    )

    def test_no_capability_literals(self):
        offenders = []
        files = list((SRC / "baselines").glob("*.py"))
        files.append(SRC / "core" / "detector.py")
        for path in files:
            if self.FORBIDDEN.search(path.read_text()):
                offenders.append(str(path))
        assert not offenders, (
            "hard-coded capability sets found in: " + ", ".join(offenders)
        )

    def test_capabilities_derive_from_passes(self):
        from repro.baselines.passes import (
            cid_pipeline,
            cider_pipeline,
            lint_pipeline,
        )
        from repro.pipeline import saintdroid_pipeline

        expected = {
            "SAINTDroid": {"API", "APC", "PRM", "SEM"},
            "CID": {"API"},
            "CIDER": {"APC"},
            "Lint": {"API"},
        }
        configs = {
            "SAINTDroid": saintdroid_pipeline(),
            "CID": cid_pipeline(),
            "CIDER": cider_pipeline(),
            "Lint": lint_pipeline(),
        }
        for tool, config in configs.items():
            assert config.capabilities == expected[tool], tool
            derived = {
                family_of(value)
                for p in config.passes
                for value in p.kinds
            }
            assert config.capabilities == derived
