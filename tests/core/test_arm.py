"""Tests for ARM — database mining.

The central property: mining framework *images* (code) and mining the
declarative spec produce the same database.  Verified on a compact
framework so the image path stays fast.
"""

import pytest

from repro.core.arm import close_permissions, mine_images, mine_spec
from repro.framework.catalog import curated_histories
from repro.framework.repository import FrameworkRepository
from repro.framework.spec import FrameworkSpec
from repro.ir.types import MethodRef


@pytest.fixture(scope="module")
def curated_spec():
    spec = FrameworkSpec(curated_histories())
    spec.validate()
    return spec


@pytest.fixture(scope="module")
def spec_db(curated_spec):
    return mine_spec(curated_spec)


@pytest.fixture(scope="module")
def image_db(curated_spec):
    return mine_images(FrameworkRepository(curated_spec))


class TestMiningEquivalence:
    def test_same_classes(self, spec_db, image_db):
        assert set(spec_db.class_names) == set(image_db.class_names)

    def test_same_method_levels(self, spec_db, image_db):
        for name in spec_db.class_names:
            spec_entry = spec_db.clazz(name)
            image_entry = image_db.clazz(name)
            assert set(spec_entry.methods) == set(image_entry.methods), name
            for signature, method in spec_entry.methods.items():
                assert (
                    method.levels
                    == image_entry.methods[signature].levels
                ), f"{name}.{signature}"

    def test_same_callbacks(self, spec_db, image_db):
        for name in spec_db.class_names:
            for signature, method in spec_db.clazz(name).methods.items():
                other = image_db.clazz(name).methods[signature]
                assert method.callback == other.callback, (
                    f"{name}.{signature}"
                )

    def test_same_direct_permissions(self, spec_db, image_db):
        camera_open = MethodRef(
            "android.hardware.Camera", "open", "()android.hardware.Camera"
        )
        assert spec_db.permission_map.permissions_for(
            camera_open, deep=False
        ) == image_db.permission_map.permissions_for(camera_open, deep=False)

    def test_same_transitive_permissions(self, spec_db, image_db):
        geocode = MethodRef(
            "android.location.Geocoder",
            "getFromLocation",
            "(double,double,int)java.util.List",
        )
        assert spec_db.permissions_for(geocode) == image_db.permissions_for(
            geocode
        )
        assert "android.permission.ACCESS_FINE_LOCATION" in (
            spec_db.permissions_for(geocode)
        )


class TestClosePermissions:
    def test_linear_chain(self):
        a, b, c = (MethodRef("android.x.C", n) for n in "abc")
        closed = close_permissions(
            direct={c: frozenset({"P"})},
            edges={a: frozenset({b}), b: frozenset({c})},
        )
        assert closed[a] == frozenset({"P"})
        assert closed[b] == frozenset({"P"})
        assert closed[c] == frozenset({"P"})

    def test_cycle_terminates(self):
        a, b = (MethodRef("android.x.C", n) for n in "ab")
        closed = close_permissions(
            direct={a: frozenset({"P"})},
            edges={a: frozenset({b}), b: frozenset({a})},
        )
        assert closed[a] == frozenset({"P"})
        assert closed[b] == frozenset({"P"})

    def test_union_of_branches(self):
        a, b, c = (MethodRef("android.x.C", n) for n in "abc")
        closed = close_permissions(
            direct={b: frozenset({"P"}), c: frozenset({"Q"})},
            edges={a: frozenset({b, c})},
        )
        assert closed[a] == frozenset({"P", "Q"})

    def test_unmapped_methods_absent(self):
        a, b = (MethodRef("android.x.C", n) for n in "ab")
        closed = close_permissions(
            direct={}, edges={a: frozenset({b})}
        )
        assert closed == {}


class TestDefaultDatabase:
    def test_cached(self, framework):
        from repro.core.arm import build_api_database
        assert build_api_database(framework) is build_api_database(framework)
