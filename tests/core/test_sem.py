"""SEM — the behavior-only (semantic) mismatch kind — end to end.

SEM is this refactor's proof that the kind registry is a real seam:
the kind is registered from :mod:`repro.core.sem` and must flow from
the framework spec through mining, static detection, dynamic replay,
and every result codec without the core layers naming it.
"""

from __future__ import annotations

import pytest

from repro.cache import ResultCache, fingerprint_apk
from repro.core import SaintDroid
from repro.core.arm import mine_images, mine_spec
from repro.core.mismatch import MismatchKind
from repro.dynamic.interpreter import CrashKind
from repro.dynamic.verifier import DynamicVerifier, Verdict
from repro.eval import ToolSet, analyze_app
from repro.eval.checkpoint import (
    _mismatch_from_dict,
    _mismatch_to_dict,
    result_from_dict,
    result_to_dict,
)
from repro.workload.appgen import AppForge


@pytest.fixture(scope="module")
def detector(framework, apidb):
    return SaintDroid(framework, apidb)


def forge(apidb, picker, **kwargs):
    defaults = dict(min_sdk=19, target_sdk=26, seed=41)
    defaults.update(kwargs)
    return AppForge(
        "com.sem.app", "SemApp", apidb=apidb, picker=picker, **defaults
    )


def _sem_findings(report):
    return [m for m in report.mismatches
            if m.kind is MismatchKind.SEMANTIC]


# ---------------------------------------------------------------------------
# mining: spec path and image path agree on every delta
# ---------------------------------------------------------------------------

def _delta_map(db):
    out = {}
    for name in db.class_names:
        entry = db.clazz(name)
        for method in entry.methods.values():
            if method.semantic_deltas:
                out[method.ref] = method.semantic_deltas
    return out


class TestMining:
    def test_spec_and_image_mining_agree(self, spec, framework):
        spec_deltas = _delta_map(mine_spec(spec))
        image_deltas = _delta_map(mine_images(framework))
        assert spec_deltas == image_deltas
        # The curated catalog seeds five delta-carrying methods (one
        # of them with two deltas).
        assert len(spec_deltas) == 5
        assert sum(len(v) for v in spec_deltas.values()) == 6

    def test_deltas_resolve_through_the_database(self, apidb):
        deltas = apidb.semantic_deltas_for(
            "android.os.Vibrator", "vibrate(long)void"
        )
        assert [d.level for d in deltas] == [26]
        assert deltas[0].change == "new-exception"

    def test_deltas_are_sorted_and_multi_delta_preserved(self, apidb):
        deltas = apidb.semantic_deltas_for(
            "android.net.ConnectivityManager",
            "getNetworkInfo(int)android.net.NetworkInfo",
        )
        assert [(d.level, d.change) for d in deltas] == [
            (23, "return-contract"), (28, "default-change")
        ]


# ---------------------------------------------------------------------------
# static detection
# ---------------------------------------------------------------------------

class TestDetection:
    def test_unguarded_delta_is_found(self, detector, apidb, picker):
        f = forge(apidb, picker)
        issue = f.add_semantic_issue()
        report = detector.analyze(f.build().apk)
        sem = _sem_findings(report)
        assert [m.key for m in sem] == [issue.key]
        assert sem[0].subject is not None

    def test_guarded_delta_is_silent(self, detector, apidb, picker):
        f = forge(apidb, picker)
        f.add_guarded_semantic()
        report = detector.analyze(f.build().apk)
        assert _sem_findings(report) == []

    def test_wrong_side_interval(self, detector, apidb, picker):
        """Every reported level must disagree with the target SDK
        about at least one delta — that is SEM's detection rule."""
        f = forge(apidb, picker)
        issue = f.add_semantic_issue()
        forged = f.build()
        report = detector.analyze(forged.apk)
        (sem,) = _sem_findings(report)
        subject_class, subject_name, subject_descriptor = issue.key[3]
        deltas = apidb.semantic_deltas_for(
            subject_class, f"{subject_name}{subject_descriptor}"
        )
        target = forged.apk.manifest.target_sdk
        hull = sem.missing_levels
        for bound in (hull.lo, hull.hi):
            assert any(
                (bound >= d.level) != (target >= d.level)
                for d in deltas
            ), (bound, target, deltas)

    def test_sem_report_counts_by_kind(self, detector, apidb, picker):
        f = forge(apidb, picker)
        f.add_semantic_issue()
        report = detector.analyze(f.build().apk)
        assert report.by_kind().get("SEM", 0) == 1


# ---------------------------------------------------------------------------
# dynamic replay: the interpreter observes the behavior difference
# ---------------------------------------------------------------------------

class TestDynamicReplay:
    def test_semantic_issue_confirmed(self, detector, apidb, picker):
        f = forge(apidb, picker)
        issue = f.add_semantic_issue()
        forged = f.build()
        report = detector.analyze(forged.apk)
        result = DynamicVerifier(forged.apk, apidb).verify_all(report)
        matches = [
            v for v in result.verified if v.mismatch.key == issue.key
        ]
        assert len(matches) == 1
        verified = matches[0]
        assert verified.verdict is Verdict.CONFIRMED
        assert verified.evidence is not None
        assert verified.evidence.kind is CrashKind.BEHAVIOR_CHANGE


# ---------------------------------------------------------------------------
# codecs: SEM findings survive every persistence boundary
# ---------------------------------------------------------------------------

class TestCodecs:
    @pytest.fixture(scope="class")
    def sem_app(self, apidb, picker):
        f = forge(apidb, picker)
        f.add_semantic_issue()
        f.add_guarded_semantic()
        return f.build()

    @pytest.fixture(scope="class")
    def sem_result(self, framework, apidb, sem_app):
        toolset = ToolSet.default(
            framework, apidb, include=("SAINTDroid",)
        )
        return analyze_app(toolset, sem_app)

    def test_mismatch_codec_round_trip(self, detector, sem_app):
        report = detector.analyze(sem_app.apk)
        (sem,) = _sem_findings(report)
        clone = _mismatch_from_dict(_mismatch_to_dict(sem))
        assert clone.kind is MismatchKind.SEMANTIC
        assert clone.key == sem.key
        assert clone.describe() == sem.describe()

    def test_journal_record_round_trip(self, sem_result):
        index, restored = result_from_dict(
            result_to_dict(7, sem_result)
        )
        assert index == 7
        assert (
            restored.findings_fingerprint()
            == sem_result.findings_fingerprint()
        )
        report = restored.reports["SAINTDroid"]
        assert report.by_kind().get("SEM", 0) == 1

    def test_result_cache_round_trip(self, tmp_path, sem_app, sem_result):
        cache = ResultCache(
            tmp_path, framework_fingerprint="fw", config_fingerprint="cfg"
        )
        fp = fingerprint_apk(sem_app.apk)
        assert cache.get(fp) is None
        assert cache.put(fp, sem_result)
        restored = cache.get(fp)
        assert restored is not None
        assert (
            restored.findings_fingerprint()
            == sem_result.findings_fingerprint()
        )
        report = restored.reports["SAINTDroid"]
        assert any(
            m.kind is MismatchKind.SEMANTIC for m in report.mismatches
        )
