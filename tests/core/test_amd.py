"""Tests for the Android Mismatch Detector (Algorithms 2, 3, 4)."""

import pytest

from repro.core import SaintDroid
from repro.core.mismatch import MismatchKind
from repro.ir.builder import ClassBuilder

from tests.conftest import activity_class, make_apk

GCSL_DESC = "(int)android.content.res.ColorStateList"


@pytest.fixture(scope="module")
def detector(framework, apidb):
    return SaintDroid(framework, apidb)


def kinds(report):
    return report.by_kind()


def screen_class(guard_level=None):
    builder = ClassBuilder("com.test.app.Screen")
    method = builder.method("render")
    if guard_level is None:
        method.invoke_virtual(
            "android.content.Context", "getColorStateList", GCSL_DESC
        )
    else:
        method.guarded_call(
            guard_level, "android.content.Context",
            "getColorStateList", GCSL_DESC,
        )
    method.return_void()
    builder.finish(method)
    return builder.build()


class TestAlgorithm2Invocation:
    def test_unguarded_newer_api_flagged(self, detector):
        apk = make_apk([activity_class(), screen_class()],
                       min_sdk=21, target_sdk=28)
        report = detector.analyze(apk)
        api = [m for m in report.mismatches
               if m.kind is MismatchKind.API_INVOCATION]
        assert len(api) == 1
        assert api[0].missing_levels.lo == 21
        assert api[0].missing_levels.hi == 22

    def test_guarded_call_not_flagged(self, detector):
        apk = make_apk([activity_class(), screen_class(guard_level=23)],
                       min_sdk=21, target_sdk=28)
        report = detector.analyze(apk)
        assert kinds(report).get("API", 0) == 0

    def test_min_sdk_above_introduction_not_flagged(self, detector):
        apk = make_apk([activity_class(), screen_class()],
                       min_sdk=23, target_sdk=28)
        report = detector.analyze(apk)
        assert kinds(report).get("API", 0) == 0

    def test_forward_removed_api_flagged(self, detector):
        builder = ClassBuilder("com.test.app.Net")
        method = builder.method("fetch")
        method.invoke_virtual(
            "org.apache.http.client.HttpClient", "execute",
            "(org.apache.http.HttpRequest)org.apache.http.HttpResponse",
        )
        method.return_void()
        builder.finish(method)
        apk = make_apk([activity_class(), builder.build()],
                       min_sdk=14, target_sdk=22)
        report = detector.analyze(apk)
        api = [m for m in report.mismatches
               if m.kind is MismatchKind.API_INVOCATION]
        assert len(api) == 1
        assert api[0].missing_levels.lo == 23

    def test_forward_removal_guarded_not_flagged(self, detector):
        builder = ClassBuilder("com.test.app.Net")
        method = builder.method("fetch")
        method.guarded_call_max(
            22, "org.apache.http.client.HttpClient", "execute",
            "(org.apache.http.HttpRequest)org.apache.http.HttpResponse",
        )
        method.return_void()
        builder.finish(method)
        apk = make_apk([activity_class(), builder.build()],
                       min_sdk=14, target_sdk=22)
        report = detector.analyze(apk)
        assert kinds(report).get("API", 0) == 0

    def test_max_sdk_restricts_range(self, detector):
        apk = make_apk([activity_class(), screen_class()],
                       min_sdk=23, target_sdk=26, max_sdk=26)
        report = detector.analyze(apk)
        assert kinds(report).get("API", 0) == 0

    def test_inherited_api_resolved(self, detector):
        builder = ClassBuilder(
            "com.test.app.Custom", super_name="android.widget.TextView"
        )
        method = builder.method("refresh")
        method.invoke_virtual(
            "com.test.app.Custom", "setTextAppearance", "(int)void"
        )
        method.return_void()
        builder.finish(method)
        apk = make_apk([activity_class(), builder.build()],
                       min_sdk=19, target_sdk=26)
        report = detector.analyze(apk)
        api = [m for m in report.mismatches
               if m.kind is MismatchKind.API_INVOCATION]
        assert len(api) == 1
        assert api[0].subject.class_name == "android.widget.TextView"
        assert api[0].missing_levels.hi == 22


class TestAlgorithm3Callback:
    def fragment_hook(self):
        builder = ClassBuilder(
            "com.test.app.NotesFragment", super_name="android.app.Fragment"
        )
        builder.empty_method("onAttach", "(android.content.Context)void")
        return builder.build()

    def test_newer_callback_flagged(self, detector):
        apk = make_apk([activity_class(), self.fragment_hook()],
                       min_sdk=15, target_sdk=26)
        report = detector.analyze(apk)
        apc = [m for m in report.mismatches
               if m.kind is MismatchKind.API_CALLBACK]
        assert len(apc) == 1
        assert apc[0].missing_levels == apc[0].missing_levels.of(15, 22)

    def test_supported_callback_not_flagged(self, detector):
        apk = make_apk([activity_class(), self.fragment_hook()],
                       min_sdk=23, target_sdk=26)
        report = detector.analyze(apk)
        assert kinds(report).get("APC", 0) == 0

    def test_plain_override_not_flagged(self, detector):
        builder = ClassBuilder(
            "com.test.app.Custom", super_name="android.widget.TextView"
        )
        builder.empty_method("setTextAppearance", "(int)void")
        apk = make_apk([activity_class(), builder.build()],
                       min_sdk=19, target_sdk=26)
        report = detector.analyze(apk)
        assert kinds(report).get("APC", 0) == 0

    def test_permission_hook_not_flagged(self, detector):
        builder = ClassBuilder(
            "com.test.app.Aware", super_name="android.app.Activity"
        )
        builder.empty_method(
            "onRequestPermissionsResult", "(int,java.lang.String[],int[])void"
        )
        apk = make_apk([activity_class(), builder.build()],
                       min_sdk=19, target_sdk=26)
        report = detector.analyze(apk)
        assert kinds(report).get("APC", 0) == 0


def camera_user(guard_level=None):
    builder = ClassBuilder("com.test.app.Cam")
    method = builder.method("shoot")
    if guard_level is None:
        method.invoke_virtual(
            "android.hardware.Camera", "open", "()android.hardware.Camera"
        )
    else:
        method.guarded_call_max(
            guard_level, "android.hardware.Camera", "open",
            "()android.hardware.Camera",
        )
    method.return_void()
    builder.finish(method)
    return builder.build()


def permission_aware_activity():
    builder = ClassBuilder(
        "com.test.app.Aware", super_name="android.app.Activity"
    )
    builder.empty_method(
        "onRequestPermissionsResult", "(int,java.lang.String[],int[])void"
    )
    return builder.build()


class TestAlgorithm4Permissions:
    def test_request_mismatch(self, detector):
        apk = make_apk(
            [activity_class(), camera_user()],
            min_sdk=21, target_sdk=26,
            permissions=("android.permission.CAMERA",),
        )
        report = detector.analyze(apk)
        prm = [m for m in report.mismatches
               if m.kind is MismatchKind.PERMISSION_REQUEST]
        assert len(prm) == 1
        assert prm[0].permission == "android.permission.CAMERA"

    def test_unrequested_dangerous_use_also_flagged(self, detector):
        # The paper's Listing 3: using a dangerous permission the
        # manifest never requested crashes just the same.
        apk = make_apk(
            [activity_class(), camera_user()], min_sdk=21, target_sdk=26
        )
        report = detector.analyze(apk)
        assert kinds(report).get("PRM-request", 0) == 1

    def test_protocol_implementation_suppresses_request(self, detector):
        apk = make_apk(
            [activity_class(), camera_user(), permission_aware_activity()],
            min_sdk=21, target_sdk=26,
            permissions=("android.permission.CAMERA",),
        )
        report = detector.analyze(apk)
        assert kinds(report).get("PRM-request", 0) == 0

    def test_revocation_mismatch(self, detector):
        apk = make_apk(
            [activity_class(), camera_user()],
            min_sdk=14, target_sdk=22,
            permissions=("android.permission.CAMERA",),
        )
        report = detector.analyze(apk)
        prm = [m for m in report.mismatches
               if m.kind is MismatchKind.PERMISSION_REVOCATION]
        assert len(prm) == 1
        assert prm[0].missing_levels.lo == 23

    def test_revocation_needs_manifest_request(self, detector):
        apk = make_apk(
            [activity_class(), camera_user()], min_sdk=14, target_sdk=22
        )
        report = detector.analyze(apk)
        assert kinds(report).get("PRM-revocation", 0) == 0

    def test_max_sdk_below_23_suppresses_revocation(self, detector):
        apk = make_apk(
            [activity_class(), camera_user()],
            min_sdk=14, target_sdk=22, max_sdk=22,
            permissions=("android.permission.CAMERA",),
        )
        report = detector.analyze(apk)
        assert kinds(report).get("PRM-revocation", 0) == 0

    def test_guarded_permission_use_suppressed(self, detector):
        # Camera use restricted to pre-23 devices cannot trip the
        # runtime permission system.
        apk = make_apk(
            [activity_class(), camera_user(guard_level=22)],
            min_sdk=14, target_sdk=26,
            permissions=("android.permission.CAMERA",),
        )
        report = detector.analyze(apk)
        assert kinds(report).get("PRM-request", 0) == 0

    def test_transitive_permission_use_detected(self, detector):
        builder = ClassBuilder("com.test.app.Geo")
        method = builder.method("locate")
        method.invoke_virtual(
            "android.location.Geocoder", "getFromLocation",
            "(double,double,int)java.util.List",
        )
        method.return_void()
        builder.finish(method)
        apk = make_apk(
            [activity_class(), builder.build()],
            min_sdk=21, target_sdk=26,
            permissions=("android.permission.ACCESS_FINE_LOCATION",),
        )
        report = detector.analyze(apk)
        prm = [m for m in report.mismatches
               if m.kind is MismatchKind.PERMISSION_REQUEST]
        assert any(
            m.permission == "android.permission.ACCESS_FINE_LOCATION"
            for m in prm
        )
