"""Tests for the repair engine: detect → repair → re-analyze clean."""

import pytest

from repro.core import SaintDroid
from repro.core.mismatch import MismatchKind
from repro.dynamic.verifier import DynamicVerifier, Verdict
from repro.repair.engine import (
    RepairActionKind,
    RepairEngine,
    repair_and_verify,
)
from repro.workload.appgen import AppForge


@pytest.fixture(scope="module")
def detector(framework, apidb):
    return SaintDroid(framework, apidb)


@pytest.fixture(scope="module")
def engine(apidb):
    return RepairEngine(apidb)


def forge(apidb, picker, **kwargs):
    defaults = dict(min_sdk=19, target_sdk=26, seed=21)
    defaults.update(kwargs)
    return AppForge(
        "com.repair.app", "RepairApp",
        apidb=apidb, picker=picker, **defaults,
    )


class TestApiRepair:
    def test_direct_issue_guarded(self, detector, engine, apidb, picker):
        f = forge(apidb, picker)
        f.add_direct_issue()
        result, residual = repair_and_verify(detector, f.build().apk)
        assert residual == []
        kinds = [a.kind for a in result.actions]
        assert kinds == [RepairActionKind.GUARD_INSERTED]

    def test_inherited_issue_guarded(self, detector, engine, apidb, picker):
        f = forge(apidb, picker)
        f.add_inherited_issue()
        _, residual = repair_and_verify(detector, f.build().apk)
        assert residual == []

    def test_forward_removed_gets_max_guard(
        self, detector, engine, apidb, picker
    ):
        f = forge(apidb, picker, min_sdk=14, target_sdk=22)
        f.add_forward_removed_issue()
        result, residual = repair_and_verify(detector, f.build().apk)
        assert residual == []
        assert "SDK_INT <=" in result.actions[0].description

    def test_repaired_app_survives_dynamic_execution(
        self, detector, engine, apidb, picker
    ):
        f = forge(apidb, picker)
        f.add_direct_issue()
        apk = f.build().apk
        result, _ = repair_and_verify(detector, apk)
        verifier = DynamicVerifier(result.repaired, apidb)
        from repro.dynamic.device import DeviceProfile
        from repro.framework.permissions import DANGEROUS_PERMISSIONS
        for level in (19, 21, 25, 29):
            device = DeviceProfile(
                api_level=level,
                granted_permissions=frozenset(DANGEROUS_PERMISSIONS),
            )
            crashes = verifier.observed_crashes(device)
            assert crashes == (), (level, crashes)

    def test_external_code_gets_advisory(self, detector, apidb, picker):
        f = forge(apidb, picker)
        f.add_external_dynamic_issue()
        apk = f.build().apk
        report = detector.analyze(apk)
        # The external issue is a FN for the detector; force the
        # engine to face it by repairing the seeded mismatch directly.
        from repro.core.mismatch import Mismatch
        from repro.analysis.intervals import ApiInterval
        from repro.ir.types import MethodRef
        issue = f.truth.issues[0]
        synthetic = Mismatch(
            kind=MismatchKind.API_INVOCATION,
            app=apk.name,
            location=issue.key[2],
            subject=MethodRef(*issue.key[3]),
            missing_levels=ApiInterval.of(19, 22),
        )
        engine = RepairEngine(apidb)
        result = engine.repair(apk, report.mismatches + [synthetic])
        assert any(
            a.kind is RepairActionKind.ADVISORY
            and "outside the package" in a.description
            for a in result.actions
        )


class TestCallbackRepair:
    def test_callback_gets_advisory_only(self, detector, apidb, picker):
        f = forge(apidb, picker)
        issue = f.add_callback_issue(modeled=False)
        result, residual = repair_and_verify(detector, f.build().apk)
        assert [m.kind for m in residual] == [MismatchKind.API_CALLBACK]
        advisories = result.advisories
        assert len(advisories) == 1
        assert "minSdkVersion" in advisories[0].description


class TestPermissionRepair:
    def test_request_mismatch_repaired_by_protocol(
        self, detector, apidb, picker
    ):
        f = forge(apidb, picker)
        f.add_permission_request_issue()
        result, residual = repair_and_verify(detector, f.build().apk)
        assert residual == []
        assert any(
            a.kind is RepairActionKind.PROTOCOL_SYNTHESIZED
            for a in result.actions
        )
        assert result.repaired.lookup(
            "com.repair.app.RepairPermissionSupport"
        ) is not None

    def test_revocation_repaired_by_target_raise(
        self, detector, apidb, picker
    ):
        f = forge(apidb, picker, min_sdk=16, target_sdk=22)
        f.add_permission_revocation_issue()
        result, residual = repair_and_verify(detector, f.build().apk)
        assert residual == []
        assert result.repaired.manifest.target_sdk >= 23
        assert any(
            a.kind is RepairActionKind.TARGET_SDK_RAISED
            for a in result.actions
        )

    def test_protocol_added_once(self, detector, apidb, picker):
        f = forge(apidb, picker)
        f.add_permission_request_issue()
        f.add_permission_request_issue()
        result, residual = repair_and_verify(detector, f.build().apk)
        assert residual == []
        support_classes = [
            c for c in result.repaired.all_classes
            if c.name.endswith("RepairPermissionSupport")
        ]
        assert len(support_classes) == 1


class TestMixedRepair:
    def test_full_pipeline(self, detector, apidb, picker):
        f = forge(apidb, picker, seed=77)
        f.add_direct_issue()
        f.add_inherited_issue()
        f.add_permission_request_issue()
        f.add_callback_issue(modeled=True)
        f.add_filler(kloc=0.5)
        result, residual = repair_and_verify(detector, f.build().apk)
        # Only the (unrepairable) callback issue remains.
        assert [m.kind for m in residual] == [MismatchKind.API_CALLBACK]
        assert len(result.code_changes) == 3

    def test_original_apk_untouched(self, detector, apidb, picker):
        f = forge(apidb, picker)
        f.add_direct_issue()
        apk = f.build().apk
        before = apk.instruction_count
        repair_and_verify(detector, apk)
        assert apk.instruction_count == before

    def test_clean_app_no_actions(self, detector, engine, apidb, picker):
        f = forge(apidb, picker)
        f.add_filler(kloc=0.3)
        apk = f.build().apk
        result = engine.repair(apk, [])
        assert result.actions == []
        assert result.repaired is apk


class TestIdempotence:
    def test_repairing_repaired_app_is_noop(self, detector, apidb, picker):
        f = forge(apidb, picker, seed=99)
        f.add_direct_issue()
        f.add_permission_request_issue()
        apk = f.build().apk
        engine = RepairEngine(apidb)
        first = engine.repair(apk, detector.analyze(apk).mismatches)
        second_report = detector.analyze(first.repaired)
        second = engine.repair(first.repaired, second_report.mismatches)
        assert second.actions == []
        assert second.repaired is first.repaired
