"""Tests for the guard-insertion rewriter."""

import pytest

from repro.analysis.guards import guard_at_invocations
from repro.analysis.intervals import ApiInterval
from repro.ir.builder import MethodBuilder
from repro.ir.instructions import CmpOp
from repro.ir.types import MethodRef
from repro.repair.rewriter import (
    GuardSpec,
    find_invoke_indices,
    wrap_invoke_in_guard,
)

GCSL_DESC = "(int)android.content.res.ColorStateList"
APP = ApiInterval.of(19, 29)


def simple_method():
    builder = MethodBuilder(MethodRef("com.app.C", "render"))
    builder.const_int(0, 7)
    builder.invoke_virtual(
        "android.content.Context", "getColorStateList", GCSL_DESC
    )
    builder.const_int(1, 8)
    builder.return_void()
    return builder.build()


def call_interval(method):
    pairs = [
        (invoke, interval)
        for invoke, interval in guard_at_invocations(method, APP)
        if invoke.method.name == "getColorStateList"
    ]
    return pairs[0][1] if pairs else None


class TestGuardSpec:
    def test_requires_a_bound(self):
        with pytest.raises(ValueError):
            GuardSpec()

    def test_describe(self):
        assert GuardSpec(min_level=23).describe() == "SDK_INT >= 23"
        assert GuardSpec(max_level=22).describe() == "SDK_INT <= 22"
        assert "and" in GuardSpec(min_level=11, max_level=22).describe()


class TestFindInvokeIndices:
    def test_finds_matching_calls(self):
        method = simple_method()
        indices = find_invoke_indices(
            method, "getColorStateList", GCSL_DESC
        )
        assert indices == [1]

    def test_no_match(self):
        assert find_invoke_indices(simple_method(), "nope", "()void") == []


class TestWrapInvoke:
    def test_min_guard_changes_static_interval(self):
        method = simple_method()
        assert call_interval(method) == APP
        repaired = wrap_invoke_in_guard(method, 1, GuardSpec(min_level=23))
        assert call_interval(repaired) == ApiInterval.of(23, 29)

    def test_max_guard(self):
        method = simple_method()
        repaired = wrap_invoke_in_guard(method, 1, GuardSpec(max_level=22))
        assert call_interval(repaired) == ApiInterval.of(19, 22)

    def test_window_guard(self):
        method = simple_method()
        repaired = wrap_invoke_in_guard(
            method, 1, GuardSpec(min_level=21, max_level=26)
        )
        assert call_interval(repaired) == ApiInterval.of(21, 26)

    def test_surrounding_code_preserved(self):
        method = simple_method()
        repaired = wrap_invoke_in_guard(method, 1, GuardSpec(min_level=23))
        # Original 4 instructions + 3 guard instructions.
        assert len(repaired.body) == len(method.body) + 3
        assert repaired.ref == method.ref

    def test_existing_labels_remap(self):
        builder = MethodBuilder(MethodRef("com.app.C", "busy"))
        builder.sdk_int(0)
        builder.if_cmpz(CmpOp.GT, 0, "tail")
        builder.invoke_virtual(
            "android.content.Context", "getColorStateList", GCSL_DESC
        )
        builder.label("tail")
        builder.const_int(1, 1)
        builder.return_void()
        method = builder.build()
        repaired = wrap_invoke_in_guard(method, 2, GuardSpec(min_level=23))
        # The branch must still reach the const after the call region.
        target = repaired.body.resolve("tail")
        from repro.ir.instructions import ConstInt
        assert isinstance(repaired.body.instructions[target], ConstInt)
        assert repaired.body.instructions[target].value == 1

    def test_label_at_call_site_redirected_to_guard(self):
        builder = MethodBuilder(MethodRef("com.app.C", "jumpy"))
        builder.goto("call")
        builder.label("call")
        builder.invoke_virtual(
            "android.content.Context", "getColorStateList", GCSL_DESC
        )
        builder.return_void()
        method = builder.build()
        repaired = wrap_invoke_in_guard(method, 1, GuardSpec(min_level=23))
        # The jump lands on the guard, not past it.
        from repro.ir.instructions import SdkIntLoad
        target = repaired.body.resolve("call")
        assert isinstance(repaired.body.instructions[target], SdkIntLoad)
        assert call_interval(repaired) == ApiInterval.of(23, 29)

    def test_rejects_non_invoke_index(self):
        with pytest.raises(ValueError):
            wrap_invoke_in_guard(simple_method(), 0, GuardSpec(min_level=23))

    def test_rejects_bodyless_method(self):
        from repro.ir.method import Method, MethodFlags
        method = Method(
            ref=MethodRef("com.app.C", "abs"),
            flags=MethodFlags.ABSTRACT,
            body=None,
        )
        with pytest.raises(ValueError):
            wrap_invoke_in_guard(method, 0, GuardSpec(min_level=23))
