"""Tests for the CLVM — lazy, worklist-driven class loading."""

from repro.analysis.clvm import ClassLoaderVM
from repro.ir.builder import ClassBuilder
from repro.ir.types import MethodRef

from tests.conftest import activity_class, make_apk


def caller_class(name, target_class, target_method="run",
                 descriptor="()void"):
    builder = ClassBuilder(name)
    method = builder.method("go")
    method.invoke_virtual(target_class, target_method, descriptor)
    method.return_void()
    builder.finish(method)
    return builder.build()


def entry_refs(apk):
    return tuple(
        method.ref
        for dex in apk.dex_files
        if not dex.secondary
        for clazz in dex.classes
        for method in clazz.methods
    )


class TestLazyLoading:
    def test_loads_only_reachable_framework(self, framework):
        apk = make_apk(
            [activity_class(),
             caller_class("com.test.app.T", "android.widget.Toast", "show")]
        )
        vm = ClassLoaderVM(apk, framework, 23)
        result = vm.explore(entry_refs(apk))
        loaded = set(result.loaded_classes)
        assert "android.widget.Toast" in loaded
        # A random unrelated framework class must not be loaded.
        assert "android.webkit.WebViewClient" not in loaded
        total = framework.image_class_count(23)
        assert result.stats.framework_classes_loaded < total / 2

    def test_stats_count_loads_once(self, framework):
        apk = make_apk(
            [activity_class(),
             caller_class("com.test.app.A", "android.widget.Toast", "show"),
             caller_class("com.test.app.B", "android.widget.Toast", "show")]
        )
        vm = ClassLoaderVM(apk, framework, 23)
        result = vm.explore(entry_refs(apk))
        names = list(result.loaded_classes)
        assert len(names) == len(set(names))
        assert result.stats.classes_loaded == len(names)

    def test_callgraph_contains_entry_points(self, framework):
        apk = make_apk([activity_class()])
        vm = ClassLoaderVM(apk, framework, 23)
        result = vm.explore(entry_refs(apk))
        ref = MethodRef(
            "com.test.app.MainActivity", "onCreate",
            "(android.os.Bundle)void",
        )
        assert ref in result.callgraph.methods
        assert ref in result.callgraph.entry_points

    def test_follow_framework_off_keeps_framework_terminal(self, framework):
        apk = make_apk(
            [activity_class(),
             caller_class("com.test.app.T", "android.widget.Toast", "show")]
        )
        vm = ClassLoaderVM(apk, framework, 23, follow_framework=False)
        result = vm.explore(entry_refs(apk))
        framework_methods = [
            ref for ref in result.callgraph.methods if ref.is_framework
        ]
        assert framework_methods == []

    def test_framework_depth_cap(self, framework):
        apk = make_apk(
            [activity_class(),
             caller_class(
                 "com.test.app.T", "android.location.Geocoder",
                 "getFromLocation", "(double,double,int)java.util.List",
             )]
        )
        shallow = ClassLoaderVM(apk, framework, 23, max_framework_depth=0)
        deep = ClassLoaderVM(apk, framework, 23, max_framework_depth=4)
        shallow_result = shallow.explore(entry_refs(apk))
        deep_result = deep.explore(entry_refs(apk))
        assert (
            deep_result.stats.framework_classes_loaded
            >= shallow_result.stats.framework_classes_loaded
        )
        # depth 0 still loads the Geocoder itself (first level)
        assert "android.location.Geocoder" in shallow_result.loaded_classes


class TestLateBinding:
    def plugin_apk(self, plugin_name="com.test.app.Plugin"):
        plugin = caller_class(plugin_name, "android.widget.Toast", "show")
        loader = ClassBuilder("com.test.app.Loader")
        method = loader.method("load")
        method.const_string(0, plugin_name)
        method.invoke_virtual(
            "dalvik.system.DexClassLoader", "loadClass",
            "(java.lang.String)java.lang.Class", args=(0,),
        )
        method.return_void()
        loader.finish(method)
        return make_apk(
            [activity_class(), loader.build()], secondary_classes=[plugin]
        )

    def test_secondary_dex_reached_via_load_class(self, framework):
        apk = self.plugin_apk()
        vm = ClassLoaderVM(apk, framework, 23)
        result = vm.explore(entry_refs(apk))
        assert "com.test.app.Plugin" in result.loaded_classes
        assert result.stats.dynamic_classes_resolved == 1
        assert MethodRef("com.test.app.Plugin", "go", "()void") in (
            result.callgraph.methods
        )

    def test_external_class_reported_unresolved(self, framework):
        loader = ClassBuilder("com.test.app.Loader")
        method = loader.method("load")
        method.const_string(0, "com.external.Gone")
        method.invoke_virtual(
            "dalvik.system.DexClassLoader", "loadClass",
            "(java.lang.String)java.lang.Class", args=(0,),
        )
        method.return_void()
        loader.finish(method)
        apk = make_apk([activity_class(), loader.build()])
        vm = ClassLoaderVM(apk, framework, 23)
        result = vm.explore(entry_refs(apk))
        assert result.unresolved_dynamic_classes == ("com.external.Gone",)

    def test_unresolvable_string_counted(self, framework):
        loader = ClassBuilder("com.test.app.Loader")
        method = loader.method("load")
        method.move_result(0)  # unknown value
        method.invoke_virtual(
            "dalvik.system.DexClassLoader", "loadClass",
            "(java.lang.String)java.lang.Class", args=(0,),
        )
        method.return_void()
        loader.finish(method)
        apk = make_apk([activity_class(), loader.build()])
        vm = ClassLoaderVM(apk, framework, 23)
        result = vm.explore(entry_refs(apk))
        assert result.stats.dynamic_sites_unresolved == 1


class TestVirtualDispatch:
    def test_dispatch_into_app_override(self, framework):
        listener = ClassBuilder(
            "com.test.app.Listener", interfaces=("java.lang.Runnable",)
        )
        listener.empty_method("run")
        poster = ClassBuilder("com.test.app.Poster")
        method = poster.method("post")
        method.new_instance(0, "com.test.app.Listener")
        method.invoke_virtual(
            "java.lang.Runnable", "run", "()void", args=(0,),
        )
        method.return_void()
        poster.finish(method)
        apk = make_apk([activity_class(), listener.build(), poster.build()])
        vm = ClassLoaderVM(apk, framework, 23)
        result = vm.explore(entry_refs(apk))
        override = MethodRef("com.test.app.Listener", "run", "()void")
        resolved = {
            site.resolved
            for sites in result.callgraph.edges.values()
            for site in sites
        }
        assert override in resolved


class TestEagerMode:
    def test_load_everything_loads_whole_image(self, framework, simple_apk):
        vm = ClassLoaderVM(simple_apk, framework, 23)
        vm.load_everything()
        assert vm.stats.framework_classes_loaded == (
            framework.image_class_count(23)
        )
        assert vm.stats.retain_framework_bodies

    def test_eager_memory_exceeds_lazy(self, framework, simple_apk):
        lazy = ClassLoaderVM(simple_apk, framework, 23)
        lazy.explore(entry_refs(simple_apk))
        eager = ClassLoaderVM(simple_apk, framework, 23)
        eager.load_everything()
        assert eager.stats.memory_units > lazy.stats.memory_units


class TestCycles:
    def test_mutually_recursive_app_methods(self, framework):
        a = ClassBuilder("com.test.app.A")
        method_a = a.method("ping")
        method_a.invoke_virtual("com.test.app.B", "pong")
        method_a.return_void()
        a.finish(method_a)
        b = ClassBuilder("com.test.app.B")
        method_b = b.method("pong")
        method_b.invoke_virtual("com.test.app.A", "ping")
        method_b.return_void()
        b.finish(method_b)
        apk = make_apk([activity_class(), a.build(), b.build()])
        vm = ClassLoaderVM(apk, framework, 23)
        result = vm.explore(entry_refs(apk))  # must terminate
        assert MethodRef("com.test.app.A", "ping", "()void") in (
            result.callgraph.methods
        )
        assert MethodRef("com.test.app.B", "pong", "()void") in (
            result.callgraph.methods
        )

    def test_self_recursive_method(self, framework):
        builder = ClassBuilder("com.test.app.R")
        method = builder.method("again")
        method.invoke_virtual("com.test.app.R", "again")
        method.return_void()
        builder.finish(method)
        apk = make_apk([activity_class(), builder.build()])
        vm = ClassLoaderVM(apk, framework, 23)
        result = vm.explore(entry_refs(apk))
        assert result.stats.methods_analyzed > 0


class TestCrossAppReuse:
    def test_second_exploration_is_served_warm(self, spec):
        from repro.framework.repository import FrameworkRepository

        framework = FrameworkRepository(spec)
        apk = make_apk(
            [activity_class(),
             caller_class("com.test.app.T", "android.widget.Toast", "show")]
        )
        first = ClassLoaderVM(apk, framework, 23).explore(entry_refs(apk))
        assert first.stats.framework_classes_reused == 0
        # Same repository, new VM — the framework classes come out of
        # the shared cache, and the stats say so.
        second = ClassLoaderVM(apk, framework, 23).explore(entry_refs(apk))
        assert (
            second.stats.framework_classes_reused
            == second.stats.framework_classes_loaded
        )
        assert second.stats.framework_reuse_rate == 1.0
        # Reuse is observational: both runs model identical cost.
        assert second.stats.work_units == first.stats.work_units
        assert second.stats.memory_units == first.stats.memory_units
