"""Tests for ICFG construction."""

from repro.analysis.callgraph import CallGraph, CallSite
from repro.analysis.icfg import IcfgNode, build_icfg
from repro.ir.builder import MethodBuilder
from repro.ir.instructions import CmpOp
from repro.ir.types import MethodRef


def build_graph():
    """main() calls helper() (guarded); helper calls a framework API."""
    main_ref = MethodRef("com.app.C", "main")
    helper_ref = MethodRef("com.app.C", "helper")

    main_builder = MethodBuilder(main_ref)
    main_builder.sdk_int(0)
    main_builder.const_int(1, 23)
    main_builder.if_cmp(CmpOp.LT, 0, 1, "skip")
    main_builder.invoke_virtual("com.app.C", "helper")
    main_builder.label("skip")
    main_builder.return_void()

    helper_builder = MethodBuilder(helper_ref)
    helper_builder.invoke_virtual("android.widget.Toast", "show")
    helper_builder.return_void()

    graph = CallGraph()
    graph.add_method(main_builder.build())
    graph.add_method(helper_builder.build())
    graph.add_edge(
        CallSite(caller=main_ref, callee=helper_ref, resolved=helper_ref)
    )
    graph.add_entry_point(main_ref)
    return graph, main_ref, helper_ref


class TestIcfg:
    def test_roots(self):
        graph, main_ref, _ = build_graph()
        icfg = build_icfg(graph)
        assert icfg.roots == (IcfgNode(main_ref, 0),)

    def test_call_edge_reaches_callee_entry(self):
        graph, main_ref, helper_ref = build_graph()
        icfg = build_icfg(graph)
        callee_entries = {
            target
            for targets in icfg.edges.values()
            for target in targets
            if target.method == helper_ref
        }
        assert IcfgNode(helper_ref, 0) in callee_entries

    def test_return_edge_back_to_call_site(self):
        graph, main_ref, helper_ref = build_graph()
        icfg = build_icfg(graph)
        helper_exit_targets = icfg.successors(IcfgNode(helper_ref, 0))
        assert any(t.method == main_ref for t in helper_exit_targets)

    def test_everything_reachable_from_roots(self):
        graph, main_ref, helper_ref = build_graph()
        icfg = build_icfg(graph)
        reachable = icfg.reachable_nodes()
        methods = {node.method for node in reachable}
        assert methods == {main_ref, helper_ref}

    def test_counts(self):
        graph, *_ = build_graph()
        icfg = build_icfg(graph)
        assert icfg.node_count >= 3
        assert icfg.edge_count >= 3

    def test_empty_graph(self):
        icfg = build_icfg(CallGraph())
        assert icfg.roots == ()
        assert icfg.node_count == 0
