"""Tests for the call-graph data structure."""

from repro.analysis.callgraph import CallGraph, CallSite
from repro.ir.builder import MethodBuilder
from repro.ir.types import MethodRef


def method(name):
    return MethodBuilder(MethodRef("com.app.C", name)).build()


def site(caller, callee, resolved=None):
    return CallSite(
        caller=MethodRef("com.app.C", caller),
        callee=MethodRef("com.app.C", callee),
        resolved=MethodRef("com.app.C", resolved) if resolved else None,
    )


class TestCallGraph:
    def build_chain(self):
        graph = CallGraph()
        for name in ("a", "b", "c", "d"):
            graph.add_method(method(name))
        graph.add_edge(site("a", "b", "b"))
        graph.add_edge(site("b", "c", "c"))
        graph.add_entry_point(MethodRef("com.app.C", "a"))
        return graph

    def test_membership(self):
        graph = self.build_chain()
        assert MethodRef("com.app.C", "a") in graph
        assert MethodRef("com.app.C", "zz") not in graph
        assert len(graph) == 4

    def test_callees(self):
        graph = self.build_chain()
        sites = graph.callees(MethodRef("com.app.C", "a"))
        assert len(sites) == 1
        assert sites[0].callee.name == "b"

    def test_callers_of(self):
        graph = self.build_chain()
        callers = graph.callers_of(MethodRef("com.app.C", "b"))
        assert callers == (MethodRef("com.app.C", "a"),)

    def test_reachability(self):
        graph = self.build_chain()
        reachable = graph.reachable_from()
        names = {ref.name for ref in reachable}
        assert names == {"a", "b", "c"}  # d is disconnected

    def test_reachability_custom_roots(self):
        graph = self.build_chain()
        reachable = graph.reachable_from((MethodRef("com.app.C", "b"),))
        assert {ref.name for ref in reachable} == {"b", "c"}

    def test_entry_points_deduplicated(self):
        graph = CallGraph()
        ref = MethodRef("com.app.C", "a")
        graph.add_entry_point(ref)
        graph.add_entry_point(ref)
        assert graph.entry_points == [ref]

    def test_app_methods_excludes_framework(self):
        graph = CallGraph()
        graph.add_method(method("a"))
        graph.add_method(
            MethodBuilder(MethodRef("android.view.View", "invalidate")).build()
        )
        assert [r.name for r in graph.app_methods()] == ["a"]

    def test_edge_count(self):
        graph = self.build_chain()
        assert graph.edge_count == 2
