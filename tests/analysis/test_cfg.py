"""Tests for control-flow graph construction."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.cfg import EXIT, build_cfg
from repro.ir.builder import MethodBuilder
from repro.ir.instructions import CmpOp
from repro.ir.types import MethodRef


def mb(name="m"):
    return MethodBuilder(MethodRef("com.app.Foo", name))


class TestStraightLine:
    def test_single_block(self):
        cfg = build_cfg(mb().const_int(0, 1).const_int(1, 2).build())
        assert len(cfg.blocks) == 1
        assert cfg.successors[0] == (EXIT,)

    def test_empty_method(self):
        from repro.ir.method import Method
        cfg = build_cfg(Method(ref=MethodRef("C", "m"), body=None))
        assert cfg.blocks == ()


class TestBranches:
    def guarded(self):
        b = mb()
        b.sdk_int(0)
        b.const_int(1, 23)
        b.if_cmp(CmpOp.LT, 0, 1, "skip")
        b.invoke_virtual("android.widget.Toast", "show")
        b.label("skip")
        b.return_void()
        return b.build()

    def test_diamond_blocks(self):
        cfg = build_cfg(self.guarded())
        # header (3 instr), call block, merged return block
        assert len(cfg.blocks) == 3
        header = cfg.blocks[0]
        assert set(cfg.successors[header.index]) == {1, 2}

    def test_predecessors_computed(self):
        cfg = build_cfg(self.guarded())
        # return block reached from header (branch) and call block.
        assert set(cfg.predecessors[2]) == {0, 1}

    def test_block_of(self):
        cfg = build_cfg(self.guarded())
        assert cfg.block_of(0).index == 0
        assert cfg.block_of(3).index == 1

    def test_loop_edges(self):
        b = mb()
        b.label("top")
        b.const_int(0, 1)
        b.if_cmpz(CmpOp.GT, 0, "top")
        b.return_void()
        cfg = build_cfg(b.build())
        # the branch block loops back to the top block
        flat = {t for targets in cfg.successors.values() for t in targets}
        assert 0 in flat

    def test_goto_only_edge(self):
        b = mb()
        b.goto("end")
        b.label("end")
        b.return_void()
        cfg = build_cfg(b.build())
        assert cfg.successors[0] == (1,)

    def test_reverse_postorder_starts_at_entry(self):
        cfg = build_cfg(self.guarded())
        order = cfg.reverse_postorder()
        assert order[0] == 0
        assert set(order) == {0, 1, 2}


class TestStructuralInvariants:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 3), min_size=1, max_size=12),
           st.integers(2, 29))
    def test_every_instruction_in_exactly_one_block(self, shape, level):
        """Random mixes of guards/calls partition into disjoint blocks."""
        b = mb()
        for step, choice in enumerate(shape):
            if choice == 0:
                b.const_int(step % 8, step)
            elif choice == 1:
                b.invoke_virtual("android.widget.Toast", "show")
            elif choice == 2:
                b.guarded_call(level, "android.widget.Toast", "show")
            else:
                b.sdk_int(step % 8)
        b.return_void()
        method = b.build()
        cfg = build_cfg(method)
        covered = []
        for block in cfg.blocks:
            covered.extend(range(block.start, block.end))
        assert sorted(covered) == list(range(len(method.body)))

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 2), min_size=1, max_size=10))
    def test_every_block_has_successors_entry(self, shape):
        b = mb()
        for step, choice in enumerate(shape):
            if choice == 0:
                b.const_int(0, step)
            else:
                b.guarded_call(20 + choice, "android.widget.Toast", "show")
        b.return_void()
        cfg = build_cfg(b.build())
        for block in cfg.blocks:
            assert block.index in cfg.successors
            for target in cfg.successors[block.index]:
                assert target == EXIT or 0 <= target < len(cfg.blocks)
