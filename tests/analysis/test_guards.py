"""Tests for the SDK_INT guard analysis — the precision backbone."""

from repro.analysis.guards import guard_at_allocations, guard_at_invocations
from repro.analysis.intervals import ApiInterval
from repro.ir.builder import MethodBuilder
from repro.ir.instructions import CmpOp
from repro.ir.types import MethodRef, SDK_INT_FIELD


APP = ApiInterval.of(14, 29)


def mb():
    return MethodBuilder(MethodRef("com.app.Foo", "m"))


def single_call_interval(method, entry=APP):
    pairs = list(guard_at_invocations(method, entry))
    assert len(pairs) == 1, pairs
    return pairs[0][1]


class TestBasicGuards:
    def test_unguarded_call_gets_entry_interval(self):
        method = mb().invoke_virtual("android.widget.Toast", "show").build()
        assert single_call_interval(method) == APP

    def test_ge_guard(self):
        method = mb().guarded_call(
            23, "android.widget.Toast", "show"
        ).build()
        assert single_call_interval(method) == ApiInterval.of(23, 29)

    def test_le_guard(self):
        method = mb().guarded_call_max(
            22, "android.widget.Toast", "show"
        ).build()
        assert single_call_interval(method) == ApiInterval.of(14, 22)

    def test_else_branch_gets_complement(self):
        b = mb()
        b.sdk_int(0)
        b.const_int(1, 23)
        b.if_cmp(CmpOp.GE, 0, 1, "modern")
        b.invoke_virtual("legacy.Api", "old")
        b.return_void()
        b.label("modern")
        b.invoke_virtual("modern.Api", "new")
        b.return_void()
        intervals = {
            invoke.method.class_name: interval
            for invoke, interval in guard_at_invocations(b.build(), APP)
        }
        assert intervals["legacy.Api"] == ApiInterval.of(14, 22)
        assert intervals["modern.Api"] == ApiInterval.of(23, 29)

    def test_swapped_operands(self):
        b = mb()
        b.const_int(0, 23)
        b.sdk_int(1)
        # if 23 > SDK_INT goto skip  ==  skip when SDK_INT < 23
        b.if_cmp(CmpOp.GT, 0, 1, "skip")
        b.invoke_virtual("android.widget.Toast", "show")
        b.label("skip")
        b.return_void()
        assert single_call_interval(b.build()) == ApiInterval.of(23, 29)

    def test_eq_guard(self):
        b = mb()
        b.sdk_int(0)
        b.const_int(1, 21)
        b.if_cmp(CmpOp.NE, 0, 1, "skip")
        b.invoke_virtual("android.widget.Toast", "show")
        b.label("skip")
        b.return_void()
        assert single_call_interval(b.build()) == ApiInterval.single(21)


class TestDataFlowTracking:
    def test_guard_through_move(self):
        b = mb()
        b.sdk_int(0)
        b.move(2, 0)  # SDK_INT flows through a copy
        b.const_int(1, 23)
        b.if_cmp(CmpOp.LT, 2, 1, "skip")
        b.invoke_virtual("android.widget.Toast", "show")
        b.label("skip")
        b.return_void()
        assert single_call_interval(b.build()) == ApiInterval.of(23, 29)

    def test_sdk_via_field_get(self):
        b = mb()
        b.field_get(0, SDK_INT_FIELD)
        b.const_int(1, 26)
        b.if_cmp(CmpOp.LT, 0, 1, "skip")
        b.invoke_virtual("android.widget.Toast", "show")
        b.label("skip")
        b.return_void()
        assert single_call_interval(b.build()) == ApiInterval.of(26, 29)

    def test_clobbered_register_loses_guard(self):
        b = mb()
        b.sdk_int(0)
        b.const_int(0, 5)  # overwrites SDK_INT with a constant
        b.const_int(1, 23)
        b.if_cmp(CmpOp.LT, 0, 1, "skip")
        b.invoke_virtual("android.widget.Toast", "show")
        b.label("skip")
        b.return_void()
        # 5 < 23 is constant-true... but we model unknown branch both
        # ways; the interval must not be refined by a non-SDK compare.
        assert single_call_interval(b.build()) == APP

    def test_nested_guards_intersect(self):
        b = mb()
        b.sdk_int(0)
        b.const_int(1, 21)
        b.if_cmp(CmpOp.LT, 0, 1, "skip")
        b.sdk_int(2)
        b.const_int(3, 26)
        b.if_cmp(CmpOp.GT, 2, 3, "skip")
        b.invoke_virtual("android.widget.Toast", "show")
        b.label("skip")
        b.return_void()
        assert single_call_interval(b.build()) == ApiInterval.of(21, 26)


class TestUnreachability:
    def test_contradictory_guard_suppresses_call(self):
        b = mb()
        b.sdk_int(0)
        b.const_int(1, 35)  # no modeled device satisfies >= 35
        b.if_cmp(CmpOp.LT, 0, 1, "skip")
        b.invoke_virtual("android.widget.Toast", "show")
        b.label("skip")
        b.return_void()
        pairs = list(guard_at_invocations(b.build(), APP))
        assert pairs == []  # dead branch never yields a call

    def test_merge_joins_intervals(self):
        b = mb()
        b.sdk_int(0)
        b.const_int(1, 23)
        b.if_cmp(CmpOp.LT, 0, 1, "low")
        b.const_int(2, 1)
        b.goto("merge")
        b.label("low")
        b.const_int(2, 2)
        b.label("merge")
        b.invoke_virtual("android.widget.Toast", "show")
        b.return_void()
        # Both arms flow into the call: join restores the full range.
        assert single_call_interval(b.build()) == APP


class TestAllocations:
    def test_guarded_allocation_interval(self):
        b = mb()
        b.sdk_int(0)
        b.const_int(1, 24)
        b.if_cmp(CmpOp.LT, 0, 1, "skip")
        b.new_instance(2, "com.app.Foo$1")
        b.label("skip")
        b.return_void()
        pairs = list(guard_at_allocations(b.build(), APP))
        assert len(pairs) == 1
        allocation, interval = pairs[0]
        assert allocation.class_name == "com.app.Foo$1"
        assert interval == ApiInterval.of(24, 29)
