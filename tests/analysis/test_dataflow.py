"""Tests for the generic dataflow engine using a tiny counting
analysis (distinct from the shipped clients, to test the engine
itself)."""

import pytest

from repro.analysis.cfg import build_cfg
from repro.analysis.dataflow import Analysis, solve_forward
from repro.ir.builder import MethodBuilder
from repro.ir.instructions import CmpOp, ConstInt, Instruction
from repro.ir.types import MethodRef


class ConstCounting(Analysis):
    """Counts the maximum number of ConstInt instructions seen on any
    path (a simple monotone analysis over max-join)."""

    def initial_state(self):
        return 0

    def bottom(self):
        return None

    def join(self, left, right):
        if left is None:
            return right
        if right is None:
            return left
        return max(left, right)

    def transfer(self, state, instruction: Instruction):
        if state is None:
            return None
        if isinstance(instruction, ConstInt):
            return state + 1
        return state

    def equal(self, left, right):
        return left == right


def mb():
    return MethodBuilder(MethodRef("com.app.C", "m"))


class TestEngine:
    def test_straight_line(self):
        method = mb().const_int(0, 1).const_int(1, 2).build()
        cfg = build_cfg(method)
        states = solve_forward(ConstCounting(), cfg)
        assert states.entry_states[0] == 0
        # state before the implicit return == after both consts
        assert states.state_before(0, 2) == 2

    def test_diamond_max_join(self):
        b = mb()
        b.sdk_int(0)
        b.if_cmpz(CmpOp.GT, 0, "right")
        b.const_int(1, 1)
        b.const_int(2, 2)
        b.goto("merge")
        b.label("right")
        b.const_int(3, 3)
        b.label("merge")
        b.return_void()
        cfg = build_cfg(b.build())
        states = solve_forward(ConstCounting(), cfg)
        merge_block = cfg.block_of(b.build().body.resolve("merge"))
        assert states.entry_states[merge_block.index] == 2  # max(2, 1)

    def test_loop_converges(self):
        b = mb()
        b.label("top")
        b.sdk_int(0)
        b.if_cmpz(CmpOp.GT, 0, "top")
        b.return_void()
        cfg = build_cfg(b.build())
        # Monotone bounded analysis: must converge without error.
        states = solve_forward(ConstCounting(), cfg)
        assert all(s is not None for s in states.entry_states.values())

    def test_non_convergent_analysis_detected(self):
        class Diverging(ConstCounting):
            def transfer(self, state, instruction):
                return None if state is None else state + 1  # unbounded

        b = mb()
        b.label("top")
        b.const_int(0, 1)
        b.sdk_int(1)
        b.if_cmpz(CmpOp.GT, 1, "top")
        b.return_void()
        cfg = build_cfg(b.build())
        with pytest.raises(RuntimeError, match="did not converge"):
            solve_forward(Diverging(), cfg)

    def test_instruction_states_iterator(self):
        method = mb().const_int(0, 1).const_int(1, 2).build()
        cfg = build_cfg(method)
        states = solve_forward(ConstCounting(), cfg)
        seen = list(states.instruction_states(0))
        assert [s for _, s, _ in seen] == [0, 1, 2]

    def test_empty_method(self):
        from repro.ir.method import Method
        cfg = build_cfg(Method(ref=MethodRef("C", "m"), body=None))
        states = solve_forward(ConstCounting(), cfg)
        assert states.entry_states == {}
