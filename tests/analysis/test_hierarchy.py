"""Tests for cross-boundary hierarchy resolution."""

from repro.analysis.hierarchy import HierarchyResolver
from repro.ir.builder import ClassBuilder
from repro.ir.types import MethodRef

from tests.conftest import activity_class, make_apk


def subclass_of(super_name, name="com.test.app.Custom", methods=()):
    builder = ClassBuilder(name, super_name=super_name)
    for method_name, descriptor in methods:
        builder.empty_method(method_name, descriptor)
    return builder.build()


class TestResolution:
    def test_app_class_resolution(self, framework):
        apk = make_apk([activity_class()])
        resolver = HierarchyResolver(apk, framework, 23)
        clazz = resolver.resolve("com.test.app.MainActivity")
        assert clazz is not None and clazz.origin == "app"

    def test_framework_class_resolution(self, framework):
        apk = make_apk([activity_class()])
        resolver = HierarchyResolver(apk, framework, 23)
        clazz = resolver.resolve("android.view.View")
        assert clazz is not None and clazz.origin == "framework"

    def test_unknown_is_none(self, framework):
        apk = make_apk([activity_class()])
        resolver = HierarchyResolver(apk, framework, 23)
        assert resolver.resolve("no.where.Nothing") is None

    def test_secondary_dex_exclusion(self, framework):
        plugin = subclass_of("java.lang.Object", "com.test.app.Plugin")
        apk = make_apk([activity_class()], secondary_classes=[plugin])
        include = HierarchyResolver(apk, framework, 23)
        exclude = HierarchyResolver(
            apk, framework, 23, include_secondary_dex=False
        )
        assert include.resolve("com.test.app.Plugin") is not None
        assert exclude.resolve("com.test.app.Plugin") is None

    def test_loaded_hook_fires_once_per_class(self, framework):
        apk = make_apk([activity_class()])
        loaded = []
        resolver = HierarchyResolver(
            apk, framework, 23,
            loaded_hook=lambda c, warm: loaded.append(c.name),
        )
        resolver.resolve("android.view.View")
        resolver.resolve("android.view.View")
        assert loaded.count("android.view.View") == 1

    def test_loaded_hook_reports_warm_framework_loads(self, framework):
        apk = make_apk([activity_class()])
        warmth: dict[str, bool] = {}
        resolver = HierarchyResolver(
            apk, framework, 23,
            loaded_hook=lambda c, warm: warmth.setdefault(c.name, warm),
        )
        resolver.resolve("android.view.View")
        # A second resolver over the same repository gets the class
        # from the shared cache — the hook must say so.
        second = HierarchyResolver(
            apk, framework, 23,
            loaded_hook=lambda c, warm: warmth.__setitem__(c.name, warm),
        )
        second.resolve("android.view.View")
        assert warmth["android.view.View"] is True
        # App classes are never "warm": they come from the APK itself.
        second.resolve("com.test.app.MainActivity")
        assert warmth["com.test.app.MainActivity"] is False


class TestHierarchyWalks:
    def test_supertype_chain_crosses_boundary(self, framework):
        apk = make_apk([activity_class()])
        resolver = HierarchyResolver(apk, framework, 23)
        chain = [
            c.name for c in resolver.supertype_chain("com.test.app.MainActivity")
        ]
        assert chain[0] == "android.app.Activity"
        assert "android.content.Context" in chain
        assert chain[-1] == "java.lang.Object"

    def test_framework_ancestors(self, framework):
        apk = make_apk([activity_class()])
        resolver = HierarchyResolver(apk, framework, 23)
        ancestors = resolver.framework_ancestors("com.test.app.MainActivity")
        assert all(c.origin == "framework" for c in ancestors)
        assert resolver.extends_framework("com.test.app.MainActivity")

    def test_dispatch_finds_inherited_declaration(self, framework):
        custom = subclass_of("android.widget.TextView")
        apk = make_apk([activity_class(), custom])
        resolver = HierarchyResolver(apk, framework, 23)
        declaring = resolver.dispatch(
            MethodRef("com.test.app.Custom", "setTextAppearance", "(int)void")
        )
        assert declaring is not None
        assert declaring.name == "android.widget.TextView"

    def test_dispatch_finds_deep_inherited_declaration(self, framework):
        custom = subclass_of("android.widget.TextView")
        apk = make_apk([activity_class(), custom])
        resolver = HierarchyResolver(apk, framework, 23)
        declaring = resolver.dispatch(
            MethodRef("com.test.app.Custom", "performClick", "()boolean")
        )
        assert declaring is not None
        assert declaring.name == "android.view.View"

    def test_dispatch_unknown_method_none(self, framework):
        apk = make_apk([activity_class()])
        resolver = HierarchyResolver(apk, framework, 23)
        assert resolver.dispatch(
            MethodRef("com.test.app.MainActivity", "noSuchThing")
        ) is None

    def test_override_detection(self, framework):
        hook = subclass_of(
            "android.view.View",
            methods=(("drawableHotspotChanged", "(float,float)void"),),
        )
        apk = make_apk([activity_class(), hook])
        resolver = HierarchyResolver(apk, framework, 23)
        declaring = resolver.overridden_framework_method(
            "com.test.app.Custom", "drawableHotspotChanged(float,float)void"
        )
        assert declaring is not None
        assert declaring.name == "android.view.View"

    def test_override_through_app_intermediate(self, framework):
        base = subclass_of(
            "android.app.Activity",
            name="com.test.app.BaseActivity",
            methods=(("onResume", "()void"),),
        )
        child = subclass_of(
            "com.test.app.BaseActivity",
            name="com.test.app.ChildActivity",
            methods=(("onResume", "()void"),),
        )
        apk = make_apk([activity_class(), base, child])
        resolver = HierarchyResolver(apk, framework, 23)
        declaring = resolver.overridden_framework_method(
            "com.test.app.ChildActivity", "onResume()void"
        )
        assert declaring is not None
        assert declaring.name == "android.app.Activity"

    def test_non_override_is_none(self, framework):
        apk = make_apk([activity_class()])
        resolver = HierarchyResolver(apk, framework, 23)
        assert resolver.overridden_framework_method(
            "com.test.app.MainActivity", "myOwnHelper()void"
        ) is None


class TestWalkMemoization:
    def test_repeated_walks_return_same_tuple(self, framework):
        apk = make_apk([activity_class()])
        resolver = HierarchyResolver(apk, framework, 23)
        first = resolver.all_supertypes("com.test.app.MainActivity")
        assert resolver.all_supertypes("com.test.app.MainActivity") is first
        chain = resolver.supertype_chain("com.test.app.MainActivity")
        assert resolver.supertype_chain("com.test.app.MainActivity") is chain

    def test_memoized_walk_skips_resolution(self, framework):
        apk = make_apk([activity_class()])
        loads = []
        resolver = HierarchyResolver(
            apk, framework, 23,
            loaded_hook=lambda clazz, warm: loads.append(clazz.name),
        )
        resolver.all_supertypes("com.test.app.MainActivity")
        first_pass = len(loads)
        assert first_pass > 0
        resolver.all_supertypes("com.test.app.MainActivity")
        resolver.framework_ancestors("com.test.app.MainActivity")
        resolver.dispatch(
            MethodRef(
                "com.test.app.MainActivity",
                "onCreate",
                "(android.os.Bundle)void",
            )
        )
        assert len(loads) == first_pass  # no class re-resolved

    def test_memoization_preserves_answers(self, framework):
        base = subclass_of(
            "android.app.Activity",
            name="com.test.app.BaseActivity",
            methods=(("onResume", "()void"),),
        )
        apk = make_apk([activity_class(), base])
        cached = HierarchyResolver(apk, framework, 23)
        cached.all_supertypes("com.test.app.BaseActivity")  # warm it
        fresh = HierarchyResolver(apk, framework, 23)
        assert [
            c.name for c in cached.all_supertypes("com.test.app.BaseActivity")
        ] == [
            c.name for c in fresh.all_supertypes("com.test.app.BaseActivity")
        ]
