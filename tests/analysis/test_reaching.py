"""Tests for the reaching string-constants analysis."""

from repro.analysis.reaching import strings_at_invocations
from repro.ir.builder import MethodBuilder
from repro.ir.instructions import CmpOp
from repro.ir.types import MethodRef


def mb():
    return MethodBuilder(MethodRef("com.app.Foo", "m"))


def load_class_strings(method):
    for invoke, resolved in strings_at_invocations(method):
        if invoke.method.name == "loadClass":
            return resolved
    return None


class TestStringTracking:
    def test_direct_constant(self):
        b = mb()
        b.const_string(0, "com.app.Plugin")
        b.invoke_virtual(
            "dalvik.system.DexClassLoader", "loadClass",
            "(java.lang.String)java.lang.Class", args=(0,),
        )
        b.return_void()
        resolved = load_class_strings(b.build())
        assert resolved == {0: frozenset({"com.app.Plugin"})}

    def test_constant_through_move(self):
        b = mb()
        b.const_string(0, "com.app.Plugin")
        b.move(3, 0)
        b.invoke_virtual(
            "dalvik.system.DexClassLoader", "loadClass",
            "(java.lang.String)java.lang.Class", args=(3,),
        )
        b.return_void()
        assert load_class_strings(b.build())[0] == frozenset(
            {"com.app.Plugin"}
        )

    def test_branch_union(self):
        b = mb()
        b.sdk_int(4)
        b.const_int(5, 23)
        b.const_string(0, "com.app.New")
        b.if_cmp(CmpOp.GE, 4, 5, "pick")
        b.const_string(0, "com.app.Old")
        b.label("pick")
        b.invoke_virtual(
            "java.lang.ClassLoader", "loadClass",
            "(java.lang.String)java.lang.Class", args=(0,),
        )
        b.return_void()
        assert load_class_strings(b.build())[0] == frozenset(
            {"com.app.New", "com.app.Old"}
        )

    def test_clobbered_by_non_string(self):
        b = mb()
        b.const_string(0, "com.app.Plugin")
        b.const_int(0, 7)
        b.invoke_virtual(
            "java.lang.ClassLoader", "loadClass",
            "(java.lang.String)java.lang.Class", args=(0,),
        )
        b.return_void()
        assert load_class_strings(b.build()) == {}

    def test_unresolved_argument_absent(self):
        b = mb()
        b.move_result(0)  # value of unknown provenance
        b.invoke_virtual(
            "java.lang.ClassLoader", "loadClass",
            "(java.lang.String)java.lang.Class", args=(0,),
        )
        b.return_void()
        assert load_class_strings(b.build()) == {}

    def test_multiple_args_partially_resolved(self):
        b = mb()
        b.const_string(0, "android.permission.CAMERA")
        b.move_result(1)
        b.invoke_virtual(
            "android.content.Context", "enforceCallingOrSelfPermission",
            "(java.lang.String,java.lang.String)void", args=(0, 1),
        )
        b.return_void()
        pairs = list(strings_at_invocations(b.build()))
        assert len(pairs) == 1
        _, resolved = pairs[0]
        assert resolved == {0: frozenset({"android.permission.CAMERA"})}
