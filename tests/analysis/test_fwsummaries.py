"""Tests for whole-framework pre-summaries (the CLVM boundary table)."""

from __future__ import annotations

import pytest

from repro.analysis.fwsummaries import (
    FrameworkSummaryTable,
    cached_table,
    summary_table,
)
from repro.core.apidb import ApiDatabase
from repro.framework.repository import FrameworkRepository
from repro.ir.types import MethodRef

LEVEL = 25


@pytest.fixture(scope="module")
def table(framework, apidb) -> FrameworkSummaryTable:
    return FrameworkSummaryTable(framework, apidb)


class TestBuild:
    def test_every_image_class_is_summarized(self, framework, table):
        summaries = table.level_summaries(LEVEL)
        assert set(summaries) == set(framework.class_names(LEVEL))
        assert table.stats.levels_built == 1
        assert table.stats.build_seconds > 0.0

    def test_levels_are_memoized(self, table):
        first = table.level_summaries(LEVEL)
        again = table.level_summaries(LEVEL)
        assert first is again
        assert table.stats.levels_built == 1

    def test_effects_are_well_formed(self, table):
        kinds = {"loadclass", "new", "call", "dispatch"}
        seen_kinds = set()
        for summary in table.level_summaries(LEVEL).values():
            for kind, target, container in summary.effects:
                assert kind in kinds
                assert isinstance(container, MethodRef)
                seen_kinds.add(kind)
        # The generated framework always contains plain calls and
        # virtual dispatch sites (enforcement + callback dispatchers).
        assert "call" in seen_kinds
        assert "dispatch" in seen_kinds

    def test_class_summary_counts_match_the_image(
        self, framework, table
    ):
        image = framework.load_image(LEVEL)
        for name, clazz in image.items():
            summary = table.level_summaries(LEVEL)[name]
            assert summary.instruction_count == clazz.instruction_count
            assert summary.method_count == len(clazz.methods)

    def test_lookup_stats_count_class_queries(self, framework, table):
        before = table.stats.lookups
        name = framework.class_names(LEVEL)[0]
        assert table.class_summary(name, LEVEL) is not None
        assert table.class_summary("android.not.AClass", LEVEL) is None
        assert table.stats.lookups == before + 2


class TestMethodSummaries:
    def test_interval_covers_the_method_itself(self, apidb, table):
        """The reachable-interval hull must contain every summarized
        method's own lifetime (it is depth-0 of its region)."""
        checked = 0
        for summary in table.level_summaries(LEVEL).values():
            for method in summary.methods.values():
                entry = apidb.resolve(
                    method.ref.class_name,
                    method.ref.name + method.ref.descriptor,
                )
                if entry is None:
                    continue
                lo, hi = entry.lifetime
                assert method.interval[0] <= lo
                assert method.interval[1] >= hi
                checked += 1
        assert checked > 0

    def test_permissions_cover_direct_enforcement(self, apidb, table):
        """Any permission the database attributes directly to a method
        must appear in its summary (the region includes depth 0)."""
        with_permissions = 0
        for summary in table.level_summaries(LEVEL).values():
            for method in summary.methods.values():
                direct = apidb.permissions_for(method.ref, deep=False)
                assert set(direct) <= set(method.permissions)
                if method.permissions:
                    with_permissions += 1
        # The generated framework plants permission enforcement, so
        # the table must have found some.
        assert with_permissions > 0

    def test_method_summary_lookup(self, framework, table):
        summaries = table.level_summaries(LEVEL)
        for name, summary in summaries.items():
            for signature, method in summary.methods.items():
                assert table.method_summary(method.ref, LEVEL) is method
                break
            else:
                continue
            break
        assert (
            table.method_summary(
                MethodRef("android.not.AClass", "nope", "()void"), LEVEL
            )
            is None
        )


class TestPersistence:
    def test_store_and_load_roundtrip(self, framework, apidb, tmp_path):
        writer = FrameworkSummaryTable(
            framework, apidb, store_dir=tmp_path
        )
        built = writer.level_summaries(LEVEL)
        assert writer.stats.levels_built == 1
        stored = list((tmp_path / "summaries").glob("*.summ"))
        assert len(stored) == 1

        reader = FrameworkSummaryTable(
            framework, apidb, store_dir=tmp_path
        )
        loaded = reader.level_summaries(LEVEL)
        assert reader.stats.levels_built == 0
        assert reader.stats.levels_loaded == 1
        assert set(loaded) == set(built)
        probe = next(iter(built))
        assert loaded[probe].effects == built[probe].effects
        assert loaded[probe].methods == built[probe].methods

    def test_corrupt_store_is_a_miss_not_an_error(
        self, framework, apidb, tmp_path
    ):
        writer = FrameworkSummaryTable(
            framework, apidb, store_dir=tmp_path
        )
        writer.level_summaries(LEVEL)
        stored = next((tmp_path / "summaries").glob("*.summ"))
        blob = bytearray(stored.read_bytes())
        blob[40] ^= 0xFF
        stored.write_bytes(bytes(blob))

        reader = FrameworkSummaryTable(
            framework, apidb, store_dir=tmp_path
        )
        table = reader.level_summaries(LEVEL)
        assert reader.stats.levels_loaded == 0
        assert reader.stats.levels_built == 1
        assert table

    def test_truncated_store_is_a_miss(self, framework, apidb, tmp_path):
        writer = FrameworkSummaryTable(
            framework, apidb, store_dir=tmp_path
        )
        writer.level_summaries(LEVEL)
        stored = next((tmp_path / "summaries").glob("*.summ"))
        stored.write_bytes(stored.read_bytes()[:16])
        reader = FrameworkSummaryTable(
            framework, apidb, store_dir=tmp_path
        )
        assert reader.level_summaries(LEVEL)
        assert reader.stats.levels_built == 1

    def test_depth_keys_the_store(self, framework, apidb, tmp_path):
        """A table with a different depth budget must not serve
        another budget's file."""
        FrameworkSummaryTable(
            framework, apidb, store_dir=tmp_path
        ).level_summaries(LEVEL)
        other = FrameworkSummaryTable(
            framework, apidb, max_depth=1, store_dir=tmp_path
        )
        other.level_summaries(LEVEL)
        assert other.stats.levels_built == 1
        assert other.stats.levels_loaded == 0


class TestRegistry:
    def test_summary_table_is_shared_per_spec(self, framework, apidb):
        first = summary_table(framework, apidb)
        again = summary_table(framework, apidb)
        assert first is again
        assert cached_table(framework.spec) is first

    def test_distinct_spec_distinct_table(self, apidb):
        other = FrameworkRepository()
        table = summary_table(other, apidb)
        assert cached_table(other.spec) is table

    def test_store_dir_late_binding(self, framework, apidb, tmp_path):
        table = summary_table(framework, apidb)
        assert isinstance(apidb, ApiDatabase)
        if table.store_dir is None:
            summary_table(framework, apidb, store_dir=tmp_path)
            assert table.store_dir == tmp_path
