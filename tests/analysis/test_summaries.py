"""Tests for version-predicate helper summarization."""

import pytest

from repro.analysis.guards import guard_at_invocations
from repro.analysis.intervals import ApiInterval
from repro.analysis.summaries import (
    collect_version_helpers,
    summarize_version_helper,
)
from repro.ir.builder import MethodBuilder
from repro.ir.instructions import CmpOp
from repro.ir.types import MethodRef


def at_least_helper(level, name="isAtLeast"):
    builder = MethodBuilder(
        MethodRef("com.app.VersionUtils", name, "()boolean")
    )
    builder.sdk_int(0)
    builder.const_int(1, level)
    builder.if_cmp(CmpOp.LT, 0, 1, "no")
    builder.const_int(2, 1)
    builder.return_value(2)
    builder.label("no")
    builder.const_int(2, 0)
    builder.return_value(2)
    return builder.build()


class TestSummarizeVersionHelper:
    def test_at_least_pattern(self):
        levels = summarize_version_helper(at_least_helper(23))
        assert levels == frozenset(range(23, 30))

    def test_at_most_pattern(self):
        builder = MethodBuilder(
            MethodRef("com.app.V", "isLegacy", "()boolean")
        )
        builder.sdk_int(0)
        builder.const_int(1, 22)
        builder.if_cmp(CmpOp.GT, 0, 1, "no")
        builder.const_int(2, 1)
        builder.return_value(2)
        builder.label("no")
        builder.const_int(2, 0)
        builder.return_value(2)
        levels = summarize_version_helper(builder.build())
        assert levels == frozenset(range(2, 23))

    def test_window_pattern(self):
        builder = MethodBuilder(
            MethodRef("com.app.V", "isLollipopish", "()boolean")
        )
        builder.sdk_int(0)
        builder.const_int(1, 21)
        builder.if_cmp(CmpOp.LT, 0, 1, "no")
        builder.const_int(1, 23)
        builder.if_cmp(CmpOp.GE, 0, 1, "no")
        builder.const_int(2, 1)
        builder.return_value(2)
        builder.label("no")
        builder.const_int(2, 0)
        builder.return_value(2)
        levels = summarize_version_helper(builder.build())
        assert levels == frozenset({21, 22})

    def test_constant_predicate_rejected(self):
        builder = MethodBuilder(
            MethodRef("com.app.V", "always", "()boolean")
        )
        builder.sdk_int(0)  # reads SDK but ignores it
        builder.const_int(2, 1)
        builder.return_value(2)
        assert summarize_version_helper(builder.build()) is None

    def test_method_without_sdk_read_rejected(self):
        builder = MethodBuilder(
            MethodRef("com.app.V", "flagged", "()boolean")
        )
        builder.const_int(2, 1)
        builder.return_value(2)
        assert summarize_version_helper(builder.build()) is None

    def test_method_with_calls_rejected(self):
        builder = MethodBuilder(
            MethodRef("com.app.V", "impure", "()boolean")
        )
        builder.sdk_int(0)
        builder.invoke_virtual("android.widget.Toast", "show")
        builder.const_int(2, 1)
        builder.return_value(2)
        assert summarize_version_helper(builder.build()) is None

    def test_void_method_rejected(self):
        builder = MethodBuilder(MethodRef("com.app.V", "noop"))
        builder.sdk_int(0)
        builder.return_void()
        assert summarize_version_helper(builder.build()) is None


class TestCollectVersionHelpers:
    def test_collects_only_predicates(self):
        helper = at_least_helper(24)
        plain = MethodBuilder(
            MethodRef("com.app.VersionUtils", "other", "()boolean")
        )
        plain.const_int(0, 1)
        plain.return_value(0)
        summaries = collect_version_helpers([helper, plain.build()])
        assert list(summaries) == [
            ("com.app.VersionUtils", "isAtLeast", "()boolean")
        ]
        assert summaries[
            ("com.app.VersionUtils", "isAtLeast", "()boolean")
        ] == frozenset(range(24, 30))


class TestGuardAnalysisWithPredicates:
    def caller(self):
        builder = MethodBuilder(MethodRef("com.app.C", "render"))
        builder.invoke_virtual(
            "com.app.VersionUtils", "isAtLeast", "()boolean"
        )
        builder.move_result(0)
        builder.if_cmpz(CmpOp.EQ, 0, "skip")
        builder.invoke_virtual("android.widget.Toast", "show")
        builder.label("skip")
        builder.return_void()
        return builder.build()

    def summaries(self, level=23):
        return {
            ("com.app.VersionUtils", "isAtLeast", "()boolean"):
                frozenset(range(level, 30)),
        }

    def interval_of_show(self, method, summaries):
        app = ApiInterval.of(14, 29)
        for invoke, interval in guard_at_invocations(
            method, app, summaries
        ):
            if invoke.method.name == "show":
                return interval
        return None

    def test_branch_on_helper_refines(self):
        interval = self.interval_of_show(self.caller(), self.summaries())
        assert interval == ApiInterval.of(23, 29)

    def test_without_summaries_no_refinement(self):
        interval = self.interval_of_show(self.caller(), None)
        assert interval == ApiInterval.of(14, 29)

    def test_negated_branch(self):
        builder = MethodBuilder(MethodRef("com.app.C", "legacyPath"))
        builder.invoke_virtual(
            "com.app.VersionUtils", "isAtLeast", "()boolean"
        )
        builder.move_result(0)
        builder.if_cmpz(CmpOp.NE, 0, "modern")
        builder.invoke_virtual("legacy.Api", "old")
        builder.return_void()
        builder.label("modern")
        builder.invoke_virtual("android.widget.Toast", "show")
        builder.return_void()
        intervals = {
            invoke.method.class_name: interval
            for invoke, interval in guard_at_invocations(
                builder.build(), ApiInterval.of(14, 29), self.summaries()
            )
        }
        assert intervals["legacy.Api"] == ApiInterval.of(14, 22)
        assert intervals["android.widget.Toast"] == ApiInterval.of(23, 29)

    def test_intervening_instruction_discards_pending(self):
        builder = MethodBuilder(MethodRef("com.app.C", "clobbered"))
        builder.invoke_virtual(
            "com.app.VersionUtils", "isAtLeast", "()boolean"
        )
        builder.const_int(5, 0)  # not the move-result
        builder.move_result(0)
        builder.if_cmpz(CmpOp.EQ, 0, "skip")
        builder.invoke_virtual("android.widget.Toast", "show")
        builder.label("skip")
        builder.return_void()
        interval = self.interval_of_show(builder.build(), self.summaries())
        assert interval == ApiInterval.of(14, 29)  # sound: no refinement
