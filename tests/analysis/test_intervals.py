"""Tests for the API-level interval domain, including soundness
properties of guard refinement."""

from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.intervals import ApiInterval, EMPTY, FULL_RANGE
from repro.ir.instructions import CmpOp

levels = st.integers(2, 29)
ops = st.sampled_from(list(CmpOp))


def intervals():
    return st.builds(
        lambda a, b: ApiInterval.of(min(a, b), max(a, b)), levels, levels
    )


class TestBasics:
    def test_full_range(self):
        assert 2 in FULL_RANGE
        assert 29 in FULL_RANGE
        assert len(FULL_RANGE) == 28

    def test_empty(self):
        assert EMPTY.is_empty
        assert len(EMPTY) == 0
        assert 23 not in EMPTY

    def test_constructors(self):
        assert ApiInterval.at_least(23) == ApiInterval.of(23, 29)
        assert ApiInterval.at_most(22) == ApiInterval.of(2, 22)
        assert ApiInterval.single(23) == ApiInterval.of(23, 23)

    def test_iteration(self):
        assert list(ApiInterval.of(21, 23)) == [21, 22, 23]

    def test_covers(self):
        assert ApiInterval.of(2, 29).covers(ApiInterval.of(5, 10))
        assert not ApiInterval.of(5, 10).covers(ApiInterval.of(2, 29))
        assert ApiInterval.of(5, 10).covers(EMPTY)


class TestLattice:
    @given(intervals(), intervals())
    def test_meet_is_intersection(self, a, b):
        meet = a.meet(b)
        for level in range(2, 30):
            assert (level in meet) == (level in a and level in b)

    @given(intervals(), intervals())
    def test_join_over_approximates_union(self, a, b):
        join = a.join(b)
        for level in range(2, 30):
            if level in a or level in b:
                assert level in join

    @given(intervals())
    def test_meet_with_empty(self, a):
        assert a.meet(EMPTY).is_empty

    @given(intervals())
    def test_join_with_empty_is_identity(self, a):
        assert a.join(EMPTY) == a
        assert EMPTY.join(a) == a

    @given(intervals(), intervals())
    def test_meet_commutes(self, a, b):
        assert a.meet(b) == b.meet(a)

    @given(intervals(), intervals())
    def test_join_commutes(self, a, b):
        assert a.join(b) == b.join(a)


class TestRefinement:
    @given(intervals(), ops, levels)
    def test_refine_is_sound(self, interval, op, constant):
        """Every level satisfying ``SDK_INT <op> constant`` that was in
        the interval must survive refinement (no false unreachability)."""
        refined = interval.refine(op, constant)
        for level in interval:
            if op.evaluate(level, constant):
                assert level in refined

    @given(intervals(), ops, levels)
    def test_refine_shrinks(self, interval, op, constant):
        refined = interval.refine(op, constant)
        assert interval.covers(refined)

    def test_refine_examples(self):
        full = FULL_RANGE
        assert full.refine(CmpOp.GE, 23) == ApiInterval.of(23, 29)
        assert full.refine(CmpOp.LT, 23) == ApiInterval.of(2, 22)
        assert full.refine(CmpOp.GT, 23) == ApiInterval.of(24, 29)
        assert full.refine(CmpOp.LE, 23) == ApiInterval.of(2, 23)
        assert full.refine(CmpOp.EQ, 23) == ApiInterval.single(23)

    def test_refine_ne_shaves_endpoint(self):
        assert ApiInterval.of(23, 29).refine(CmpOp.NE, 23) == (
            ApiInterval.of(24, 29)
        )
        assert ApiInterval.single(23).refine(CmpOp.NE, 23).is_empty
        # A hole in the middle cannot be represented: sound no-op.
        assert ApiInterval.of(2, 29).refine(CmpOp.NE, 15) == (
            ApiInterval.of(2, 29)
        )

    def test_contradictory_guard_is_empty(self):
        assert ApiInterval.of(2, 22).refine(CmpOp.GE, 23).is_empty


class TestInterning:
    def test_constructors_share_instances(self):
        assert ApiInterval.of(5, 9) is ApiInterval.of(5, 9)
        assert ApiInterval.at_least(7) is ApiInterval.at_least(7)
        assert ApiInterval.at_most(7) is ApiInterval.at_most(7)
        assert ApiInterval.single(7) is ApiInterval.single(7)

    def test_lattice_results_are_interned(self):
        a, b = ApiInterval.of(3, 20), ApiInterval.of(10, 25)
        assert a.meet(b) is ApiInterval.of(10, 20)
        assert a.join(b) is ApiInterval.of(3, 25)

    def test_refine_results_are_interned(self):
        full = ApiInterval.full()
        assert full.refine(CmpOp.GE, 23) is ApiInterval.of(
            23, full.hi
        )
        shaved = ApiInterval.of(5, 9).refine(CmpOp.NE, 5)
        assert shaved is ApiInterval.of(6, 9)

    def test_uninterned_instances_still_compare_equal(self):
        direct = ApiInterval(4, 8)
        assert direct == ApiInterval.of(4, 8)
        assert hash(direct) == hash(ApiInterval.of(4, 8))
        assert direct is not ApiInterval.of(4, 8) or True
