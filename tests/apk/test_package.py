"""Unit tests for dex files and application packages."""

import pytest

from repro.apk.dexfile import DexFile
from repro.apk.manifest import Manifest
from repro.apk.package import Apk
from repro.ir.builder import ClassBuilder

from tests.conftest import activity_class, make_apk


def simple_class(name):
    builder = ClassBuilder(name)
    builder.empty_method("run")
    return builder.build()


class TestDexFile:
    def test_lookup(self):
        clazz = simple_class("com.app.A")
        dex = DexFile("classes.dex", (clazz,))
        assert dex.lookup("com.app.A") is clazz
        assert dex.lookup("com.app.B") is None
        assert "com.app.A" in dex
        assert len(dex) == 1

    def test_duplicate_classes_rejected(self):
        clazz = simple_class("com.app.A")
        with pytest.raises(ValueError):
            DexFile("classes.dex", (clazz, clazz))

    def test_requires_name(self):
        with pytest.raises(ValueError):
            DexFile("", ())

    def test_counts(self):
        dex = DexFile(
            "classes.dex",
            (simple_class("com.app.A"), simple_class("com.app.B")),
        )
        assert dex.method_count == 2
        assert dex.instruction_count == 2  # one bare return each


class TestApk:
    def test_lookup_spans_dex_files(self):
        primary = simple_class("com.test.app.A")
        plugin = simple_class("com.test.app.Plugin")
        apk = make_apk([activity_class(), primary],
                       secondary_classes=[plugin])
        assert apk.lookup("com.test.app.A") is primary
        assert apk.lookup("com.test.app.Plugin") is plugin
        assert apk.lookup_primary("com.test.app.Plugin") is None
        assert "com.test.app.Plugin" in apk

    def test_requires_primary_dex_first(self):
        manifest = Manifest(package="com.app", min_sdk=14, target_sdk=26)
        dex = DexFile("classes2.dex", (), secondary=True)
        with pytest.raises(ValueError):
            Apk(manifest=manifest, dex_files=(dex,))

    def test_requires_at_least_one_dex(self):
        manifest = Manifest(package="com.app", min_sdk=14, target_sdk=26)
        with pytest.raises(ValueError):
            Apk(manifest=manifest, dex_files=())

    def test_duplicate_class_across_dex_rejected(self):
        manifest = Manifest(package="com.app", min_sdk=14, target_sdk=26)
        clazz = simple_class("com.app.A")
        with pytest.raises(ValueError):
            Apk(
                manifest=manifest,
                dex_files=(
                    DexFile("classes.dex", (clazz,)),
                    DexFile("classes2.dex", (clazz,), secondary=True),
                ),
            )

    def test_name_prefers_label(self):
        apk = make_apk([activity_class()], label="Nice Name")
        assert apk.name == "Nice Name"

    def test_name_falls_back_to_package(self):
        apk = make_apk([activity_class()], label="")
        assert apk.name == "com.test.app"

    def test_secondary_dex_files_property(self):
        apk = make_apk(
            [activity_class()],
            secondary_classes=[simple_class("com.test.app.P")],
        )
        assert len(apk.secondary_dex_files) == 1
        assert apk.secondary_dex_files[0].secondary

    def test_dex_kloc(self):
        apk = make_apk([activity_class()])
        assert apk.dex_kloc == pytest.approx(
            apk.instruction_count / 1000.0
        )
