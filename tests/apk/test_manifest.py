"""Unit tests for the manifest model."""

import pytest

from repro.apk.manifest import (
    Component,
    ComponentKind,
    Manifest,
    MAX_API_LEVEL,
    RUNTIME_PERMISSIONS_LEVEL,
)


def manifest(**kwargs):
    defaults = dict(package="com.app", min_sdk=14, target_sdk=26)
    defaults.update(kwargs)
    return Manifest(**defaults)


class TestValidation:
    def test_requires_package(self):
        with pytest.raises(ValueError):
            manifest(package="")

    def test_min_sdk_bounds(self):
        with pytest.raises(ValueError):
            manifest(min_sdk=1)
        with pytest.raises(ValueError):
            manifest(min_sdk=MAX_API_LEVEL + 1, target_sdk=MAX_API_LEVEL + 1)

    def test_target_below_min_rejected(self):
        with pytest.raises(ValueError):
            manifest(min_sdk=23, target_sdk=21)

    def test_max_below_target_rejected(self):
        with pytest.raises(ValueError):
            manifest(target_sdk=26, max_sdk=24)

    def test_valid_triple(self):
        m = manifest(min_sdk=21, target_sdk=26, max_sdk=28)
        assert m.supported_range == (21, 28)


class TestSemantics:
    def test_effective_max_defaults_to_newest(self):
        assert manifest().effective_max_sdk == MAX_API_LEVEL

    def test_effective_max_honors_declared(self):
        assert manifest(max_sdk=27).effective_max_sdk == 27

    def test_runtime_permission_model_threshold(self):
        assert manifest(target_sdk=23).uses_runtime_permissions_model
        assert manifest(target_sdk=29).uses_runtime_permissions_model
        assert not manifest(
            min_sdk=14, target_sdk=22
        ).uses_runtime_permissions_model
        assert RUNTIME_PERMISSIONS_LEVEL == 23

    def test_requests(self):
        m = manifest(permissions=("android.permission.CAMERA",))
        assert m.requests("android.permission.CAMERA")
        assert not m.requests("android.permission.RECORD_AUDIO")

    def test_entry_components_preserve_order(self):
        components = (
            Component("com.app.Main", ComponentKind.ACTIVITY),
            Component("com.app.Sync", ComponentKind.SERVICE, exported=True),
        )
        m = manifest(components=components)
        assert m.entry_components() == components
        assert m.entry_components()[1].exported
