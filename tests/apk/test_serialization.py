"""Round-trip tests for the .sapk JSON format, including a
property-based round-trip over forged apps."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.apk.serialization import (
    SerializationError,
    apk_from_dict,
    apk_to_dict,
    dumps,
    load_apk,
    loads,
    save_apk,
)
from repro.workload.appgen import AppForge

from tests.conftest import activity_class, make_apk


class TestRoundTrip:
    def test_simple_apk_round_trips(self, simple_apk):
        assert loads(dumps(simple_apk)) == simple_apk

    def test_round_trip_preserves_everything(self):
        apk = make_apk(
            [activity_class()],
            min_sdk=19,
            target_sdk=28,
            max_sdk=29,
            permissions=("android.permission.CAMERA",),
            buildable=False,
        )
        restored = loads(dumps(apk, indent=2))
        assert restored == apk
        assert restored.manifest.max_sdk == 29
        assert restored.manifest.buildable is False

    def test_file_round_trip(self, tmp_path, simple_apk):
        path = tmp_path / "app.sapk"
        save_apk(simple_apk, path)
        assert load_apk(path) == simple_apk

    def test_dict_round_trip(self, simple_apk):
        assert apk_from_dict(apk_to_dict(simple_apk)) == simple_apk


class TestErrors:
    def test_invalid_json(self):
        with pytest.raises(SerializationError):
            loads("{not json")

    def test_wrong_format_version(self, simple_apk):
        doc = apk_to_dict(simple_apk)
        doc["format"] = 999
        with pytest.raises(SerializationError, match="version"):
            apk_from_dict(doc)

    def test_missing_manifest(self, simple_apk):
        doc = apk_to_dict(simple_apk)
        del doc["manifest"]
        with pytest.raises(SerializationError):
            apk_from_dict(doc)

    def test_malformed_instruction(self, simple_apk):
        doc = apk_to_dict(simple_apk)
        doc["dexFiles"][0]["classes"][0]["methods"][0]["code"] = [["zz"]]
        with pytest.raises(SerializationError):
            apk_from_dict(doc)


class TestPropertyRoundTrip:
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(0, 2**16),
        min_sdk=st.integers(10, 21),
        direct=st.integers(0, 2),
        callbacks=st.integers(0, 2),
    )
    def test_forged_apps_round_trip(self, apidb_session, picker_session,
                                    seed, min_sdk, direct, callbacks):
        forge = AppForge(
            "com.prop.app",
            "PropApp",
            min_sdk=min_sdk,
            target_sdk=26,
            seed=seed,
            apidb=apidb_session,
            picker=picker_session,
        )
        for _ in range(direct):
            forge.add_direct_issue()
        for _ in range(callbacks):
            forge.add_callback_issue(modeled=False)
        forge.add_secondary_dex_issue()
        forge.add_filler(kloc=0.3)
        apk = forge.build().apk
        assert loads(dumps(apk)) == apk

    @pytest.fixture(scope="class")
    def apidb_session(self, apidb):
        return apidb

    @pytest.fixture(scope="class")
    def picker_session(self, picker):
        return picker
