"""Tests for lenient (``strict=False``) APK ingestion.

Real-world corpora contain malformed packages; strict ingestion
rejects them, lenient ingestion repairs what it can, records one
diagnostic per repair, and hands the analyses a usable partial model.
Every repair path gets a test: the strict variant raises, the lenient
variant degrades with the matching diagnostic code.
"""

from __future__ import annotations

import pytest

from repro.apk import Apk, DexFile, DiagnosticCode, Manifest
from repro.apk.manifest import FALLBACK_PACKAGE, MAX_API_LEVEL
from repro.apk.serialization import apk_to_dict, apk_from_dict

from ..conftest import activity_class, make_apk


def codes(obj) -> tuple[str, ...]:
    return tuple(diag.code for diag in obj.diagnostics)


class TestManifestRepairs:
    def test_missing_package(self):
        with pytest.raises(ValueError):
            Manifest(package="", min_sdk=21, target_sdk=26)
        manifest = Manifest(
            package="", min_sdk=21, target_sdk=26, strict=False
        )
        assert manifest.package == FALLBACK_PACKAGE
        assert codes(manifest) == (DiagnosticCode.MISSING_PACKAGE,)

    def test_bad_min_sdk_clamped(self):
        with pytest.raises(ValueError):
            Manifest(package="a.b", min_sdk=99, target_sdk=99)
        manifest = Manifest(
            package="a.b", min_sdk=99, target_sdk=99, strict=False
        )
        assert manifest.min_sdk == MAX_API_LEVEL
        assert DiagnosticCode.BAD_MIN_SDK in codes(manifest)

    def test_target_below_min_raised_to_min(self):
        with pytest.raises(ValueError):
            Manifest(package="a.b", min_sdk=21, target_sdk=4)
        manifest = Manifest(
            package="a.b", min_sdk=21, target_sdk=4, strict=False
        )
        assert manifest.target_sdk == manifest.min_sdk == 21
        assert DiagnosticCode.TARGET_BELOW_MIN in codes(manifest)

    def test_max_below_target_dropped(self):
        with pytest.raises(ValueError):
            Manifest(package="a.b", min_sdk=21, target_sdk=26, max_sdk=23)
        manifest = Manifest(
            package="a.b", min_sdk=21, target_sdk=26, max_sdk=23,
            strict=False,
        )
        assert manifest.max_sdk is None
        assert DiagnosticCode.MAX_BELOW_TARGET in codes(manifest)

    def test_well_formed_manifest_has_no_diagnostics(self):
        manifest = Manifest(
            package="a.b", min_sdk=21, target_sdk=26, strict=False
        )
        assert manifest.diagnostics == ()


class TestDexRepairs:
    def test_unnamed_dex(self):
        with pytest.raises(ValueError):
            DexFile(name="")
        dex = DexFile(name="", strict=False)
        assert dex.name == "classes.dex"
        assert codes(dex) == (DiagnosticCode.UNNAMED_DEX,)

    def test_duplicate_class_keeps_first(self):
        first = activity_class(name="MainActivity")
        dupe = activity_class(name="MainActivity")
        with pytest.raises(ValueError):
            DexFile("classes.dex", (first, dupe))
        dex = DexFile("classes.dex", (first, dupe), strict=False)
        assert len(dex.classes) == 1
        assert dex.classes[0] is first
        assert DiagnosticCode.DUPLICATE_CLASS in codes(dex)


class TestPackageRepairs:
    def _manifest(self):
        return Manifest(package="a.b", min_sdk=21, target_sdk=26)

    def test_no_dex_files_synthesized(self):
        with pytest.raises(ValueError):
            Apk(manifest=self._manifest(), dex_files=())
        apk = Apk(manifest=self._manifest(), dex_files=(), strict=False)
        assert len(apk.dex_files) == 1
        assert apk.dex_files[0].name == "classes.dex"
        assert DiagnosticCode.NO_DEX_FILES in codes(apk)

    def test_primary_marked_secondary_promoted(self):
        dex = DexFile(
            "classes.dex", (activity_class(),), secondary=True
        )
        with pytest.raises(ValueError):
            Apk(manifest=self._manifest(), dex_files=(dex,))
        apk = Apk(
            manifest=self._manifest(), dex_files=(dex,), strict=False
        )
        assert not apk.dex_files[0].secondary
        assert DiagnosticCode.PRIMARY_MARKED_SECONDARY in codes(apk)

    def test_cross_dex_duplicate_dropped(self):
        clazz = activity_class()
        primary = DexFile("classes.dex", (clazz,))
        shadow = DexFile(
            "classes2.dex", (activity_class(),), secondary=True
        )
        with pytest.raises(ValueError):
            Apk(manifest=self._manifest(), dex_files=(primary, shadow))
        apk = Apk(
            manifest=self._manifest(),
            dex_files=(primary, shadow),
            strict=False,
        )
        assert DiagnosticCode.CROSS_DEX_DUPLICATE in codes(apk)
        assert apk.dex_files[1].classes == ()

    def test_child_diagnostics_aggregated(self):
        manifest = Manifest(
            package="", min_sdk=21, target_sdk=26, strict=False
        )
        dex = DexFile(name="", strict=False)
        apk = Apk(manifest=manifest, dex_files=(dex,), strict=False)
        assert DiagnosticCode.MISSING_PACKAGE in codes(apk)
        assert DiagnosticCode.UNNAMED_DEX in codes(apk)


class TestLenientSerialization:
    def test_lenient_round_trip_of_malformed_document(self):
        doc = apk_to_dict(make_apk([activity_class()]))
        del doc["manifest"]["package"]
        with pytest.raises(Exception):
            apk_from_dict(doc)
        apk = apk_from_dict(doc, strict=False)
        assert apk.manifest.package == FALLBACK_PACKAGE
        assert DiagnosticCode.MISSING_PACKAGE in codes(apk)

    def test_lenient_apk_still_analyzable(self, framework, apidb):
        from repro.core import SaintDroid

        doc = apk_to_dict(make_apk([activity_class()]))
        doc["manifest"]["package"] = ""
        apk = apk_from_dict(doc, strict=False)
        report = SaintDroid(framework, apidb).analyze(apk)
        assert report.app == apk.name

    def test_strict_default_unchanged(self):
        doc = apk_to_dict(make_apk([activity_class()]))
        apk = apk_from_dict(doc)
        assert apk.diagnostics == ()
