"""Tests for shared baseline machinery."""

import pytest

from repro.baselines.base import (
    TIMEOUT_MODELED_SECONDS,
    eager_app_units,
    first_level_usages,
    framework_image_units,
)
from repro.ir.builder import ClassBuilder

from tests.conftest import activity_class, make_apk

GCSL_DESC = "(int)android.content.res.ColorStateList"


def direct_caller(name="com.test.app.S"):
    builder = ClassBuilder(name)
    method = builder.method("render")
    method.invoke_virtual(
        "android.content.Context", "getColorStateList", GCSL_DESC
    )
    method.return_void()
    builder.finish(method)
    return builder.build()


def inherited_caller():
    builder = ClassBuilder(
        "com.test.app.Custom", super_name="android.widget.TextView"
    )
    method = builder.method("refresh")
    method.invoke_virtual(
        "com.test.app.Custom", "setTextAppearance", "(int)void"
    )
    method.return_void()
    builder.finish(method)
    return builder.build()


class TestFirstLevelUsages:
    def test_finds_direct_framework_calls(self, apidb):
        apk = make_apk([activity_class(), direct_caller()])
        usages = first_level_usages(
            apk, apidb,
            respect_intra_method_guards=True,
            resolve_inherited=False,
            include_secondary_dex=False,
        )
        names = {u.api.name for u in usages}
        assert "getColorStateList" in names

    def test_inherited_resolution_flag(self, apidb):
        apk = make_apk([activity_class(), inherited_caller()])
        without = first_level_usages(
            apk, apidb,
            respect_intra_method_guards=True,
            resolve_inherited=False,
            include_secondary_dex=False,
        )
        with_resolution = first_level_usages(
            apk, apidb,
            respect_intra_method_guards=True,
            resolve_inherited=True,
            include_secondary_dex=False,
        )
        assert not any(u.api.name == "setTextAppearance" for u in without)
        resolved = [
            u for u in with_resolution if u.api.name == "setTextAppearance"
        ]
        assert resolved
        assert resolved[0].api.class_name == "android.widget.TextView"

    def test_guard_flag(self, apidb):
        builder = ClassBuilder("com.test.app.Safe")
        method = builder.method("render")
        method.guarded_call(
            23, "android.content.Context", "getColorStateList", GCSL_DESC
        )
        method.return_void()
        builder.finish(method)
        apk = make_apk([activity_class(), builder.build()], min_sdk=21)
        guarded = first_level_usages(
            apk, apidb,
            respect_intra_method_guards=True,
            resolve_inherited=False,
            include_secondary_dex=False,
        )
        unguarded = first_level_usages(
            apk, apidb,
            respect_intra_method_guards=False,
            resolve_inherited=False,
            include_secondary_dex=False,
        )
        target = lambda us: [
            u for u in us if u.api.name == "getColorStateList"
        ]
        assert target(guarded)[0].interval.lo == 23
        assert target(unguarded)[0].interval.lo == 21

    def test_class_filter(self, apidb):
        apk = make_apk(
            [activity_class(), direct_caller("com.thirdparty.lib.W")]
        )
        usages = first_level_usages(
            apk, apidb,
            respect_intra_method_guards=True,
            resolve_inherited=False,
            include_secondary_dex=False,
            class_filter=lambda c: c.name.startswith("com.test.app."),
        )
        assert not any(u.api.name == "getColorStateList" for u in usages)

    def test_secondary_dex_flag(self, apidb):
        plugin = direct_caller("com.test.app.Plugin")
        apk = make_apk([activity_class()], secondary_classes=[plugin])
        excluded = first_level_usages(
            apk, apidb,
            respect_intra_method_guards=True,
            resolve_inherited=False,
            include_secondary_dex=False,
        )
        included = first_level_usages(
            apk, apidb,
            respect_intra_method_guards=True,
            resolve_inherited=False,
            include_secondary_dex=True,
        )
        has_target = lambda us: any(
            u.api.name == "getColorStateList" for u in us
        )
        assert not has_target(excluded)
        assert has_target(included)


class TestCostHelpers:
    def test_eager_app_units_positive(self, simple_apk):
        assert eager_app_units(simple_apk) > 0

    def test_eager_app_units_secondary_flag(self):
        plugin = direct_caller("com.test.app.Plugin")
        apk = make_apk([activity_class()], secondary_classes=[plugin])
        assert eager_app_units(apk, include_secondary=True) > (
            eager_app_units(apk, include_secondary=False)
        )

    def test_framework_image_units(self, framework):
        assert framework_image_units(framework, 23) > 100_000

    def test_timeout_budget_matches_paper(self):
        assert TIMEOUT_MODELED_SECONDS == 600.0
