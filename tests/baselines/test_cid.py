"""Tests for the CID baseline: its capabilities and its modeled
restrictions (the mechanisms behind Table II/III deltas)."""

import pytest

from repro.baselines.cid import Cid
from repro.core.mismatch import MismatchKind
from repro.ir.builder import ClassBuilder
from repro.ir.instructions import CmpOp

from tests.conftest import activity_class, make_apk

GCSL_DESC = "(int)android.content.res.ColorStateList"


@pytest.fixture(scope="module")
def cid(framework, apidb):
    return Cid(framework, apidb)


def unguarded_screen():
    builder = ClassBuilder("com.test.app.Screen")
    method = builder.method("render")
    method.invoke_virtual(
        "android.content.Context", "getColorStateList", GCSL_DESC
    )
    method.return_void()
    builder.finish(method)
    return builder.build()


class TestDetection:
    def test_detects_direct_unguarded_call(self, cid):
        apk = make_apk([activity_class(), unguarded_screen()],
                       min_sdk=21, target_sdk=28)
        report = cid.analyze(apk)
        assert report.by_kind().get("API", 0) == 1

    def test_respects_intra_method_guard(self, cid):
        builder = ClassBuilder("com.test.app.Safe")
        method = builder.method("render")
        method.guarded_call(
            23, "android.content.Context", "getColorStateList", GCSL_DESC
        )
        method.return_void()
        builder.finish(method)
        apk = make_apk([activity_class(), builder.build()],
                       min_sdk=21, target_sdk=28)
        assert cid.analyze(apk).mismatches == []

    def test_detects_issue_in_library_namespace(self, cid):
        builder = ClassBuilder("com.thirdparty.lib.Widget")
        method = builder.method("decorate")
        method.invoke_virtual(
            "android.content.Context", "getColorStateList", GCSL_DESC
        )
        method.return_void()
        builder.finish(method)
        apk = make_apk([activity_class(), builder.build()],
                       min_sdk=21, target_sdk=28)
        assert cid.analyze(apk).by_kind().get("API", 0) == 1


class TestRestrictions:
    def test_caller_guard_false_positive(self, cid):
        helper = ClassBuilder("com.test.app.Helper")
        apply_method = helper.method("applyFeature")
        apply_method.invoke_virtual(
            "android.content.Context", "getColorStateList", GCSL_DESC
        )
        apply_method.return_void()
        helper.finish(apply_method)
        coordinator = ClassBuilder("com.test.app.Coordinator")
        update = coordinator.method("update")
        update.sdk_int(0)
        update.const_int(1, 23)
        update.if_cmp(CmpOp.LT, 0, 1, "skip")
        update.invoke_virtual("com.test.app.Helper", "applyFeature")
        update.label("skip")
        update.return_void()
        coordinator.finish(update)
        apk = make_apk(
            [activity_class(), helper.build(), coordinator.build()],
            min_sdk=21, target_sdk=28,
        )
        # Context-insensitive: the guarded chain is still reported.
        assert cid.analyze(apk).by_kind().get("API", 0) == 1

    def test_misses_inherited_api(self, cid):
        builder = ClassBuilder(
            "com.test.app.Custom", super_name="android.widget.TextView"
        )
        method = builder.method("refresh")
        method.invoke_virtual(
            "com.test.app.Custom", "setTextAppearance", "(int)void"
        )
        method.return_void()
        builder.finish(method)
        apk = make_apk([activity_class(), builder.build()],
                       min_sdk=19, target_sdk=26)
        assert cid.analyze(apk).mismatches == []

    def test_no_callback_detection(self, cid):
        builder = ClassBuilder(
            "com.test.app.Hook", super_name="android.app.Fragment"
        )
        builder.empty_method("onAttach", "(android.content.Context)void")
        apk = make_apk([activity_class(), builder.build()],
                       min_sdk=15, target_sdk=26)
        assert cid.analyze(apk).mismatches == []
        assert "APC" not in cid.capabilities

    def test_no_permission_detection(self, cid):
        builder = ClassBuilder("com.test.app.Cam")
        method = builder.method("shoot")
        method.invoke_virtual(
            "android.hardware.Camera", "open", "()android.hardware.Camera"
        )
        method.return_void()
        builder.finish(method)
        apk = make_apk([activity_class(), builder.build()],
                       min_sdk=21, target_sdk=26,
                       permissions=("android.permission.CAMERA",))
        assert cid.analyze(apk).mismatches == []

    def test_crashes_on_multidex(self, cid):
        plugin = ClassBuilder("com.test.app.Plugin")
        plugin.empty_method("boot")
        apk = make_apk(
            [activity_class(), unguarded_screen()],
            secondary_classes=[plugin.build()],
            min_sdk=21, target_sdk=28,
        )
        report = cid.analyze(apk)
        assert report.metrics.failed
        assert "multidex" in report.metrics.failure_reason
        assert report.mismatches == []

    def test_whole_world_cost(self, cid, framework, simple_apk):
        report = cid.analyze(simple_apk)
        from repro.baselines.base import framework_image_units
        assert report.metrics.memory_units > framework_image_units(
            framework, simple_apk.manifest.target_sdk
        )
