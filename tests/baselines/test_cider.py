"""Tests for the CIDER baseline: PI-graph class restriction."""

import pytest

from repro.baselines.cider import Cider, MODELED_CLASSES
from repro.ir.builder import ClassBuilder

from tests.conftest import activity_class, make_apk


@pytest.fixture(scope="module")
def cider(framework, apidb):
    return Cider(framework, apidb)


def override_class(super_name, method, descriptor,
                   name="com.test.app.Hook"):
    builder = ClassBuilder(name, super_name=super_name)
    builder.empty_method(method, descriptor)
    return builder.build()


class TestModeledClasses:
    def test_the_four_classes(self):
        assert MODELED_CLASSES == {
            "android.app.Activity",
            "android.app.Fragment",
            "android.app.Service",
            "android.webkit.WebView",
        }

    def test_detects_activity_callback(self, cider):
        hook = override_class(
            "android.app.Activity", "onMultiWindowModeChanged",
            "(boolean)void",
        )
        apk = make_apk([activity_class(), hook], min_sdk=19, target_sdk=26)
        report = cider.analyze(apk)
        assert report.by_kind().get("APC", 0) == 1

    def test_detects_fragment_callback(self, cider):
        hook = override_class(
            "android.app.Fragment", "onAttach",
            "(android.content.Context)void",
        )
        apk = make_apk([activity_class(), hook], min_sdk=15, target_sdk=26)
        assert cider.analyze(apk).by_kind().get("APC", 0) == 1

    def test_detects_through_app_intermediate(self, cider):
        base = override_class(
            "android.app.Activity", "onResume", "()void",
            name="com.test.app.Base",
        )
        child = override_class(
            "com.test.app.Base", "onMultiWindowModeChanged",
            "(boolean)void", name="com.test.app.Child",
        )
        apk = make_apk([activity_class(), base, child],
                       min_sdk=19, target_sdk=26)
        assert cider.analyze(apk).by_kind().get("APC", 0) == 1


class TestRestrictions:
    def test_misses_unmodeled_class_callback(self, cider):
        hook = override_class(
            "android.view.View", "drawableHotspotChanged",
            "(float,float)void",
        )
        apk = make_apk([activity_class(), hook], min_sdk=15, target_sdk=26)
        assert cider.analyze(apk).mismatches == []

    def test_misses_callback_inherited_from_unmodeled_ancestor(self, cider):
        # WebView is modeled, but the hotspot hook belongs to View,
        # which the PI-graphs do not cover.
        hook = override_class(
            "android.webkit.WebView", "drawableHotspotChanged",
            "(float,float)void",
        )
        apk = make_apk([activity_class(), hook], min_sdk=15, target_sdk=26)
        assert cider.analyze(apk).mismatches == []

    def test_skips_anonymous_classes(self, cider):
        hook = override_class(
            "android.app.Fragment", "onAttach",
            "(android.content.Context)void", name="com.test.app.Host$1",
        )
        host = ClassBuilder("com.test.app.Host")
        attach = host.method("attach")
        attach.new_instance(0, "com.test.app.Host$1")
        attach.return_void()
        host.finish(attach)
        apk = make_apk([activity_class(), hook, host.build()],
                       min_sdk=15, target_sdk=26)
        assert cider.analyze(apk).mismatches == []

    def test_no_invocation_detection(self, cider):
        screen = ClassBuilder("com.test.app.Screen")
        method = screen.method("render")
        method.invoke_virtual(
            "android.content.Context", "getColorStateList",
            "(int)android.content.res.ColorStateList",
        )
        method.return_void()
        screen.finish(method)
        apk = make_apk([activity_class(), screen.build()],
                       min_sdk=21, target_sdk=28)
        assert cider.analyze(apk).mismatches == []
        assert "API" not in cider.capabilities

    def test_skips_permission_hook(self, cider):
        hook = override_class(
            "android.app.Activity", "onRequestPermissionsResult",
            "(int,java.lang.String[],int[])void",
        )
        apk = make_apk([activity_class(), hook], min_sdk=19, target_sdk=26)
        assert cider.analyze(apk).mismatches == []

    def test_supported_range_not_flagged(self, cider):
        hook = override_class(
            "android.app.Fragment", "onAttach",
            "(android.content.Context)void",
        )
        apk = make_apk([activity_class(), hook], min_sdk=23, target_sdk=26)
        assert cider.analyze(apk).mismatches == []
