"""Tests for the Lint baseline: source scope and build requirement."""

import pytest

from repro.baselines.lint import Lint
from repro.ir.builder import ClassBuilder
from repro.ir.instructions import CmpOp

from tests.conftest import activity_class, make_apk

GCSL_DESC = "(int)android.content.res.ColorStateList"


@pytest.fixture(scope="module")
def lint(framework, apidb):
    return Lint(framework, apidb)


def unguarded(name):
    builder = ClassBuilder(name)
    method = builder.method("render")
    method.invoke_virtual(
        "android.content.Context", "getColorStateList", GCSL_DESC
    )
    method.return_void()
    builder.finish(method)
    return builder.build()


class TestDetection:
    def test_detects_direct_in_source_scope(self, lint):
        apk = make_apk([activity_class(), unguarded("com.test.app.Screen")],
                       min_sdk=21, target_sdk=28)
        assert lint.analyze(apk).by_kind().get("API", 0) == 1

    def test_respects_same_method_guard(self, lint):
        builder = ClassBuilder("com.test.app.Safe")
        method = builder.method("render")
        method.guarded_call(
            23, "android.content.Context", "getColorStateList", GCSL_DESC
        )
        method.return_void()
        builder.finish(method)
        apk = make_apk([activity_class(), builder.build()],
                       min_sdk=21, target_sdk=28)
        assert lint.analyze(apk).mismatches == []


class TestRestrictions:
    def test_misses_bundled_library(self, lint):
        apk = make_apk(
            [activity_class(), unguarded("com.thirdparty.lib.Widget")],
            min_sdk=21, target_sdk=28,
        )
        assert lint.analyze(apk).mismatches == []

    def test_misses_inherited_api(self, lint):
        builder = ClassBuilder(
            "com.test.app.Custom", super_name="android.widget.TextView"
        )
        method = builder.method("refresh")
        method.invoke_virtual(
            "com.test.app.Custom", "setTextAppearance", "(int)void"
        )
        method.return_void()
        builder.finish(method)
        apk = make_apk([activity_class(), builder.build()],
                       min_sdk=19, target_sdk=26)
        assert lint.analyze(apk).mismatches == []

    def test_caller_guard_false_positive(self, lint):
        helper = ClassBuilder("com.test.app.Helper")
        apply_method = helper.method("applyFeature")
        apply_method.invoke_virtual(
            "android.content.Context", "getColorStateList", GCSL_DESC
        )
        apply_method.return_void()
        helper.finish(apply_method)
        coordinator = ClassBuilder("com.test.app.Coordinator")
        update = coordinator.method("update")
        update.sdk_int(0)
        update.const_int(1, 23)
        update.if_cmp(CmpOp.LT, 0, 1, "skip")
        update.invoke_virtual("com.test.app.Helper", "applyFeature")
        update.label("skip")
        update.return_void()
        coordinator.finish(update)
        apk = make_apk(
            [activity_class(), helper.build(), coordinator.build()],
            min_sdk=21, target_sdk=28,
        )
        assert lint.analyze(apk).by_kind().get("API", 0) == 1

    def test_requires_buildable_source(self, lint):
        apk = make_apk([activity_class(), unguarded("com.test.app.Screen")],
                       min_sdk=21, target_sdk=28, buildable=False)
        report = lint.analyze(apk)
        assert report.metrics.failed
        assert "build" in report.metrics.failure_reason
        assert report.mismatches == []

    def test_build_cost_dominates_small_apps(self, lint, simple_apk):
        report = lint.analyze(simple_apk)
        from repro.baselines.lint import BUILD_BASE_UNITS
        assert report.metrics.work_units >= BUILD_BASE_UNITS

    def test_capabilities(self, lint):
        assert lint.capabilities == {"API"}
        assert lint.requires_source
