"""E13 — persistent incremental runs: the on-disk cache end to end.

Two comparisons, both written to ``results/BENCH_incremental.json``:

* **cold vs warm corpus run** — the same corpus analyzed twice against
  one ``--cache-dir``: the cold pass analyzes and stores, the warm
  pass must be served from the result cache, fingerprint-identical
  and at least 5x faster;
* **snapshot load vs substrate rebuild** — loading the framework
  snapshot from disk vs the cold-process substrate construction
  (``build_spec`` + mining), the startup cost every fresh process or
  spawn-platform pool worker would otherwise pay.  Loading the
  corpus-written snapshot (which also re-materializes the touched
  framework classes) is timed separately as ``warm_snapshot_load_s``.

Environment knobs: ``REPRO_INCREMENTAL_CORPUS`` (apps, default 12).
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.cache import (
    fingerprint_spec,
    load_snapshot,
    snapshot_path,
    write_snapshot,
)
from repro.core.arm import mine_spec
from repro.eval.runner import ToolSet, run_tools
from repro.framework import FrameworkRepository
from repro.framework.catalog import build_spec
from repro.workload.corpus import CorpusConfig, generate_corpus

from .conftest import RESULTS_DIR

CORPUS_SIZE = int(os.environ.get("REPRO_INCREMENTAL_CORPUS", "12"))

BENCH_CORPUS = CorpusConfig(
    count=CORPUS_SIZE, kloc_median=4.0, kloc_max=20.0, seed=13579
)


@pytest.fixture(scope="module")
def incremental(tmp_path_factory) -> dict:
    cache_dir = tmp_path_factory.mktemp("incremental-cache")
    spec = build_spec()
    framework = FrameworkRepository(spec)
    apidb = mine_spec(spec)
    apps = [
        member.forged for member in generate_corpus(BENCH_CORPUS, apidb)
    ]

    def toolset() -> ToolSet:
        return ToolSet.default(framework, apidb)

    # Reference: no cache at all.
    start = time.perf_counter()
    uncached = run_tools(apps, toolset())
    uncached_s = time.perf_counter() - start

    # Cold: cache enabled but empty — analyzes and stores.
    start = time.perf_counter()
    cold = run_tools(apps, toolset(), cache_dir=cache_dir)
    cold_s = time.perf_counter() - start

    # Warm: every app served from the result cache.
    start = time.perf_counter()
    warm = run_tools(apps, toolset(), cache_dir=cache_dir)
    warm_s = time.perf_counter() - start

    # Warm parallel: parent-side hits, the pool never spins up.
    start = time.perf_counter()
    warm_parallel = run_tools(apps, toolset(), jobs=4, cache_dir=cache_dir)
    warm_parallel_s = time.perf_counter() - start

    # Substrate startup: spec construction plus API mining is what a
    # fresh process pays; the snapshot replaces it with one unpickle.
    # Both legs end with a cold class cache — warm-class prefetch costs
    # the same materialization work either way (at load or on demand),
    # so it is timed separately below and not part of this comparison.
    start = time.perf_counter()
    rebuilt_spec = build_spec()
    FrameworkRepository(rebuilt_spec)
    mine_spec(rebuilt_spec)
    rebuild_s = time.perf_counter() - start

    key = fingerprint_spec(spec)
    cold_store = tmp_path_factory.mktemp("snapshot-cold")
    cold_path = write_snapshot(
        cold_store, key, FrameworkRepository(spec), apidb
    )
    start = time.perf_counter()
    loaded = load_snapshot(cold_path, key=key)
    snapshot_load_s = time.perf_counter() - start
    assert loaded is not None

    # The snapshot the corpus runs wrote carries the touched-class key
    # set; loading it re-materializes those classes (the work a cold
    # run would do lazily during analysis).
    warm_path = snapshot_path(cache_dir, key)
    assert warm_path.exists()
    start = time.perf_counter()
    warm_loaded = load_snapshot(warm_path, key=key)
    warm_snapshot_load_s = time.perf_counter() - start
    assert warm_loaded is not None
    assert warm_loaded[0].export_class_cache()

    return {
        "cache_dir": cache_dir,
        "uncached": uncached,
        "cold": cold,
        "warm": warm,
        "warm_parallel": warm_parallel,
        "uncached_s": uncached_s,
        "cold_s": cold_s,
        "warm_s": warm_s,
        "warm_parallel_s": warm_parallel_s,
        "rebuild_s": rebuild_s,
        "snapshot_load_s": snapshot_load_s,
        "warm_snapshot_load_s": warm_snapshot_load_s,
    }


def test_all_runs_fingerprint_identical(incremental):
    reference = incremental["uncached"].fingerprint()
    assert incremental["cold"].fingerprint() == reference
    assert incremental["warm"].fingerprint() == reference
    assert incremental["warm_parallel"].fingerprint() == reference


def test_cache_traffic_shape(incremental):
    cold = incremental["cold"].cache_stats["results"]
    assert cold["stores"] == CORPUS_SIZE
    assert cold["hits"] == 0
    warm = incremental["warm"].cache_stats["results"]
    assert warm["hits"] == CORPUS_SIZE
    assert warm["misses"] == 0
    assert incremental["warm"].cached_indices == tuple(
        range(CORPUS_SIZE)
    )


def test_speedups_and_report(incremental):
    uncached_s = incremental["uncached_s"]
    cold_s = incremental["cold_s"]
    warm_s = incremental["warm_s"]
    warm_speedup = cold_s / warm_s
    cache_overhead = cold_s / uncached_s

    payload = {
        "corpus_apps": CORPUS_SIZE,
        "uncached_s": round(uncached_s, 3),
        "cold_s": round(cold_s, 3),
        "warm_s": round(warm_s, 3),
        "warm_parallel_s": round(incremental["warm_parallel_s"], 3),
        "warm_speedup_vs_cold": round(warm_speedup, 2),
        "cold_overhead_vs_uncached": round(cache_overhead, 3),
        "substrate_rebuild_s": round(incremental["rebuild_s"], 3),
        "snapshot_load_s": round(incremental["snapshot_load_s"], 3),
        "warm_snapshot_load_s": round(
            incremental["warm_snapshot_load_s"], 3
        ),
        "snapshot_speedup_vs_rebuild": round(
            incremental["rebuild_s"] / incremental["snapshot_load_s"], 2
        ),
        "phase_totals_cold": {
            phase: round(seconds, 3)
            for phase, seconds in incremental["cold"]
            .phase_totals()
            .items()
        },
        "cold_cache": incremental["cold"].cache_stats["results"],
        "warm_cache": incremental["warm"].cache_stats["results"],
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_incremental.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    print()
    print(json.dumps(payload, indent=2))

    # The acceptance bar: a warm run over an unchanged corpus is at
    # least 5x faster than the cold run that populated the cache.
    assert warm_speedup >= 5.0
    # Populating the cache must not meaningfully slow the cold run.
    assert cache_overhead <= 1.5
    # Loading the snapshot beats rebuilding the substrate from scratch.
    assert (
        incremental["snapshot_load_s"] < incremental["rebuild_s"]
    )
