"""E1 — Table II: accuracy of SAINTDroid vs CID vs CIDER vs Lint on
the 19 benchmark replicas.

Paper anchors asserted (section V-A prose; the combined
precision/recall/F1 of column one):

* SAINTDroid combined API+APC: precision ≈0.79, recall ≈0.93, F1 ≈0.85;
* SAINTDroid detects 40 of the 42 callback issues with zero APC false
  positives (the two misses live in anonymous inner classes);
* Lint's combined recall ≈0.19; CIDER detects only modeled-class
  callbacks; CID detects no callbacks at all;
* SAINTDroid issues 11-52% fewer false alarms than the baselines.
"""

import pytest

from repro.eval.tables import render_table2, table2_accuracy

from .conftest import write_result


@pytest.fixture(scope="module")
def table(bench_run):
    return table2_accuracy(bench_run)


def test_table2_accuracy(benchmark, bench_run, bench_apps, toolset, table):
    # Benchmark unit: SAINTDroid analyzing one mid-size replica.
    saintdroid = toolset.tools[0]
    kolab = next(a.apk for a in bench_apps if a.apk.name == "Kolab notes")
    benchmark(saintdroid.analyze, kolab)

    totals = table.totals
    combined = totals["SAINTDroid"]["API+APC"]
    assert 0.72 <= combined.precision <= 0.88
    assert 0.88 <= combined.recall <= 0.98
    assert 0.80 <= combined.f1 <= 0.92

    apc = totals["SAINTDroid"]["APC"]
    assert apc.tp == 40 and apc.fn == 2 and apc.fp == 0

    assert totals["Lint"]["API+APC"].recall <= 0.25
    assert totals["CIDER"]["API"].tp == 0
    assert totals["CID"]["APC"].tp == 0
    assert totals["CIDER"]["APC"].tp > 0
    assert totals["CIDER"]["APC"].recall < combined.recall

    # Fewer false alarms than every baseline with overlapping scope.
    saint_fp = combined.fp
    cid_fp = totals["CID"]["API+APC"].fp
    lint_fp = totals["Lint"]["API+APC"].fp
    assert saint_fp < cid_fp
    assert saint_fp < lint_fp
    assert 0.11 <= 1 - saint_fp / cid_fp <= 0.60

    write_result("table2.txt", render_table2(table))


def test_saintdroid_beats_every_tool_on_f1(benchmark, table):
    benchmark(lambda: table.totals["SAINTDroid"]["API+APC"].f1)
    best = table.totals["SAINTDroid"]["API+APC"].f1
    for tool in ("CID", "CIDER", "Lint"):
        assert table.totals[tool]["API+APC"].f1 < best


def test_prm_detection_is_unique_to_saintdroid(benchmark, bench_run):
    accuracies = benchmark(bench_run.accuracies)
    assert accuracies["SAINTDroid"].group("PRM").tp >= 3
    assert accuracies["SAINTDroid"].group("PRM").fp == 0
    for tool in ("CID", "CIDER", "Lint"):
        assert accuracies[tool].group("PRM").reported == 0
