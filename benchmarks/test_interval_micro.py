"""E9a — interval micro-benchmark: interning + bitset refinement.

The guard phase's innermost operations are (a) keying context memos
by ``(method, interval)`` and (b) refining a path interval through a
version-helper predicate.  Two representation choices back them:

* ``ApiInterval.of`` interns instances, so hashes are computed once
  per distinct value per process and equality short-circuits on
  identity;
* predicate refinement packs level sets into int bitmasks
  (:func:`repro.analysis.intervals.levels_mask` and friends), so the
  per-level membership loop collapses to three C-speed integer ops.

This benchmark checks the bitset path agrees with the per-level
fallback on every sampled input (the fallback stays live for
out-of-range ``--devices`` windows, so divergence would be a real
bug), then times both under the workload shape the guard phase
produces.  Deltas land in ``results/BENCH_intervals.json``.
"""

from __future__ import annotations

import json
import random
import time

from repro.analysis.intervals import (
    ApiInterval,
    interval_mask,
    levels_mask,
    mask_to_interval,
)
from repro.apk.manifest import MAX_API_LEVEL, MIN_API_LEVEL

from .conftest import RESULTS_DIR

ROUNDS = 5_000

#: The workload shape: a handful of helper level-sets (real corpora
#: carry a few distinct helpers) against many distinct path windows.
_rng = random.Random(424244)
LEVEL_SETS = [
    frozenset(
        level
        for level in range(MIN_API_LEVEL, MAX_API_LEVEL + 1)
        if _rng.random() < p
    )
    for p in (0.2, 0.5, 0.8)
]
WINDOWS = [
    (lo, _rng.randint(lo, MAX_API_LEVEL))
    for lo in (
        _rng.randint(MIN_API_LEVEL, MAX_API_LEVEL) for _ in range(40)
    )
]
CASES = [
    (ApiInterval.of(lo, hi), levels, true_ok, false_ok)
    for (lo, hi) in WINDOWS
    for levels in LEVEL_SETS
    for true_ok, false_ok in ((True, False), (False, True))
]


def _refine_mask(interval, levels, true_ok, false_ok):
    window = interval_mask(interval)
    inside = levels_mask(levels)
    mask = (window & inside if true_ok else 0) | (
        window & ~inside if false_ok else 0
    )
    return mask_to_interval(mask) if mask else None


def _refine_per_level(interval, levels, true_ok, false_ok):
    satisfying = [
        level
        for level in interval
        if (true_ok if level in levels else false_ok)
    ]
    if not satisfying:
        return None
    return interval.meet(
        ApiInterval.of(min(satisfying), max(satisfying))
    )


def _time(fn) -> float:
    best = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_bitset_refinement_matches_per_level_fallback():
    for interval, levels, true_ok, false_ok in CASES:
        assert _refine_mask(
            interval, levels, true_ok, false_ok
        ) == _refine_per_level(interval, levels, true_ok, false_ok)


def test_interning_returns_shared_instances():
    assert ApiInterval.of(21, 28) is ApiInterval.of(21, 28)
    # Equality (and hashing) still hold for uninterned instances.
    assert ApiInterval.of(21, 28) == ApiInterval(21, 28)
    assert hash(ApiInterval.of(21, 28)) == hash(ApiInterval(21, 28))


def test_report_micro_deltas():
    def run_mask():
        for case in CASES:
            _refine_mask(*case)

    def run_fallback():
        for case in CASES:
            _refine_per_level(*case)

    mask_s = _time(lambda: [run_mask() for _ in range(ROUNDS // 100)])
    fallback_s = _time(
        lambda: [run_fallback() for _ in range(ROUNDS // 100)]
    )

    # Context-memo keying: interned instances vs fresh allocations.
    memo: dict = {}

    def keyed(make):
        memo.clear()
        for _ in range(ROUNDS):
            for lo, hi in WINDOWS:
                memo[make(lo, hi)] = True

    interned_s = _time(lambda: keyed(ApiInterval.of))
    fresh_s = _time(lambda: keyed(ApiInterval))

    assert mask_s < fallback_s
    assert interned_s < fresh_s

    payload = {
        "refinement_cases": len(CASES),
        "bitset_refine_s": round(mask_s, 4),
        "per_level_refine_s": round(fallback_s, 4),
        "bitset_speedup": round(fallback_s / mask_s, 2),
        "memo_keyings": ROUNDS * len(WINDOWS),
        "interned_keying_s": round(interned_s, 4),
        "fresh_keying_s": round(fresh_s, 4),
        "interning_speedup": round(fresh_s / interned_s, 2),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_intervals.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    print()
    print(json.dumps(payload, indent=2, sort_keys=True))
