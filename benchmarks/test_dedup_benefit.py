"""E9 — corpus-wide class deduplication: lazy vs delta analysis.

Real corpora share code: the same library classes ship inside most
apps, and SAINTDroid's per-app analyses re-derive identical facts for
every copy.  ``--dedup`` keys per-class artifacts (explore effects,
version-helper summaries, guard rows) by canonical bytecode digest in
a corpus-wide content-addressed store, so per-app analysis becomes
delta analysis: only classes never seen before are analyzed, the rest
replay recorded effects without rescanning method bodies.

This benchmark runs SAINTDroid three ways over one library-dominated
corpus (each member embeds a content-identical copy of a shared
library next to its own unique layer) and reports:

* the findings are identical across all three arms (the parity
  guarantee — also enforced by ``tests/eval/test_dedup_parity.py``
  and the CI ``dedup-parity`` job);
* the cold dedup pass (empty store: every unique class digested,
  analyzed, and persisted) — the one-time cost the corpus amortizes;
* the warm pass (store populated: hit rate 1.0) is at least 3x faster
  than the non-dedup run, the acceptance bar for the delta-analysis
  machinery.

Wall times use the min of ``REPRO_DEDUP_REPEATS`` runs per timed arm
to damp scheduler noise; every run analyzes a freshly generated,
object-distinct corpus (same digests, new objects — the shape real
APK parsing produces), so per-object memos never carry between runs.
Numbers land in ``results/BENCH_dedup.json``.

Environment knobs: ``REPRO_DEDUP_CORPUS`` (apps, default 6),
``REPRO_DEDUP_REPEATS`` (timed repeats per arm, default 3).
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.cache.classes import registered_stores, reset_class_stores
from repro.core.arm import build_api_database
from repro.eval.runner import ToolSet, run_tools
from repro.framework.repository import FrameworkRepository
from repro.workload.corpus import OverlapConfig, generate_overlapping_corpus

from .conftest import RESULTS_DIR

CORPUS_SIZE = int(os.environ.get("REPRO_DEDUP_CORPUS", "6"))
REPEATS = int(os.environ.get("REPRO_DEDUP_REPEATS", "3"))

CONFIG = OverlapConfig(count=CORPUS_SIZE)

#: The acceptance bar: a warm store must make the corpus run at least
#: this many times faster than the non-dedup baseline.
WARM_SPEEDUP_FLOOR = 3.0


def _store_stats() -> dict:
    totals: dict[str, float] = {}
    for store in registered_stores():
        for key, value in store.stats.as_dict().items():
            if key.endswith("_rate"):
                totals[key] = value
            else:
                totals[key] = totals.get(key, 0) + value
    return totals


@pytest.fixture(scope="module")
def dedup_bench(tmp_path_factory) -> dict:
    framework = FrameworkRepository()
    apidb = build_api_database(framework)

    def corpus():
        return [
            m.forged for m in generate_overlapping_corpus(CONFIG, apidb)
        ]

    def run_arm(*, dedup: bool, dedup_dir: str | None = None):
        reset_class_stores()
        tools = ToolSet.default(
            framework,
            apidb,
            include=("SAINTDroid",),
            dedup=dedup,
            dedup_dir=dedup_dir,
        )
        apps = corpus()
        start = time.perf_counter()
        results = run_tools(apps, tools)
        wall = time.perf_counter() - start
        stats = _store_stats()
        for store in registered_stores():
            store.flush()
        return results, wall, stats

    # Untimed warm-up: later arms would otherwise inherit a warmer
    # shared framework substrate (dispatch memos, hierarchy shadows)
    # than the first, biasing whichever arm runs last.
    run_tools(corpus()[:2], ToolSet.default(
        framework, apidb, include=("SAINTDroid",)
    ))

    lazy_runs = [run_arm(dedup=False) for _ in range(REPEATS)]
    lazy_results = lazy_runs[0][0]
    lazy_wall = min(wall for _, wall, _ in lazy_runs)

    store_dir = str(tmp_path_factory.mktemp("dedup-store"))
    cold_results, cold_wall, cold_stats = run_arm(
        dedup=True, dedup_dir=store_dir
    )

    warm_runs = [
        run_arm(dedup=True, dedup_dir=store_dir) for _ in range(REPEATS)
    ]
    warm_results = warm_runs[0][0]
    warm_wall = min(wall for _, wall, _ in warm_runs)
    warm_stats = warm_runs[0][2]

    return {
        "lazy": lazy_results,
        "cold": cold_results,
        "warm": warm_results,
        "lazy_wall": lazy_wall,
        "cold_wall": cold_wall,
        "warm_wall": warm_wall,
        "cold_stats": cold_stats,
        "warm_stats": warm_stats,
    }


def test_findings_parity(dedup_bench):
    lazy = dedup_bench["lazy"].findings_fingerprint()
    assert dedup_bench["cold"].findings_fingerprint() == lazy
    assert dedup_bench["warm"].findings_fingerprint() == lazy


def test_corpus_overlap_shape(dedup_bench):
    """The corpus delivers the library-dominated shape the benchmark
    claims: at least 60% of class instances repeat corpus-wide, and a
    populated store answers every class on the warm pass."""
    cold = dedup_bench["cold_stats"]
    assert cold["hit_rate"] >= 0.6
    warm = dedup_bench["warm_stats"]
    assert warm["misses"] == 0
    assert warm["hit_rate"] == 1.0
    assert warm["guard_hit_rate"] == 1.0
    # A clean warm pass stores nothing new.
    assert warm["stores"] == 0


def test_warm_speedup(dedup_bench):
    lazy, warm = dedup_bench["lazy_wall"], dedup_bench["warm_wall"]
    assert warm < lazy
    assert lazy / warm >= WARM_SPEEDUP_FLOOR, (
        f"warm dedup {warm:.3f}s vs lazy {lazy:.3f}s — "
        f"{lazy / warm:.2f}x, below the {WARM_SPEEDUP_FLOOR}x bar"
    )


def test_report(dedup_bench):
    cold = dedup_bench["cold_stats"]
    lookups = cold["hits"] + cold["misses"]
    payload = {
        "corpus_apps": CORPUS_SIZE,
        "repeats": REPEATS,
        "unique_class_ratio": round(cold["misses"] / lookups, 3),
        "cold_hit_rate": round(cold["hit_rate"], 3),
        "cold_guard_hit_rate": round(cold["guard_hit_rate"], 3),
        "warm_hit_rate": round(dedup_bench["warm_stats"]["hit_rate"], 3),
        "lazy_wall_s": round(dedup_bench["lazy_wall"], 3),
        "cold_wall_s": round(dedup_bench["cold_wall"], 3),
        "warm_wall_s": round(dedup_bench["warm_wall"], 3),
        "cold_speedup": round(
            dedup_bench["lazy_wall"] / dedup_bench["cold_wall"], 2
        ),
        "warm_speedup": round(
            dedup_bench["lazy_wall"] / dedup_bench["warm_wall"], 2
        ),
        "unique_classes_stored": cold["stores"],
        "class_lookups": lookups,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "BENCH_dedup.json"
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print()
    print(json.dumps(payload, indent=2, sort_keys=True))
