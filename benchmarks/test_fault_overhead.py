"""E12 — fault-tolerance overhead on the no-fault happy path.

The robustness layer (structured errors, retry scheduling, fault-plan
lookups, per-app deadline plumbing) sits on every corpus run, faults
or not — so its happy-path cost must be negligible.  This benchmark
times the same corpus twice:

* **plain**   — ``run_tools`` with every robustness knob at its
  default (no retries, no fault plan, no timeout);
* **armed**   — retries budgeted (``max_retries=2``), an *empty*
  fault plan attached, and a generous per-app deadline — the full
  tolerance machinery engaged with nothing to tolerate.

The two configurations are interleaved and each timed as a
min-of-N-repetitions (the minimum is the least noisy location
statistic for a fixed workload); the armed run must stay within 5% of
plain.  Numbers land in ``results/BENCH_faults.json``.

Environment knobs: ``REPRO_FAULT_CORPUS`` (apps, default 12),
``REPRO_FAULT_REPS`` (repetitions, default 6 — the per-rep noise on a
shared box easily exceeds the machinery's true cost, so the min needs
several samples to converge).
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.eval.faults import FaultPlan
from repro.eval.runner import ToolSet, run_tools
from repro.workload.corpus import CorpusConfig, generate_corpus

from .conftest import RESULTS_DIR

CORPUS_SIZE = int(os.environ.get("REPRO_FAULT_CORPUS", "12"))
REPS = int(os.environ.get("REPRO_FAULT_REPS", "6"))

BENCH_CORPUS = CorpusConfig(
    count=CORPUS_SIZE, kloc_median=3.0, kloc_max=12.0, seed=13579
)

#: The happy-path budget: the tolerance machinery may cost at most
#: this fraction of a plain run.
MAX_OVERHEAD = 0.05


@pytest.fixture(scope="module")
def overhead() -> dict:
    toolset = ToolSet.default(include=("SAINTDroid",))
    apps = [
        member.forged
        for member in generate_corpus(BENCH_CORPUS, toolset.apidb)
    ]
    empty_plan = FaultPlan()
    armed_kwargs = dict(
        timeout_s=300.0, max_retries=2, fault_plan=empty_plan
    )

    # Warm both code paths (and the framework/database caches) before
    # timing anything.
    run_tools(apps, toolset)
    run_tools(apps, toolset, **armed_kwargs)

    plain_times: list[float] = []
    armed_times: list[float] = []
    plain_run = armed_run = None
    # Interleave so drift (thermal, scheduler) hits both arms alike.
    for _ in range(REPS):
        start = time.perf_counter()
        plain_run = run_tools(apps, toolset)
        plain_times.append(time.perf_counter() - start)

        start = time.perf_counter()
        armed_run = run_tools(apps, toolset, **armed_kwargs)
        armed_times.append(time.perf_counter() - start)

    return {
        "plain_run": plain_run,
        "armed_run": armed_run,
        "plain_s": min(plain_times),
        "armed_s": min(armed_times),
        "plain_times": plain_times,
        "armed_times": armed_times,
    }


def test_armed_run_is_result_identical(overhead):
    assert (
        overhead["plain_run"].fingerprint()
        == overhead["armed_run"].fingerprint()
    )
    assert overhead["armed_run"].failed_apps == ()


def test_overhead_and_report(overhead):
    plain_s = overhead["plain_s"]
    armed_s = overhead["armed_s"]
    ratio = armed_s / plain_s

    payload = {
        "corpus_apps": CORPUS_SIZE,
        "repetitions": REPS,
        "plain_min_s": round(plain_s, 4),
        "armed_min_s": round(armed_s, 4),
        "plain_times_s": [round(t, 4) for t in overhead["plain_times"]],
        "armed_times_s": [round(t, 4) for t in overhead["armed_times"]],
        "overhead_ratio": round(ratio, 4),
        "overhead_pct": round(100.0 * (ratio - 1.0), 2),
        "budget_pct": 100.0 * MAX_OVERHEAD,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_faults.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    print()
    print(json.dumps(payload, indent=2))

    assert ratio <= 1.0 + MAX_OVERHEAD, (
        f"fault-tolerance machinery costs {100 * (ratio - 1):.1f}% on "
        f"the no-fault path (budget {100 * MAX_OVERHEAD:.0f}%)"
    )
