"""E13 — SEM detector overhead on a SEM-free corpus.

``DetectSemPass`` runs inside every SAINTDroid pipeline, so apps with
no semantic-delta usage at all still pay its walk over the usage
table.  That cost must be negligible: this benchmark times the same
no-SEM corpus twice — the full pipeline, and the identical pipeline
with ``skip_passes=("detect-sem",)`` — interleaved, min-of-N
repetitions, and asserts the full pipeline stays within 5% of the
skipping one.  Numbers land in ``results/BENCH_sem.json``.

Environment knobs: ``REPRO_SEM_CORPUS`` (apps, default 12),
``REPRO_SEM_REPS`` (repetitions, default 6).
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.core import SaintDroid
from repro.workload.corpus import CorpusConfig, generate_corpus

from .conftest import RESULTS_DIR

CORPUS_SIZE = int(os.environ.get("REPRO_SEM_CORPUS", "12"))
REPS = int(os.environ.get("REPRO_SEM_REPS", "6"))

SEM_CORPUS = CorpusConfig(
    count=CORPUS_SIZE, kloc_median=3.0, kloc_max=12.0, seed=24680
)

#: DetectSemPass may cost at most this fraction of a run that skips it.
MAX_OVERHEAD = 0.05


@pytest.fixture(scope="module")
def overhead(toolset) -> dict:
    detector = SaintDroid(toolset.framework, toolset.apidb)
    apps = [
        member.forged.apk
        for member in generate_corpus(SEM_CORPUS, toolset.apidb)
    ]

    def run(skip=()):
        return [
            detector.analyze(apk, skip_passes=skip) for apk in apps
        ]

    # Warm both paths (framework caches, database memoization).
    run()
    run(skip=("detect-sem",))

    full_times: list[float] = []
    skipped_times: list[float] = []
    full_reports = skipped_reports = None
    # Interleave so drift (thermal, scheduler) hits both arms alike.
    for _ in range(REPS):
        start = time.perf_counter()
        full_reports = run()
        full_times.append(time.perf_counter() - start)

        start = time.perf_counter()
        skipped_reports = run(skip=("detect-sem",))
        skipped_times.append(time.perf_counter() - start)

    return {
        "full_reports": full_reports,
        "skipped_reports": skipped_reports,
        "full_s": min(full_times),
        "skipped_s": min(skipped_times),
        "full_times": full_times,
        "skipped_times": skipped_times,
    }


def test_corpus_is_sem_free_and_skip_changes_nothing(overhead):
    """The comparison is honest only if SEM has no work to do here:
    zero SEM findings with the pass on, identical findings with it
    off."""
    for full, skipped in zip(
        overhead["full_reports"], overhead["skipped_reports"]
    ):
        assert full.by_kind().get("SEM", 0) == 0
        assert full.keys == skipped.keys


def test_overhead_and_report(overhead):
    full_s = overhead["full_s"]
    skipped_s = overhead["skipped_s"]
    ratio = full_s / skipped_s

    payload = {
        "corpus_apps": CORPUS_SIZE,
        "repetitions": REPS,
        "full_min_s": round(full_s, 4),
        "skipped_min_s": round(skipped_s, 4),
        "full_times_s": [round(t, 4) for t in overhead["full_times"]],
        "skipped_times_s": [
            round(t, 4) for t in overhead["skipped_times"]
        ],
        "overhead_ratio": round(ratio, 4),
        "overhead_pct": round(100.0 * (ratio - 1.0), 2),
        "budget_pct": 100.0 * MAX_OVERHEAD,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_sem.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    print()
    print(json.dumps(payload, indent=2))

    assert ratio <= 1.0 + MAX_OVERHEAD, (
        f"DetectSemPass costs {100 * (ratio - 1):.1f}% on a SEM-free "
        f"corpus (budget {100 * MAX_OVERHEAD:.0f}%)"
    )
