"""E8 — ablations for the design choices DESIGN.md calls out.

1. **Lazy vs eager loading** (the CLVM contribution, paper section VI):
   eager closed-world loading finds the same mismatches but pays the
   whole-framework memory cost — the quantitative argument for the
   class-loader-based analysis.
2. **Anonymous-class guard propagation** (the paper's stated future
   work): enabling it removes SAINTDroid's residual false alarms on
   the trap workload without losing any true positive.
"""

import pytest

from repro.core import SaintDroid
from repro.workload.appgen import ApiPicker, AppForge

from .conftest import write_result


@pytest.fixture(scope="module")
def ablation_app(toolset):
    picker = ApiPicker(toolset.apidb)
    forge = AppForge(
        "com.ablation.app", "AblationApp",
        min_sdk=19, target_sdk=26, seed=77,
        apidb=toolset.apidb, picker=picker,
    )
    for _ in range(3):
        forge.add_direct_issue()
    forge.add_inherited_issue()
    forge.add_callback_issue(modeled=False)
    for _ in range(4):
        forge.add_anonymous_guard_trap()
    forge.add_caller_guard_trap()
    forge.add_filler(kloc=6.0)
    return forge.build()


def test_lazy_vs_eager_loading(benchmark, toolset, ablation_app):
    lazy = SaintDroid(toolset.framework, toolset.apidb)
    eager = SaintDroid(
        toolset.framework, toolset.apidb, lazy_loading=False
    )

    lazy_report = benchmark(lazy.analyze, ablation_app.apk)
    eager_report = eager.analyze(ablation_app.apk)

    # Same findings — laziness sacrifices nothing.
    assert lazy_report.keys == eager_report.keys

    # But the eager run holds the entire framework resident.
    lazy_mb = lazy_report.metrics.modeled_memory_mb
    eager_mb = eager_report.metrics.modeled_memory_mb
    assert eager_mb > 2.0 * lazy_mb

    write_result(
        "ablation_lazy.txt",
        "\n".join(
            [
                "Ablation: lazy (CLVM) vs eager (closed-world) loading",
                f"  findings identical: "
                f"{lazy_report.keys == eager_report.keys}",
                f"  lazy memory:  {lazy_mb:.0f} MB "
                f"({lazy_report.metrics.stats.framework_classes_loaded} "
                f"framework classes)",
                f"  eager memory: {eager_mb:.0f} MB "
                f"({eager_report.metrics.stats.framework_classes_loaded} "
                f"framework classes)",
                f"  eager/lazy ratio: {eager_mb / lazy_mb:.1f}x",
            ]
        ),
    )


def test_anonymous_guard_ablation(benchmark, toolset, ablation_app):
    default = SaintDroid(toolset.framework, toolset.apidb)
    fixed = SaintDroid(
        toolset.framework, toolset.apidb,
        propagate_guards_into_anonymous=True,
    )

    default_report = default.analyze(ablation_app.apk)
    fixed_report = benchmark(fixed.analyze, ablation_app.apk)

    truth = ablation_app.truth
    trap_keys = {key for trap in truth.traps for key in trap.fp_keys}

    default_fps = default_report.keys - truth.issue_keys
    fixed_fps = fixed_report.keys - truth.issue_keys

    # The default tool trips on every anonymous trap; the ablation
    # clears them without losing a single true positive.
    assert len(default_fps & trap_keys) == 4
    assert len(fixed_fps & trap_keys) == 0
    assert (truth.issue_keys & default_report.keys) == (
        truth.issue_keys & fixed_report.keys
    )

    write_result(
        "ablation_anonymous.txt",
        "\n".join(
            [
                "Ablation: guard propagation into anonymous classes",
                f"  seeded anonymous traps:     4",
                f"  false alarms (default):     "
                f"{len(default_fps & trap_keys)}",
                f"  false alarms (ablation):    "
                f"{len(fixed_fps & trap_keys)}",
                f"  true positives unchanged:   "
                f"{len(truth.issue_keys & fixed_report.keys)}",
            ]
        ),
    )
