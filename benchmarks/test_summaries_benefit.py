"""E8 — framework pre-summaries: lazy vs summarized exploration.

The lazy CLVM walks framework method bodies instruction by
instruction to learn which classes get pulled in next; the summarized
mode replays the same effects from a whole-framework pre-summary
table, so per-app exploration stops at the framework boundary with a
dictionary lookup.  This benchmark runs SAINTDroid both ways over one
corpus and reports:

* the findings are identical (the parity guarantee — also enforced by
  ``tests/eval/test_summaries_parity.py`` and the CI parity job);
* the summarized explore phase is faster than the lazy one, and the
  modeled work/memory units are lower;
* the one-time summary-table build cost (charged to the ``load``
  phase of the first app) and how many apps it takes to amortize.

Numbers land in ``results/BENCH_summaries.json``; the per-pass
phase breakdown of both runs is rendered to
``results/phase_flame.txt``.

Environment knob: ``REPRO_SUMMARIES_CORPUS`` (apps, default 12).
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.eval.flame import render_phase_flame
from repro.eval.runner import ToolSet, run_tools
from repro.workload.corpus import CorpusConfig, generate_corpus

from .conftest import RESULTS_DIR

CORPUS_SIZE = int(os.environ.get("REPRO_SUMMARIES_CORPUS", "12"))

BENCH_CORPUS = CorpusConfig(
    count=CORPUS_SIZE, kloc_median=4.0, kloc_max=20.0, seed=97531
)


def _phase_total(run, phase: str) -> float:
    return sum(
        r.reports["SAINTDroid"].metrics.phase_seconds.get(phase, 0.0)
        for r in run.results
        if "SAINTDroid" in r.reports
    )


def _unit_totals(run) -> tuple[int, int]:
    work = memory = 0
    for r in run.results:
        report = r.reports.get("SAINTDroid")
        if report is not None and report.metrics is not None:
            work += report.metrics.stats.work_units
            memory += report.metrics.stats.memory_units
    return work, memory


@pytest.fixture(scope="module")
def ablation() -> dict:
    apps = [m.forged for m in generate_corpus(BENCH_CORPUS)]

    start = time.perf_counter()
    lazy = run_tools(apps, ToolSet.default(include=("SAINTDroid",)))
    lazy_s = time.perf_counter() - start

    start = time.perf_counter()
    summarized = run_tools(
        apps, ToolSet.default(include=("SAINTDroid",), summaries=True)
    )
    summarized_s = time.perf_counter() - start

    return {
        "apps": apps,
        "lazy": lazy,
        "summarized": summarized,
        "lazy_s": lazy_s,
        "summarized_s": summarized_s,
    }


def test_findings_parity(ablation):
    assert (
        ablation["lazy"].findings_fingerprint()
        == ablation["summarized"].findings_fingerprint()
    )


def test_summarized_explore_is_cheaper(ablation):
    lazy_explore = _phase_total(ablation["lazy"], "explore")
    summarized_explore = _phase_total(ablation["summarized"], "explore")
    assert summarized_explore < lazy_explore
    lazy_units = _unit_totals(ablation["lazy"])
    summarized_units = _unit_totals(ablation["summarized"])
    assert summarized_units[0] < lazy_units[0]  # work units
    assert summarized_units[1] < lazy_units[1]  # memory units


def test_report(ablation):
    lazy, summarized = ablation["lazy"], ablation["summarized"]
    lazy_explore = _phase_total(lazy, "explore")
    summarized_explore = _phase_total(summarized, "explore")
    table_build_s = _phase_total(summarized, "load")
    lazy_work, lazy_memory = _unit_totals(lazy)
    summarized_work, summarized_memory = _unit_totals(summarized)

    per_app_saving = (
        (lazy_explore - summarized_explore) / len(ablation["apps"])
    )
    payload = {
        "corpus_apps": CORPUS_SIZE,
        "lazy_wall_s": round(ablation["lazy_s"], 3),
        "summarized_wall_s": round(ablation["summarized_s"], 3),
        "lazy_explore_s": round(lazy_explore, 3),
        "summarized_explore_s": round(summarized_explore, 3),
        "explore_speedup": round(
            lazy_explore / summarized_explore, 2
        ) if summarized_explore else None,
        "summary_table_build_s": round(table_build_s, 3),
        "table_amortized_after_apps": (
            round(table_build_s / per_app_saving, 1)
            if per_app_saving > 0
            else None
        ),
        "lazy_work_units": lazy_work,
        "summarized_work_units": summarized_work,
        "lazy_memory_units": lazy_memory,
        "summarized_memory_units": summarized_memory,
        "findings_parity": (
            lazy.findings_fingerprint()
            == summarized.findings_fingerprint()
        ),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_summaries.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    flame = (
        render_phase_flame(
            lazy.results, title="lazy exploration"
        )
        + "\n"
        + render_phase_flame(
            summarized.results, title="summarized exploration"
        )
    )
    (RESULTS_DIR / "phase_flame.txt").write_text(flame)
    print()
    print(json.dumps(payload, indent=2))
    print(flame)
    assert payload["findings_parity"]
