"""E10 — scalability sweep: tool cost vs framework size.

The paper's central claim made asymptotic: as the platform grows,
whole-framework tools pay proportionally while the lazy CLVM pays only
for what the probe app reaches.  The sweep rebuilds the framework at
four sizes (500–4000 bulk classes) and measures SAINTDroid and CID on
identical probe apps.

Expected shape (asserted):

* CID's memory grows roughly linearly with the framework;
* SAINTDroid's loaded-class count stays nearly flat;
* the CID/SAINTDroid memory ratio *widens* monotonically with scale.
"""

from repro.eval.sweep import sweep_framework_scale

from .conftest import write_result

SIZES = (500, 1000, 2000, 4000)


def test_framework_scale_sweep(benchmark):
    points = benchmark.pedantic(
        lambda: sweep_framework_scale(SIZES, probes_per_point=2),
        rounds=1,
        iterations=1,
    )
    assert [p.bulk_classes for p in points] == list(SIZES)

    # CID memory tracks the framework size.
    cid_memory = [p.cid_memory_mb for p in points]
    assert all(b > a for a, b in zip(cid_memory, cid_memory[1:]))
    assert cid_memory[-1] / cid_memory[0] > 2.5

    # SAINTDroid's reachable slice is insensitive to platform growth.
    saint_loaded = [p.saintdroid_classes_loaded for p in points]
    assert max(saint_loaded) < 2.0 * min(saint_loaded)
    saint_memory = [p.saintdroid_memory_mb for p in points]
    assert saint_memory[-1] / saint_memory[0] < 1.8

    # So the advantage widens with scale.
    ratios = [p.memory_ratio for p in points]
    assert all(b > a for a, b in zip(ratios, ratios[1:]))
    assert ratios[-1] > 2.0 * ratios[0]

    lines = [
        "Sweep: tool cost vs framework size (avg over probe apps)",
        f"{'bulk':>6}{'fw@26':>8}{'SAINT MB':>10}{'SAINT cls':>11}"
        f"{'CID MB':>9}{'mem ratio':>11}{'time ratio':>12}",
    ]
    for point in points:
        lines.append(
            f"{point.bulk_classes:>6}"
            f"{point.framework_classes_at_26:>8}"
            f"{point.saintdroid_memory_mb:>10.0f}"
            f"{point.saintdroid_classes_loaded:>11}"
            f"{point.cid_memory_mb:>9.0f}"
            f"{point.memory_ratio:>11.1f}"
            f"{point.time_ratio:>12.1f}"
        )
    write_result("sweep_framework_scale.txt", "\n".join(lines))
