"""E6 — Table IV: the capability matrix.

The paper's point: SAINTDroid is the only tool covering every
mismatch family (including the SEM family this reproduction adds).
Capabilities are read from the live tool objects and cross-checked
against observed behaviour on the benchmark run.
"""

from repro.core.kinds import kind_families
from repro.eval.tables import render_table4, table4_capabilities

from .conftest import write_result


def test_table4_capabilities(benchmark, toolset, bench_run):
    rows = benchmark(table4_capabilities, toolset.tools)
    by_tool = {row["tool"]: row for row in rows}

    assert by_tool["SAINTDroid"] == {
        "tool": "SAINTDroid",
        "API": True, "APC": True, "PRM": True, "SEM": True,
    }
    assert by_tool["CID"] == {
        "tool": "CID",
        "API": True, "APC": False, "PRM": False, "SEM": False,
    }
    assert by_tool["CIDER"] == {
        "tool": "CIDER",
        "API": False, "APC": True, "PRM": False, "SEM": False,
    }
    assert by_tool["Lint"] == {
        "tool": "Lint",
        "API": True, "APC": False, "PRM": False, "SEM": False,
    }

    # Declared capabilities match observed behaviour.  (The benchmark
    # replicas seed no semantic scenarios, so SEM is asserted only in
    # the negative direction: a tool without the capability must never
    # report the family.)
    accuracies = bench_run.accuracies()
    for row in rows:
        for family in kind_families():
            reported = accuracies[row["tool"]].group(family).reported
            if not row[family]:
                assert reported == 0, (row["tool"], family)
    assert accuracies["SAINTDroid"].group("API").reported > 0
    assert accuracies["SAINTDroid"].group("APC").reported > 0
    assert accuracies["SAINTDroid"].group("PRM").reported > 0

    write_result("table4.txt", render_table4(rows))
