"""E2 — RQ2: real-world applicability over the calibrated corpus.

Paper anchors (3,571 apps; we default to a 150-app sample — rates, not
totals, are the reproduction target; set REPRO_CORPUS_SIZE=3571 for a
full-scale run):

* 41.19% of apps harbor ≥1 API invocation mismatch (68,268 total →
  ≈19 reports per app on average);
* 20.05% of apps have callback mismatches (2,115 total);
* 12.34% of ≥23-targeting apps have a permission request mismatch;
  68.68% of ≤22-targeting apps are open to revocation;
* sampled precision (60 flagged apps): API 85%, APC 100%, PRM 100%.
"""

import pytest

from repro.eval.tables import render_rq2, rq2_summary

from .conftest import write_result


@pytest.fixture(scope="module")
def summary(corpus_run, corpus_apps):
    modern = {
        entry.forged.apk.name: entry.modern_target
        for entry in corpus_apps
    }
    results = [
        (result.reports["SAINTDroid"], result.truth, modern[result.app])
        for result in corpus_run.results
    ]
    return rq2_summary(results)


def test_rq2_population_rates(benchmark, summary):
    benchmark(lambda: summary["api_total"])

    assert 30.0 <= summary["api_apps_pct"] <= 55.0     # paper: 41.19%
    assert 12.0 <= summary["apc_apps_pct"] <= 30.0     # paper: 20.05%
    assert 5.0 <= summary["request_pct"] <= 25.0       # paper: 12.34%
    assert 50.0 <= summary["revocation_pct"] <= 85.0   # paper: 68.68%

    # Reports per app in the paper's ballpark (68,268 / 3,571 ≈ 19).
    per_app = summary["api_total"] / summary["total_apps"]
    assert 10.0 <= per_app <= 35.0

    write_result("rq2.txt", render_rq2(summary))


def test_rq2_sampled_precision(benchmark, summary):
    benchmark(lambda: summary["sampled_precision_api"])
    assert 0.75 <= summary["sampled_precision_api"] <= 0.95  # paper: 85%
    assert summary["sampled_precision_apc"] >= 0.97          # paper: 100%
    assert summary["sampled_precision_prm"] >= 0.97          # paper: 100%


def test_rq2_single_app_analysis_cost(benchmark, toolset, corpus_apps):
    """Per-app wall time of the real implementation on a median-size
    corpus app (the quantity pytest-benchmark is best at)."""
    saintdroid = toolset.tools[0]
    mid = sorted(
        corpus_apps, key=lambda e: e.forged.apk.instruction_count
    )[len(corpus_apps) // 2]
    report = benchmark(saintdroid.analyze, mid.forged.apk)
    assert report.metrics is not None and not report.metrics.failed
