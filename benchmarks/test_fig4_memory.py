"""E5 — Figure 4: peak analysis memory, SAINTDroid vs CID, on
real-world apps.

Paper anchors:

* SAINTDroid average ≈329 MB (range 119-898 MB);
* CID ≈1.3 GB — about four times SAINTDroid's footprint — because it
  loads the entire app and framework eagerly, while the CLVM loads the
  reachable slice and releases framework bodies after summarization.
"""

import pytest

from repro.eval.figures import figure4_series

from .conftest import write_result


@pytest.fixture(scope="module")
def data(corpus_run):
    return figure4_series(corpus_run)


def test_figure4_memory_comparison(benchmark, corpus_run, data):
    benchmark(figure4_series, corpus_run)
    saint = data["summary"]["SAINTDroid"]
    cid = data["summary"]["CID"]

    assert 200.0 <= saint["average_mb"] <= 550.0   # paper: 329 MB
    assert saint["min_mb"] >= 100.0                # paper: 119 MB
    assert saint["max_mb"] <= 1500.0               # paper: 898 MB
    assert 900.0 <= cid["average_mb"] <= 1800.0    # paper: ~1.3 GB
    ratio = cid["average_mb"] / saint["average_mb"]
    assert 2.0 <= ratio <= 6.0                     # paper: ~4x

    from repro.eval.export import export_memory_csv
    from .conftest import RESULTS_DIR
    RESULTS_DIR.mkdir(exist_ok=True)
    export_memory_csv(corpus_run, RESULTS_DIR / "figure4_series.csv")

    lines = [
        "Figure 4: peak analysis memory on real-world apps (modeled MB)",
        f"  SAINTDroid: avg {saint['average_mb']:.0f} "
        f"range {saint['min_mb']:.0f}-{saint['max_mb']:.0f}",
        f"  CID:        avg {cid['average_mb']:.0f} "
        f"range {cid['min_mb']:.0f}-{cid['max_mb']:.0f}",
        f"  ratio: {ratio:.1f}x",
    ]
    write_result("figure4.txt", "\n".join(lines))


def test_figure4_per_app_ordering(benchmark, data):
    series = benchmark(lambda: data["series"])
    pairs = zip(series["SAINTDroid"], series["CID"])
    assert all(saint < cid for saint, cid in pairs)
