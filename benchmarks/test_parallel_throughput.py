"""E7 — corpus throughput: cross-app caching + the parallel engine.

Three ways to analyze the same corpus:

* **cold**   — a fresh framework repository + API database per app:
  no cross-app reuse at all (the pre-batch-engine behavior of running
  the CLI once per app);
* **warm**   — one shared tool set, serial (``jobs=1``): every app
  after the first hits the framework class cache and the database
  memo tables;
* **parallel** — the process-pool engine (``jobs=4``): the parent
  prepares the substrate once (framework levels pre-warmed, database
  mined) and every worker attaches to it — fork page sharing or the
  shared-memory segment — so workers start warm instead of each
  rebuilding its own cache.

All three must produce fingerprint-identical results; the wall-clock
and cache-hit numbers land in ``results/BENCH_parallel.json``.

The report is honest about hardware: ``cpu_count`` is what
``os.cpu_count()`` actually said, ``oversubscribed`` flags runs where
``jobs`` exceeds it, and the wall-clock assertions switch to a
core-normalized efficiency metric in that case — a pool of 4 on one
core merely time-slices, so demanding a 4× speedup there would test
the scheduler's lies, not our engine.  What IS asserted regardless of
core count: per-worker framework cache hit rates must be at least the
serial loop's (the shared-substrate guarantee — no worker pays the
cold-start the serial loop amortizes).

Environment knobs: ``REPRO_PARALLEL_CORPUS`` (apps, default 16),
``REPRO_PARALLEL_JOBS`` (default 4).
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.core.arm import mine_spec
from repro.eval.runner import ToolSet, analyze_app, run_tools
from repro.framework import FrameworkRepository, default_spec
from repro.workload.corpus import CorpusConfig, generate_corpus

from .conftest import RESULTS_DIR

CORPUS_SIZE = int(os.environ.get("REPRO_PARALLEL_CORPUS", "16"))
JOBS = int(os.environ.get("REPRO_PARALLEL_JOBS", "4"))

#: Mid-size apps keep the bench fast while leaving the per-app
#: analysis large enough that caching, not noise, dominates.
BENCH_CORPUS = CorpusConfig(
    count=CORPUS_SIZE, kloc_median=4.0, kloc_max=20.0, seed=24680
)


@pytest.fixture(scope="module")
def throughput() -> dict:
    spec = default_spec()
    shared_framework = FrameworkRepository(spec)
    shared_db = mine_spec(spec)
    apps = [
        member.forged
        for member in generate_corpus(BENCH_CORPUS, shared_db)
    ]

    # Cold: fresh substrate per app, nothing amortized.
    start = time.perf_counter()
    cold_results = []
    for forged in apps:
        framework = FrameworkRepository(spec)
        toolset = ToolSet.default(framework, mine_spec(spec))
        cold_results.append(analyze_app(toolset, forged))
    cold_s = time.perf_counter() - start
    cold_fingerprint = [r.fingerprint() for r in cold_results]

    # Warm: one shared tool set, serial.
    toolset = ToolSet.default(shared_framework, shared_db)
    shared_db.reset_cache_counters()
    start = time.perf_counter()
    warm = run_tools(apps, toolset)
    warm_s = time.perf_counter() - start

    # Parallel: the pool engine over the same corpus.
    start = time.perf_counter()
    parallel = run_tools(apps, toolset, jobs=JOBS)
    parallel_s = time.perf_counter() - start

    return {
        "apps": apps,
        "cold_fingerprint": cold_fingerprint,
        "warm": warm,
        "parallel": parallel,
        "cold_s": cold_s,
        "warm_s": warm_s,
        "parallel_s": parallel_s,
    }


def test_all_schedules_agree(throughput):
    assert (
        throughput["warm"].fingerprint()
        == throughput["parallel"].fingerprint()
    )
    assert (
        throughput["cold_fingerprint"]
        == [r.fingerprint() for r in throughput["warm"].results]
    )


def test_caches_are_hit_from_second_app_onward(throughput):
    warm_stats = throughput["warm"].cache_stats
    assert warm_stats["framework"]["class_hits"] > 0
    assert warm_stats["apidb"]["levels_hits"] > 0
    parallel_stats = throughput["parallel"].cache_stats
    assert parallel_stats["workers"] >= 1
    assert parallel_stats["framework"]["class_hits"] > 0
    assert parallel_stats["apidb"]["hit_rate"] > 0.5


def test_no_worker_starts_colder_than_the_serial_loop(throughput):
    """The shared-substrate guarantee, independent of core count:
    every worker attaches to the parent-prepared substrate, so no
    worker's framework hit rate may fall below what the serial loop
    achieves by amortizing across the whole corpus."""
    serial_rate = throughput["warm"].cache_stats["framework"]["hit_rate"]
    per_worker = throughput["parallel"].cache_stats["framework"][
        "per_worker_hit_rates"
    ]
    assert per_worker, "no worker ever reported stats"
    assert min(per_worker) >= serial_rate


def test_throughput_and_report(throughput):
    cold_s = throughput["cold_s"]
    warm_s = throughput["warm_s"]
    parallel_s = throughput["parallel_s"]
    cpus = os.cpu_count() or 1
    effective_workers = max(1, min(JOBS, cpus))
    oversubscribed = cpus < JOBS

    amortized_speedup = cold_s / warm_s
    parallel_speedup = cold_s / parallel_s
    pool_speedup = warm_s / parallel_s
    # Speedup per core the pool could actually use: 1.0 means the
    # engine converted every available core into linear speedup over
    # the cold baseline; on an oversubscribed box this collapses to
    # plain speedup-vs-cold (effective_workers == cpus).
    core_normalized_efficiency = parallel_speedup / effective_workers

    payload = {
        "corpus_apps": CORPUS_SIZE,
        "jobs": JOBS,
        "cpu_count": cpus,
        "effective_workers": effective_workers,
        "oversubscribed": oversubscribed,
        "serial_cold_s": round(cold_s, 3),
        "serial_warm_s": round(warm_s, 3),
        "parallel_s": round(parallel_s, 3),
        "amortized_speedup_warm_vs_cold": round(amortized_speedup, 2),
        "parallel_speedup_vs_cold": round(parallel_speedup, 2),
        "parallel_speedup_vs_warm": round(pool_speedup, 2),
        "core_normalized_efficiency": round(
            core_normalized_efficiency, 2
        ),
        "warm_cache": throughput["warm"].cache_stats,
        "parallel_cache": throughput["parallel"].cache_stats,
    }
    if oversubscribed:
        payload["note"] = (
            f"jobs={JOBS} > cpu_count={cpus}: the pool time-slices "
            f"{cpus} core(s), so wall-clock speedup targets are "
            f"core-normalized (see core_normalized_efficiency)"
        )
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_parallel.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    print()
    print(json.dumps(payload, indent=2))

    # Cross-app caching must at least double corpus throughput over
    # the no-reuse baseline.
    assert amortized_speedup >= 2.0
    if not oversubscribed:
        # With real cores behind the pool the engine must at least
        # double over cold and beat the warm serial loop outright.
        assert parallel_speedup >= 2.0
        assert pool_speedup >= 1.5
    else:
        # Time-slicing cannot beat warm serial, but the shared
        # substrate must still make the pool beat the cold baseline
        # on the cores it actually has.
        assert core_normalized_efficiency > 1.0
