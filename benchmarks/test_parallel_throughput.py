"""E7 — corpus throughput: cross-app caching + the parallel engine.

Three ways to analyze the same corpus:

* **cold**   — a fresh framework repository + API database per app:
  no cross-app reuse at all (the pre-batch-engine behavior of running
  the CLI once per app);
* **warm**   — one shared tool set, serial (``jobs=1``): every app
  after the first hits the framework class cache and the database
  memo tables;
* **parallel** — the process-pool engine (``jobs=4``): workers build
  the substrate once each (inheriting the parent's warm pages under
  the fork start method) and split the corpus.

All three must produce fingerprint-identical results; the wall-clock
and cache-hit numbers land in ``results/BENCH_parallel.json``.

Environment knobs: ``REPRO_PARALLEL_CORPUS`` (apps, default 16),
``REPRO_PARALLEL_JOBS`` (default 4).
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.core.arm import mine_spec
from repro.eval.runner import ToolSet, analyze_app, run_tools
from repro.framework import FrameworkRepository, default_spec
from repro.workload.corpus import CorpusConfig, generate_corpus

from .conftest import RESULTS_DIR

CORPUS_SIZE = int(os.environ.get("REPRO_PARALLEL_CORPUS", "16"))
JOBS = int(os.environ.get("REPRO_PARALLEL_JOBS", "4"))

#: Mid-size apps keep the bench fast while leaving the per-app
#: analysis large enough that caching, not noise, dominates.
BENCH_CORPUS = CorpusConfig(
    count=CORPUS_SIZE, kloc_median=4.0, kloc_max=20.0, seed=24680
)


@pytest.fixture(scope="module")
def throughput() -> dict:
    spec = default_spec()
    shared_framework = FrameworkRepository(spec)
    shared_db = mine_spec(spec)
    apps = [
        member.forged
        for member in generate_corpus(BENCH_CORPUS, shared_db)
    ]

    # Cold: fresh substrate per app, nothing amortized.
    start = time.perf_counter()
    cold_results = []
    for forged in apps:
        framework = FrameworkRepository(spec)
        toolset = ToolSet.default(framework, mine_spec(spec))
        cold_results.append(analyze_app(toolset, forged))
    cold_s = time.perf_counter() - start
    cold_fingerprint = [r.fingerprint() for r in cold_results]

    # Warm: one shared tool set, serial.
    toolset = ToolSet.default(shared_framework, shared_db)
    shared_db.reset_cache_counters()
    start = time.perf_counter()
    warm = run_tools(apps, toolset)
    warm_s = time.perf_counter() - start

    # Parallel: the pool engine over the same corpus.
    start = time.perf_counter()
    parallel = run_tools(apps, toolset, jobs=JOBS)
    parallel_s = time.perf_counter() - start

    return {
        "apps": apps,
        "cold_fingerprint": cold_fingerprint,
        "warm": warm,
        "parallel": parallel,
        "cold_s": cold_s,
        "warm_s": warm_s,
        "parallel_s": parallel_s,
    }


def test_all_schedules_agree(throughput):
    assert (
        throughput["warm"].fingerprint()
        == throughput["parallel"].fingerprint()
    )
    assert (
        throughput["cold_fingerprint"]
        == [r.fingerprint() for r in throughput["warm"].results]
    )


def test_caches_are_hit_from_second_app_onward(throughput):
    warm_stats = throughput["warm"].cache_stats
    assert warm_stats["framework"]["class_hits"] > 0
    assert warm_stats["apidb"]["levels_hits"] > 0
    parallel_stats = throughput["parallel"].cache_stats
    assert parallel_stats["workers"] >= 1
    assert parallel_stats["framework"]["class_hits"] > 0
    assert parallel_stats["apidb"]["hit_rate"] > 0.5


def test_throughput_and_report(throughput):
    cold_s = throughput["cold_s"]
    warm_s = throughput["warm_s"]
    parallel_s = throughput["parallel_s"]
    cpus = os.cpu_count() or 1

    amortized_speedup = cold_s / warm_s
    parallel_speedup = cold_s / parallel_s
    pool_speedup = warm_s / parallel_s

    payload = {
        "corpus_apps": CORPUS_SIZE,
        "jobs": JOBS,
        "cpu_count": cpus,
        "serial_cold_s": round(cold_s, 3),
        "serial_warm_s": round(warm_s, 3),
        "parallel_s": round(parallel_s, 3),
        "amortized_speedup_warm_vs_cold": round(amortized_speedup, 2),
        "parallel_speedup_vs_cold": round(parallel_speedup, 2),
        "parallel_speedup_vs_warm": round(pool_speedup, 2),
        "warm_cache": throughput["warm"].cache_stats,
        "parallel_cache": throughput["parallel"].cache_stats,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_parallel.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    print()
    print(json.dumps(payload, indent=2))

    # Cross-app caching must at least double corpus throughput over
    # the no-reuse baseline.
    assert amortized_speedup >= 2.0
    if cpus >= JOBS:
        # With real cores behind the pool the engine must also at
        # least double over cold and beat the warm serial loop; on
        # fewer cores the pool merely time-slices one CPU, so only
        # correctness (fingerprint equality above) is asserted.
        assert parallel_speedup >= 2.0
        assert pool_speedup >= 1.5
