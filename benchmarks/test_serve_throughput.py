"""E9 — daemon throughput: the resident analysis service over HTTP.

One in-process ``saintdroid serve`` daemon (substrate loaded once,
supervised worker pool) takes a corpus of distinct apps through the
full HTTP path — admission, write-ahead journal, dispatch, result
marshalling — from concurrent client threads, twice:

* **cold** — every app is novel: full analysis on the pool; this is
  the daemon's steady-state jobs/sec;
* **warm** — the identical corpus resubmitted: every fingerprint hits
  the in-memory dedup index, so jobs are answered terminally at
  admission without touching a worker.

Numbers land in ``results/BENCH_serve.json``: cold jobs/sec, client-
observed p50/p99 latency for both passes, and the warm-pass dedup hit
rate (which must be 1.0 — the same package answered twice is the
whole point of a resident daemon).

Environment knobs: ``REPRO_SERVE_CORPUS`` (apps, default 24),
``REPRO_SERVE_JOBS`` (workers, default 4), ``REPRO_SERVE_CLIENTS``
(concurrent submitting threads, default 8).
"""

from __future__ import annotations

import json
import os
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core.arm import mine_spec
from repro.framework import FrameworkRepository, default_spec
from repro.serve import AnalysisService, ServeClient, ServeConfig, start_server
from repro.workload.corpus import CorpusConfig, generate_corpus

from .conftest import RESULTS_DIR

CORPUS_SIZE = int(os.environ.get("REPRO_SERVE_CORPUS", "24"))
WORKERS = int(os.environ.get("REPRO_SERVE_JOBS", "4"))
CLIENTS = int(os.environ.get("REPRO_SERVE_CLIENTS", "8"))

BENCH_CORPUS = CorpusConfig(
    count=CORPUS_SIZE, kloc_median=3.0, kloc_max=12.0, seed=13579
)


def _percentile(samples: list[float], q: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, round(q * (len(ordered) - 1)))
    return ordered[index]


@pytest.fixture(scope="module")
def serve_bench(tmp_path_factory) -> dict:
    spec = default_spec()
    framework = FrameworkRepository(spec)
    apidb = mine_spec(spec)
    apps = [
        member.forged
        for member in generate_corpus(BENCH_CORPUS, apidb)
    ]
    wal = tmp_path_factory.mktemp("serve-bench") / "wal.jsonl"

    config = ServeConfig(
        workers=WORKERS,
        include=("SAINTDroid",),
        journal=str(wal),
        queue_limit=max(64, CORPUS_SIZE * 2),
        timeout_s=60.0,
    )
    service = AnalysisService(
        config, spec, substrate=(framework, apidb)
    ).start()
    server = start_server(service)
    host, port = server.server_address[:2]
    base_url = f"http://{host}:{port}"

    def submit_and_wait(forged):
        client = ServeClient(base_url, timeout_s=30.0)
        start = time.perf_counter()
        doc = client.submit_retry(forged.apk)
        if doc["state"] not in ("completed", "quarantined"):
            doc = client.wait(doc["id"], timeout_s=600.0)
        return {
            "latency_s": time.perf_counter() - start,
            "state": doc["state"],
            "dedup": bool(doc.get("dedup")),
        }

    def run_pass():
        start = time.perf_counter()
        with ThreadPoolExecutor(max_workers=CLIENTS) as pool:
            outcomes = list(pool.map(submit_and_wait, apps))
        return time.perf_counter() - start, outcomes

    try:
        cold_s, cold = run_pass()
        warm_s, warm = run_pass()
        health = ServeClient(base_url).healthz()
    finally:
        server.shutdown()
        server.server_close()
        service.drain(timeout_s=120.0)

    return {
        "apps": len(apps),
        "cold_s": cold_s,
        "warm_s": warm_s,
        "cold": cold,
        "warm": warm,
        "health": health,
    }


class TestServeThroughput:
    def test_every_job_completes(self, serve_bench):
        for outcome in serve_bench["cold"] + serve_bench["warm"]:
            assert outcome["state"] == "completed"

    def test_warm_pass_is_pure_dedup(self, serve_bench):
        assert all(o["dedup"] for o in serve_bench["warm"])
        assert not any(o["dedup"] for o in serve_bench["cold"])
        stats = serve_bench["health"]["queue"]
        assert stats["dedup_hits"] == serve_bench["apps"]

    def test_warm_latency_beats_cold(self, serve_bench):
        cold_p50 = _percentile(
            [o["latency_s"] for o in serve_bench["cold"]], 0.5
        )
        warm_p50 = _percentile(
            [o["latency_s"] for o in serve_bench["warm"]], 0.5
        )
        # A dedup answer skips the pool entirely; even a generous
        # margin (2×) holds on loaded CI boxes.
        assert warm_p50 <= cold_p50 / 2

    def test_publish_report(self, serve_bench):
        cold_lat = [o["latency_s"] for o in serve_bench["cold"]]
        warm_lat = [o["latency_s"] for o in serve_bench["warm"]]
        report = {
            "corpus": serve_bench["apps"],
            "workers": WORKERS,
            "client_threads": CLIENTS,
            "cold": {
                "jobs_per_sec": round(
                    serve_bench["apps"] / serve_bench["cold_s"], 3
                ),
                "wall_s": round(serve_bench["cold_s"], 3),
                "p50_latency_s": round(_percentile(cold_lat, 0.5), 4),
                "p99_latency_s": round(_percentile(cold_lat, 0.99), 4),
            },
            "warm": {
                "jobs_per_sec": round(
                    serve_bench["apps"] / serve_bench["warm_s"], 3
                ),
                "wall_s": round(serve_bench["warm_s"], 3),
                "p50_latency_s": round(_percentile(warm_lat, 0.5), 4),
                "p99_latency_s": round(_percentile(warm_lat, 0.99), 4),
                "dedup_hit_rate": round(
                    sum(o["dedup"] for o in serve_bench["warm"])
                    / serve_bench["apps"],
                    3,
                ),
            },
            "pool": {
                "restarts": serve_bench["health"]["pool"]["restarts"],
                "substrate_source": serve_bench["health"]["pool"].get(
                    "substrate_source"
                ),
            },
        }
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / "BENCH_serve.json").write_text(
            json.dumps(report, indent=2) + "\n"
        )
        print()
        print(json.dumps(report, indent=2))
