"""Shared fixtures for the experiment benchmarks.

Heavy computation (benchmark-suite run, corpus run) happens once per
session; individual benchmarks then time representative per-app
operations and assert the paper-shape properties on the shared
results.

Environment knobs:

* ``REPRO_CORPUS_SIZE``   — corpus sample size (default 150; the paper
  uses 3,571 — set it for a full-scale run).
* ``REPRO_BENCH_SCALE``   — benchmark-app filler scale (default 1.0).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.eval.runner import RunResults, ToolSet, run_tools
from repro.workload.benchsuite import build_benchmark_suite
from repro.workload.corpus import CorpusConfig, generate_corpus

RESULTS_DIR = Path(__file__).parent / "results"

CORPUS_SIZE = int(os.environ.get("REPRO_CORPUS_SIZE", "150"))
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def write_result(name: str, text: str) -> None:
    """Persist a rendered table/figure for EXPERIMENTS.md."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / name).write_text(text + "\n")
    print()
    print(text)


@pytest.fixture(scope="session")
def toolset() -> ToolSet:
    return ToolSet.default()


@pytest.fixture(scope="session")
def bench_apps(toolset):
    """The 19 benchmark replicas (paper sizes by default)."""
    return build_benchmark_suite(toolset.apidb, scale=BENCH_SCALE)


@pytest.fixture(scope="session")
def bench_run(toolset, bench_apps) -> RunResults:
    """Every tool over every benchmark app."""
    return run_tools(bench_apps, toolset)


@pytest.fixture(scope="session")
def corpus_apps(toolset):
    """The calibrated real-world corpus sample."""
    config = CorpusConfig(count=CORPUS_SIZE)
    return list(generate_corpus(config, toolset.apidb))


@pytest.fixture(scope="session")
def corpus_run(toolset, corpus_apps) -> RunResults:
    """SAINTDroid, CID, and Lint over the corpus (the real-world
    performance comparison of Figures 3 and 4)."""
    tools = ToolSet.default(
        toolset.framework, toolset.apidb,
        include=("SAINTDroid", "CID", "Lint"),
    )
    return run_tools([entry.forged for entry in corpus_apps], tools)
