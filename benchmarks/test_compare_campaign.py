"""Agreement-campaign throughput (``saintdroid compare``).

One seeded corpus through the full configuration roster, three ways
— serial, pooled (``--jobs 2``), and submitted through an in-process
serve daemon — plus a dedup arm that runs the store-consuming
configuration against a cold and then a warm class-artifact store.

Published to ``results/BENCH_compare.json``:

* apps/sec per configuration (serial arm, measured individually);
* wall time serial vs pooled vs serve-submitted, with the canonical
  reports asserted byte-identical across all three (the determinism
  guarantee the CI ``compare`` job also enforces end to end);
* the class-store hit-rate uplift a warm store gives a repeated
  campaign over the same corpus (only the plain SAINTDroid
  configuration consumes the store — the ablations deliberately
  ablate against the plain lazy configuration).

Environment knobs: ``REPRO_COMPARE_CORPUS`` (apps, default 24),
``REPRO_COMPARE_CONFIGS`` (comma-separated roster subset, default
all).
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.cache.classes import registered_stores, reset_class_stores
from repro.core.arm import build_api_database
from repro.eval.compare import (
    COMPARE_CONFIGS,
    CompareConfig,
    canonical_json,
    plan_compare_corpus,
    run_compare,
)
from repro.eval.runner import ToolSet, run_tools
from repro.framework.repository import FrameworkRepository

from .conftest import RESULTS_DIR

CORPUS_SIZE = int(os.environ.get("REPRO_COMPARE_CORPUS", "24"))
CONFIGS = tuple(
    name
    for name in os.environ.get(
        "REPRO_COMPARE_CONFIGS", ",".join(COMPARE_CONFIGS)
    ).split(",")
    if name
)
SEED = 2026


def _store_hit_rate() -> float:
    hits = misses = 0
    for store in registered_stores():
        stats = store.stats.as_dict()
        hits += stats.get("hits", 0)
        misses += stats.get("misses", 0)
    return hits / (hits + misses) if hits + misses else 0.0


@pytest.fixture(scope="module")
def campaign_bench() -> dict:
    framework = FrameworkRepository()
    apidb = build_api_database(framework)
    substrate = (framework, apidb)
    _, apps, _ = plan_compare_corpus(SEED, CORPUS_SIZE, apidb)

    # Per-configuration serial throughput.
    per_config: dict[str, dict] = {}
    serial_wall = 0.0
    for name in CONFIGS:
        toolset = ToolSet.default(framework, apidb, include=(name,))
        start = time.perf_counter()
        run = run_tools(apps, toolset)
        elapsed = time.perf_counter() - start
        serial_wall += elapsed
        per_config[name] = {
            "wall_s": round(elapsed, 3),
            "apps_per_s": round(len(apps) / elapsed, 2),
            "failed": len(run.failed_apps),
        }

    def timed(**overrides) -> tuple[float, str]:
        config = CompareConfig(
            seed=SEED, n_apps=CORPUS_SIZE, configs=CONFIGS, **overrides
        )
        start = time.perf_counter()
        result = run_compare(config, substrate=substrate)
        return time.perf_counter() - start, canonical_json(
            result.report
        )

    wall_serial_campaign, report_serial = timed()
    wall_pooled, report_pooled = timed(jobs=2)
    wall_serve, report_serve = timed(via_serve=True, jobs=2)

    # Dedup arm: the store-consuming configuration cold, then warm
    # against the same in-process store (a repeated campaign's view).
    reset_class_stores()
    try:
        dedup_tools = ToolSet.default(
            framework, apidb, include=("SAINTDroid",), dedup=True
        )
        start = time.perf_counter()
        run_tools(apps, dedup_tools)
        cold_s = time.perf_counter() - start
        cold_rate = _store_hit_rate()
        start = time.perf_counter()
        run_tools(apps, dedup_tools)
        warm_s = time.perf_counter() - start
        warm_rate = _store_hit_rate()
    finally:
        reset_class_stores()

    return {
        "apps": len(apps),
        "configurations": list(CONFIGS),
        "perConfiguration": per_config,
        "wall_s": {
            "serial_sum": round(serial_wall, 3),
            "serial_campaign": round(wall_serial_campaign, 3),
            "pooled_jobs2": round(wall_pooled, 3),
            "serve_submitted": round(wall_serve, 3),
        },
        "reports_identical": (
            report_serial == report_pooled == report_serve
        ),
        "dedup": {
            "configuration": "SAINTDroid",
            "cold_wall_s": round(cold_s, 3),
            "warm_wall_s": round(warm_s, 3),
            "cold_hit_rate": round(cold_rate, 4),
            "warm_hit_rate": round(warm_rate, 4),
            "uplift": round(warm_rate - cold_rate, 4),
        },
    }


def test_reports_identical_across_arms(campaign_bench):
    assert campaign_bench["reports_identical"]


def test_every_configuration_measured(campaign_bench):
    for name in CONFIGS:
        row = campaign_bench["perConfiguration"][name]
        assert row["apps_per_s"] > 0
        assert row["failed"] == 0


def test_warm_store_uplift(campaign_bench):
    dedup = campaign_bench["dedup"]
    # A repeated campaign replays every previously seen class.
    assert dedup["warm_hit_rate"] > dedup["cold_hit_rate"]


def test_publish(campaign_bench):
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_compare.json"
    path.write_text(json.dumps(campaign_bench, indent=2) + "\n")
    print()
    print(json.dumps(campaign_bench, indent=2))
