"""E7 — Table I (mismatch taxonomy) and Figure 1 (mismatch regions).

These are structural artifacts: the benchmark regenerates them and
times the underlying computation; assertions pin the taxonomy to the
paper's three rows and the region split around the app level.
"""

from repro.apk.manifest import MAX_API_LEVEL, MIN_API_LEVEL
from repro.eval.figures import figure1_regions
from repro.eval.tables import render_table1, table1_taxonomy

from .conftest import write_result


def test_table1_taxonomy(benchmark):
    rows = benchmark(table1_taxonomy)
    assert [row["abbr"] for row in rows] == ["API", "APC", "PRM"]
    assert "26 dangerous permissions" in rows[2]["results_in"]
    write_result("table1.txt", render_table1())


def test_figure1_regions(benchmark):
    app_level = 23
    regions = benchmark(figure1_regions, app_level)
    backward = [d for d, r in regions.items() if r.startswith("backward")]
    forward = [d for d, r in regions.items() if r.startswith("forward")]
    assert backward == list(range(MIN_API_LEVEL, app_level))
    assert forward == list(range(app_level + 1, MAX_API_LEVEL + 1))
    assert regions[app_level] == "compatible"
    lines = [f"Figure 1: mismatch regions for app API level {app_level}"]
    lines.extend(
        f"  device {device:>2}: {region}"
        for device, region in regions.items()
    )
    write_result("figure1.txt", "\n".join(lines))
