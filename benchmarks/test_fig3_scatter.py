"""E4 — Figure 3: analysis time vs app size on real-world apps.

Paper anchors:

* SAINTDroid average ≈6.2 s/app (range 1.6-37.8) vs CID ≈29.5 s
  (4.1-78.4) and Lint ≈24.7 s (4.7-75.6);
* SAINTDroid up to ~8.3x (≈4x average) faster;
* outliers exist: small apps that load a disproportionate library
  surface take disproportionate time (top-left points).
"""

import pytest

from repro.eval.figures import ascii_scatter, figure3_series

from .conftest import write_result


@pytest.fixture(scope="module")
def data(corpus_run):
    return figure3_series(corpus_run)


def test_figure3_timing_summaries(benchmark, corpus_run, data):
    benchmark(figure3_series, corpus_run)
    tools = {s.tool: s for s in data["summaries"]}

    saint = tools["SAINTDroid"]
    assert 2.0 <= saint.average <= 10.0      # paper: 6.2 s
    assert saint.minimum >= 1.0              # paper: 1.6 s
    assert saint.maximum <= 45.0             # paper: 37.8 s
    assert saint.failed == 0

    cid = tools["CID"]
    lint = tools["Lint"]
    assert 15.0 <= cid.average <= 45.0       # paper: 29.5 s
    assert 10.0 <= lint.average <= 40.0      # paper: 24.7 s
    assert cid.average / saint.average >= 3.0
    assert lint.average / saint.average >= 2.0

    from repro.eval.export import export_timing_csv
    from .conftest import RESULTS_DIR
    RESULTS_DIR.mkdir(exist_ok=True)
    export_timing_csv(corpus_run, RESULTS_DIR / "figure3_series.csv")

    lines = ["Figure 3: SAINTDroid analysis time vs app size (KLOC)",
             ascii_scatter(data["scatter"])]
    for summary in data["summaries"]:
        lines.append(
            f"{summary.tool}: avg {summary.average:.1f}s "
            f"range {summary.minimum:.1f}-{summary.maximum:.1f} "
            f"({summary.completed} completed, {summary.failed} failed)"
        )
    write_result("figure3.txt", "\n".join(lines))


def test_figure3_scatter_correlates_with_size(benchmark, data):
    scatter = benchmark(lambda: data["scatter"])
    assert len(scatter) >= 50
    small = [s for k, s in scatter if k < 5.0]
    large = [s for k, s in scatter if k > 30.0]
    if small and large:
        assert (sum(large) / len(large)) > (sum(small) / len(small))


def test_figure3_outlier_mechanism(benchmark, toolset, picker_pool=None):
    """A small app with a huge framework vocabulary costs more than a
    plain app of the same size — the paper's top-left outlier."""
    from repro.workload.appgen import ApiPicker, AppForge

    apidb = toolset.apidb
    picker = ApiPicker(apidb)

    def build(pool_size):
        forge = AppForge(
            "com.outlier.app", f"Outlier{pool_size}",
            min_sdk=19, target_sdk=26, seed=11,
            apidb=apidb, picker=picker,
        )
        forge._safe_pool = [
            picker.safe_api(forge._rng) for _ in range(pool_size)
        ]
        forge.add_filler(kloc=2.0)
        return forge.build().apk

    saintdroid = toolset.tools[0]
    plain = saintdroid.analyze(build(10))
    heavy = benchmark.pedantic(
        lambda: saintdroid.analyze(build(400)), rounds=1, iterations=1
    )
    assert heavy.metrics.modeled_seconds > (
        1.5 * plain.metrics.modeled_seconds
    )
