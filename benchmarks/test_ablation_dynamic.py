"""E9 — the static+dynamic pipeline (paper sections VI and VIII).

The paper proposes dynamic verification of static findings and a
repair synthesizer as future work; both are implemented here.  The
benchmark quantifies them on the CIDER-Bench replicas:

* dynamic verification refutes the anonymous-guard false alarms and
  confirms the true crashes, lifting the API-kind precision of the
  combined pipeline to 1.0 without losing recall;
* the repair synthesizer eliminates every repairable finding — the
  repaired apps re-analyze clean except for callback advisories.
"""

import pytest

from repro.dynamic.verifier import DynamicVerifier
from repro.eval.accuracy import score_app
from repro.repair.engine import RepairEngine

from .conftest import write_result

#: Verified on a subset: interpretation is slower than static analysis
#: (exactly the paper's argument for static-first triage).
VERIFY_APPS = ("Padland", "FOSS Browser", "SurvivalManual", "Kolab notes",
               "MaterialFBook", "SimpleSolitaire")


@pytest.fixture(scope="module")
def verified_scores(toolset, bench_apps, bench_run):
    rows = []
    for forged in bench_apps:
        if forged.apk.name not in VERIFY_APPS:
            continue
        report = next(
            r for r in bench_run.results if r.app == forged.apk.name
        ).reports["SAINTDroid"]
        verifier = DynamicVerifier(forged.apk, toolset.apidb)
        result = verifier.verify_all(report)

        static = score_app(report, forged.truth, ("API",))
        surviving_keys = {
            m.key for m in result.surviving_mismatches()
            if m.key[0] == "API"
        }
        truth_api = {
            k for k in forged.truth.issue_keys if k[0] == "API"
        }
        combined_tp = len(surviving_keys & truth_api)
        combined_fp = len(surviving_keys - truth_api)
        rows.append(
            {
                "app": forged.apk.name,
                "static_tp": static.tp,
                "static_fp": static.fp,
                "combined_tp": combined_tp,
                "combined_fp": combined_fp,
                "refuted": len(result.refuted),
            }
        )
    return rows


def test_dynamic_verification_reaches_full_api_precision(
    benchmark, verified_scores
):
    benchmark(lambda: sum(r["combined_fp"] for r in verified_scores))

    static_fp = sum(r["static_fp"] for r in verified_scores)
    combined_fp = sum(r["combined_fp"] for r in verified_scores)
    static_tp = sum(r["static_tp"] for r in verified_scores)
    combined_tp = sum(r["combined_tp"] for r in verified_scores)

    assert static_fp > 0          # static alone has the §VI false alarms
    assert combined_fp == 0       # …all dynamically refuted
    assert combined_tp == static_tp  # …with zero lost true positives

    lines = [
        "Ablation: static-only vs static+dynamic (API kind)",
        f"{'app':<18}{'static tp/fp':>14}{'combined tp/fp':>17}"
        f"{'refuted':>9}",
    ]
    for row in verified_scores:
        static_cell = f"{row['static_tp']}/{row['static_fp']}"
        combined_cell = f"{row['combined_tp']}/{row['combined_fp']}"
        lines.append(
            f"{row['app']:<18}{static_cell:>14}{combined_cell:>17}"
            f"{row['refuted']:>9}"
        )
    lines.append(
        f"API precision: static "
        f"{static_tp / (static_tp + static_fp):.2f} -> combined 1.00"
    )
    write_result("ablation_dynamic.txt", "\n".join(lines))


def test_repair_eliminates_every_repairable_finding(
    benchmark, toolset, bench_apps, bench_run
):
    from repro.core import SaintDroid

    detector = SaintDroid(toolset.framework, toolset.apidb)
    engine = RepairEngine(toolset.apidb)
    target = next(a for a in bench_apps if a.apk.name == "Kolab notes")
    report = next(
        r for r in bench_run.results if r.app == "Kolab notes"
    ).reports["SAINTDroid"]

    def repair_once():
        result = engine.repair(target.apk, report.mismatches)
        return detector.analyze(result.repaired).mismatches

    residual = benchmark.pedantic(repair_once, rounds=1, iterations=1)
    # Everything except callback advisories (and the anonymous-guard
    # blind-spot findings, which repair *also* guards — making them
    # disappear) is gone.
    assert all(m.kind.value in ("APC",) for m in residual)
