"""E3 — Table III: per-app analysis time on the CIDER-Bench replicas.

Paper anchors asserted:

* SAINTDroid is the fastest tool on every app it shares with the
  baselines (2.3-11.3 s band in the paper; our cost model lands in the
  same band);
* CID fails on AFWall+, NetworkMonitor, and PassAndroid (multidex
  crashes — the dashes);
* Lint produces no result for NyaaPantsu (unbuildable);
* SAINTDroid is up to ~8.3x and on average ~4x faster than the
  baselines.
"""

import pytest

from repro.eval.tables import render_table3, table3_times
from repro.workload.benchsuite import CIDER_BENCH

from .conftest import write_result

LABELS = tuple(spec.label for spec in CIDER_BENCH)


@pytest.fixture(scope="module")
def rows(bench_run):
    return table3_times(bench_run, apps=LABELS)


def test_table3_times(benchmark, bench_run, rows):
    benchmark(table3_times, bench_run, apps=LABELS)

    by_app = {row["app"]: row for row in rows}

    # CID dashes: the three multidex apps.
    for label in ("AFWall+", "NetworkMonitor", "PassAndroid"):
        assert by_app[label]["CID"] is None, label
    # Lint dash: the unbuildable app.
    assert by_app["NyaaPantsu"]["Lint"] is None

    for row in rows:
        saint = row["SAINTDroid"]
        assert saint is not None
        assert 2.0 <= saint <= 16.0  # the paper's single-digit band
        for tool in ("CID", "Lint"):
            if row[tool] is not None:
                assert saint < row[tool], (row["app"], tool)

    write_result("table3.txt", render_table3(rows))


def test_average_speedup_band(benchmark, rows):
    def speedups():
        out = {}
        for tool in ("CID", "Lint"):
            ratios = [
                row[tool] / row["SAINTDroid"]
                for row in rows
                if row[tool] is not None
            ]
            out[tool] = sum(ratios) / len(ratios)
        return out

    averages = benchmark(speedups)
    # Paper: four times faster on average, up to 8.3x.
    assert 2.5 <= averages["CID"] <= 9.0
    assert 2.5 <= averages["Lint"] <= 9.0


def test_timing_protocol_three_repetitions(benchmark, toolset, bench_apps):
    """The paper's RQ3 protocol: three repeated measurements, averaged.
    The modeled time is deterministic; the repetitions exercise wall
    time stability of our implementation."""
    saintdroid = toolset.tools[0]
    app = next(a.apk for a in bench_apps if a.apk.name == "Padland")

    def three_runs():
        reports = [saintdroid.analyze(app) for _ in range(3)]
        seconds = [r.metrics.modeled_seconds for r in reports]
        assert max(seconds) - min(seconds) < 1e-9  # deterministic model
        return sum(seconds) / 3

    average = benchmark.pedantic(three_runs, rounds=1, iterations=1)
    assert average > 0
