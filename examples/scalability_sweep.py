#!/usr/bin/env python3
"""Scalability sweep: why lazy class loading is the headline feature.

Rebuilds the Android framework model at four sizes and measures
SAINTDroid (lazy CLVM) and CID (whole-framework loading) on identical
probe apps.  The closed-world tool pays for the platform; the CLVM
pays for the app's reachable slice — so the gap *widens* as the
platform grows, which is the paper's scalability thesis in one table.

Run with::

    python examples/scalability_sweep.py
"""

from repro.eval.sweep import sweep_framework_scale


def main() -> None:
    sizes = (500, 1000, 2000, 4000)
    print(f"sweeping framework sizes {sizes} (a few seconds per point)…\n")
    points = sweep_framework_scale(sizes, probes_per_point=2)

    header = (
        f"{'framework classes':>18}{'SAINTDroid MB':>15}"
        f"{'classes loaded':>16}{'CID MB':>9}{'memory ratio':>14}"
        f"{'time ratio':>12}"
    )
    print(header)
    print("-" * len(header))
    for point in points:
        print(
            f"{point.framework_classes_at_26:>18}"
            f"{point.saintdroid_memory_mb:>15.0f}"
            f"{point.saintdroid_classes_loaded:>16}"
            f"{point.cid_memory_mb:>9.0f}"
            f"{point.memory_ratio:>13.1f}x"
            f"{point.time_ratio:>11.1f}x"
        )

    first, last = points[0], points[-1]
    print(
        f"\nframework grew {last.framework_classes_at_26 / first.framework_classes_at_26:.1f}x; "
        f"SAINTDroid's footprint grew "
        f"{last.saintdroid_memory_mb / first.saintdroid_memory_mb:.2f}x "
        f"while CID's grew "
        f"{last.cid_memory_mb / first.cid_memory_mb:.2f}x."
    )
    print("The CLVM's cost tracks the app, not the platform.")


if __name__ == "__main__":
    main()
