#!/usr/bin/env python3
"""App-store review pipeline: batch compatibility screening.

The scenario the paper's introduction motivates: a marketplace (or a
third-party reviewer) screens incoming app submissions for
crash-leading compatibility issues before accepting them.  This
example:

1. generates a small batch of submissions (a slice of the calibrated
   real-world corpus, written out as ``.sapk`` files — the same
   interchange format ``saintdroid analyze`` consumes);
2. runs SAINTDroid over the batch;
3. produces a triage report: reject / warn / pass per app, with the
   device ranges affected and per-kind statistics across the batch.

Run with::

    python examples/store_review_pipeline.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import SaintDroid, load_apk, save_apk
from repro.core import build_api_database
from repro.workload import CorpusConfig, generate_corpus

BATCH_SIZE = 12


def generate_submissions(directory: Path) -> list[Path]:
    """Write a batch of synthetic submissions as .sapk files."""
    apidb = build_api_database()
    config = CorpusConfig(count=BATCH_SIZE, seed=424242)
    paths = []
    for entry in generate_corpus(config, apidb):
        path = directory / f"{entry.forged.apk.name}.sapk"
        save_apk(entry.forged.apk, path)
        paths.append(path)
    return paths


def triage(report) -> str:
    """Store policy: crashes on supported devices are rejects;
    permission hygiene problems are warnings."""
    kinds = report.by_kind()
    if kinds.get("API", 0) > 0:
        return "REJECT"
    if kinds.get("APC", 0) > 0:
        return "WARN"
    if kinds.get("PRM-request", 0) or kinds.get("PRM-revocation", 0):
        return "WARN"
    return "PASS"


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        directory = Path(tmp)
        print(f"generating {BATCH_SIZE} submissions…")
        paths = generate_submissions(directory)

        detector = SaintDroid()
        totals = {"API": 0, "APC": 0, "PRM": 0}
        verdicts = {"REJECT": 0, "WARN": 0, "PASS": 0}

        print(f"\n{'submission':<16}{'verdict':<9}"
              f"{'API':>5}{'APC':>5}{'PRM':>5}   worst finding")
        print("-" * 78)
        for path in paths:
            apk = load_apk(path)
            report = detector.analyze(apk)
            kinds = report.by_kind()
            verdict = triage(report)
            verdicts[verdict] += 1
            totals["API"] += kinds.get("API", 0)
            totals["APC"] += kinds.get("APC", 0)
            totals["PRM"] += (
                kinds.get("PRM-request", 0)
                + kinds.get("PRM-revocation", 0)
            )
            worst = (
                report.mismatches[0].describe()[:34] + "…"
                if report.mismatches
                else "(clean)"
            )
            print(
                f"{apk.name:<16}{verdict:<9}"
                f"{kinds.get('API', 0):>5}"
                f"{kinds.get('APC', 0):>5}"
                f"{kinds.get('PRM-request', 0) + kinds.get('PRM-revocation', 0):>5}"
                f"   {worst}"
            )

        print("-" * 78)
        print(
            f"batch: {verdicts['REJECT']} rejected, "
            f"{verdicts['WARN']} warned, {verdicts['PASS']} passed; "
            f"{totals['API']} API / {totals['APC']} APC / "
            f"{totals['PRM']} PRM findings total"
        )


if __name__ == "__main__":
    main()
