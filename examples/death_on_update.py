#!/usr/bin/env python3
"""“Death on update”: what breaks when the device framework changes.

The paper's introduction motivates SAINTDroid with update breakage:
"23% of Android apps behave differently after a framework update, and
around 50% of the Android updates have caused instability in
previously working apps".  This example takes one app through two
update scenarios:

* a device update from API 22 to API 23 — the app's bundled Apache
  HTTP client calls break (the real Android 6.0 removal), a Fragment
  hook starts firing, and the permission model shifts under the app;
* an app update from v1 to v2 — the developer guards one call and
  introduces a new unguarded one; the report diff shows exactly the
  regression.

Run with::

    python examples/death_on_update.py
"""

from repro import SaintDroid
from repro.apk import Apk, Component, ComponentKind, DexFile, Manifest
from repro.core import build_api_database, diff_reports, update_impact
from repro.core.aum import ApiUsageModeler
from repro.framework import FrameworkRepository
from repro.ir import ClassBuilder

PACKAGE = "com.demo.updates"


def activity():
    builder = ClassBuilder(
        f"{PACKAGE}.MainActivity", super_name="android.app.Activity"
    )
    on_create = builder.method("onCreate", "(android.os.Bundle)void")
    on_create.invoke_super(
        "android.app.Activity", "onCreate", "(android.os.Bundle)void"
    )
    on_create.return_void()
    builder.finish(on_create)
    return builder.build()


def http_client():
    builder = ClassBuilder(f"{PACKAGE}.LegacyNet")
    fetch = builder.method("fetch")
    fetch.invoke_virtual(
        "org.apache.http.client.HttpClient", "execute",
        "(org.apache.http.HttpRequest)org.apache.http.HttpResponse",
    )
    fetch.return_void()
    builder.finish(fetch)
    return builder.build()


def notes_fragment():
    builder = ClassBuilder(
        f"{PACKAGE}.NotesFragment", super_name="android.app.Fragment"
    )
    builder.empty_method("onAttach", "(android.content.Context)void")
    return builder.build()


def storage_user():
    builder = ClassBuilder(f"{PACKAGE}.Exporter")
    export = builder.method("export")
    export.invoke_virtual(
        "android.provider.MediaStore$Images$Media", "insertImage",
        "(android.content.ContentResolver,android.graphics.Bitmap,"
        "java.lang.String,java.lang.String)java.lang.String",
    )
    export.return_void()
    builder.finish(export)
    return builder.build()


def colors_screen(guarded):
    builder = ClassBuilder(f"{PACKAGE}.Screen")
    render = builder.method("render")
    if guarded:
        render.guarded_call(
            23, "android.content.Context", "getColorStateList",
            "(int)android.content.res.ColorStateList",
        )
    else:
        render.invoke_virtual(
            "android.content.Context", "getColorStateList",
            "(int)android.content.res.ColorStateList",
        )
    render.return_void()
    builder.finish(render)
    return builder.build()


def build_app(classes, label):
    manifest = Manifest(
        package=PACKAGE,
        min_sdk=16,
        target_sdk=22,
        permissions=("android.permission.WRITE_EXTERNAL_STORAGE",),
        components=(
            Component(f"{PACKAGE}.MainActivity", ComponentKind.ACTIVITY),
        ),
    )
    return Apk(
        manifest=manifest,
        dex_files=(DexFile("classes.dex", tuple(classes)),),
        label=label,
    )


def main() -> None:
    framework = FrameworkRepository()
    apidb = build_api_database(framework)

    # -- scenario 1: the DEVICE updates under the app -----------------
    app = build_app(
        [activity(), http_client(), notes_fragment(), storage_user()],
        "UpdateDemo",
    )
    modeler = ApiUsageModeler(framework, apidb)
    model = modeler.build(app)

    print("=== device update: API 22 -> 23 (Android 5.1 -> 6.0) ===")
    print(update_impact(model, apidb, 22, 23).describe())
    print()
    print("=== device update: API 23 -> 26 (no boundary crossed) ===")
    print(update_impact(model, apidb, 23, 26).describe())
    print()

    # -- scenario 2: the APP updates -----------------------------------
    detector = SaintDroid(framework, apidb)
    v1 = build_app([activity(), colors_screen(guarded=False)], "Demo v1")
    v2 = build_app(
        [activity(), colors_screen(guarded=True), http_client()],
        "Demo v2",
    )
    diff = diff_reports(detector.analyze(v1), detector.analyze(v2))
    print("=== app update: v1 -> v2 ===")
    print(f"verdict: {diff.summary()}"
          f"{' — REGRESSION' if diff.regressed else ''}")
    for mismatch in diff.fixed:
        print(f"  fixed:      {mismatch.describe()}")
    for mismatch in diff.introduced:
        print(f"  introduced: {mismatch.describe()}")


if __name__ == "__main__":
    main()
