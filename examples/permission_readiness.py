#!/usr/bin/env python3
"""Runtime-permission readiness audit.

Since API level 23, dangerous permissions are granted (and revoked) at
run time; apps built for the install-time model crash when a user
revokes a permission mid-flight (the paper's section II-C).  This
example audits three archetypes:

* **legacy app** — targets API 22, uses ``WRITE_EXTERNAL_STORAGE``:
  vulnerable to revocation on every device running 23+;
* **careless modern app** — targets 26, uses the camera, never
  implements ``onRequestPermissionsResult``: request mismatch;
* **well-behaved modern app** — targets 26 and implements the runtime
  protocol: clean.

It also demonstrates the *transitive* permission map: the legacy app
never calls a permission-enforcing API directly — the enforcement sits
one call deep inside the framework — yet the audit still finds it.

Run with::

    python examples/permission_readiness.py
"""

from repro import SaintDroid
from repro.apk import Apk, Component, ComponentKind, DexFile, Manifest
from repro.core import build_api_database
from repro.framework import FrameworkRepository
from repro.ir import ClassBuilder, MethodRef


def activity(package, extra=()):
    builder = ClassBuilder(
        f"{package}.MainActivity", super_name="android.app.Activity"
    )
    on_create = builder.method("onCreate", "(android.os.Bundle)void")
    on_create.invoke_super(
        "android.app.Activity", "onCreate", "(android.os.Bundle)void"
    )
    on_create.return_void()
    builder.finish(on_create)
    for method in extra:
        builder.add(method)
    return builder.build()


def make_app(package, label, target, classes, permissions):
    manifest = Manifest(
        package=package,
        min_sdk=16,
        target_sdk=target,
        permissions=tuple(permissions),
        components=(
            Component(f"{package}.MainActivity", ComponentKind.ACTIVITY),
        ),
    )
    return Apk(
        manifest=manifest,
        dex_files=(DexFile("classes.dex", tuple(classes)),),
        label=label,
    )


def legacy_app():
    """Targets 22; reaches ACCESS_FINE_LOCATION only *transitively*
    through Geocoder.getFromLocation."""
    package = "com.demo.legacy"
    geo = ClassBuilder(f"{package}.Locator")
    locate = geo.method("whereAmI")
    locate.invoke_virtual(
        "android.location.Geocoder", "getFromLocation",
        "(double,double,int)java.util.List",
    )
    locate.return_void()
    geo.finish(locate)
    return make_app(
        package, "LegacyMaps", 22,
        [activity(package), geo.build()],
        ["android.permission.ACCESS_FINE_LOCATION"],
    )


def careless_app():
    package = "com.demo.careless"
    cam = ClassBuilder(f"{package}.Capture")
    shoot = cam.method("shoot")
    shoot.invoke_virtual(
        "android.hardware.Camera", "open", "()android.hardware.Camera"
    )
    shoot.return_void()
    cam.finish(shoot)
    return make_app(
        package, "CarelessCamera", 26,
        [activity(package), cam.build()],
        ["android.permission.CAMERA"],
    )


def careful_app():
    package = "com.demo.careful"
    cam = ClassBuilder(f"{package}.Capture")
    shoot = cam.method("shoot")
    shoot.invoke_virtual(
        "android.hardware.Camera", "open", "()android.hardware.Camera"
    )
    shoot.return_void()
    cam.finish(shoot)

    aware = ClassBuilder(
        f"{package}.PermissionGate", super_name="android.app.Activity"
    )
    ask = aware.method("ask")
    ask.guarded_call(
        23, "android.app.Activity", "requestPermissions",
        "(java.lang.String[],int)void",
    )
    ask.return_void()
    aware.finish(ask)
    aware.empty_method(
        "onRequestPermissionsResult", "(int,java.lang.String[],int[])void"
    )
    return make_app(
        package, "CarefulCamera", 26,
        [activity(package), cam.build(), aware.build()],
        ["android.permission.CAMERA"],
    )


def main() -> None:
    framework = FrameworkRepository()
    apidb = build_api_database(framework)
    detector = SaintDroid(framework, apidb)

    # Show the transitive permission map in action first.
    geocode = MethodRef(
        "android.location.Geocoder", "getFromLocation",
        "(double,double,int)java.util.List",
    )
    print("permission map for Geocoder.getFromLocation:")
    print(f"  direct:     {sorted(apidb.permissions_for(geocode, deep=False)) or '(none)'}")
    print(f"  transitive: {sorted(apidb.permissions_for(geocode, deep=True))}")
    print()

    for apk in (legacy_app(), careless_app(), careful_app()):
        report = detector.analyze(apk)
        permission_findings = [
            m for m in report.mismatches if m.kind.is_permission
        ]
        print(f"{apk.name} (targetSdk {apk.manifest.target_sdk}):")
        if not permission_findings:
            print("  ready for runtime permissions — no findings")
        for mismatch in permission_findings:
            print(f"  {mismatch.describe()}")
        print()

    print("remediation: implement requestPermissions/"
          "onRequestPermissionsResult and raise targetSdkVersion; "
          "revocation-prone apps must also handle SecurityException.")


if __name__ == "__main__":
    main()
