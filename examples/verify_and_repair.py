#!/usr/bin/env python3
"""The full triage pipeline: detect → dynamically verify → repair.

Implements the workflow the paper sketches as future work (sections VI
and VIII): the conservative static detector casts a wide net, the
dynamic verifier executes the app on concrete device profiles to
confirm or refute each finding, and the repair synthesizer rewrites
the package so the confirmed crashes can no longer happen.

Run with::

    python examples/verify_and_repair.py
"""

from repro import SaintDroid
from repro.core import build_api_database
from repro.dynamic import DynamicVerifier, DeviceProfile, Interpreter
from repro.framework import FrameworkRepository
from repro.framework.permissions import DANGEROUS_PERMISSIONS
from repro.repair import RepairEngine
from repro.workload.appgen import ApiPicker, AppForge


def build_buggy_app(apidb, picker):
    """An app with two real crashes, one benign pattern that static
    analysis flags anyway, and one unfixable callback issue."""
    forge = AppForge(
        "com.demo.buggy", "BuggyApp",
        min_sdk=19, target_sdk=26, seed=404,
        apidb=apidb, picker=picker,
    )
    forge.add_direct_issue()              # real crash #1
    forge.add_permission_request_issue()  # real crash #2
    forge.add_anonymous_guard_trap()      # safe, but statically flagged
    forge.add_callback_issue(modeled=False)  # real, but not code-fixable
    forge.add_filler(kloc=0.5)
    return forge.build().apk


def main() -> None:
    framework = FrameworkRepository()
    apidb = build_api_database(framework)
    picker = ApiPicker(apidb)
    apk = build_buggy_app(apidb, picker)

    # 1. static detection ------------------------------------------------
    detector = SaintDroid(framework, apidb)
    report = detector.analyze(apk)
    print(f"static analysis: {len(report.mismatches)} finding(s)")
    for mismatch in report.mismatches:
        print(f"  - {mismatch.describe()}")

    # 2. dynamic verification ---------------------------------------------
    verifier = DynamicVerifier(apk, apidb)
    verification = verifier.verify_all(report)
    print(
        f"\ndynamic verification: {len(verification.confirmed)} confirmed, "
        f"{len(verification.refuted)} refuted (static false alarm), "
        f"{len(verification.static_only)} not dynamically observable"
    )
    for item in verification.verified:
        print(f"  [{item.verdict.value}] {item.mismatch.kind.value} "
              f"@ {item.mismatch.location}")

    # 3. repair the surviving findings ---------------------------------------
    engine = RepairEngine(apidb)
    result = engine.repair(apk, verification.surviving_mismatches())
    print(f"\nrepair: {len(result.code_changes)} code change(s), "
          f"{len(result.advisories)} advisory(ies)")
    for action in result.actions:
        print(f"  [{action.kind.value}] {action.description}")

    # 4. prove it: re-analyze and re-execute ------------------------------------
    residual = detector.analyze(result.repaired).mismatches
    print(f"\nre-analysis of the repaired app: {len(residual)} finding(s)")
    for mismatch in residual:
        print(f"  - (advisory remains) {mismatch.describe()}")

    post_verifier = DynamicVerifier(result.repaired, apidb)
    crash_free = True
    for level in (19, 21, 23, 26, 29):
        device = DeviceProfile(
            api_level=level,
            granted_permissions=frozenset(DANGEROUS_PERMISSIONS),
        )
        crashes = post_verifier.observed_crashes(device)
        if crashes:
            crash_free = False
            print(f"  API {level}: {len(crashes)} crash(es) remain!")
    if crash_free:
        print("re-execution on API 19/21/23/26/29: no crashes — the "
              "repaired app is safe on every supported level.")


if __name__ == "__main__":
    main()
