#!/usr/bin/env python3
"""Quickstart: build an app package, analyze it, read the report.

Recreates the paper's Listing 1 — an app with ``minSdkVersion 21`` and
``targetSdkVersion 28`` that calls ``Context.getColorStateList`` (an
API introduced at level 23) without a version guard — and shows how
SAINTDroid pinpoints the device levels on which it crashes, while the
correctly guarded variant stays silent.

Run with::

    python examples/quickstart.py
"""

from repro import SaintDroid, render_report, save_apk, load_apk
from repro.apk import Component, ComponentKind, DexFile, Manifest, Apk
from repro.ir import ClassBuilder


def build_listing1_app() -> Apk:
    """The vulnerable app from the paper's Listing 1."""
    activity = ClassBuilder(
        "com.example.listing1.MainActivity",
        super_name="android.app.Activity",
    )

    # onCreate: super call, then the *unguarded* API-23 invocation.
    on_create = activity.method("onCreate", "(android.os.Bundle)void")
    on_create.invoke_super(
        "android.app.Activity", "onCreate", "(android.os.Bundle)void"
    )
    on_create.invoke_virtual(
        "com.example.listing1.MainActivity",
        "getColorStateList",
        "(int)android.content.res.ColorStateList",
    )
    on_create.return_void()
    activity.finish(on_create)

    # A second method shows the safe idiom: the same API wrapped in
    # ``if (Build.VERSION.SDK_INT >= 23) { ... }``.
    safe = activity.method("applyColorsSafely")
    safe.guarded_call(
        23,
        "com.example.listing1.MainActivity",
        "getColorStateList",
        "(int)android.content.res.ColorStateList",
    )
    safe.return_void()
    activity.finish(safe)

    manifest = Manifest(
        package="com.example.listing1",
        min_sdk=21,
        target_sdk=28,
        components=(
            Component(
                "com.example.listing1.MainActivity",
                ComponentKind.ACTIVITY,
            ),
        ),
    )
    return Apk(
        manifest=manifest,
        dex_files=(DexFile("classes.dex", (activity.build(),)),),
        label="Listing1Demo",
    )


def main() -> None:
    apk = build_listing1_app()

    # Packages serialize to .sapk (JSON) files and round-trip exactly.
    save_apk(apk, "/tmp/listing1.sapk", indent=2)
    apk = load_apk("/tmp/listing1.sapk")
    print(f"built and reloaded: {apk}\n")

    # First construction of SaintDroid mines the framework revision
    # history into the API database (a few hundred ms); the database
    # is cached and reused for every subsequent analysis.
    detector = SaintDroid()
    report = detector.analyze(apk)

    print(render_report(report, verbose=True))
    print()

    # The single finding is the unguarded call; the guarded variant in
    # applyColorsSafely produced no report.
    assert len(report.mismatches) == 1
    mismatch = report.mismatches[0]
    assert mismatch.location.name == "onCreate"
    assert (mismatch.missing_levels.lo, mismatch.missing_levels.hi) == (21, 22)
    print("OK: the unguarded call is flagged for device levels 21-22,")
    print("    and the guarded call in applyColorsSafely is not.")


if __name__ == "__main__":
    main()
