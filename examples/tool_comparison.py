#!/usr/bin/env python3
"""Side-by-side tool comparison on one deliberately tricky app.

Forges a single app containing the five mechanisms that separate the
tools in the paper's Table II, runs SAINTDroid, CID, CIDER, and Lint
over it, and explains each delta:

* a guard in the *caller* protecting an API call in a *callee*
  (context-insensitive tools false-alarm);
* an API inherited through an app subclass (first-level tools miss);
* an issue inside a bundled third-party library (Lint's source scope
  misses);
* a callback on a class outside CIDER's four hand-built models;
* a dangerous-permission use without the runtime request protocol
  (only SAINTDroid models permissions at all).

Run with::

    python examples/tool_comparison.py
"""

from repro import Cid, Cider, Lint, SaintDroid
from repro.core import build_api_database
from repro.framework import FrameworkRepository
from repro.workload.appgen import ApiPicker, AppForge

EXPLANATIONS = {
    "trap-caller-guard": (
        "guarded at the call site in the caller — safe; flagged only "
        "by tools without inter-procedural guard tracking"
    ),
    "inherited": (
        "API reached through an app subclass receiver — invisible to "
        "tools that never resolve the framework hierarchy"
    ),
    "library": (
        "issue inside a bundled library — outside Lint's source scope"
    ),
    "callback-unmodeled": (
        "callback on a class missing from CIDER's four PI-graph models"
    ),
    "permission-request": (
        "dangerous-permission use without onRequestPermissionsResult — "
        "only SAINTDroid analyzes the runtime permission system"
    ),
}


def main() -> None:
    framework = FrameworkRepository()
    apidb = build_api_database(framework)
    picker = ApiPicker(apidb)

    forge = AppForge(
        "com.demo.tricky", "TrickyApp",
        min_sdk=19, target_sdk=26, seed=2022,
        apidb=apidb, picker=picker,
    )
    trap = forge.add_caller_guard_trap()
    inherited = forge.add_inherited_issue()
    library = forge.add_library_issue()
    callback = forge.add_callback_issue(modeled=False)
    permission = forge.add_permission_request_issue()[0]
    forge.add_filler(kloc=1.0)
    forged = forge.build()

    tools = [
        SaintDroid(framework, apidb),
        Cid(framework, apidb),
        Cider(framework, apidb),
        Lint(framework, apidb),
    ]

    findings = {}
    for tool in tools:
        report = tool.analyze(forged.apk)
        findings[tool.name] = report.keys
        kinds = report.by_kind()
        print(f"{tool.name:<12} reported {sum(kinds.values())} findings: "
              f"{kinds}")

    rows = [
        ("caller-guard trap (non-issue)", trap.fp_keys[0],
         EXPLANATIONS["trap-caller-guard"]),
        ("inherited API issue", inherited.key, EXPLANATIONS["inherited"]),
        ("library issue", library.key, EXPLANATIONS["library"]),
        ("unmodeled callback issue", callback.key,
         EXPLANATIONS["callback-unmodeled"]),
        ("permission request issue", permission.key,
         EXPLANATIONS["permission-request"]),
    ]

    print()
    header = f"{'scenario':<32}" + "".join(
        f"{name:<12}" for name in findings
    )
    print(header)
    print("-" * len(header))
    for label, key, _ in rows:
        cells = "".join(
            f"{'flags' if key in keys else '—':<12}"
            for keys in findings.values()
        )
        print(f"{label:<32}{cells}")

    print("\nwhy the tools disagree:")
    for label, _, why in rows:
        print(f"  * {label}: {why}")

    saint = findings["SAINTDroid"]
    assert inherited.key in saint
    assert library.key in saint
    assert callback.key in saint
    assert permission.key in saint
    assert trap.fp_keys[0] not in saint
    print("\nOK: SAINTDroid detects all four seeded issues and does not "
          "trip on the guard trap.")


if __name__ == "__main__":
    main()
