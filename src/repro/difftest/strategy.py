"""Strategy layer: seed-driven planning of random well-formed apps.

A fuzz campaign never builds apps directly — it builds
:class:`AppPlan` values first.  A plan is plain data (JSON
round-trippable), and :func:`materialize` turns it into a real
:class:`~repro.workload.appgen.ForgedApp` *deterministically*: the
forge RNG is reseeded per scenario from ``(plan seed, scenario
nonce)``, so deleting one scenario from a plan never shifts the API
choices of the scenarios that remain.  That stability is what makes
greedy shrinking (``difftest.shrink``) converge instead of chasing a
moving target.

Beyond the forge's own scenario catalog, this module contributes guard
shapes the hand-seeded corpus never exercises — inverted guards,
equality guards, upper-bound guards, nested guards, and dead data
branches — chosen so each off-by-one or dropped-edge mutant in
``difftest.mutation`` has at least one scenario that exposes it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace

from ..apk.manifest import MAX_API_LEVEL
from ..core.apidb import ApiDatabase, ApiEntry
from ..core.kinds import scenario_contributions
from ..ir.builder import ClassBuilder
from ..ir.instructions import CmpOp
from ..ir.types import MethodRef
from ..workload.appgen import ApiPicker, AppForge, ForgedApp
from ..workload.groundtruth import SeededIssue, SeededTrap, Trait

__all__ = [
    "ScenarioSpec",
    "AppPlan",
    "ScenarioTrace",
    "ALL_KINDS",
    "PERMISSION_KINDS",
    "plan_apps",
    "materialize",
]


@dataclass(frozen=True)
class ScenarioSpec:
    """One planned scenario: a kind plus a reseeding nonce."""

    kind: str
    nonce: int

    def to_dict(self) -> dict:
        return {"kind": self.kind, "nonce": self.nonce}

    @staticmethod
    def from_dict(doc: dict) -> "ScenarioSpec":
        return ScenarioSpec(kind=doc["kind"], nonce=doc["nonce"])


@dataclass(frozen=True)
class AppPlan:
    """A recipe for one app, reproducible from data alone."""

    index: int
    package: str
    label: str
    min_sdk: int
    target_sdk: int
    seed: int
    scenarios: tuple[ScenarioSpec, ...]
    filler_kloc: float = 0.0

    def without(self, position: int) -> "AppPlan":
        """The same plan minus the scenario at ``position``."""
        kept = tuple(
            spec
            for i, spec in enumerate(self.scenarios)
            if i != position
        )
        return replace(self, scenarios=kept)

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "package": self.package,
            "label": self.label,
            "minSdk": self.min_sdk,
            "targetSdk": self.target_sdk,
            "seed": self.seed,
            "fillerKloc": self.filler_kloc,
            "scenarios": [spec.to_dict() for spec in self.scenarios],
        }

    @staticmethod
    def from_dict(doc: dict) -> "AppPlan":
        return AppPlan(
            index=doc["index"],
            package=doc["package"],
            label=doc["label"],
            min_sdk=doc["minSdk"],
            target_sdk=doc["targetSdk"],
            seed=doc["seed"],
            filler_kloc=doc.get("fillerKloc", 0.0),
            scenarios=tuple(
                ScenarioSpec.from_dict(s) for s in doc["scenarios"]
            ),
        )


@dataclass(frozen=True)
class ScenarioTrace:
    """What one planned scenario actually seeded during materialize.

    The agreement-study harness (``eval.compare``) joins per-tool
    findings back to the *scenario* that seeded them; this record is
    the join key: the ground-truth issue keys and trap FP keys the
    builder appended, or ``skipped=True`` when the builder refused the
    configuration (no fitting API, permission-posture conflict)."""

    kind: str
    issue_keys: tuple[tuple, ...]
    trap_keys: tuple[tuple, ...]
    skipped: bool = False


# ---------------------------------------------------------------------------
# Custom guard-shape scenarios (beyond the forge catalog)
# ---------------------------------------------------------------------------


def _issue_key(forge: AppForge, caller: MethodRef, api: ApiEntry) -> tuple:
    return (
        "API",
        forge.label,
        caller,
        (api.class_name, api.name, api.descriptor),
    )


def _single_method_class(
    forge: AppForge, stem: str
) -> tuple[ClassBuilder, str]:
    name = forge.next_name(stem)
    return ClassBuilder(name), name


def _legacy_guard(forge: AppForge) -> None:
    """``if (SDK_INT < last+1) { removedApi() }`` via an inverted
    jump — the fall-through edge refines with ``LT``, the shape that
    exposes an off-by-one in ``refine(LT, c)``."""
    api = forge.picker.removed_api(forge.rng, forge.min_sdk)
    last = api.lifetime[1]
    builder, name = _single_method_class(forge, "LegacyPath")
    method = builder.method("render")
    skip = method.fresh_label("skip_")
    method.sdk_int(0)
    method.const_int(1, last + 1)
    method.if_cmp(CmpOp.GE, 0, 1, skip)
    method.invoke_virtual(api.class_name, api.name, api.descriptor)
    method.label(skip)
    method.return_void()
    builder.finish(method)
    forge.add_class(builder.build())
    caller = MethodRef(name, "render", "()void")
    forge.truth.traps.append(
        SeededTrap(
            fp_keys=(_issue_key(forge, caller, api),),
            trait=Trait.TRAP_GUARDED_DIRECT,
            description=(
                f"{name}.render calls removed {api.ref} only below "
                f"level {last + 1} (inverted-jump lower guard)"
            ),
        )
    )


def _max_guard(forge: AppForge) -> None:
    """``if (SDK_INT <= last) { removedApi() }`` — the canonical
    forward-compat guard; its fall-through refines with ``LE``."""
    api = forge.picker.removed_api(forge.rng, forge.min_sdk)
    builder, name = _single_method_class(forge, "MaxGuard")
    method = builder.method("render")
    method.guarded_call_max(
        api.lifetime[1], api.class_name, api.name, api.descriptor
    )
    method.return_void()
    builder.finish(method)
    forge.add_class(builder.build())
    caller = MethodRef(name, "render", "()void")
    forge.truth.traps.append(
        SeededTrap(
            fp_keys=(_issue_key(forge, caller, api),),
            trait=Trait.TRAP_GUARDED_DIRECT,
            description=(
                f"{name}.render calls removed {api.ref} guarded at "
                f"or below level {api.lifetime[1]}"
            ),
        )
    )


def _gt_guard(forge: AppForge) -> None:
    """``if (SDK_INT > intro-1) { newApi() }`` — fall-through refines
    with ``GT``, exposing an off-by-one in ``refine(GT, c)``."""
    api = forge.picker.new_api(
        forge.rng, forge.min_sdk + 1, MAX_API_LEVEL
    )
    intro = api.lifetime[0]
    builder, name = _single_method_class(forge, "GtGuard")
    method = builder.method("render")
    skip = method.fresh_label("skip_")
    method.sdk_int(0)
    method.const_int(1, intro - 1)
    method.if_cmp(CmpOp.LE, 0, 1, skip)
    method.invoke_virtual(api.class_name, api.name, api.descriptor)
    method.label(skip)
    method.return_void()
    builder.finish(method)
    forge.add_class(builder.build())
    caller = MethodRef(name, "render", "()void")
    forge.truth.traps.append(
        SeededTrap(
            fp_keys=(_issue_key(forge, caller, api),),
            trait=Trait.TRAP_GUARDED_DIRECT,
            description=(
                f"{name}.render calls {api.ref} guarded strictly "
                f"above level {intro - 1}"
            ),
        )
    )


def _eq_guard(forge: AppForge) -> None:
    """``if (SDK_INT == intro) { newApi() }`` — fall-through refines
    with ``EQ``; a detector that ignores equality refinement reports
    every level below the introduction."""
    api = forge.picker.new_api(
        forge.rng, forge.min_sdk + 1, MAX_API_LEVEL
    )
    intro = api.lifetime[0]
    builder, name = _single_method_class(forge, "EqGuard")
    method = builder.method("render")
    skip = method.fresh_label("skip_")
    method.sdk_int(0)
    method.const_int(1, intro)
    method.if_cmp(CmpOp.NE, 0, 1, skip)
    method.invoke_virtual(api.class_name, api.name, api.descriptor)
    method.label(skip)
    method.return_void()
    builder.finish(method)
    forge.add_class(builder.build())
    caller = MethodRef(name, "render", "()void")
    forge.truth.traps.append(
        SeededTrap(
            fp_keys=(_issue_key(forge, caller, api),),
            trait=Trait.TRAP_GUARDED_DIRECT,
            description=(
                f"{name}.render calls {api.ref} only when SDK_INT "
                f"equals {intro}"
            ),
        )
    )


def _ne_guard(forge: AppForge) -> None:
    """``if (SDK_INT != minSdk) { newApi() }`` where the API appears
    exactly at ``minSdk+1`` — the one shape where ``NE`` refinement
    (endpoint shaving) changes the verdict.  Raises ``LookupError``
    when no API is introduced exactly there; the planner treats that
    as a skip."""
    api = forge.picker.new_api(
        forge.rng, forge.min_sdk + 1, forge.min_sdk + 1
    )
    builder, name = _single_method_class(forge, "NeGuard")
    method = builder.method("render")
    skip = method.fresh_label("skip_")
    method.sdk_int(0)
    method.const_int(1, forge.min_sdk)
    method.if_cmp(CmpOp.EQ, 0, 1, skip)
    method.invoke_virtual(api.class_name, api.name, api.descriptor)
    method.label(skip)
    method.return_void()
    builder.finish(method)
    forge.add_class(builder.build())
    caller = MethodRef(name, "render", "()void")
    forge.truth.traps.append(
        SeededTrap(
            fp_keys=(_issue_key(forge, caller, api),),
            trait=Trait.TRAP_GUARDED_DIRECT,
            description=(
                f"{name}.render skips {api.ref} exactly on level "
                f"{forge.min_sdk} (NE endpoint guard)"
            ),
        )
    )


def _nested_guard(forge: AppForge) -> None:
    """Two nested lower-bound guards protecting two APIs — the join
    at the inner merge point must keep the outer refinement."""
    outer = forge.picker.new_api(
        forge.rng, forge.min_sdk + 1, MAX_API_LEVEL
    )
    inner = forge.picker.new_api(
        forge.rng, outer.lifetime[0], MAX_API_LEVEL
    )
    builder, name = _single_method_class(forge, "NestedGuard")
    method = builder.method("render")
    end_outer = method.fresh_label("end_outer_")
    end_inner = method.fresh_label("end_inner_")
    method.sdk_int(0)
    method.const_int(1, outer.lifetime[0])
    method.if_cmp(CmpOp.LT, 0, 1, end_outer)
    method.sdk_int(2)
    method.const_int(3, inner.lifetime[0])
    method.if_cmp(CmpOp.LT, 2, 3, end_inner)
    method.invoke_virtual(inner.class_name, inner.name, inner.descriptor)
    method.label(end_inner)
    method.invoke_virtual(outer.class_name, outer.name, outer.descriptor)
    method.label(end_outer)
    method.return_void()
    builder.finish(method)
    forge.add_class(builder.build())
    caller = MethodRef(name, "render", "()void")
    forge.truth.traps.append(
        SeededTrap(
            fp_keys=(
                _issue_key(forge, caller, inner),
                _issue_key(forge, caller, outer),
            ),
            trait=Trait.TRAP_GUARDED_DIRECT,
            description=(
                f"{name}.render nests a level-{inner.lifetime[0]} "
                f"guard inside a level-{outer.lifetime[0]} guard"
            ),
        )
    )


def _inverted_guard(forge: AppForge) -> None:
    """``if (SDK_INT < intro) { newApi() }`` — the guard protects the
    *wrong* branch, so this is a true issue every detector should
    report and the interpreter confirms below the introduction."""
    api = forge.picker.new_api(
        forge.rng, forge.min_sdk + 1, MAX_API_LEVEL
    )
    intro = api.lifetime[0]
    builder, name = _single_method_class(forge, "InvertedGuard")
    method = builder.method("render")
    skip = method.fresh_label("skip_")
    method.sdk_int(0)
    method.const_int(1, intro)
    method.if_cmp(CmpOp.GE, 0, 1, skip)
    method.invoke_virtual(api.class_name, api.name, api.descriptor)
    method.label(skip)
    method.return_void()
    builder.finish(method)
    forge.add_class(builder.build())
    caller = MethodRef(name, "render", "()void")
    forge.truth.issues.append(
        SeededIssue(
            key=_issue_key(forge, caller, api),
            kind="API",
            trait=Trait.DIRECT,
            description=(
                f"{name}.render calls {api.ref} on the levels *below* "
                f"{intro} — the guard is inverted"
            ),
        )
    )


def _dead_code(forge: AppForge) -> None:
    """A newer-API call behind a constant-false data branch —
    statically reachable (data guards are not constant-folded),
    dynamically dead.  An expected static false alarm by design."""
    api = forge.picker.new_api(
        forge.rng, forge.min_sdk + 1, MAX_API_LEVEL
    )
    builder, name = _single_method_class(forge, "DeadPath")
    method = builder.method("render")
    skip = method.fresh_label("skip_")
    method.const_int(0, 1)
    method.if_cmpz(CmpOp.NE, 0, skip)
    method.invoke_virtual(api.class_name, api.name, api.descriptor)
    method.label(skip)
    method.return_void()
    builder.finish(method)
    forge.add_class(builder.build())
    caller = MethodRef(name, "render", "()void")
    forge.truth.traps.append(
        SeededTrap(
            fp_keys=(_issue_key(forge, caller, api),),
            trait=Trait.TRAP_DEAD_CODE,
            description=(
                f"{name}.render calls {api.ref} behind a constant-"
                f"false data branch (dynamically dead)"
            ),
        )
    )


# ---------------------------------------------------------------------------
# Scenario registry
# ---------------------------------------------------------------------------

_BUILDERS = {
    # forge-native scenarios
    "direct": lambda f: f.add_direct_issue(),
    "guarded-direct": lambda f: f.add_guarded_direct(),
    "caller-guard": lambda f: f.add_caller_guard_trap(),
    "helper-guard": lambda f: f.add_helper_guard_trap(),
    "anonymous-guard": lambda f: f.add_anonymous_guard_trap(),
    "inherited": lambda f: f.add_inherited_issue(),
    "library": lambda f: f.add_library_issue(),
    "secondary-dex": lambda f: f.add_secondary_dex_issue(),
    "external-dynamic": lambda f: f.add_external_dynamic_issue(),
    "forward-removed": lambda f: f.add_forward_removed_issue(),
    "callback-modeled": lambda f: f.add_callback_issue(modeled=True),
    "callback-unmodeled": lambda f: f.add_callback_issue(modeled=False),
    "callback-anonymous": lambda f: f.add_callback_issue(
        modeled=False, anonymous=True
    ),
    "permission-request": lambda f: f.add_permission_request_issue(),
    "permission-request-deep": lambda f: f.add_permission_request_issue(
        deep=True
    ),
    "permission-revocation": lambda f: f.add_permission_revocation_issue(),
    "permission-protocol": lambda f: f.implement_permission_protocol(),
    # difftest-specific guard shapes
    "legacy-guard": _legacy_guard,
    "max-guard": _max_guard,
    "gt-guard": _gt_guard,
    "eq-guard": _eq_guard,
    "ne-guard": _ne_guard,
    "nested-guard": _nested_guard,
    "inverted-guard": _inverted_guard,
    "dead-code": _dead_code,
}

# Registry-contributed scenarios: each registered mismatch kind may
# ship builders of its own (SEM does).  Appended after the static
# table in kind-registration order, which — like the table order — is
# part of the planning determinism contract.
for _scenario_name, _scenario_builder in scenario_contributions():
    _BUILDERS.setdefault(_scenario_name, _scenario_builder)

#: Stable kind order — planning iterates this, so the order is part of
#: the determinism contract.
ALL_KINDS: tuple[str, ...] = tuple(_BUILDERS)

#: Kinds that constrain or consume the app's permission posture; a
#: plan carries at most one of these.
PERMISSION_KINDS = frozenset(
    {
        "permission-request",
        "permission-request-deep",
        "permission-revocation",
        "permission-protocol",
    }
)

#: Kinds requiring a pre-23 target (install-time permission model).
_LEGACY_TARGET_KINDS = frozenset({"permission-revocation"})

#: Kinds requiring a post-23 target (runtime permission model).
_RUNTIME_TARGET_KINDS = frozenset(
    {"permission-request", "permission-request-deep"}
)


# ---------------------------------------------------------------------------
# Planning
# ---------------------------------------------------------------------------

#: Per-app seed stride, matching the corpus generator's idiom.
_APP_SEED_STRIDE = 1_000_003
#: Per-scenario reseed mixing primes (see :func:`materialize`).
_SCENARIO_PRIME = 7919
_NONCE_PRIME = 104_729
_FILLER_NONCE = 999_983


def plan_apps(
    seed: int, n_apps: int, *, coverage: bool = True
) -> list[AppPlan]:
    """Plan ``n_apps`` apps deterministically from ``seed``.

    With ``coverage=True`` (the default) the first ``len(ALL_KINDS)``
    plans are single-scenario coverage apps — one per kind, at fixed
    SDK bounds — so every scenario kind appears in every campaign
    regardless of ``n_apps``; the remainder are random mixes.
    """
    rng = random.Random(seed)
    plans: list[AppPlan] = []

    def _plan(index: int, min_sdk: int, target_sdk: int,
              kinds: list[str], filler: float) -> AppPlan:
        return AppPlan(
            index=index,
            package=f"com.difftest.app{index:04d}",
            label=f"DiffApp{index:04d}",
            min_sdk=min_sdk,
            target_sdk=target_sdk,
            seed=seed * _APP_SEED_STRIDE + index,
            scenarios=tuple(
                ScenarioSpec(kind=kind, nonce=i)
                for i, kind in enumerate(kinds)
            ),
            filler_kloc=filler,
        )

    if coverage:
        for kind in ALL_KINDS:
            if len(plans) >= n_apps:
                break
            target = 22 if kind in _LEGACY_TARGET_KINDS else 26
            plans.append(_plan(len(plans), 22, target, [kind], 0.0))

    while len(plans) < n_apps:
        min_sdk = rng.randint(16, 26)
        target_sdk = rng.randint(max(min_sdk, 21), MAX_API_LEVEL)
        allowed = [
            kind
            for kind in ALL_KINDS
            if not (
                (kind in _LEGACY_TARGET_KINDS and target_sdk >= 23)
                or (kind in _RUNTIME_TARGET_KINDS and target_sdk < 23)
            )
        ]
        n_scenarios = rng.randint(2, 6)
        kinds: list[str] = []
        for _ in range(n_scenarios):
            kind = rng.choice(allowed)
            if kind in PERMISSION_KINDS:
                if any(k in PERMISSION_KINDS for k in kinds):
                    continue
            kinds.append(kind)
        filler = rng.choice([0.0, 0.0, 0.5, 1.0, 2.0])
        plans.append(
            _plan(len(plans), min_sdk, target_sdk, kinds, filler)
        )
    return plans


def materialize(
    plan: AppPlan,
    apidb: ApiDatabase | None = None,
    picker: ApiPicker | None = None,
    *,
    trace: list[ScenarioTrace] | None = None,
) -> ForgedApp:
    """Build the app a plan describes.

    Scenario builders may refuse a configuration (``LookupError`` when
    the API catalog has no fitting entry, ``ValueError`` when the
    app's permission posture conflicts); refused scenarios are skipped
    silently — the plan remains valid, just smaller.  Each scenario
    runs under its own RNG stream derived from ``(plan.seed,
    spec.nonce)`` so materializing ``plan.without(i)`` reproduces the
    surviving scenarios byte-for-byte.

    ``trace``, when given, receives one :class:`ScenarioTrace` per
    planned scenario recording exactly which ground-truth issue keys
    and trap FP keys that scenario seeded — the attribution the
    agreement study uses to score tools *per scenario kind* without
    re-deriving builder semantics.
    """
    forge = AppForge(
        plan.package,
        plan.label,
        min_sdk=plan.min_sdk,
        target_sdk=plan.target_sdk,
        seed=plan.seed,
        apidb=apidb,
        picker=picker,
    )
    forge.preseed_pools()
    for spec in plan.scenarios:
        forge.rng.seed(
            plan.seed * _SCENARIO_PRIME + spec.nonce * _NONCE_PRIME
        )
        issues_before = len(forge.truth.issues)
        traps_before = len(forge.truth.traps)
        try:
            _BUILDERS[spec.kind](forge)
        except (LookupError, ValueError):
            if trace is not None:
                trace.append(
                    ScenarioTrace(
                        kind=spec.kind,
                        issue_keys=(),
                        trap_keys=(),
                        skipped=True,
                    )
                )
            continue
        if trace is not None:
            trace.append(
                ScenarioTrace(
                    kind=spec.kind,
                    issue_keys=tuple(
                        issue.key
                        for issue in forge.truth.issues[issues_before:]
                    ),
                    trap_keys=tuple(
                        key
                        for trap in forge.truth.traps[traps_before:]
                        for key in trap.fp_keys
                    ),
                )
            )
    if plan.filler_kloc > 0:
        forge.rng.seed(
            plan.seed * _SCENARIO_PRIME + _FILLER_NONCE * _NONCE_PRIME
        )
        forge.add_filler(plan.filler_kloc)
    return forge.build()
