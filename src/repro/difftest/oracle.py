"""The differential oracle: static verdicts vs concrete execution.

For one app the oracle runs both directions of the CiD/CIDER
crash-oracle methodology:

* **finding direction** — every static mismatch is replayed through
  the :class:`~repro.dynamic.verifier.DynamicVerifier`; a confirmed
  crash is agreement, a refuted finding is a static false positive
  unless the app's ground truth marks the pattern as a false positive
  *by design* (the anonymous-guard blind spot, dead data branches);
* **crash direction** — the interpreter sweeps every supported device
  level (all permissions granted for the missing-method sweep, none
  granted for the permission sweep) and every crash must be explained
  by a static finding covering that level, otherwise it is a static
  false negative.

Both directions drive only *root* entry points — methods no other app
method invokes — because driving a guarded call's callee directly
would manufacture crashes the app can never reach, and the oracle must
not report those as detector misses.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..apk.package import Apk
from ..core.analysis_report import AnalysisReport
from ..core.kinds import registered_sweeps
from ..core.mismatch import Mismatch
from ..dynamic.device import DeviceProfile
from ..dynamic.interpreter import Crash, CrashKind
from ..dynamic.verifier import DynamicVerifier, Verdict
from ..ir.instructions import Invoke
from ..ir.types import MethodRef, is_anonymous_class
from ..workload.appgen import ForgedApp
from ..workload.groundtruth import Trait

__all__ = [
    "Classification",
    "OracleRecord",
    "DifferentialOracle",
    "DISAGREEMENTS",
]

#: The runtime-permission result hook; an app implementing it handles
#: denial by protocol, so a zero-grant ``SecurityException`` is user
#: choice, not an incompatibility the static detector missed.
_PERMISSION_HOOK_SIGNATURE = (
    "onRequestPermissionsResult(int,java.lang.String[],int[])void"
)

#: Trap traits whose static findings are expected to be refuted
#: dynamically — disagreement by design, not a detector bug.
_EXPECTED_FP_TRAITS = frozenset(
    {Trait.TRAP_ANONYMOUS_GUARD, Trait.TRAP_DEAD_CODE}
)


class Classification(enum.Enum):
    """Verdict for one static finding or one observed crash."""

    #: Static finding, dynamically confirmed by the predicted crash.
    AGREE_CONFIRMED = "agree-confirmed"
    #: Static finding with no observable crash by nature (APC: the
    #: failure mode is a hook that silently never runs).
    AGREE_STATIC_ONLY = "agree-static-only"
    #: Refuted finding on a pattern ground truth marks as a designed
    #: blind spot (anonymous guards, dead data branches).
    EXPECTED_STATIC_FP = "expected-static-fp"
    #: Finding whose location is not in the APK (externally loaded
    #: code) — neither side can observe it.
    UNOBSERVABLE = "unobservable"
    #: Refuted static finding: the detector over-reported.
    STATIC_FP = "static-fp"
    #: Observed crash no static finding explains: the detector
    #: under-reported.
    STATIC_FN = "static-fn"
    #: The static analysis itself failed on this app.
    ANALYSIS_FAILURE = "analysis-failure"


#: Classifications that constitute a detector bug.
DISAGREEMENTS = frozenset(
    {
        Classification.STATIC_FP,
        Classification.STATIC_FN,
        Classification.ANALYSIS_FAILURE,
    }
)


@dataclass(frozen=True)
class OracleRecord:
    """One classified finding or crash, with provenance."""

    app: str
    classification: Classification
    kind: str
    subject: str
    detail: str = ""
    level: int | None = None

    @property
    def signature(self) -> tuple[str, str, str]:
        """Stable identity of the *disagreement* — deliberately free
        of device levels and of generated class names (counter-derived
        names shift when the shrinker deletes scenarios)."""
        return (self.classification.value, self.kind, self.subject)

    def to_dict(self) -> dict:
        return {
            "app": self.app,
            "classification": self.classification.value,
            "kind": self.kind,
            "subject": self.subject,
            "level": self.level,
            "detail": self.detail,
        }


def _subject_of(mismatch: Mismatch) -> str:
    if mismatch.kind.is_permission:
        return mismatch.permission or ""
    subject = mismatch.subject
    return f"{subject.class_name}.{subject.name}{subject.descriptor}"


def _crash_subject(crash: Crash) -> str:
    if crash.kind is CrashKind.PERMISSION_DENIED:
        return crash.permission or ""
    api = crash.api
    return f"{api.class_name}.{api.name}{api.descriptor}" if api else ""


class _RootedVerifier(DynamicVerifier):
    """A verifier that drives only root entry points.

    The stock verifier drives *every* concrete method, which is right
    for triaging a single report but wrong for an oracle: directly
    invoking a callee whose guard lives in its caller manufactures a
    crash no execution of the app produces, and the oracle would then
    blame the detector for not predicting it.
    """

    def entry_points(self) -> tuple[MethodRef, ...]:
        invoked: set[tuple[str, str]] = set()
        for clazz in self._apk.all_classes:
            for method in clazz.methods:
                if method.body is None:
                    continue
                for instruction in method.body.instructions:
                    if isinstance(instruction, Invoke):
                        callee = instruction.method
                        invoked.add((callee.class_name, callee.signature))
        out = []
        for clazz in self._apk.all_classes:
            if is_anonymous_class(clazz.name):
                continue
            for method in clazz.methods:
                if not method.has_code or method.name == "<init>":
                    continue
                if (clazz.name, method.signature) in invoked:
                    continue
                out.append(method.ref)
        return tuple(out)


class DifferentialOracle:
    """Classifies one app's static report against concrete execution."""

    def __init__(self, apidb) -> None:
        self._apidb = apidb

    # -- public ----------------------------------------------------------

    def examine(
        self, forged: ForgedApp, report: AnalysisReport
    ) -> list[OracleRecord]:
        """All classified records for ``forged``, sorted."""
        apk = forged.apk
        verifier = _RootedVerifier(apk, self._apidb)
        records: list[OracleRecord] = []
        records.extend(self._classify_findings(forged, report, verifier))
        records.extend(self._classify_crashes(apk, report, verifier))
        records.sort(
            key=lambda r: (
                r.classification.value,
                r.kind,
                r.subject,
                -1 if r.level is None else r.level,
                r.detail,
            )
        )
        return records

    # -- finding direction ---------------------------------------------------

    def _expected_fp_keys(self, forged: ForgedApp) -> frozenset:
        keys = set()
        for trap in forged.truth.traps:
            if trap.trait in _EXPECTED_FP_TRAITS:
                keys.update(trap.fp_keys)
        return frozenset(keys)

    def _classify_findings(
        self,
        forged: ForgedApp,
        report: AnalysisReport,
        verifier: DynamicVerifier,
    ) -> list[OracleRecord]:
        expected = self._expected_fp_keys(forged)
        records = []
        for verified in verifier.verify_all(report).verified:
            mismatch = verified.mismatch
            if verified.verdict is Verdict.CONFIRMED:
                classification = Classification.AGREE_CONFIRMED
            elif verified.verdict is Verdict.STATIC_ONLY:
                classification = Classification.AGREE_STATIC_ONLY
            elif (
                mismatch.location is not None
                and forged.apk.lookup(mismatch.location.class_name) is None
            ):
                classification = Classification.UNOBSERVABLE
            elif mismatch.key in expected:
                classification = Classification.EXPECTED_STATIC_FP
            else:
                classification = Classification.STATIC_FP
            evidence = verified.evidence
            records.append(
                OracleRecord(
                    app=forged.apk.name,
                    classification=classification,
                    kind=mismatch.kind.value,
                    subject=_subject_of(mismatch),
                    detail=mismatch.describe(),
                    level=evidence.api_level if evidence else None,
                )
            )
        return records

    # -- crash direction -----------------------------------------------------

    @staticmethod
    def _implements_permission_hook(apk: Apk) -> bool:
        return any(
            method.signature == _PERMISSION_HOOK_SIGNATURE
            for clazz in apk.all_classes
            for method in clazz.methods
        )

    def _classify_crashes(
        self,
        apk: Apk,
        report: AnalysisReport,
        verifier: DynamicVerifier,
    ) -> list[OracleRecord]:
        """Run every registered crash sweep.

        Each mismatch kind contributes a :class:`CrashSweep` (which
        crash direction to drive, how a static finding explains such a
        crash) to the registry; the oracle itself knows nothing about
        individual kinds.  The explain predicates demand the finding
        cover the crash *level* where applicable — that is what
        catches detectors reporting the right subject over a shaved
        range.
        """
        lo, hi = apk.manifest.supported_range
        all_grants = DynamicVerifier._all_dangerous_permissions()
        has_hook = self._implements_permission_hook(apk)
        records = []
        seen: set[tuple] = set()

        for sweep in registered_sweeps():
            grants = all_grants if sweep.grant_all else frozenset()
            for level in range(max(lo, sweep.min_level), hi + 1):
                device = DeviceProfile(
                    api_level=level, granted_permissions=grants
                )
                for crash in verifier.observed_crashes(device):
                    if crash.kind.value != sweep.crash_kind:
                        continue
                    if sweep.honor_permission_hook and has_hook:
                        continue
                    if any(
                        sweep.explains(mismatch, crash)
                        for mismatch in report.mismatches
                    ):
                        continue
                    if crash in seen:
                        continue
                    seen.add(crash)
                    records.append(
                        OracleRecord(
                            app=apk.name,
                            classification=Classification.STATIC_FN,
                            kind=sweep.record_kind,
                            subject=_crash_subject(crash),
                            detail=str(crash),
                            level=level,
                        )
                    )
        return records
