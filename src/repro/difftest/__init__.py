"""Differential testing: property-based fuzzing of the detectors.

The subsystem confronts the static detectors with the concrete IR
interpreter (the paper's §VI dynamic complement), following the
crash-oracle methodology of CiD and CIDER:

* :mod:`.strategy` plans random well-formed apps out of
  :class:`~repro.workload.appgen.AppForge` scenarios, deterministically
  from a seed;
* :mod:`.oracle` analyzes each app statically and replays it across a
  device-level sweep, classifying every finding and every crash;
* :mod:`.shrink` reduces a disagreeing app to a minimal scenario list
  and emits a pytest-ready regression file;
* :mod:`.mutation` scores the harness itself by checking that it kills
  a catalog of seeded detector bugs;
* :mod:`.campaign` ties it all together behind
  ``saintdroid difftest``.
"""

from .strategy import AppPlan, ScenarioSpec, materialize, plan_apps
from .oracle import Classification, DifferentialOracle, OracleRecord
from .shrink import shrink_plan, write_regression_file
from .mutation import MUTANT_CATALOG, MutationOutcome, run_mutation_pass
from .campaign import CampaignConfig, run_campaign

__all__ = [
    "AppPlan",
    "ScenarioSpec",
    "materialize",
    "plan_apps",
    "Classification",
    "DifferentialOracle",
    "OracleRecord",
    "shrink_plan",
    "write_regression_file",
    "MUTANT_CATALOG",
    "MutationOutcome",
    "run_mutation_pass",
    "CampaignConfig",
    "run_campaign",
]
