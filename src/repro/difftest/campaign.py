"""Campaign driver: plan → analyze → oracle → shrink → mutate.

One campaign is one deterministic function of its seed: the same
``CampaignConfig`` always produces a byte-identical disagreement
report (``render_report``) as long as no wall-clock budget truncates
the run — budget truncation is recorded in the report so a consumer
can tell a complete campaign from a cut-off one.

The static phase rides the orchestration engine from the corpus runs
(:func:`repro.eval.runner.run_tools`): parallel workers, retry /
quarantine, checkpoint / resume, and the persistent cache all apply
to fuzz campaigns unchanged.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..core.arm import build_api_database
from ..eval.runner import RunResults, ToolSet, run_tools
from ..framework.repository import FrameworkRepository
from ..workload.appgen import ApiPicker
from .mutation import MutationResult, run_mutation_pass
from .oracle import (
    Classification,
    DifferentialOracle,
    DISAGREEMENTS,
    OracleRecord,
)
from .shrink import (
    ShrinkResult,
    build_reproducer,
    shrink_plan,
    write_regression_file,
)
from .strategy import ALL_KINDS, AppPlan, materialize, plan_apps

__all__ = ["CampaignConfig", "CampaignResult", "run_campaign"]


@dataclass(frozen=True)
class CampaignConfig:
    """Everything a campaign needs, serializable into its report."""

    seed: int = 2026
    n_apps: int = 50
    budget_s: float | None = None
    shrink: bool = True
    coverage: bool = True
    tool: str = "SAINTDroid"
    mutation: bool = True
    #: Where shrunk repros are written as pytest files (None: nowhere).
    corpus_dir: str | None = None
    # -- orchestration passthrough (PRs 1–3) -------------------------
    jobs: int = 1
    timeout_s: float | None = None
    max_retries: int = 0
    retry_backoff_s: float = 0.0
    checkpoint: str | None = None
    cache_dir: str | None = None
    #: Run the tool with framework pre-summaries (same findings as
    #: lazy exploration; a campaign under --summaries exercises the
    #: summarized CLVM against the oracle).
    summaries: bool = False
    #: Run the tool with class-artifact delta analysis (a campaign
    #: under --dedup fuzzes the replay path against the oracle).
    dedup: bool = False


@dataclass
class CampaignResult:
    """Everything one campaign produced."""

    config: CampaignConfig
    plans: list[AppPlan] = field(default_factory=list)
    #: Classification counts per app label, in plan order.
    app_summaries: list[dict] = field(default_factory=list)
    #: Each entry: the disagreeing record, its plan, and (when
    #: shrinking ran) the minimal repro.
    disagreements: list[dict] = field(default_factory=list)
    shrink_results: list[ShrinkResult] = field(default_factory=list)
    mutation: MutationResult | None = None
    truncated: bool = False
    apps_examined: int = 0

    @property
    def ok(self) -> bool:
        """True when the campaign found no detector bug: no
        disagreements and no surviving mutant."""
        survivors = self.mutation.survivors if self.mutation else ()
        return not self.disagreements and not survivors

    def report_dict(self) -> dict:
        """The disagreement report.  Deterministic for a fixed seed:
        no timestamps, no wall-clock figures, sorted keys."""
        return {
            "campaign": {
                "seed": self.config.seed,
                "nApps": self.config.n_apps,
                "tool": self.config.tool,
                "coverage": self.config.coverage,
                "shrink": self.config.shrink,
                "scenarioKinds": list(ALL_KINDS),
            },
            "appsExamined": self.apps_examined,
            "truncated": self.truncated,
            "apps": self.app_summaries,
            "disagreements": self.disagreements,
            "mutation": (
                self.mutation.to_dict() if self.mutation else None
            ),
        }

    def render_report(self) -> str:
        return json.dumps(
            self.report_dict(), indent=2, sort_keys=True
        ) + "\n"


def _summarize(label: str, records: list[OracleRecord]) -> dict:
    counts: dict[str, int] = {}
    for record in records:
        counts[record.classification.value] = (
            counts.get(record.classification.value, 0) + 1
        )
    return {"app": label, "counts": counts}


def run_campaign(
    config: CampaignConfig,
    *,
    framework: FrameworkRepository | None = None,
    apidb=None,
) -> CampaignResult:
    """Run one full differential campaign."""
    framework = framework or FrameworkRepository()
    apidb = apidb or build_api_database(framework)
    picker = ApiPicker(apidb)
    result = CampaignResult(config=config)

    # Phase 1: plan + materialize.
    plans = plan_apps(config.seed, config.n_apps, coverage=config.coverage)
    result.plans = plans
    apps = [materialize(plan, apidb, picker) for plan in plans]

    # Phase 2: static analysis through the orchestration engine.
    toolset = ToolSet.default(
        framework,
        apidb,
        include=(config.tool,),
        summaries=config.summaries,
        summaries_dir=config.cache_dir,
        dedup=config.dedup,
        dedup_dir=config.cache_dir,
    )
    run: RunResults = run_tools(
        apps,
        toolset,
        jobs=config.jobs,
        timeout_s=config.timeout_s,
        max_retries=config.max_retries,
        retry_backoff_s=config.retry_backoff_s,
        checkpoint=config.checkpoint,
        cache_dir=config.cache_dir,
    )

    # Phase 3: the oracle, under the wall-clock budget.
    oracle = DifferentialOracle(apidb)
    tool = toolset.tools[0]
    started = time.monotonic()
    disagreeing: list[tuple[AppPlan, OracleRecord]] = []
    for plan, forged, app_result in zip(plans, apps, run.results):
        if (
            config.budget_s is not None
            and time.monotonic() - started > config.budget_s
        ):
            result.truncated = True
            break
        if app_result.error is not None:
            records = [
                OracleRecord(
                    app=forged.apk.name,
                    classification=Classification.ANALYSIS_FAILURE,
                    kind=app_result.error.kind.value,
                    subject=app_result.error.phase.value,
                    detail=str(app_result.error),
                )
            ]
        else:
            report = app_result.reports[config.tool]
            records = oracle.examine(forged, report)
        result.apps_examined += 1
        result.app_summaries.append(_summarize(forged.apk.name, records))
        seen_signatures = set()
        for record in records:
            if record.classification not in DISAGREEMENTS:
                continue
            if record.signature in seen_signatures:
                continue
            seen_signatures.add(record.signature)
            disagreeing.append((plan, record))

    # Phase 4: shrink each disagreement to a minimal repro.
    for plan, record in disagreeing:
        entry: dict = {
            "record": record.to_dict(),
            "plan": plan.to_dict(),
        }
        if config.shrink:
            reproduces = build_reproducer(
                tool, oracle, apidb, picker, record.signature
            )
            if reproduces(plan):
                shrunk, evaluations = shrink_plan(plan, reproduces)
                shrink_result = ShrinkResult(
                    plan=shrunk,
                    signature=record.signature,
                    evaluations=evaluations,
                )
                result.shrink_results.append(shrink_result)
                entry["shrunk"] = shrink_result.to_dict()
                if config.corpus_dir:
                    path = write_regression_file(
                        config.corpus_dir, shrunk, record.signature
                    )
                    entry["regressionFile"] = path.name
        result.disagreements.append(entry)

    # Phase 5: mutation-test the harness itself on the coverage apps.
    if config.mutation:
        coverage_plans = plan_apps(
            config.seed, len(ALL_KINDS), coverage=True
        )
        result.mutation = run_mutation_pass(
            coverage_plans, tool, apidb, picker
        )

    return result


def write_report(result: CampaignResult, path: str | Path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(result.render_report())
    return path


def write_mutation_report(
    result: CampaignResult, path: str | Path
) -> Path | None:
    if result.mutation is None:
        return None
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(result.mutation.to_dict(), indent=2, sort_keys=True)
        + "\n"
    )
    return path
