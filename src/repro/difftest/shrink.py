"""Greedy shrinking of a disagreeing app to a minimal repro.

Works on two granularities, coarse to fine:

1. **plan level** — delete scenarios (and the filler block) from the
   :class:`~repro.difftest.strategy.AppPlan` while the disagreement
   signature persists.  Per-scenario RNG reseeding in ``materialize``
   guarantees surviving scenarios rebuild identically, so each
   deletion probes exactly one hypothesis.
2. **APK level** — on the materialized app, delete whole classes, then
   whole methods, then individual ``if`` instructions (guard clauses),
   re-checking the signature after every deletion.  This phase refines
   the diagnosis (how few instructions still disagree); the regression
   file is written from the plan, which is reproducible data.

The output of a shrink is a pytest-ready regression file under
``tests/difftest/corpus/`` asserting the signature never reappears.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Callable

from ..apk.package import Apk
from ..ir.instructions import IfCmp, IfCmpZero
from ..ir.method import Method, MethodBody
from ..workload.appgen import ForgedApp
from .strategy import AppPlan

__all__ = [
    "ShrinkResult",
    "shrink_plan",
    "shrink_apk",
    "write_regression_file",
]


@dataclass
class ShrinkResult:
    """Outcome of a full shrink: the minimal plan plus reduction
    statistics from the APK-level phase."""

    plan: AppPlan
    signature: tuple[str, str, str]
    evaluations: int = 0
    classes_removed: int = 0
    methods_removed: int = 0
    guards_removed: int = 0

    def to_dict(self) -> dict:
        return {
            "signature": list(self.signature),
            "plan": self.plan.to_dict(),
            "evaluations": self.evaluations,
            "classesRemoved": self.classes_removed,
            "methodsRemoved": self.methods_removed,
            "guardsRemoved": self.guards_removed,
        }


def shrink_plan(
    plan: AppPlan,
    reproduces: Callable[[AppPlan], bool],
) -> tuple[AppPlan, int]:
    """Greedily delete filler and scenarios while ``reproduces`` holds.

    Returns the reduced plan and the number of predicate evaluations.
    ``reproduces(plan)`` must already be True on entry.
    """
    evaluations = 0
    if plan.filler_kloc > 0:
        candidate = replace(plan, filler_kloc=0.0)
        evaluations += 1
        if reproduces(candidate):
            plan = candidate
    changed = True
    while changed:
        changed = False
        for position in range(len(plan.scenarios)):
            candidate = plan.without(position)
            evaluations += 1
            if reproduces(candidate):
                plan = candidate
                changed = True
                break
    return plan, evaluations


# ---------------------------------------------------------------------------
# APK-level reduction
# ---------------------------------------------------------------------------


def _without_instruction(method: Method, index: int) -> Method:
    """``method`` minus the instruction at ``index``, labels remapped."""
    body = method.body
    instructions = (
        body.instructions[:index] + body.instructions[index + 1:]
    )
    labels = {
        name: (target - 1 if target > index else target)
        for name, target in body.labels.items()
    }
    return replace(
        method, body=MethodBody(instructions, labels)
    )


def _rebuild(apk: Apk, dex_index: int, classes: tuple) -> Apk | None:
    """``apk`` with one dex file's class list replaced; empty
    secondary dex files are dropped, an empty primary aborts."""
    dex_files = list(apk.dex_files)
    if not classes:
        if dex_index == 0:
            return None  # a package cannot lose its primary dex
        del dex_files[dex_index]
    else:
        dex_files[dex_index] = replace(
            dex_files[dex_index], classes=classes
        )
    return replace(apk, dex_files=tuple(dex_files))


def shrink_apk(
    apk: Apk,
    reproduces: Callable[[Apk], bool],
) -> tuple[Apk, dict[str, int]]:
    """Delete classes, methods, then guard instructions greedily.

    ``reproduces(apk)`` must already be True on entry.  Returns the
    reduced package and counters of what was removed.
    """
    stats = {
        "evaluations": 0,
        "classes_removed": 0,
        "methods_removed": 0,
        "guards_removed": 0,
    }

    def attempt(candidate: Apk | None) -> Apk | None:
        if candidate is None:
            return None
        stats["evaluations"] += 1
        return candidate if reproduces(candidate) else None

    # Phase 1: whole classes.
    changed = True
    while changed:
        changed = False
        for dex_index, dex in enumerate(apk.dex_files):
            for class_index in range(len(dex.classes)):
                kept = (
                    dex.classes[:class_index]
                    + dex.classes[class_index + 1:]
                )
                reduced = attempt(_rebuild(apk, dex_index, kept))
                if reduced is not None:
                    apk = reduced
                    stats["classes_removed"] += 1
                    changed = True
                    break
            if changed:
                break

    # Phase 2: whole methods.
    changed = True
    while changed:
        changed = False
        for dex_index, dex in enumerate(apk.dex_files):
            for class_index, clazz in enumerate(dex.classes):
                for method_index in range(len(clazz.methods)):
                    methods = (
                        clazz.methods[:method_index]
                        + clazz.methods[method_index + 1:]
                    )
                    kept = (
                        dex.classes[:class_index]
                        + (replace(clazz, methods=methods),)
                        + dex.classes[class_index + 1:]
                    )
                    reduced = attempt(_rebuild(apk, dex_index, kept))
                    if reduced is not None:
                        apk = reduced
                        stats["methods_removed"] += 1
                        changed = True
                        break
                if changed:
                    break
            if changed:
                break

    # Phase 3: individual guard instructions.
    changed = True
    while changed:
        changed = False
        for dex_index, dex in enumerate(apk.dex_files):
            for class_index, clazz in enumerate(dex.classes):
                for method_index, method in enumerate(clazz.methods):
                    if method.body is None:
                        continue
                    for instr_index, instruction in enumerate(
                        method.body.instructions
                    ):
                        if not isinstance(
                            instruction, (IfCmp, IfCmpZero)
                        ):
                            continue
                        slimmed = _without_instruction(
                            method, instr_index
                        )
                        methods = (
                            clazz.methods[:method_index]
                            + (slimmed,)
                            + clazz.methods[method_index + 1:]
                        )
                        kept = (
                            dex.classes[:class_index]
                            + (replace(clazz, methods=methods),)
                            + dex.classes[class_index + 1:]
                        )
                        reduced = attempt(
                            _rebuild(apk, dex_index, kept)
                        )
                        if reduced is not None:
                            apk = reduced
                            stats["guards_removed"] += 1
                            changed = True
                            break
                    if changed:
                        break
                if changed:
                    break
            if changed:
                break

    return apk, stats


# ---------------------------------------------------------------------------
# Regression-file emission
# ---------------------------------------------------------------------------

_REGRESSION_TEMPLATE = '''\
"""Difftest regression (auto-generated by repro.difftest.shrink).

Shrunk repro for the disagreement signature:

    {signature!r}

The embedded plan rebuilds the minimal app deterministically; the
test fails if the detector ever disagrees with the dynamic oracle on
it again.  Regenerate with ``saintdroid difftest --shrink``.
"""

import json

from repro.core.detector import SaintDroid
from repro.difftest.oracle import DifferentialOracle
from repro.difftest.strategy import AppPlan, materialize

PLAN = json.loads("""
{plan_json}
""")

SIGNATURE = {signature!r}


def test_no_regression_{digest}(framework, apidb, picker):
    plan = AppPlan.from_dict(PLAN)
    forged = materialize(plan, apidb, picker)
    tool = SaintDroid(framework, apidb)
    report = tool.analyze(forged.apk)
    records = DifferentialOracle(apidb).examine(forged, report)
    assert SIGNATURE not in [r.signature for r in records]
'''


def signature_digest(signature: tuple[str, str, str]) -> str:
    """Short stable digest naming one disagreement signature."""
    blob = json.dumps(list(signature)).encode()
    return hashlib.sha1(blob).hexdigest()[:10]


def write_regression_file(
    directory: str | Path,
    plan: AppPlan,
    signature: tuple[str, str, str],
) -> Path:
    """Write the pytest regression file for a shrunk disagreement.

    The filename is derived from the signature digest, so re-running a
    campaign overwrites the same repro instead of accumulating
    duplicates.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    digest = signature_digest(signature)
    path = directory / f"test_regression_{digest}.py"
    content = _REGRESSION_TEMPLATE.format(
        signature=tuple(signature),
        plan_json=json.dumps(plan.to_dict(), indent=2, sort_keys=True),
        digest=digest,
    )
    path.write_text(content)
    return path


def build_reproducer(
    tool,
    oracle,
    apidb,
    picker,
    signature: tuple[str, str, str],
) -> Callable[[AppPlan], bool]:
    """The plan-level predicate: materialize, analyze, examine, and
    check whether the signature is still present.  Analysis failures
    reproduce exactly the ``analysis-failure`` signature."""
    from .strategy import materialize

    def reproduces(plan: AppPlan) -> bool:
        forged = materialize(plan, apidb, picker)
        try:
            report = tool.analyze(forged.apk)
        except Exception:
            return signature[0] == "analysis-failure"
        records = oracle.examine(forged, report)
        return any(r.signature == signature for r in records)

    return reproduces


def build_apk_reproducer(
    tool,
    oracle,
    truth,
    signature: tuple[str, str, str],
) -> Callable[[Apk], bool]:
    """The APK-level predicate used by :func:`shrink_apk`."""

    def reproduces(apk: Apk) -> bool:
        try:
            report = tool.analyze(apk)
        except Exception:
            return signature[0] == "analysis-failure"
        forged = ForgedApp(apk=apk, truth=truth)
        records = oracle.examine(forged, report)
        return any(r.signature == signature for r in records)

    return reproduces
