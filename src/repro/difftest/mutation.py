"""Mutation testing *of the detectors*: how strong is the oracle?

A differential harness is only as good as the detector bugs it can
catch.  This module keeps a catalog of semantic mutants — each a
realistic, minimal bug in the AMD/guard logic (off-by-one interval
bounds, dropped guard edges, ignored refinements, skipped permission
stages) — applies them one at a time, and checks that the fuzz
harness's coverage apps produce at least one *new* disagreement under
each.  A mutant nobody notices is a hole in the oracle; the kill
score is the harness's strength measure, reported in CI.

Patching rules (the interpreter must stay trustworthy while the
static side is broken):

* only static-analysis entry points are patched — never
  ``ApiDatabase.exists`` / ``_callable_levels`` / ``permissions_for``,
  which the interpreter shares;
* functions imported *by name* into the pass pipeline
  (``annotate_permissions``) are patched in both namespaces;
* originals are restored from ``__dict__`` so ``staticmethod``
  descriptors survive the round-trip.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable

from ..analysis.guards import GuardAnalysis
from ..analysis.intervals import ApiInterval, EMPTY
from ..core.amd import AndroidMismatchDetector
from ..core.apidb import ApiDatabase
from ..ir.instructions import CmpOp
from .oracle import DISAGREEMENTS, DifferentialOracle
from .strategy import AppPlan, materialize

__all__ = [
    "Mutant",
    "MutationOutcome",
    "MutationResult",
    "MUTANT_CATALOG",
    "apply_mutant",
    "run_mutation_pass",
]


@dataclass(frozen=True)
class Mutant:
    """One catalogued detector bug.

    ``build`` returns ``(owner, attribute, replacement)`` patches;
    originals are captured and restored by :func:`apply_mutant`.
    """

    name: str
    description: str
    build: Callable[[], list[tuple[object, str, object]]]


@contextmanager
def apply_mutant(mutant: Mutant):
    """Apply ``mutant``'s patches for the duration of the block."""
    patches = mutant.build()
    saved = [
        (owner, attribute, vars(owner)[attribute])
        for owner, attribute, _ in patches
    ]
    try:
        for owner, attribute, replacement in patches:
            setattr(owner, attribute, replacement)
        yield
    finally:
        for owner, attribute, original in saved:
            setattr(owner, attribute, original)


# ---------------------------------------------------------------------------
# The catalog
# ---------------------------------------------------------------------------

_ORIGINAL_REFINE = ApiInterval.refine
_ORIGINAL_TRANSFER = GuardAnalysis.transfer_edge


def _refine_mutant(
    bad_op: CmpOp, substitute: Callable[[ApiInterval, int], ApiInterval]
):
    def mutated(self, op, constant):
        if op is bad_op:
            return substitute(self, constant)
        return _ORIGINAL_REFINE(self, op, constant)

    return [(ApiInterval, "refine", mutated)]


def _transfer_never_negates():
    def mutated(self, state, instruction, taken):
        return _ORIGINAL_TRANSFER(self, state, instruction, True)

    return [(GuardAnalysis, "transfer_edge", mutated)]


def _transfer_ignores_guards():
    def mutated(self, state, instruction, taken):
        return state

    return [(GuardAnalysis, "transfer_edge", mutated)]


def _missing_levels_empty():
    def mutated(self, class_name, signature, interval):
        return EMPTY

    return [(ApiDatabase, "missing_levels", mutated)]


def _scope_shaved():
    from ..core.aum import AumModel

    original = vars(AumModel)["app_interval"]

    def mutated(self):
        interval = original.fget(self)
        if interval.is_empty or interval.lo >= interval.hi:
            return interval
        return ApiInterval.of(interval.lo + 1, interval.hi)

    return [(AumModel, "app_interval", property(mutated))]


def _protocol_always_implemented():
    def mutated(self, model):
        return True

    return [
        (
            AndroidMismatchDetector,
            "_implements_runtime_permissions",
            mutated,
        )
    ]


def _deep_permissions_ignored():
    from ..core import aum
    from ..framework.permissions import is_dangerous
    from ..pipeline import passes

    def mutated(model, apidb):
        for usage in model.usages:
            permissions = apidb.permissions_for(usage.api, deep=False)
            dangerous = frozenset(
                p for p in permissions if is_dangerous(p)
            )
            if dangerous:
                model.permission_uses.append(
                    aum.PermissionUse(
                        caller=usage.caller,
                        api=usage.api,
                        permissions=dangerous,
                        interval=usage.interval,
                    )
                )

    return [
        (aum, "annotate_permissions", mutated),
        (passes, "annotate_permissions", mutated),
    ]


def _helper_summaries_ignored():
    from ..core import aum

    def mutated(*args, **kwargs):
        return {}

    return [(aum, "collect_version_helpers", mutated)]


#: The catalogued mutants.  Each is killable by at least one coverage
#: scenario kind (noted per entry); ``tests/difftest/test_mutation.py``
#: asserts the full pass scores 100%.
MUTANT_CATALOG: tuple[Mutant, ...] = (
    Mutant(
        "refine-lt-off-by-one",
        "SDK_INT < c refines to [.., c] instead of [.., c-1] "
        "(killed by legacy-guard)",
        lambda: _refine_mutant(
            CmpOp.LT, lambda iv, c: _ORIGINAL_REFINE(iv, CmpOp.LE, c)
        ),
    ),
    Mutant(
        "refine-le-off-by-one",
        "SDK_INT <= c refines to [.., c+1] instead of [.., c] "
        "(killed by max-guard)",
        lambda: _refine_mutant(
            CmpOp.LE, lambda iv, c: _ORIGINAL_REFINE(iv, CmpOp.LE, c + 1)
        ),
    ),
    Mutant(
        "refine-gt-off-by-one",
        "SDK_INT > c refines to [c, ..] instead of [c+1, ..] "
        "(killed by gt-guard)",
        lambda: _refine_mutant(
            CmpOp.GT, lambda iv, c: _ORIGINAL_REFINE(iv, CmpOp.GE, c)
        ),
    ),
    Mutant(
        "refine-ge-off-by-one",
        "SDK_INT >= c refines to [c-1, ..] instead of [c, ..] "
        "(killed by guarded-direct)",
        lambda: _refine_mutant(
            CmpOp.GE, lambda iv, c: _ORIGINAL_REFINE(iv, CmpOp.GE, c - 1)
        ),
    ),
    Mutant(
        "refine-eq-ignored",
        "SDK_INT == c refinement dropped entirely "
        "(killed by eq-guard)",
        lambda: _refine_mutant(CmpOp.EQ, lambda iv, c: iv),
    ),
    Mutant(
        "refine-ne-ignored",
        "SDK_INT != c endpoint shaving dropped "
        "(killed by ne-guard)",
        lambda: _refine_mutant(CmpOp.NE, lambda iv, c: iv),
    ),
    Mutant(
        "guard-negation-dropped",
        "fall-through edges refine with the taken-branch comparison "
        "(killed by guarded-direct)",
        _transfer_never_negates,
    ),
    Mutant(
        "guard-edges-ignored",
        "branch edges never refine the interval state "
        "(killed by guarded-direct)",
        _transfer_ignores_guards,
    ),
    Mutant(
        "missing-levels-empty",
        "ApiDatabase.missing_levels always reports nothing missing "
        "(killed by direct)",
        _missing_levels_empty,
    ),
    Mutant(
        "detection-scope-shaved",
        "analysis scope starts at minSdk+1, silently excusing the "
        "lowest supported level (killed by direct)",
        _scope_shaved,
    ),
    Mutant(
        "protocol-always-implemented",
        "every app is believed to implement the runtime permission "
        "protocol (killed by permission-request)",
        _protocol_always_implemented,
    ),
    Mutant(
        "deep-permissions-ignored",
        "permission annotation only sees direct requirements, not "
        "transitive ones (killed by permission-request-deep)",
        _deep_permissions_ignored,
    ),
    Mutant(
        "helper-summaries-ignored",
        "version-check helper methods are never summarized "
        "(killed by helper-guard)",
        _helper_summaries_ignored,
    ),
)


# ---------------------------------------------------------------------------
# The pass
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MutationOutcome:
    """One mutant's fate under the harness."""

    name: str
    description: str
    killed: bool
    killed_by: str = ""
    evidence: tuple[str, str, str] | None = None

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "description": self.description,
            "killed": self.killed,
            "killedBy": self.killed_by,
            "evidence": list(self.evidence) if self.evidence else None,
        }


@dataclass
class MutationResult:
    """Kill score over the whole catalog."""

    outcomes: list[MutationOutcome] = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.outcomes)

    @property
    def killed(self) -> int:
        return sum(1 for o in self.outcomes if o.killed)

    @property
    def survivors(self) -> tuple[str, ...]:
        return tuple(o.name for o in self.outcomes if not o.killed)

    @property
    def score(self) -> str:
        return f"{self.killed}/{self.total}"

    def to_dict(self) -> dict:
        return {
            "total": self.total,
            "killed": self.killed,
            "score": self.score,
            "survivors": list(self.survivors),
            "outcomes": [o.to_dict() for o in self.outcomes],
        }


def run_mutation_pass(
    plans: list[AppPlan],
    tool,
    apidb,
    picker=None,
    *,
    catalog: tuple[Mutant, ...] = MUTANT_CATALOG,
) -> MutationResult:
    """Score the harness against every catalogued mutant.

    ``plans`` are materialized once; each mutant is applied while the
    same apps are re-analyzed and re-examined.  A mutant is killed by
    the first app whose examination yields a disagreement signature
    absent from that app's unmutated baseline (baselining keeps a
    pre-existing disagreement from inflating the score).
    """
    oracle = DifferentialOracle(apidb)
    apps = [materialize(plan, apidb, picker) for plan in plans]

    baselines: list[frozenset] = []
    for forged in apps:
        records = oracle.examine(forged, tool.analyze(forged.apk))
        baselines.append(
            frozenset(
                r.signature
                for r in records
                if r.classification in DISAGREEMENTS
            )
        )

    result = MutationResult()
    for mutant in catalog:
        killed = False
        killed_by = ""
        evidence: tuple[str, str, str] | None = None
        with apply_mutant(mutant):
            for forged, baseline in zip(apps, baselines):
                try:
                    report = tool.analyze(forged.apk)
                    records = oracle.examine(forged, report)
                except Exception:
                    killed = True
                    killed_by = forged.apk.name
                    evidence = ("analysis-failure", "error", mutant.name)
                    break
                fresh = [
                    r
                    for r in records
                    if r.classification in DISAGREEMENTS
                    and r.signature not in baseline
                ]
                if fresh:
                    killed = True
                    killed_by = forged.apk.name
                    evidence = fresh[0].signature
                    break
        result.outcomes.append(
            MutationOutcome(
                name=mutant.name,
                description=mutant.description,
                killed=killed,
                killed_by=killed_by,
                evidence=evidence,
            )
        )
    return result
