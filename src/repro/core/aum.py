"""AUM — the API Usage Modeler (paper section III-A).

Couples the CLVM exploration with the guard analysis to produce the
artifacts the mismatch detector consumes:

* **API usages** — every app→framework invocation together with the
  guard-refined interval of device levels under which it can execute.
  Guard intervals propagate *inter-procedurally*: a callee analyzed
  from a guarded call site inherits the site's interval as its entry
  context (memoized per ``(method, interval)``), which is exactly the
  context-sensitivity that separates SAINTDroid from CID and Lint.
* **Override records** — app methods overriding framework-declared
  signatures (callback candidates for Algorithm 3).
* **Permission uses** — API usages annotated with the dangerous
  permissions the transitive permission map assigns them.

Each stage is a module-level function (:func:`explore`,
:func:`propagate_guards`, :func:`collect_overrides`,
:func:`annotate_permissions`) over one :class:`AumModel`; the pipeline
passes in :mod:`repro.pipeline.passes` wrap them one-to-one, and
:class:`ApiUsageModeler` composes them for direct (non-pipeline) use.

Documented blind spot (paper section VI): methods of anonymous inner
classes (``Foo$1``) are analyzed, but guard context does not propagate
into them — a guard wrapping the *registration* of an anonymous
listener does not protect the listener body in SAINTDroid's view.
That asymmetry is the source of SAINTDroid's residual false alarms.
"""

from __future__ import annotations

import time
import weakref
from dataclasses import dataclass, field

from ..apk.package import Apk
from ..framework.repository import FrameworkRepository
from ..ir.method import Method, MethodFlags
from ..ir.types import ClassName, MethodRef, is_anonymous_class
from ..analysis.callgraph import CallGraph
from ..analysis.clvm import ClassLoaderVM, LoadStats, _intern_ref
from ..analysis.guards import guard_at_allocations, guard_at_invocations
from ..analysis.summaries import (
    collect_version_helpers,
    summarize_version_helper,
)
from ..analysis.intervals import ApiInterval
from .apidb import ApiDatabase

__all__ = ["ApiUsage", "OverrideRecord", "PermissionUse", "AumModel",
           "ApiUsageModeler", "GuardRowCache", "entry_points", "explore",
           "propagate_guards", "collect_overrides",
           "annotate_permissions", "nearest_framework_ancestor"]

#: Cap on distinct guard contexts analyzed per method before widening
#: to the app's full interval (prevents pathological blow-up).
MAX_CONTEXTS_PER_METHOD = 8


@dataclass(frozen=True)
class ApiUsage:
    """One app→framework call with its executable device-level range."""

    caller: MethodRef
    api: MethodRef
    interval: ApiInterval


@dataclass(frozen=True)
class OverrideRecord:
    """An app method overriding a framework-declared signature."""

    app_class: ClassName
    method: MethodRef
    framework_class: ClassName

    @property
    def signature(self) -> str:
        return f"{self.method.name}{self.method.descriptor}"


@dataclass(frozen=True)
class PermissionUse:
    """An API usage that requires dangerous permissions."""

    caller: MethodRef
    api: MethodRef
    permissions: frozenset[str]
    interval: ApiInterval


@dataclass
class AumModel:
    """Everything AUM extracts from one app."""

    apk: Apk
    usages: list[ApiUsage] = field(default_factory=list)
    overrides: list[OverrideRecord] = field(default_factory=list)
    permission_uses: list[PermissionUse] = field(default_factory=list)
    callgraph: CallGraph | None = None
    stats: LoadStats = field(default_factory=LoadStats)
    unresolved_dynamic_classes: tuple[ClassName, ...] = ()
    #: Summaries of the app's version-check helper methods:
    #: (class, name, descriptor) -> device levels returning true.
    version_helpers: dict[tuple, frozenset[int]] = field(
        default_factory=dict
    )
    #: Set in ``--dedup`` mode: answers guard-propagation contexts
    #: from (and records them into) the corpus-wide class store.
    guard_cache: "GuardRowCache | None" = None
    #: Measured wall seconds per modeling phase (``explore`` /
    #: ``guards``); the detector adds ``load`` and ``detect``.
    phase_seconds: dict = field(default_factory=dict)

    @property
    def app_interval(self) -> ApiInterval:
        lo, hi = self.apk.manifest.supported_range
        return ApiInterval.of(lo, hi)


# -- entry points -----------------------------------------------------------

def entry_points(apk: Apk) -> tuple[MethodRef, ...]:
    """Analysis roots: every concrete method of every primary-dex
    class.  Secondary (late-bound) dex classes join the exploration
    only through resolved ``loadClass`` sites or virtual dispatch,
    mirroring how the runtime reaches them."""
    roots: list[MethodRef] = []
    for dex in apk.dex_files:
        if dex.secondary:
            continue
        for clazz in dex.classes:
            for method in clazz.methods:
                if method.has_code:
                    roots.append(method.ref)
    return tuple(roots)


# -- exploration ------------------------------------------------------------

def explore(model: AumModel, vm: ClassLoaderVM) -> None:
    """Drive the CLVM worklist from the app's entry points and record
    the call graph, load accounting, and version-helper summaries."""
    exploration = vm.explore(entry_points(model.apk))
    model.callgraph = exploration.callgraph
    model.stats = exploration.stats
    model.unresolved_dynamic_classes = (
        exploration.unresolved_dynamic_classes
    )
    # Summarize the app's version-check helpers once; branches on
    # their results then refine intervals like inline SDK checks.
    if vm.class_store is None:
        model.version_helpers = collect_version_helpers(
            method
            for ref in exploration.callgraph.app_methods()
            if (method := exploration.callgraph.method(ref)) is not None
            and method.has_code
        )
    else:
        model.version_helpers = _dedup_version_helpers(
            vm, exploration.callgraph
        )
        model.guard_cache = GuardRowCache(
            vm.class_store, vm.dedup_artifacts, vm.dedup_keys
        )


def _dedup_version_helpers(
    vm: ClassLoaderVM, callgraph: CallGraph
) -> dict[tuple, frozenset[int]]:
    """The same helper table :func:`collect_version_helpers` builds,
    answered from class artifacts where one was consulted or recorded
    (artifacts carry the per-level helper evaluation — the most
    expensive pure-per-class computation)."""
    summaries: dict[tuple, frozenset[int]] = {}
    for ref in callgraph.app_methods():
        method = callgraph.method(ref)
        if method is None or not method.has_code:
            continue
        if method.ref.return_type not in ("boolean", "int"):
            continue
        artifact = vm.dedup_artifacts.get(method.ref.class_name)
        if artifact is not None:
            levels = artifact.helpers.get(
                (method.ref.name, method.ref.descriptor)
            )
        else:
            levels = summarize_version_helper(method)
        if levels is not None:
            summaries[
                (method.ref.class_name, method.ref.name,
                 method.ref.descriptor)
            ] = levels
    return summaries


# -- guard propagation ------------------------------------------------------

#: ``helpers_digest([])`` — filled in lazily on first GuardRowCache
#: construction (module-level import would cycle through the cache
#: package) and shared by every method with no version-helper calls.
_EMPTY_HELPER_DIGEST: str | None = None

#: artifact -> {row_key -> tuple[(MethodRef, ApiInterval), ...]}.
#: Raw guard rows are JSON-ish triples (they live in pickled store
#: entries); materializing them into interned refs/intervals once per
#: artifact — not once per app — is what keeps warm replay cheap.
#: Weakly keyed so evicted artifacts drop their materializations.
_MATERIALIZED_ROWS: weakref.WeakKeyDictionary = weakref.WeakKeyDictionary()


class GuardRowCache:
    """Dedup adapter between guard propagation and the class store.

    A guard context — one ``(method, entry interval)`` pair — is a pure
    function of the method body, the entry interval, and the helper
    summaries of the methods it invokes, so its refined call-site rows
    are valid for *any* app bundling the identical class under an
    equivalent helper environment.  The helper environment is pinned by
    digesting the helper summaries restricted to the method's invoked
    refs (the only ones the guard analysis can consult).
    """

    def __init__(self, store, artifacts: dict, keys: dict) -> None:
        self._store = store
        self._artifacts = artifacts
        self._keys = keys
        #: The helper-environment digest — and the method's rendered
        #: signature — depend only on the method (its invoked refs) and
        #: the app's fixed helper table, not on the entry interval, so
        #: the per-method prefix of every context key is built once
        #: even though a method is looked up once per context.
        self._digest_memo: dict[MethodRef, str] = {}
        self._prefix_memo: dict[MethodRef, tuple[str, str]] = {}
        global _EMPTY_HELPER_DIGEST
        if _EMPTY_HELPER_DIGEST is None:
            from ..cache.classes import helpers_digest

            _EMPTY_HELPER_DIGEST = helpers_digest([])

    def _helper_digest(
        self,
        method: Method,
        version_helpers: dict[tuple, frozenset[int]],
    ) -> str:
        cached = self._digest_memo.get(method.ref)
        if cached is not None:
            return cached
        relevant = None
        if version_helpers:
            for invoke in method.invocations:
                ref = invoke.method
                triple = (ref.class_name, ref.name, ref.descriptor)
                levels = version_helpers.get(triple)
                if levels is not None:
                    if relevant is None:
                        relevant = {}
                    relevant[triple] = levels
        if relevant is None:
            # The overwhelmingly common case — no version-helper calls
            # — shares one precomputed digest instead of hashing.
            digest = _EMPTY_HELPER_DIGEST
        else:
            from ..cache.classes import helpers_digest

            digest = helpers_digest(relevant.items())
        self._digest_memo[method.ref] = digest
        return digest

    def _context_key(
        self,
        method: Method,
        interval: ApiInterval,
        version_helpers: dict[tuple, frozenset[int]],
    ) -> tuple:
        prefix = self._prefix_memo.get(method.ref)
        if prefix is None:
            prefix = self._prefix_memo[method.ref] = (
                method.signature,
                self._helper_digest(method, version_helpers),
            )
        return (prefix[0], interval.lo, interval.hi, prefix[1])

    def lookup(
        self,
        method: Method,
        interval: ApiInterval,
        version_helpers: dict[tuple, frozenset[int]],
    ) -> tuple:
        """``(site_rows, row_key)`` — site_rows is ``None`` on a miss,
        else a tuple of ``(callee_ref, refined_interval)`` pairs
        materialized once per artifact and shared across apps; the
        row_key is reused by :meth:`record` so the context is digested
        once."""
        artifact = self._artifacts.get(method.ref.class_name)
        if artifact is None:
            self._store.stats.guard_misses += 1
            return None, None
        row_key = self._context_key(method, interval, version_helpers)
        rows = artifact.guard_rows.get(row_key)
        if rows is None:
            self._store.stats.guard_misses += 1
            return None, row_key
        self._store.stats.guard_hits += 1
        memo = _MATERIALIZED_ROWS.get(artifact)
        if memo is None:
            memo = _MATERIALIZED_ROWS[artifact] = {}
        site_rows = memo.get(row_key)
        if site_rows is None:
            site_rows = tuple(
                (
                    _intern_ref(cls, name, descriptor),
                    ApiInterval.of(lo, hi),
                )
                for (cls, name, descriptor), lo, hi in rows
            )
            memo[row_key] = site_rows
        return site_rows, row_key

    def record(self, method: Method, row_key: tuple, rows: tuple) -> None:
        key = self._keys.get(method.ref.class_name)
        if key is not None:
            self._store.record_guard_rows(key, row_key, rows)


def _guard_roots(model: AumModel) -> tuple[MethodRef, ...]:
    """Methods analyzed under the *unrefined* app interval: those
    with no resolved app-internal caller (components, callbacks,
    reflective targets, dead code)."""
    callgraph = model.callgraph
    called: set[MethodRef] = set()
    for caller, sites in callgraph.edges.items():
        if caller.is_framework:
            continue
        for site in sites:
            target = site.resolved or site.callee
            if not target.is_framework:
                called.add(target)
    return tuple(
        ref
        for ref in callgraph.app_methods()
        if ref not in called
    )


def _anonymous_entry_intervals(
    model: AumModel,
) -> dict[ClassName, ApiInterval]:
    """Guard interval at the allocation sites of each anonymous
    class, joined over all sites.  Only consulted in the ablation
    mode that removes the anonymous-class blind spot."""
    intervals: dict[ClassName, ApiInterval] = {}
    app_interval = model.app_interval
    for ref in model.callgraph.app_methods():
        method = model.callgraph.method(ref)
        if method is None or method.body is None:
            continue
        for allocation, interval in guard_at_allocations(
            method, app_interval, model.version_helpers
        ):
            if not is_anonymous_class(allocation.class_name):
                continue
            joined = interval
            if allocation.class_name in intervals:
                joined = intervals[allocation.class_name].join(interval)
            intervals[allocation.class_name] = joined
    return intervals


def propagate_guards(
    model: AumModel, *, into_anonymous: bool = False
) -> None:
    """Inter-procedural guard propagation over the explored call
    graph, appending the guard-refined :class:`ApiUsage` records."""
    callgraph = model.callgraph
    app_interval = model.app_interval
    anonymous_intervals: dict[ClassName, ApiInterval] = (
        _anonymous_entry_intervals(model) if into_anonymous else {}
    )
    contexts_seen: set[tuple[MethodRef, ApiInterval]] = set()
    context_counts: dict[MethodRef, int] = {}
    usage_keys: set[tuple[MethodRef, MethodRef]] = set()
    usage_intervals: dict[tuple[MethodRef, MethodRef], ApiInterval] = {}

    # Resolved targets per static callee ref, indexed lazily per
    # caller on first context visit: framework callers (never visited
    # below) cost nothing, and the per-row probe keys on the callee
    # alone instead of hashing a (caller, callee) tuple.
    edges = callgraph.edges
    resolution_memo: dict[MethodRef, dict[MethodRef, list[MethodRef]]] = {}

    def caller_resolution(
        caller: MethodRef,
    ) -> dict[MethodRef, list[MethodRef]]:
        per_callee = resolution_memo.get(caller)
        if per_callee is None:
            per_callee = resolution_memo[caller] = {}
            for site in edges.get(caller, ()):
                target = site.resolved or site.callee
                targets = per_callee.get(site.callee)
                if targets is None:
                    per_callee[site.callee] = [target]
                elif target not in targets:
                    targets.append(target)
        return per_callee

    def root_interval(root: MethodRef) -> ApiInterval:
        if is_anonymous_class(root.class_name):
            return anonymous_intervals.get(
                root.class_name, app_interval
            )
        return app_interval

    stack: list[tuple[MethodRef, ApiInterval]] = [
        (root, root_interval(root))
        for root in _guard_roots(model)
    ]
    while stack:
        ref, interval = stack.pop()
        if ref.is_framework:
            continue
        count = context_counts.get(ref, 0)
        if count >= MAX_CONTEXTS_PER_METHOD:
            interval = app_interval
        if (ref, interval) in contexts_seen:
            continue
        contexts_seen.add((ref, interval))
        context_counts[ref] = count + 1

        method = callgraph.method(ref)
        if method is None or method.body is None:
            continue

        if model.guard_cache is None:
            site_rows = [
                (invoke.method, refined)
                for invoke, refined in guard_at_invocations(
                    method, interval, model.version_helpers
                )
            ]
        else:
            site_rows, row_key = model.guard_cache.lookup(
                method, interval, model.version_helpers
            )
            if site_rows is None:
                site_rows = [
                    (invoke.method, refined)
                    for invoke, refined in guard_at_invocations(
                        method, interval, model.version_helpers
                    )
                ]
                if row_key is not None:
                    model.guard_cache.record(
                        method,
                        row_key,
                        tuple(
                            (
                                (ref.class_name, ref.name, ref.descriptor),
                                refined.lo,
                                refined.hi,
                            )
                            for ref, refined in site_rows
                        ),
                    )
                model.stats.guard_contexts_computed += 1
            else:
                model.stats.guard_contexts_deduped += 1

        row_resolution = caller_resolution(ref)
        for callee, refined in site_rows:
            targets = row_resolution.get(callee) or (callee,)
            for target in targets:
                if target.is_framework:
                    key = (ref, target)
                    merged = refined
                    if key in usage_intervals:
                        merged = usage_intervals[key].join(refined)
                    usage_intervals[key] = merged
                    usage_keys.add(key)
                else:
                    callee_interval = refined
                    if (
                        not into_anonymous
                        and is_anonymous_class(target.class_name)
                    ):
                        # Blind spot: guard context is dropped at
                        # the boundary of anonymous inner classes.
                        callee_interval = app_interval
                    stack.append((target, callee_interval))

    for (caller, api), interval in sorted(
        usage_intervals.items(),
        key=lambda item: (str(item[0][0]), str(item[0][1])),
    ):
        model.usages.append(
            ApiUsage(caller=caller, api=api, interval=interval)
        )


# -- overrides --------------------------------------------------------------

def nearest_framework_ancestor(
    apk: Apk, apidb: ApiDatabase, name: ClassName
) -> ClassName | None:
    """First framework class on the super chain, crossing app-level
    intermediate classes, level-agnostic (uses database hierarchy)."""
    seen: set[ClassName] = set()
    current: ClassName | None = name
    while current is not None and current not in seen:
        seen.add(current)
        app_class = apk.lookup(current)
        if app_class is not None:
            current = app_class.super_name
            continue
        if current in apidb:
            return current
        return None
    return None


def collect_overrides(model: AumModel, apidb: ApiDatabase) -> None:
    """Record app methods overriding framework-declared signatures."""
    apk = model.apk
    for clazz in apk.all_classes:
        if is_anonymous_class(clazz.name):
            # Documented limitation: dynamically-generated classes
            # for anonymous declarations are invisible.
            continue
        framework_root = nearest_framework_ancestor(
            apk, apidb, clazz.name
        )
        if framework_root is None:
            continue
        for method in clazz.methods:
            if method.name == "<init>":
                continue
            if method.flags & MethodFlags.STATIC:
                continue
            declared = apidb.resolve(framework_root, method.signature)
            if declared is not None:
                model.overrides.append(
                    OverrideRecord(
                        app_class=clazz.name,
                        method=method.ref,
                        framework_class=declared.class_name,
                    )
                )


# -- permissions ------------------------------------------------------------

def annotate_permissions(model: AumModel, apidb: ApiDatabase) -> None:
    """Attach transitive dangerous permissions to the API usages."""
    from ..framework.permissions import is_dangerous

    for usage in model.usages:
        permissions = apidb.permissions_for(usage.api, deep=True)
        dangerous = frozenset(
            p for p in permissions if is_dangerous(p)
        )
        if dangerous:
            model.permission_uses.append(
                PermissionUse(
                    caller=usage.caller,
                    api=usage.api,
                    permissions=dangerous,
                    interval=usage.interval,
                )
            )


class ApiUsageModeler:
    """Composes the stage functions above for direct (non-pipeline)
    use; the pipeline runs the same stages as individual passes."""

    def __init__(
        self,
        framework: FrameworkRepository,
        apidb: ApiDatabase,
        *,
        propagate_guards_into_anonymous: bool = False,
        analyze_secondary_dex: bool = True,
    ) -> None:
        """``propagate_guards_into_anonymous=True`` removes the
        documented anonymous-inner-class blind spot — the ablation knob
        for benchmark E8."""
        self._framework = framework
        self._apidb = apidb
        self._into_anonymous = propagate_guards_into_anonymous
        self._secondary = analyze_secondary_dex

    def entry_points(self, apk: Apk) -> tuple[MethodRef, ...]:
        return entry_points(apk)

    def build(self, apk: Apk) -> AumModel:
        model = AumModel(apk=apk)
        # Resolve against the newest framework level the app can run
        # on: dispatch through app subclasses must see APIs introduced
        # after the target level too (the database, not the loaded
        # image, decides per-level existence).
        level = apk.manifest.effective_max_sdk
        vm = ClassLoaderVM(
            apk,
            self._framework,
            level,
            follow_framework=True,
            include_secondary_dex=self._secondary,
        )
        # Under lazy loading the CLVM interleaves class loads with
        # exploration, so ``explore`` covers both; the eager ablation's
        # whole-world load is timed separately as ``load``.
        phase_started = time.perf_counter()
        explore(model, vm)
        now = time.perf_counter()
        model.phase_seconds["explore"] = now - phase_started
        phase_started = now

        propagate_guards(model, into_anonymous=self._into_anonymous)
        collect_overrides(model, self._apidb)
        annotate_permissions(model, self._apidb)
        model.phase_seconds["guards"] = (
            time.perf_counter() - phase_started
        )
        return model
