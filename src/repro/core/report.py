"""Plain-text rendering of analysis reports."""

from __future__ import annotations

from .detector import AnalysisReport
from .errors import AnalysisError
from .mismatch import MismatchKind

__all__ = ["render_report", "render_summary_line", "render_error_line"]

def _kind_order() -> tuple:
    """Registration order, read at render time so kinds registered
    after this module imported (e.g. SEM) still get their column."""
    return tuple(MismatchKind)


def render_summary_line(report: AnalysisReport) -> str:
    """One line: app, per-kind counts, and timing."""
    counts = report.by_kind()
    parts = [
        f"{kind.value}={counts.get(kind.value, 0)}"
        for kind in _kind_order()
    ]
    timing = ""
    if report.metrics is not None:
        timing = (
            f"  ({report.metrics.wall_time_s:.2f}s wall, "
            f"{report.metrics.modeled_seconds:.1f}s modeled)"
        )
    return f"{report.app}: {'  '.join(parts)}{timing}"


def render_error_line(app: str, error: AnalysisError) -> str:
    """One line for a failed app: kind/phase, attempts, message."""
    attempts = (
        f" after {error.attempts} attempts" if error.attempts > 1 else ""
    )
    return f"{app}: FAILED [{error.kind.value}/{error.phase.value}]" \
           f"{attempts}: {error.message}"


def render_report(report: AnalysisReport, *, verbose: bool = False) -> str:
    """Full report: summary, then one line per mismatch grouped by kind."""
    lines = [
        f"== {report.tool} analysis of {report.app} ==",
        render_summary_line(report),
    ]
    for kind in _kind_order():
        group = [m for m in report.mismatches if m.kind is kind]
        if not group:
            continue
        lines.append("")
        lines.append(f"-- {kind.value} ({len(group)}) --")
        for mismatch in group:
            lines.append("  " + mismatch.describe())
            if verbose and mismatch.message:
                lines.append(f"      {mismatch.message}")
    if report.metrics is not None and verbose:
        stats = report.metrics.stats
        lines.extend(
            [
                "",
                "-- metrics --",
                f"  classes loaded: {stats.classes_loaded} "
                f"(app {stats.app_classes_loaded}, "
                f"framework {stats.framework_classes_loaded})",
                f"  methods analyzed: {stats.methods_analyzed}",
                f"  modeled time: {report.metrics.modeled_seconds:.1f} s",
                f"  modeled memory: "
                f"{report.metrics.modeled_memory_mb:.0f} MB",
            ]
        )
    return "\n".join(lines)
