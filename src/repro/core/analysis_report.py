"""The per-app analysis report every detector produces.

Lives in its own module (rather than ``core.detector``) so the
pipeline layer and the baselines can build reports without importing
the SAINTDroid facade; ``repro.core.detector`` re-exports it for
backward compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .aum import AumModel
from .metrics import AnalysisMetrics
from .mismatch import Mismatch

__all__ = ["AnalysisReport"]


@dataclass
class AnalysisReport:
    """Result of analyzing one app."""

    app: str
    tool: str
    mismatches: list[Mismatch] = field(default_factory=list)
    metrics: AnalysisMetrics | None = None
    model: AumModel | None = None

    def by_kind(self):
        """Mismatch counts keyed by kind value (``API``/``APC``/…)."""
        counts: dict[str, int] = {}
        for mismatch in self.mismatches:
            counts[mismatch.kind.value] = (
                counts.get(mismatch.kind.value, 0) + 1
            )
        return counts

    @property
    def keys(self) -> frozenset:
        return frozenset(m.key for m in self.mismatches)
