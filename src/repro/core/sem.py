"""SEM — semantic (behavior-only) incompatibility detection.

Pan et al. (PAPERS.md) show many real-world compatibility crashes come
from APIs whose *signature* never changes while their observable
behavior does: a return contract tightens, a new exception appears, a
default flips.  Signature-based detectors (API/APC/PRM) are blind to
these by construction.

This module is also the registry's proof of seam: the SEM kind, its
dynamic-verification policy, its oracle crash sweep, and its difftest
scenario builders are all *registered* here — ``core/mismatch.py``,
``dynamic/verifier.py``, ``difftest/oracle.py`` and
``eval/accuracy.py`` contain no SEM-specific code.

Detection rule: an API usage is semantically mismatched when the app's
target SDK sits on one side of a delta level and some supported device
level sits on the other — the developer tested (and the framework
compatibility shims honor) the *target-side* behavior, so devices on
the wrong side exhibit behavior the app never anticipated.
"""

from __future__ import annotations

from ..analysis.intervals import ApiInterval
from .apidb import ApiDatabase
from .aum import AumModel
from .kinds import (
    CrashSweep,
    MismatchKindSpec,
    VerifyPolicy,
    api_shaped_key,
    register_crash_sweep,
    register_kind,
)
from .mismatch import Mismatch

__all__ = ["SEMANTIC", "semantic_mismatches"]


def _describe_sem(m) -> str:
    return (
        f"[SEM] {m.location} invokes {m.subject}, whose behavior "
        f"differs from the targeted one on device levels "
        f"{m.missing_levels}"
    )


#: App → API, behavior only: the signature resolves everywhere, but
#: some supported device exhibits behavior from the other side of a
#: semantic delta than the app's target SDK.
SEMANTIC = register_kind(
    MismatchKindSpec(
        value="SEM",
        family="SEM",
        is_permission=False,
        key_fn=api_shaped_key,
        describe_fn=_describe_sem,
        verify=VerifyPolicy(
            crash_kind="behavior-change",
            matches=lambda m, crash: (
                crash.api == m.subject and crash.location == m.location
            ),
        ),
        scenario_builders=(
            ("semantic", lambda forge: forge.add_semantic_issue()),
            (
                "semantic-guarded",
                lambda forge: forge.add_guarded_semantic(),
            ),
        ),
    ),
    attr="SEMANTIC",
)

register_crash_sweep(
    CrashSweep(
        crash_kind="behavior-change",
        explains=lambda m, crash: (
            m.kind.value == "SEM"
            and m.subject == crash.api
            and crash.api_level in m.missing_levels
        ),
        record_kind="SEM",
        grant_all=True,
    )
)


def _wrong_side(
    check: ApiInterval, delta_level: int, target: int
) -> list[int]:
    """Device levels in ``check`` on the other side of ``delta_level``
    than the app's target SDK (always a contiguous prefix or suffix)."""
    return [
        level
        for level in check
        if (level >= delta_level) != (target >= delta_level)
    ]


def semantic_mismatches(
    apidb: ApiDatabase, model: AumModel, scope: ApiInterval
) -> list[Mismatch]:
    """Semantic mismatches of every API usage in ``model``.

    Mirrors Algorithm 2's structure: each usage is judged on its
    guard-refined interval met with the device scope, so a call
    correctly wrapped in an SDK_INT guard keeping it on the target's
    side of the delta produces no report.  One finding per usage,
    joining the wrong-side hulls of all the API's deltas.
    """
    app = model.apk.name
    target = model.apk.manifest.target_sdk
    out: list[Mismatch] = []
    seen: set[tuple] = set()
    for usage in model.usages:
        resolved = apidb.resolve(
            usage.api.class_name, usage.api.signature
        )
        if resolved is None or not resolved.semantic_deltas:
            continue
        check = usage.interval.meet(scope)
        if check.is_empty:
            continue
        hull = ApiInterval.empty()
        details: list[str] = []
        for delta in resolved.semantic_deltas:
            wrong = _wrong_side(check, delta.level, target)
            if not wrong:
                continue
            hull = hull.join(ApiInterval.of(min(wrong), max(wrong)))
            details.append(f"{delta.change}@{delta.level}")
        if hull.is_empty:
            continue
        mismatch = Mismatch(
            kind=SEMANTIC,
            app=app,
            location=usage.caller,
            subject=resolved.ref,
            missing_levels=hull,
            message=(
                f"{usage.api.class_name}.{usage.api.name} changes "
                f"behavior ({', '.join(details)}); the app targets "
                f"{target} but the call executes under {check}"
            ),
        )
        if mismatch.key in seen:
            continue
        seen.add(mismatch.key)
        out.append(mismatch)
    return out
