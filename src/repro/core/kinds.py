"""The mismatch-kind registry.

Historically the four mismatch kinds were an enum whose semantics were
baked into five layers: key/describe branches in ``core.mismatch``,
capability frozensets on every detector, probe logic in
``dynamic.verifier``, crash sweeps in ``difftest.oracle``, and kind
groupings in ``eval.accuracy``.  Adding a kind meant editing all of
them.

This module makes "what kinds exist" data.  A
:class:`MismatchKindSpec` carries everything a kind-agnostic layer
needs:

* identity (``value``), grouping ``family`` (capability-table column),
  and the permission/subject shape constraints;
* the key and describe rules consumed by ``Mismatch``;
* the dynamic-verification policy (:class:`VerifyPolicy`) the verifier
  executes — or ``None`` for kinds with no observable crash;
* the oracle's crash-direction sweep (:class:`CrashSweep`), registered
  separately because several kinds can share one sweep;
* difftest scenario builders, so the strategy layer's kind catalog
  extends itself when a kind registers.

The :class:`MismatchKind` facade keeps the enum's calling conventions
(``MismatchKind("API")``, ``MismatchKind.API_INVOCATION``, iteration,
``.value``/``.name``/``.is_permission``) so existing call sites are
untouched; the members are now registered singletons rather than enum
members.  Specs pickle by value and resolve back to the registered
singleton, so ``mismatch.kind is MismatchKind.API_INVOCATION`` holds
across process pools and snapshot restores.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

__all__ = [
    "MismatchKindSpec",
    "VerifyPolicy",
    "CrashSweep",
    "MismatchKind",
    "register_kind",
    "unregister_kind",
    "register_crash_sweep",
    "registered_kinds",
    "registered_sweeps",
    "kind_families",
    "family_of",
    "kind_groups",
    "scenario_contributions",
    "api_shaped_key",
    "callback_shaped_key",
    "permission_shaped_key",
]


# ---------------------------------------------------------------------------
# policies
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class VerifyPolicy:
    """How the dynamic verifier probes one kind's findings.

    ``crash_kind`` is the :class:`~repro.dynamic.interpreter.CrashKind`
    *value* (a string, so this module needs no dynamic-layer import).
    ``withhold_permission=True`` probes on a device granting every
    dangerous permission except the mismatch's own (the permission
    kinds); ``False`` grants everything so unrelated denials cannot
    mask the probe.  ``min_level`` skips probe levels below it (the
    runtime-permission model starts at 23).  ``matches`` decides
    whether an observed crash is the predicted one.
    """

    crash_kind: str
    matches: Callable[[object, object], bool]
    withhold_permission: bool = False
    min_level: int = 0


@dataclass(frozen=True)
class CrashSweep:
    """One crash-direction sweep of the differential oracle.

    The oracle materializes a device per level in
    ``[max(lo, min_level), hi]`` with either every dangerous permission
    granted (``grant_all=True``) or none, collects crashes of
    ``crash_kind``, and demands each be explained by some static
    finding (``explains(mismatch, crash)``).  Unexplained crashes
    become static-FN records labeled ``record_kind``.
    ``honor_permission_hook`` suppresses the sweep for apps
    implementing the runtime-permission result hook (denial handled by
    protocol is user choice, not a miss).
    """

    crash_kind: str
    explains: Callable[[object, object], bool]
    record_kind: str
    grant_all: bool = True
    min_level: int = 0
    honor_permission_hook: bool = False


# ---------------------------------------------------------------------------
# the spec
# ---------------------------------------------------------------------------


def _kind_by_value(value: str) -> "MismatchKindSpec":
    """Pickle hook: resolve a kind back to its registered singleton."""
    return MismatchKind(value)


@dataclass(frozen=True, eq=False)
class MismatchKindSpec:
    """Everything the kind-agnostic layers need to know about a kind.

    ``eq=False`` keeps identity semantics (and identity hashing) — the
    registered spec is a singleton, compared with ``is`` exactly like
    the enum members it replaces.
    """

    value: str
    family: str
    is_permission: bool
    key_fn: Callable[[object], tuple]
    describe_fn: Callable[[object], str]
    verify: VerifyPolicy | None = None
    scenario_builders: tuple[tuple[str, Callable], ...] = ()
    #: Attribute name on the :class:`MismatchKind` facade; set by
    #: :func:`register_kind`.
    attr_name: str = ""

    @property
    def name(self) -> str:
        """Enum-compatible member name."""
        return self.attr_name or self.value

    @property
    def requires_subject(self) -> bool:
        return not self.is_permission

    def __repr__(self) -> str:
        return f"<MismatchKind.{self.name}: {self.value!r}>"

    def __str__(self) -> str:
        return f"MismatchKind.{self.name}"

    def __reduce__(self):
        return (_kind_by_value, (self.value,))


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

_REGISTRY: dict[str, MismatchKindSpec] = {}
_ATTRS: dict[str, MismatchKindSpec] = {}
_SWEEPS: list[CrashSweep] = []

#: First-registration sequence numbers, never forgotten.  A family's
#: column position is assigned the first time any kind of that family
#: registers and survives unregister/re-register cycles (the plugin
#: and test-seam dance), so capability-table and agreement-matrix
#: column order is a function of *registration history*, not of the
#: registry dict's current insertion order.
_FAMILY_ORDER: dict[str, int] = {}
_KIND_ORDER: dict[str, int] = {}


def register_kind(spec: MismatchKindSpec, *, attr: str) -> MismatchKindSpec:
    """Register ``spec`` under facade attribute ``attr``.

    Re-registering the same value is an error (two modules claiming one
    kind is a bug, not a merge); use :func:`unregister_kind` in tests.
    """
    if spec.value in _REGISTRY:
        raise ValueError(
            f"mismatch kind {spec.value!r} is already registered"
        )
    object.__setattr__(spec, "attr_name", attr)
    _REGISTRY[spec.value] = spec
    _ATTRS[attr] = spec
    _KIND_ORDER.setdefault(spec.value, len(_KIND_ORDER))
    _FAMILY_ORDER.setdefault(spec.family, len(_FAMILY_ORDER))
    return spec


def unregister_kind(value: str) -> None:
    """Remove a registered kind — a testing seam for registry-invariant
    tests; production code never unregisters."""
    spec = _REGISTRY.pop(value, None)
    if spec is not None:
        _ATTRS.pop(spec.attr_name, None)


def register_crash_sweep(sweep: CrashSweep) -> CrashSweep:
    """Contribute one oracle crash sweep (idempotent by content)."""
    if sweep not in _SWEEPS:
        _SWEEPS.append(sweep)
    return sweep


def registered_kinds() -> tuple[MismatchKindSpec, ...]:
    """Every registered kind, in registration order."""
    return tuple(_REGISTRY.values())


def registered_sweeps() -> tuple[CrashSweep, ...]:
    """Every contributed crash sweep, in registration order."""
    return tuple(_SWEEPS)


def kind_families() -> tuple[str, ...]:
    """Distinct kind families in *first-registration* order — the
    capability matrix's columns.

    Ordered by the sequence number a family was assigned when its
    first kind registered, not by the registry dict's insertion order:
    a kind unregistered and re-registered (the plugin reload / test
    seam dance) would otherwise migrate its family column to the end,
    reshuffling every downstream capability table and agreement
    matrix between runs."""
    families = {spec.family for spec in _REGISTRY.values()}
    return tuple(sorted(families, key=_FAMILY_ORDER.__getitem__))


def family_of(value: str) -> str:
    """The capability family of kind ``value``."""
    spec = _REGISTRY.get(value)
    if spec is None:
        raise ValueError(f"{value!r} is not a registered mismatch kind")
    return spec.family


def kind_groups() -> dict[str, tuple[str, ...]]:
    """Kind groupings for accuracy reports, derived from the registry:
    one group per family, the paper's pooled ``API+APC`` headline when
    both families exist, and an everything pool."""
    groups: dict[str, tuple[str, ...]] = {}
    for spec in _REGISTRY.values():
        groups[spec.family] = groups.get(spec.family, ()) + (spec.value,)
    if "API" in groups and "APC" in groups:
        groups["API+APC"] = groups["API"] + groups["APC"]
    groups["ALL"] = tuple(spec.value for spec in _REGISTRY.values())
    return groups


def scenario_contributions() -> tuple[tuple[str, Callable], ...]:
    """Difftest scenario builders contributed by registered kinds, in
    registration order (the strategy layer appends these to its own
    catalog, so the kind order is part of the planning determinism
    contract)."""
    out: list[tuple[str, Callable]] = []
    for spec in _REGISTRY.values():
        out.extend(spec.scenario_builders)
    return tuple(out)


# ---------------------------------------------------------------------------
# the enum-compatible facade
# ---------------------------------------------------------------------------


class _KindMeta(type):
    def __call__(cls, value: str) -> MismatchKindSpec:
        spec = _REGISTRY.get(value)
        if spec is None:
            raise ValueError(f"{value!r} is not a valid MismatchKind")
        return spec

    def __iter__(cls) -> Iterator[MismatchKindSpec]:
        return iter(_REGISTRY.values())

    def __len__(cls) -> int:
        return len(_REGISTRY)

    def __getattr__(cls, name: str) -> MismatchKindSpec:
        try:
            return _ATTRS[name]
        except KeyError:
            raise AttributeError(
                f"no registered mismatch kind named {name!r}"
            ) from None

    def __instancecheck__(cls, instance: object) -> bool:
        return isinstance(instance, MismatchKindSpec)


class MismatchKind(metaclass=_KindMeta):
    """Accessor over the registered kinds, call-compatible with the
    enum it replaced: ``MismatchKind("API")`` returns the registered
    singleton (``ValueError`` for unknown values),
    ``MismatchKind.API_INVOCATION`` is attribute access, and iteration
    yields kinds in registration order."""


# ---------------------------------------------------------------------------
# key / describe building blocks (shared by base kinds and extensions)
# ---------------------------------------------------------------------------


def api_shaped_key(mismatch) -> tuple:
    """Call-site identity: (kind, app, calling method, API triple)."""
    subject = mismatch.subject
    return (
        mismatch.kind.value,
        mismatch.app,
        mismatch.location,
        (subject.class_name, subject.name, subject.descriptor),
    )


def callback_shaped_key(mismatch) -> tuple:
    """Callback identity: which app class overrides which framework
    signature."""
    subject = mismatch.subject
    location_class = (
        mismatch.location.class_name if mismatch.location else None
    )
    return (
        mismatch.kind.value,
        mismatch.app,
        location_class,
        f"{subject.name}{subject.descriptor}",
    )


def permission_shaped_key(mismatch) -> tuple:
    """Permission identity: one finding per permission per app."""
    return (mismatch.kind.value, mismatch.app, mismatch.permission)


# ---------------------------------------------------------------------------
# the base kinds (paper Table I; PRM splits in two per section II-C)
# ---------------------------------------------------------------------------


def _describe_api(m) -> str:
    return (
        f"[API] {m.location} invokes {m.subject}, "
        f"missing on device levels {m.missing_levels}"
    )


def _describe_apc(m) -> str:
    return (
        f"[APC] {m.location} overrides {m.subject}, "
        f"never invoked on device levels {m.missing_levels}"
    )


def _describe_request(m) -> str:
    return (
        f"[PRM] {m.app} uses dangerous permission "
        f"{m.permission} (via {m.location}) without the "
        f"runtime request protocol (devices {m.missing_levels})"
    )


def _describe_revocation(m) -> str:
    return (
        f"[PRM] {m.app} uses dangerous permission "
        f"{m.permission} (via {m.location}) revocable on "
        f"devices {m.missing_levels}"
    )


#: App → API: app invokes a method missing at some supported level.
API_INVOCATION = register_kind(
    MismatchKindSpec(
        value="API",
        family="API",
        is_permission=False,
        key_fn=api_shaped_key,
        describe_fn=_describe_api,
        verify=VerifyPolicy(
            crash_kind="missing-method",
            matches=lambda m, crash: (
                crash.api == m.subject and crash.location == m.location
            ),
        ),
    ),
    attr="API_INVOCATION",
)

#: API → App: app overrides a callback missing at some level.  No
#: observable crash — the failure mode is a hook silently never run —
#: so there is no verify policy (findings stay static-only).
API_CALLBACK = register_kind(
    MismatchKindSpec(
        value="APC",
        family="APC",
        is_permission=False,
        key_fn=callback_shaped_key,
        describe_fn=_describe_apc,
        verify=None,
    ),
    attr="API_CALLBACK",
)

_PERMISSION_VERIFY = VerifyPolicy(
    crash_kind="permission-denied",
    matches=lambda m, crash: crash.permission == m.permission,
    withhold_permission=True,
    min_level=23,
)

#: App targets ≥23, uses a dangerous permission, never implements the
#: runtime request protocol.
PERMISSION_REQUEST = register_kind(
    MismatchKindSpec(
        value="PRM-request",
        family="PRM",
        is_permission=True,
        key_fn=permission_shaped_key,
        describe_fn=_describe_request,
        verify=_PERMISSION_VERIFY,
    ),
    attr="PERMISSION_REQUEST",
)

#: App targets ≤22, uses a dangerous permission revocable on ≥23.
PERMISSION_REVOCATION = register_kind(
    MismatchKindSpec(
        value="PRM-revocation",
        family="PRM",
        is_permission=True,
        key_fn=permission_shaped_key,
        describe_fn=_describe_revocation,
        verify=_PERMISSION_VERIFY,
    ),
    attr="PERMISSION_REVOCATION",
)


register_crash_sweep(
    CrashSweep(
        crash_kind="missing-method",
        explains=lambda m, crash: (
            m.kind.value == "API"
            and m.subject == crash.api
            and crash.api_level in m.missing_levels
        ),
        record_kind="API",
        grant_all=True,
    )
)

register_crash_sweep(
    CrashSweep(
        crash_kind="permission-denied",
        explains=lambda m, crash: (
            m.kind.is_permission and m.permission == crash.permission
        ),
        record_kind="PRM",
        grant_all=False,
        min_level=23,
        honor_permission_hook=True,
    )
)
