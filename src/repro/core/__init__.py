"""SAINTDroid core: AUM, ARM, AMD, and the detector facade."""

from .mismatch import Mismatch, MismatchKind
from .errors import (
    AnalysisError,
    AnalysisPhase,
    ErrorKind,
    WorkerLostError,
    classify_exception,
)
from .apidb import ApiClassEntry, ApiDatabase, ApiEntry
from .arm import build_api_database, close_permissions, mine_images, mine_spec
from .aum import (
    ApiUsage,
    ApiUsageModeler,
    AumModel,
    OverrideRecord,
    PermissionUse,
)
from .amd import (
    AndroidMismatchDetector,
    RUNTIME_PERMISSION_CALLBACK_SIGNATURE,
)
from .evolution import (
    CallTransition,
    HookTransition,
    ReportDiff,
    UpdateImpactReport,
    diff_reports,
    update_impact,
)
from .metrics import AnalysisMetrics
from .detector import AnalysisReport, SaintDroid
from .report import render_report, render_summary_line
# Registers the SEM kind (plus its verify policy, oracle sweep and
# difftest scenarios) as a side effect; package init runs before any
# repro.core.* import, so SEM is registered before any codec decodes.
from .sem import semantic_mismatches

__all__ = [
    "AnalysisError",
    "AnalysisMetrics",
    "AnalysisPhase",
    "AnalysisReport",
    "ErrorKind",
    "WorkerLostError",
    "classify_exception",
    "AndroidMismatchDetector",
    "ApiClassEntry",
    "ApiDatabase",
    "ApiEntry",
    "ApiUsage",
    "ApiUsageModeler",
    "AumModel",
    "CallTransition",
    "HookTransition",
    "Mismatch",
    "MismatchKind",
    "OverrideRecord",
    "PermissionUse",
    "RUNTIME_PERMISSION_CALLBACK_SIGNATURE",
    "ReportDiff",
    "UpdateImpactReport",
    "SaintDroid",
    "build_api_database",
    "close_permissions",
    "mine_images",
    "diff_reports",
    "mine_spec",
    "render_report",
    "semantic_mismatches",
    "update_impact",
    "render_summary_line",
]
