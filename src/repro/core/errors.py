"""Structured error taxonomy for corpus-scale analysis runs.

Large-scale vetting pipelines live and die by how they account for
failure: a run over thousands of apps *will* meet malformed packages,
analyzer crashes, per-app hangs, and dying workers, and "an error
string" is not enough to decide what to do next.  Every failed app in
this repository therefore carries an :class:`AnalysisError` record:

* ``kind`` — *what* went wrong (:class:`ErrorKind`): ``parse``,
  ``timeout``, ``crash``, ``worker-lost``, or ``resource``;
* ``phase`` — *where* it went wrong (:class:`AnalysisPhase`): APK
  ingestion, AUM construction, ARM database work, AMD detection, or an
  unattributed tool phase;
* ``retryable`` — whether a fresh attempt could plausibly succeed
  (timeouts and lost workers: yes; deterministic crashes and parse
  failures: no);
* ``traceback_tail`` — the last few stack frames, enough to file a
  bug without shipping whole tracebacks between processes;
* ``attempts`` — how many attempts the scheduler spent before giving
  the app up (quarantine).

:func:`classify_exception` maps any raised exception to a record; the
mapping is the single place the retry policy consults.
"""

from __future__ import annotations

import enum
import traceback
from contextlib import contextmanager
from dataclasses import dataclass, replace

__all__ = [
    "ErrorKind",
    "AnalysisPhase",
    "AnalysisError",
    "WorkerLostError",
    "classify_exception",
    "diagnostics_error",
    "tag_phase",
]

#: Maximum characters kept from an exception message.
MESSAGE_LIMIT = 300
#: Stack frames preserved in ``traceback_tail``.
TRACEBACK_FRAMES = 3

#: Attribute set on exceptions by :func:`tag_phase` so the classifier
#: can attribute a failure to the pipeline phase that raised it.
_PHASE_ATTR = "_analysis_phase"


class ErrorKind(enum.Enum):
    """What went wrong — the operational failure taxonomy."""

    #: The package was malformed (strict ingestion rejected it, or the
    #: lenient path could not produce even a partial model).
    PARSE = "parse"
    #: The app exceeded its wall-clock budget.
    TIMEOUT = "timeout"
    #: The analyzer raised (a bug, or a hostile input it mishandles).
    CRASH = "crash"
    #: The worker process died under the app (OOM-killed, segfault in
    #: a native dependency, operator kill).
    WORKER_LOST = "worker-lost"
    #: The host ran out of a resource (memory, file handles).
    RESOURCE = "resource"


class AnalysisPhase(enum.Enum):
    """Where it went wrong — the pipeline stage that failed."""

    APK = "apk"      # package ingestion / deserialization
    AUM = "aum"      # API usage modeling
    ARM = "arm"      # API database construction / queries
    AMD = "amd"      # mismatch detection
    TOOL = "tool"    # unattributed (baselines, harness glue)


#: Kinds a scheduler may re-attempt on a fresh worker.
RETRYABLE_KINDS = frozenset(
    {ErrorKind.TIMEOUT, ErrorKind.WORKER_LOST, ErrorKind.RESOURCE}
)


class WorkerLostError(Exception):
    """The process analyzing an app disappeared mid-flight.

    Raised directly only when worker death is *simulated* in-process
    (serial runs under fault injection); real pool-worker deaths are
    observed by the parent as a broken pool and synthesized into the
    same error record.
    """


@dataclass(frozen=True)
class AnalysisError:
    """One app's failure, structured for triage and retry decisions."""

    kind: ErrorKind
    phase: AnalysisPhase = AnalysisPhase.TOOL
    message: str = ""
    retryable: bool = False
    #: Last ``TRACEBACK_FRAMES`` frames, innermost last, rendered as
    #: ``file:line in func``.
    traceback_tail: tuple[str, ...] = ()
    #: Attempts spent on the app (1 = failed first try, no retries).
    attempts: int = 1

    def __str__(self) -> str:
        return f"{self.kind.value}/{self.phase.value}: {self.message}"

    def with_attempts(self, attempts: int) -> "AnalysisError":
        return replace(self, attempts=attempts)

    def fingerprint(self) -> dict:
        """Deterministic content: excludes ``attempts`` (schedules may
        legitimately spend different retry counts on the same outcome)
        and ``traceback_tail`` (kept out so a resumed run restored
        from a journal is bit-identical to an uninterrupted one even
        if source line numbers move between deployments)."""
        return {
            "kind": self.kind.value,
            "phase": self.phase.value,
            "message": self.message,
        }

    # -- JSON round-trip (checkpoint journal) -------------------------

    def to_dict(self) -> dict:
        return {
            "kind": self.kind.value,
            "phase": self.phase.value,
            "message": self.message,
            "retryable": self.retryable,
            "tracebackTail": list(self.traceback_tail),
            "attempts": self.attempts,
        }

    @staticmethod
    def from_dict(doc: dict) -> "AnalysisError":
        return AnalysisError(
            kind=ErrorKind(doc["kind"]),
            phase=AnalysisPhase(doc["phase"]),
            message=doc.get("message", ""),
            retryable=bool(doc.get("retryable", False)),
            traceback_tail=tuple(doc.get("tracebackTail", ())),
            attempts=int(doc.get("attempts", 1)),
        )


@contextmanager
def tag_phase(phase: AnalysisPhase):
    """Attribute any exception escaping the block to ``phase``.

    The innermost tag wins; an exception already tagged by a nested
    stage keeps its more precise attribution.
    """
    try:
        yield
    except BaseException as exc:
        if getattr(exc, _PHASE_ATTR, None) is None:
            setattr(exc, _PHASE_ATTR, phase)
        raise


def _truncate(text: str) -> str:
    if len(text) <= MESSAGE_LIMIT:
        return text
    return text[: MESSAGE_LIMIT - 1] + "…"


def _traceback_tail(exc: BaseException) -> tuple[str, ...]:
    frames = traceback.extract_tb(exc.__traceback__)
    return tuple(
        f"{frame.filename.rsplit('/', 1)[-1]}:{frame.lineno} "
        f"in {frame.name}"
        for frame in frames[-TRACEBACK_FRAMES:]
    )


def _kind_of(exc: BaseException) -> ErrorKind:
    # Imported lazily: runner imports this module.
    from ..eval.runner import AppTimeoutError

    if isinstance(exc, AppTimeoutError):
        return ErrorKind.TIMEOUT
    if isinstance(exc, WorkerLostError):
        return ErrorKind.WORKER_LOST
    if isinstance(exc, (MemoryError, OSError)):
        return ErrorKind.RESOURCE
    if getattr(exc, _PHASE_ATTR, None) is AnalysisPhase.APK or (
        type(exc).__name__ in ("SerializationError", "CorruptApkError")
    ):
        return ErrorKind.PARSE
    return ErrorKind.CRASH


def classify_exception(
    exc: BaseException,
    *,
    phase: AnalysisPhase | None = None,
    attempts: int = 1,
) -> AnalysisError:
    """Map a raised exception to its taxonomy record.

    ``phase`` overrides attribution; otherwise the tag planted by
    :func:`tag_phase` is used, defaulting to the unattributed tool
    phase.
    """
    kind = _kind_of(exc)
    resolved_phase = (
        phase
        or getattr(exc, _PHASE_ATTR, None)
        or (AnalysisPhase.APK if kind is ErrorKind.PARSE
            else AnalysisPhase.TOOL)
    )
    return AnalysisError(
        kind=kind,
        phase=resolved_phase,
        message=_truncate(f"{type(exc).__name__}: {exc}"),
        retryable=kind in RETRYABLE_KINDS,
        traceback_tail=_traceback_tail(exc),
        attempts=attempts,
    )


def diagnostics_error(diagnostics, *, attempts: int = 1) -> AnalysisError:
    """Fold lenient-ingestion diagnostics into a parse-kind record
    (used when even the lenient path cannot produce a usable model)."""
    message = _truncate(
        "; ".join(str(diag) for diag in diagnostics) or "malformed package"
    )
    return AnalysisError(
        kind=ErrorKind.PARSE,
        phase=AnalysisPhase.APK,
        message=message,
        retryable=False,
        attempts=attempts,
    )
