"""“Death on update” analysis (paper section I).

The paper motivates SAINTDroid with framework-update breakage: "23% of
Android apps behave differently after a framework update, and around
50% of the Android updates have caused instability in previously
working apps".  This module answers the concrete question behind that
statistic for one app: *what changes when the device under this app is
updated from framework level A to level B?*

:func:`update_impact` classifies every API usage and callback override
of the app against the two levels:

* **breaking calls** — APIs the app can invoke at the old level that no
  longer exist at the new one (the crash-on-update case);
* **healed calls** — calls that were broken before the update and work
  after it;
* **silenced hooks** — overridden callbacks the old framework invoked
  but the new one does not (silent behaviour change);
* **activated hooks** — overridden callbacks that only start firing
  after the update (the Simple Solitaire ``onAttach(Context)`` case);
* **permission model shift** — whether the update crosses the API-23
  boundary, changing the permission system under an install-time app.

:func:`diff_reports` supports the app-update direction instead: which
mismatches are new, fixed, or carried over between two *versions of the
app* analyzed with the same detector.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..apk.manifest import RUNTIME_PERMISSIONS_LEVEL
from .apidb import ApiDatabase
from .aum import AumModel
from .detector import AnalysisReport
from .mismatch import Mismatch
from ..ir.types import MethodRef

__all__ = [
    "CallTransition",
    "HookTransition",
    "UpdateImpactReport",
    "update_impact",
    "ReportDiff",
    "diff_reports",
]


@dataclass(frozen=True)
class CallTransition:
    """One API usage whose availability changes across the update."""

    caller: MethodRef
    api: MethodRef
    exists_before: bool
    exists_after: bool

    @property
    def breaking(self) -> bool:
        return self.exists_before and not self.exists_after

    @property
    def healed(self) -> bool:
        return not self.exists_before and self.exists_after


@dataclass(frozen=True)
class HookTransition:
    """One overridden callback whose liveness changes."""

    app_class: str
    signature: str
    framework_class: str
    fires_before: bool
    fires_after: bool

    @property
    def silenced(self) -> bool:
        return self.fires_before and not self.fires_after

    @property
    def activated(self) -> bool:
        return not self.fires_before and self.fires_after


@dataclass
class UpdateImpactReport:
    """Everything that changes for one app across one device update."""

    app: str
    old_level: int
    new_level: int
    breaking_calls: list[CallTransition] = field(default_factory=list)
    healed_calls: list[CallTransition] = field(default_factory=list)
    silenced_hooks: list[HookTransition] = field(default_factory=list)
    activated_hooks: list[HookTransition] = field(default_factory=list)
    permission_model_shift: bool = False

    @property
    def behaviour_changes(self) -> int:
        """Count of distinct update-induced behaviour changes."""
        return (
            len(self.breaking_calls)
            + len(self.healed_calls)
            + len(self.silenced_hooks)
            + len(self.activated_hooks)
            + (1 if self.permission_model_shift else 0)
        )

    @property
    def is_stable(self) -> bool:
        return self.behaviour_changes == 0

    def describe(self) -> str:
        lines = [
            f"update impact for {self.app}: API {self.old_level} -> "
            f"{self.new_level} "
            f"({'stable' if self.is_stable else 'behaviour changes'})"
        ]
        for transition in self.breaking_calls:
            lines.append(
                f"  BREAKS  {transition.caller} -> {transition.api} "
                f"(removed by the update)"
            )
        for transition in self.healed_calls:
            lines.append(
                f"  heals   {transition.caller} -> {transition.api} "
                f"(introduced by the update)"
            )
        for hook in self.silenced_hooks:
            lines.append(
                f"  SILENCES {hook.app_class}.{hook.signature} "
                f"(no longer invoked)"
            )
        for hook in self.activated_hooks:
            lines.append(
                f"  activates {hook.app_class}.{hook.signature} "
                f"(starts firing after the update)"
            )
        if self.permission_model_shift:
            lines.append(
                "  SHIFTS permission model: install-time grants become "
                "runtime-revocable (API 23 boundary crossed)"
            )
        return "\n".join(lines)


def update_impact(
    model: AumModel,
    apidb: ApiDatabase,
    old_level: int,
    new_level: int,
) -> UpdateImpactReport:
    """Classify an app's framework surface across a device update.

    ``model`` is the AUM artifact from a prior analysis (it carries all
    usages and overrides); levels need not be adjacent or increasing.
    """
    report = UpdateImpactReport(
        app=model.apk.name, old_level=old_level, new_level=new_level
    )

    seen_calls: set[tuple[MethodRef, MethodRef]] = set()
    for usage in model.usages:
        key = (usage.caller, usage.api)
        if key in seen_calls:
            continue
        seen_calls.add(key)
        # Only calls that can actually execute at the given levels
        # matter; guard-excluded levels cannot break.
        before_reachable = old_level in usage.interval
        after_reachable = new_level in usage.interval
        exists_before = apidb.exists(
            usage.api.class_name, usage.api.signature, old_level
        )
        exists_after = apidb.exists(
            usage.api.class_name, usage.api.signature, new_level
        )
        transition = CallTransition(
            caller=usage.caller,
            api=usage.api,
            exists_before=exists_before,
            exists_after=exists_after,
        )
        if transition.breaking and after_reachable:
            report.breaking_calls.append(transition)
        elif transition.healed and before_reachable:
            report.healed_calls.append(transition)

    seen_hooks: set[tuple[str, str]] = set()
    for record in model.overrides:
        key = (record.app_class, record.signature)
        if key in seen_hooks:
            continue
        seen_hooks.add(key)
        entry = apidb.callback_entry(
            record.framework_class, record.signature
        )
        if entry is None:
            continue
        fires_before = apidb.exists(
            record.framework_class, record.signature, old_level
        )
        fires_after = apidb.exists(
            record.framework_class, record.signature, new_level
        )
        hook = HookTransition(
            app_class=record.app_class,
            signature=record.signature,
            framework_class=record.framework_class,
            fires_before=fires_before,
            fires_after=fires_after,
        )
        if hook.silenced:
            report.silenced_hooks.append(hook)
        elif hook.activated:
            report.activated_hooks.append(hook)

    crosses_23 = (
        old_level < RUNTIME_PERMISSIONS_LEVEL <= new_level
        or new_level < RUNTIME_PERMISSIONS_LEVEL <= old_level
    )
    uses_dangerous = bool(model.permission_uses)
    report.permission_model_shift = crosses_23 and uses_dangerous
    return report


# ---------------------------------------------------------------------------
# app-update direction: diff two analysis reports
# ---------------------------------------------------------------------------

@dataclass
class ReportDiff:
    """Mismatch-level diff between two versions of an app."""

    introduced: list[Mismatch] = field(default_factory=list)
    fixed: list[Mismatch] = field(default_factory=list)
    carried: list[Mismatch] = field(default_factory=list)

    @property
    def regressed(self) -> bool:
        return bool(self.introduced)

    def summary(self) -> str:
        return (
            f"{len(self.introduced)} introduced, {len(self.fixed)} fixed, "
            f"{len(self.carried)} carried over"
        )


def diff_reports(
    old: AnalysisReport, new: AnalysisReport
) -> ReportDiff:
    """Which mismatches a new app version introduces/fixes/carries.

    Keys ignore the app label so two differently-labeled versions of
    the same package compare cleanly.
    """

    def unlabeled(keys_source: AnalysisReport) -> dict:
        return {
            (m.key[0],) + m.key[2:]: m for m in keys_source.mismatches
        }

    old_keys = unlabeled(old)
    new_keys = unlabeled(new)
    diff = ReportDiff()
    for key, mismatch in new_keys.items():
        if key in old_keys:
            diff.carried.append(mismatch)
        else:
            diff.introduced.append(mismatch)
    for key, mismatch in old_keys.items():
        if key not in new_keys:
            diff.fixed.append(mismatch)
    return diff
