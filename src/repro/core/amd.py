"""AMD — the Android Mismatch Detector (paper section III-C).

Consumes the AUM model and the ARM database and emits mismatches:

* **Algorithm 2 (invocation)** — every API usage is checked against
  the database at each device level of its guard-refined interval; a
  level at which the method is not callable is a mismatch.  Because
  the AUM intervals already encode path-sensitive, inter-procedural
  guard information, a call correctly wrapped in
  ``if (SDK_INT >= α)`` — even when the guard sits in a caller —
  produces no report.
* **Algorithm 3 (callback)** — every app override of a framework
  *callback* is checked for existence across the app's entire
  supported range; levels at which the callback does not exist mean
  the hook is silently never invoked there.
* **Algorithm 4 (permission)** — apps targeting ≥23 that use dangerous
  permissions without implementing ``onRequestPermissionsResult`` get
  a *request* mismatch per permission; apps targeting ≤22 whose
  dangerous permissions can be revoked on ≥23 devices get a
  *revocation* mismatch per requested permission.
"""

from __future__ import annotations

from ..apk.manifest import MAX_API_LEVEL, RUNTIME_PERMISSIONS_LEVEL
from ..framework.permissions import is_dangerous
from ..analysis.intervals import ApiInterval
from .apidb import ApiDatabase
from .aum import AumModel
from .mismatch import Mismatch, MismatchKind

__all__ = ["AndroidMismatchDetector",
           "RUNTIME_PERMISSION_CALLBACK_SIGNATURE"]

#: The runtime-permission result hook apps must override (Algorithm 4).
RUNTIME_PERMISSION_CALLBACK_SIGNATURE = (
    "onRequestPermissionsResult(int,java.lang.String[],int[])void"
)

#: Device levels on which the runtime permission system is active.
_RUNTIME_PERMISSION_RANGE = ApiInterval.of(
    RUNTIME_PERMISSIONS_LEVEL, MAX_API_LEVEL
)


class AndroidMismatchDetector:
    """Turns an :class:`AumModel` into a list of mismatches.

    Each algorithm is a public stage method (``invocation_mismatches``
    / ``callback_mismatches`` / ``permission_mismatches``) so the
    pipeline's ``detect-api`` / ``detect-apc`` / ``detect-prm`` passes
    can run — and be skipped — independently; :meth:`detect` composes
    all three for direct use.
    """

    def __init__(self, apidb: ApiDatabase) -> None:
        self._apidb = apidb

    def detect(
        self,
        model: AumModel,
        device_levels: ApiInterval | None = None,
    ) -> list[Mismatch]:
        """Detect mismatches, optionally restricted to a device-level
        range.

        The paper's interface takes "an app APK along with a set of
        Android framework versions"; ``device_levels`` is that set
        (as an interval).  ``None`` checks the app's entire declared
        range.  A vendor shipping only API 24+ devices, for example,
        passes ``ApiInterval.of(24, 29)`` and stops seeing findings
        that can only bite on older devices.
        """
        scope = self.scope(model, device_levels)
        if scope.is_empty:
            return []
        mismatches: list[Mismatch] = []
        mismatches.extend(self.invocation_mismatches(model, scope))
        mismatches.extend(self.callback_mismatches(model, scope))
        mismatches.extend(self.permission_mismatches(model, scope))
        return mismatches

    @staticmethod
    def scope(
        model: AumModel, device_levels: ApiInterval | None
    ) -> ApiInterval:
        if device_levels is None:
            return model.app_interval
        return model.app_interval.meet(device_levels)

    # -- Algorithm 2: invocation mismatches --------------------------------

    def invocation_mismatches(
        self, model: AumModel, scope: ApiInterval
    ) -> list[Mismatch]:
        app = model.apk.name
        app_interval = scope
        out: list[Mismatch] = []
        for usage in model.usages:
            resolved = self._apidb.resolve(
                usage.api.class_name, usage.api.signature
            )
            if resolved is None:
                # Not a known API (third-party namespace or synthetic);
                # nothing to judge against.
                continue
            check_interval = usage.interval.meet(app_interval)
            if check_interval.is_empty:
                continue
            missing = self._apidb.missing_levels(
                usage.api.class_name, usage.api.signature, check_interval
            )
            if missing.is_empty:
                continue
            out.append(
                Mismatch(
                    kind=MismatchKind.API_INVOCATION,
                    app=app,
                    location=usage.caller,
                    subject=resolved.ref,
                    missing_levels=missing,
                    message=(
                        f"{usage.api.class_name}.{usage.api.name} is not "
                        f"callable on device levels {missing} but the call "
                        f"executes under {check_interval}"
                    ),
                )
            )
        return out

    # -- Algorithm 3: callback mismatches ------------------------------------

    def callback_mismatches(
        self, model: AumModel, scope: ApiInterval
    ) -> list[Mismatch]:
        app = model.apk.name
        app_interval = scope
        out: list[Mismatch] = []
        for record in model.overrides:
            if record.signature == RUNTIME_PERMISSION_CALLBACK_SIGNATURE:
                # Implementing the runtime-permission protocol is the
                # *recommended* pattern; Android Studio generates it for
                # any minSdk.  Flagging it would bury real findings.
                continue
            entry = self._apidb.callback_entry(
                record.framework_class, record.signature
            )
            if entry is None:
                continue  # overrides a plain method, not a hook
            missing = self._apidb.missing_levels(
                record.framework_class, record.signature, app_interval
            )
            if missing.is_empty:
                continue
            out.append(
                Mismatch(
                    kind=MismatchKind.API_CALLBACK,
                    app=app,
                    location=record.method,
                    subject=entry.ref,
                    missing_levels=missing,
                    message=(
                        f"{record.app_class} overrides callback "
                        f"{entry.signature} which does not exist on device "
                        f"levels {missing}; the hook is never invoked there"
                    ),
                )
            )
        return out

    # -- Algorithm 4: permission mismatches ------------------------------------

    def _implements_runtime_permissions(self, model: AumModel) -> bool:
        return any(
            record.signature == RUNTIME_PERMISSION_CALLBACK_SIGNATURE
            for record in model.overrides
        )

    def permission_mismatches(
        self, model: AumModel, scope: ApiInterval
    ) -> list[Mismatch]:
        manifest = model.apk.manifest
        app = model.apk.name
        runtime_scope = scope.meet(_RUNTIME_PERMISSION_RANGE)
        if runtime_scope.is_empty:
            return []  # no runtime-permission device in scope
        out: list[Mismatch] = []

        requested_dangerous = frozenset(
            p for p in manifest.permissions if is_dangerous(p)
        )

        if manifest.uses_runtime_permissions_model:
            # Request mismatches: app targets the runtime model but
            # never implements the result callback.
            if self._implements_runtime_permissions(model):
                return out
            seen: set[str] = set()
            for use in model.permission_uses:
                live = use.interval.meet(runtime_scope)
                if live.is_empty:
                    continue
                for permission in sorted(use.permissions):
                    if permission in seen:
                        continue
                    seen.add(permission)
                    out.append(
                        Mismatch(
                            kind=MismatchKind.PERMISSION_REQUEST,
                            app=app,
                            location=use.caller,
                            subject=use.api,
                            missing_levels=live,
                            permission=permission,
                            message=(
                                f"uses {permission} (via {use.api}) but "
                                f"never implements the runtime permission "
                                f"request protocol"
                            ),
                        )
                    )
            return out

        # Revocation mismatches: install-time model, but on ≥23 devices
        # the user can revoke any granted dangerous permission.
        seen = set()
        for use in model.permission_uses:
            live = use.interval.meet(runtime_scope)
            if live.is_empty:
                continue
            for permission in sorted(use.permissions):
                if permission not in requested_dangerous:
                    continue  # never granted, nothing to revoke
                if permission in seen:
                    continue
                seen.add(permission)
                out.append(
                    Mismatch(
                        kind=MismatchKind.PERMISSION_REVOCATION,
                        app=app,
                        location=use.caller,
                        subject=use.api,
                        missing_levels=live,
                        permission=permission,
                        message=(
                            f"targets API {manifest.target_sdk} but uses "
                            f"{permission} (via {use.api}), revocable on "
                            f"devices {live}"
                        ),
                    )
                )
        return out
