"""SAINTDroid facade: AUM + ARM + AMD behind one ``analyze`` call.

This is the class downstream users instantiate::

    from repro import SaintDroid
    detector = SaintDroid()
    report = detector.analyze(apk)
    for mismatch in report.mismatches:
        print(mismatch.describe())

The facade also exposes the two ablation knobs the evaluation section
studies: eager (whole-world) loading instead of the CLVM, and guard
propagation into anonymous inner classes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..apk.package import Apk
from ..framework.repository import FrameworkRepository
from ..analysis.clvm import ClassLoaderVM
from .amd import AndroidMismatchDetector
from .apidb import ApiDatabase
from .arm import build_api_database
from .aum import ApiUsageModeler, AumModel
from .errors import AnalysisPhase, tag_phase
from .metrics import AnalysisMetrics
from .mismatch import Mismatch

__all__ = ["AnalysisReport", "SaintDroid"]


@dataclass
class AnalysisReport:
    """Result of analyzing one app."""

    app: str
    tool: str
    mismatches: list[Mismatch] = field(default_factory=list)
    metrics: AnalysisMetrics | None = None
    model: AumModel | None = None

    def by_kind(self):
        """Mismatch counts keyed by kind value (``API``/``APC``/…)."""
        counts: dict[str, int] = {}
        for mismatch in self.mismatches:
            counts[mismatch.kind.value] = (
                counts.get(mismatch.kind.value, 0) + 1
            )
        return counts

    @property
    def keys(self) -> frozenset:
        return frozenset(m.key for m in self.mismatches)


class SaintDroid:
    """The full detector (paper Figure 2).

    Satisfies the same duck-typed interface as the baselines in
    :mod:`repro.baselines` (``analyze``, ``name``, ``capabilities``,
    ``requires_source``) so evaluation code treats all tools uniformly.
    """

    name = "SAINTDroid"
    capabilities = frozenset({"API", "APC", "PRM"})
    requires_source = False

    def __init__(
        self,
        framework: FrameworkRepository | None = None,
        apidb: ApiDatabase | None = None,
        *,
        lazy_loading: bool = True,
        propagate_guards_into_anonymous: bool = False,
        analyze_secondary_dex: bool = True,
    ) -> None:
        """``lazy_loading=False`` switches the AUM to closed-world
        loading (the eager ablation: same findings, whole-framework
        cost).  ``propagate_guards_into_anonymous=True`` removes the
        documented anonymous-class blind spot."""
        self._framework = framework or FrameworkRepository()
        # ARM: the database is built once and reused for every app.
        self._apidb = apidb or build_api_database(self._framework)
        self._lazy = lazy_loading
        self._aum = ApiUsageModeler(
            self._framework,
            self._apidb,
            propagate_guards_into_anonymous=propagate_guards_into_anonymous,
            analyze_secondary_dex=analyze_secondary_dex,
        )
        self._amd = AndroidMismatchDetector(self._apidb)

    @property
    def apidb(self) -> ApiDatabase:
        return self._apidb

    @property
    def framework(self) -> FrameworkRepository:
        return self._framework

    def analyze(
        self, apk: Apk, device_levels=None
    ) -> AnalysisReport:
        """Run the full pipeline on one app.

        ``device_levels`` (an :class:`~repro.analysis.intervals.ApiInterval`)
        restricts detection to the given framework versions — the
        paper's "set of Android framework versions" input.  ``None``
        checks the app's whole declared range.
        """
        started = time.perf_counter()
        with tag_phase(AnalysisPhase.AUM):
            model = self._aum.build(apk)
        load_seconds = 0.0
        if not self._lazy:
            # Eager ablation: account for loading the entire world the
            # way closed-world tools do before any analysis.
            load_started = time.perf_counter()
            vm = ClassLoaderVM(
                apk, self._framework, apk.manifest.effective_max_sdk
            )
            vm.load_everything()
            load_seconds = time.perf_counter() - load_started
            model.stats.classes_loaded = vm.stats.classes_loaded
            model.stats.app_classes_loaded = vm.stats.app_classes_loaded
            model.stats.framework_classes_loaded = (
                vm.stats.framework_classes_loaded
            )
            model.stats.instructions_loaded = vm.stats.instructions_loaded
        detect_started = time.perf_counter()
        with tag_phase(AnalysisPhase.AMD):
            mismatches = self._amd.detect(model, device_levels)
        now = time.perf_counter()

        metrics = AnalysisMetrics(
            tool=self.name,
            app=apk.name,
            wall_time_s=now - started,
            stats=model.stats,
            phase_seconds={
                "load": load_seconds,
                **model.phase_seconds,
                "detect": now - detect_started,
            },
        )
        return AnalysisReport(
            app=apk.name,
            tool=self.name,
            mismatches=mismatches,
            metrics=metrics,
            model=model,
        )
