"""SAINTDroid facade: AUM + ARM + AMD behind one ``analyze`` call.

This is the class downstream users instantiate::

    from repro import SaintDroid
    detector = SaintDroid()
    report = detector.analyze(apk)
    for mismatch in report.mismatches:
        print(mismatch.describe())

Since the pipeline refactor the facade is a thin binding of the
SAINTDroid pass configuration (:func:`repro.pipeline.saintdroid_pipeline`)
to the shared :class:`~repro.pipeline.manager.PipelineDetector`
machinery; the two ablation knobs the evaluation section studies —
eager (whole-world) loading instead of the CLVM, and guard propagation
into anonymous inner classes — select different pass configurations
rather than different code paths.
"""

from __future__ import annotations

from ..framework.repository import FrameworkRepository
from ..pipeline.configs import saintdroid_pipeline
from ..pipeline.manager import PipelineDetector
from .analysis_report import AnalysisReport
from .apidb import ApiDatabase

__all__ = ["AnalysisReport", "SaintDroid"]


class SaintDroid(PipelineDetector):
    """The full detector (paper Figure 2).

    Satisfies the same duck-typed interface as the baselines in
    :mod:`repro.baselines` (``analyze``, ``name``, ``capabilities``,
    ``requires_source``) so evaluation code treats all tools uniformly.
    """

    name = "SAINTDroid"
    requires_source = False

    def __init__(
        self,
        framework: FrameworkRepository | None = None,
        apidb: ApiDatabase | None = None,
        *,
        lazy_loading: bool = True,
        propagate_guards_into_anonymous: bool = False,
        analyze_secondary_dex: bool = True,
        framework_summaries: bool = False,
        summaries_dir: str | None = None,
        dedup: bool = False,
        dedup_dir: str | None = None,
    ) -> None:
        """``lazy_loading=False`` switches the AUM to closed-world
        loading (the eager ablation: same findings, whole-framework
        cost).  ``propagate_guards_into_anonymous=True`` removes the
        documented anonymous-class blind spot.
        ``framework_summaries=True`` bounds the CLVM at the framework
        boundary with whole-framework pre-summaries (same findings as
        lazy; ``summaries_dir`` persists the table across processes).
        ``dedup=True`` answers per-class analysis from the corpus-wide
        content-addressed artifact store (same findings as lazy;
        ``dedup_dir`` persists artifacts across processes).
        """
        super().__init__(
            saintdroid_pipeline(
                lazy_loading=lazy_loading,
                propagate_guards_into_anonymous=(
                    propagate_guards_into_anonymous
                ),
                analyze_secondary_dex=analyze_secondary_dex,
                framework_summaries=framework_summaries,
                summaries_dir=summaries_dir,
                dedup=dedup,
                dedup_dir=dedup_dir,
            ),
            framework,
            apidb,
        )
