"""Mismatch model — the paper's Table I as data.

Every detector (SAINTDroid and the baselines) reports findings as
:class:`Mismatch` values.  A mismatch has a stable :attr:`key` used by
the evaluation layer to match findings against seeded ground truth and
across tools.

All kind-specific behavior — validation shape, key construction,
rendering — is delegated to the mismatch-kind registry
(:mod:`repro.core.kinds`); this module contains no per-kind branches,
so registering a new kind never requires editing it.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.intervals import ApiInterval
from ..ir.types import MethodRef
from .kinds import MismatchKind, MismatchKindSpec

__all__ = ["MismatchKind", "Mismatch"]


@dataclass(frozen=True)
class Mismatch:
    """One detected compatibility issue.

    ``location`` is where the issue manifests in the app (the calling
    method for invocation mismatches, the overriding method for
    callback mismatches, the using method for permission mismatches).

    ``subject`` identifies what is mismatched: the API method for
    subject-shaped kinds, and for permission kinds the ``location``
    method is the subject's user while ``permission`` carries the
    permission name.

    ``missing_levels`` is the sub-range of the app's supported device
    levels on which the issue bites.
    """

    kind: MismatchKindSpec
    app: str
    location: MethodRef | None
    subject: MethodRef | None
    missing_levels: ApiInterval
    permission: str | None = None
    message: str = ""

    def __post_init__(self) -> None:
        if self.kind.is_permission and not self.permission:
            raise ValueError(f"{self.kind}: permission mismatches require "
                             f"a permission name")
        if self.kind.requires_subject and self.subject is None:
            raise ValueError(f"{self.kind}: API mismatches require a "
                             f"subject method")

    @property
    def key(self) -> tuple:
        """Stable identity for ground-truth matching and cross-tool
        comparison.  Deliberately excludes ``missing_levels`` and
        ``message`` so tools agreeing on the issue but reporting
        slightly different ranges still match.  The shape is the
        kind's registered key rule."""
        return self.kind.key_fn(self)

    @property
    def sort_key(self) -> tuple[str, ...]:
        """Total order over mismatches for deterministic report
        ordering.  ``key`` mixes types across kinds (``None``,
        ``MethodRef``, nested tuples), so compare its parts
        stringified: element 0 (the kind value) already separates the
        differently-shaped keys, and within one kind the shapes agree.
        """
        return tuple(str(part) for part in self.key)

    def describe(self) -> str:
        """Human-readable one-liner (the kind's registered renderer)."""
        return self.kind.describe_fn(self)
