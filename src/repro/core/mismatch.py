"""Mismatch model — the paper's Table I as data.

Every detector (SAINTDroid and the baselines) reports findings as
:class:`Mismatch` values.  A mismatch has a stable :attr:`key` used by
the evaluation layer to match findings against seeded ground truth and
across tools.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..analysis.intervals import ApiInterval
from ..ir.types import ClassName, MethodRef

__all__ = ["MismatchKind", "Mismatch"]


class MismatchKind(enum.Enum):
    """The four concrete mismatch types (Table I rows; PRM splits in
    two per section II-C)."""

    #: App → API: app invokes a method missing at some supported level.
    API_INVOCATION = "API"
    #: API → App: app overrides a callback missing at some level.
    API_CALLBACK = "APC"
    #: App targets ≥23, uses a dangerous permission, never implements
    #: the runtime request protocol.
    PERMISSION_REQUEST = "PRM-request"
    #: App targets ≤22, uses a dangerous permission revocable on ≥23.
    PERMISSION_REVOCATION = "PRM-revocation"

    @property
    def is_permission(self) -> bool:
        return self in (
            MismatchKind.PERMISSION_REQUEST,
            MismatchKind.PERMISSION_REVOCATION,
        )


@dataclass(frozen=True)
class Mismatch:
    """One detected compatibility issue.

    ``location`` is where the issue manifests in the app (the calling
    method for invocation mismatches, the overriding method for
    callback mismatches, the using method for permission mismatches).

    ``subject`` identifies what is mismatched: the API method for
    API/APC kinds, and for permission kinds the ``location`` method is
    the subject's user while ``permission`` carries the permission
    name.

    ``missing_levels`` is the sub-range of the app's supported device
    levels on which the issue bites.
    """

    kind: MismatchKind
    app: str
    location: MethodRef | None
    subject: MethodRef | None
    missing_levels: ApiInterval
    permission: str | None = None
    message: str = ""

    def __post_init__(self) -> None:
        if self.kind.is_permission and not self.permission:
            raise ValueError(f"{self.kind}: permission mismatches require "
                             f"a permission name")
        if not self.kind.is_permission and self.subject is None:
            raise ValueError(f"{self.kind}: API mismatches require a "
                             f"subject method")

    @property
    def key(self) -> tuple:
        """Stable identity for ground-truth matching and cross-tool
        comparison.  Deliberately excludes ``missing_levels`` and
        ``message`` so tools agreeing on the issue but reporting
        slightly different ranges still match."""
        if self.kind.is_permission:
            return (self.kind.value, self.app, self.permission)
        subject = self.subject
        location_class: ClassName | None = (
            self.location.class_name if self.location else None
        )
        if self.kind is MismatchKind.API_CALLBACK:
            # Callback identity: which app class overrides which
            # framework signature.
            return (
                self.kind.value,
                self.app,
                location_class,
                f"{subject.name}{subject.descriptor}",
            )
        return (
            self.kind.value,
            self.app,
            self.location,
            (subject.class_name, subject.name, subject.descriptor),
        )

    @property
    def sort_key(self) -> tuple[str, ...]:
        """Total order over mismatches for deterministic report
        ordering.  ``key`` mixes types across kinds (``None``,
        ``MethodRef``, nested tuples), so compare its parts
        stringified: element 0 (the kind value) already separates the
        differently-shaped keys, and within one kind the shapes agree.
        """
        return tuple(str(part) for part in self.key)

    def describe(self) -> str:
        """Human-readable one-liner."""
        levels = self.missing_levels
        if self.kind is MismatchKind.API_INVOCATION:
            return (
                f"[API] {self.location} invokes {self.subject}, "
                f"missing on device levels {levels}"
            )
        if self.kind is MismatchKind.API_CALLBACK:
            return (
                f"[APC] {self.location} overrides {self.subject}, "
                f"never invoked on device levels {levels}"
            )
        if self.kind is MismatchKind.PERMISSION_REQUEST:
            return (
                f"[PRM] {self.app} uses dangerous permission "
                f"{self.permission} (via {self.location}) without the "
                f"runtime request protocol (devices {levels})"
            )
        return (
            f"[PRM] {self.app} uses dangerous permission "
            f"{self.permission} (via {self.location}) revocable on "
            f"devices {levels}"
        )
