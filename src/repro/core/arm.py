"""ARM — the Android Revision Modeler (paper section III-B).

Builds the :class:`~repro.core.apidb.ApiDatabase` by mining the
framework revision history.  Two mining strategies are provided:

* :func:`mine_images` — the faithful path: materialize the framework
  *image* of every API level and recover all facts **from code**:
  method presence by enumeration, callback-ness from the framework's
  own dispatch sites, permission requirements from enforcement call
  sites via the reaching string-constants analysis, and the framework
  call graph from invoke instructions.  Nothing is read from the spec's
  declarative flags.
* :func:`mine_spec` — the fast path reading the declarative histories
  directly.  It produces an identical database (asserted by tests) in
  a fraction of the time and is the default for large benchmark runs.

Both paths finish by closing the permission map transitively over the
framework call graph, which is what maps APIs whose enforcement sits
several calls deep — facts a first-level analysis never sees.
"""

from __future__ import annotations

from collections import defaultdict

from ..apk.manifest import MAX_API_LEVEL, MIN_API_LEVEL
from ..framework.generator import (
    DISPATCH_PREFIX,
    ENFORCEMENT_METHOD,
    SEMANTICS_PREFIX,
    parse_semantic_tag,
)
from ..framework.permissions import PermissionMap
from ..framework.repository import FrameworkRepository
from ..framework.spec import FrameworkSpec, SemanticDelta
from ..ir.instructions import ConstString, Invoke
from ..ir.types import MethodRef
from ..analysis.reaching import strings_at_invocations
from .apidb import ApiClassEntry, ApiDatabase, ApiEntry

__all__ = [
    "mine_spec",
    "mine_images",
    "close_permissions",
    "build_api_database",
    "cached_database",
    "register_database",
]

_ALL_LEVELS = tuple(range(MIN_API_LEVEL, MAX_API_LEVEL + 1))


def close_permissions(
    direct: dict[MethodRef, frozenset[str]],
    edges: dict[MethodRef, frozenset[MethodRef]],
) -> dict[MethodRef, frozenset[str]]:
    """Propagate permissions backward over call edges to a fixpoint.

    A method requires every permission required by any method it may
    call (the framework call graph may contain cycles, hence the
    worklist rather than a simple topological pass).
    """
    transitive: dict[MethodRef, set[str]] = defaultdict(set)
    for method, permissions in direct.items():
        transitive[method] |= permissions

    reverse: dict[MethodRef, set[MethodRef]] = defaultdict(set)
    for caller, callees in edges.items():
        for callee in callees:
            reverse[callee].add(caller)

    worklist = list(transitive)
    while worklist:
        method = worklist.pop()
        permissions = transitive[method]
        for caller in reverse.get(method, ()):
            before = len(transitive[caller])
            transitive[caller] |= permissions
            if len(transitive[caller]) != before:
                worklist.append(caller)

    return {
        method: frozenset(permissions)
        for method, permissions in transitive.items()
        if permissions
    }


def _assemble(
    class_levels: dict[str, set[int]],
    class_supers: dict[str, str | None],
    method_levels: dict[MethodRef, set[int]],
    callbacks: set[MethodRef],
    direct_permissions: dict[MethodRef, frozenset[str]],
    call_edges: dict[MethodRef, frozenset[MethodRef]],
    semantics: dict[MethodRef, set[SemanticDelta]] | None = None,
) -> ApiDatabase:
    """Shared final assembly for both mining paths."""
    semantics = semantics or {}
    classes: dict[str, ApiClassEntry] = {}
    for name, levels in class_levels.items():
        classes[name] = ApiClassEntry(
            name=name,
            super_name=class_supers.get(name),
            levels=frozenset(levels),
        )
    for ref, levels in method_levels.items():
        deltas = tuple(sorted(
            semantics.get(ref, ()),
            key=lambda d: (d.level, d.change, d.detail),
        ))
        entry = ApiEntry(
            class_name=ref.class_name,
            name=ref.name,
            descriptor=ref.descriptor,
            levels=frozenset(levels),
            callback=ref in callbacks,
            semantic_deltas=deltas,
        )
        classes[ref.class_name].methods[entry.signature] = entry

    permission_map = PermissionMap(
        direct=dict(direct_permissions),
        transitive=close_permissions(direct_permissions, call_edges),
    )
    return ApiDatabase(classes, permission_map)


# ---------------------------------------------------------------------------
# fast path: mine the declarative histories
# ---------------------------------------------------------------------------

def mine_spec(spec: FrameworkSpec) -> ApiDatabase:
    """Build the database straight from the revision histories."""
    class_levels: dict[str, set[int]] = {}
    class_supers: dict[str, str | None] = {}
    method_levels: dict[MethodRef, set[int]] = {}
    callbacks: set[MethodRef] = set()
    direct_permissions: dict[MethodRef, frozenset[str]] = {}
    call_edges: dict[MethodRef, frozenset[MethodRef]] = {}
    semantics: dict[MethodRef, set[SemanticDelta]] = {}

    for name in spec.class_names:
        history = spec.clazz(name)
        class_supers[name] = history.super_name
        class_levels[name] = {
            level for level in _ALL_LEVELS if history.exists_at(level)
        }
        for method in history.methods:
            ref = MethodRef(name, method.name, method.descriptor)
            method_levels[ref] = {
                level for level in _ALL_LEVELS if method.exists_at(level)
            }
            if method.callback:
                callbacks.add(ref)
            if method.permissions:
                direct_permissions[ref] = frozenset(method.permissions)
            if method.calls:
                call_edges[ref] = frozenset(method.calls)
            if method.semantics:
                semantics[ref] = set(method.semantics)

    return _assemble(
        class_levels, class_supers, method_levels, callbacks,
        direct_permissions, call_edges, semantics,
    )


# ---------------------------------------------------------------------------
# faithful path: mine materialized framework images
# ---------------------------------------------------------------------------

def mine_images(
    repository: FrameworkRepository,
    levels: tuple[int, ...] = _ALL_LEVELS,
) -> ApiDatabase:
    """Build the database by analyzing framework *code* per level."""
    class_levels: dict[str, set[int]] = defaultdict(set)
    class_supers: dict[str, str | None] = {}
    method_levels: dict[MethodRef, set[int]] = defaultdict(set)
    callbacks: set[MethodRef] = set()
    direct_permissions: dict[MethodRef, set[str]] = defaultdict(set)
    call_edges: dict[MethodRef, set[MethodRef]] = defaultdict(set)
    semantics: dict[MethodRef, set[SemanticDelta]] = defaultdict(set)

    for level in levels:
        image = repository.load_image(level)
        for name, clazz in image.items():
            class_levels[name].add(level)
            class_supers[name] = clazz.super_name
            for method in clazz.methods:
                is_dispatcher = method.name.startswith(DISPATCH_PREFIX)
                is_manifest = method.name.startswith(SEMANTICS_PREFIX)
                if not (is_dispatcher or is_manifest):
                    method_levels[method.ref].add(level)
                if method.body is None:
                    continue

                # Semantic-delta discovery: decode the class's inert
                # manifest method (const-string tags only).
                if is_manifest:
                    for instruction in method.body.instructions:
                        if not isinstance(instruction, ConstString):
                            continue
                        parsed = parse_semantic_tag(instruction.value)
                        if parsed is None:
                            continue
                        signature, delta_level, change, detail = parsed
                        method_name, _, rest = signature.partition("(")
                        ref = MethodRef(name, method_name, f"({rest}")
                        semantics[ref].add(
                            SemanticDelta(delta_level, change, detail)
                        )
                    continue

                # Callback discovery: targets the framework dispatches
                # into are overridable hooks.
                if is_dispatcher:
                    for instruction in method.body.instructions:
                        if isinstance(instruction, Invoke):
                            callbacks.add(instruction.method)
                    continue

                # Permission discovery: enforcement sites with the
                # permission string recovered by dataflow.
                has_enforcement = any(
                    invoke.method == ENFORCEMENT_METHOD
                    for invoke in method.invocations
                )
                if has_enforcement:
                    for invoke, resolved in strings_at_invocations(method):
                        if invoke.method != ENFORCEMENT_METHOD:
                            continue
                        for permission in resolved.get(0, frozenset()):
                            direct_permissions[method.ref].add(permission)

                # Framework call graph for the transitive closure.
                for invoke in method.invocations:
                    if invoke.method == ENFORCEMENT_METHOD:
                        continue
                    call_edges[method.ref].add(invoke.method)

    return _assemble(
        {k: set(v) for k, v in class_levels.items()},
        class_supers,
        {k: set(v) for k, v in method_levels.items()},
        callbacks,
        {k: frozenset(v) for k, v in direct_permissions.items()},
        {k: frozenset(v) for k, v in call_edges.items()},
        {k: set(v) for k, v in semantics.items()},
    )


# ---------------------------------------------------------------------------
# cached default
# ---------------------------------------------------------------------------

_DEFAULT_CACHE: dict[int, ApiDatabase] = {}


def build_api_database(
    repository: FrameworkRepository | None = None,
    *,
    from_images: bool = False,
) -> ApiDatabase:
    """The database for ``repository`` (default framework, cached).

    ``from_images=True`` selects the faithful mining path; the default
    mines the spec, which tests assert is equivalent.
    """
    if repository is None:
        repository = FrameworkRepository()
    if from_images:
        return mine_images(repository)
    key = id(repository.spec)
    if key not in _DEFAULT_CACHE:
        _DEFAULT_CACHE[key] = mine_spec(repository.spec)
    return _DEFAULT_CACHE[key]


def cached_database(spec: FrameworkSpec) -> ApiDatabase | None:
    """The already-built database for this exact spec object, if any.

    Keyed by object identity like :func:`build_api_database`'s memo:
    under the fork start method a pool worker inherits the parent's
    built database, and a retry round's fresh pool must reuse it
    instead of re-mining.
    """
    return _DEFAULT_CACHE.get(id(spec))


def register_database(spec: FrameworkSpec, apidb: ApiDatabase) -> None:
    """Adopt a database built elsewhere (e.g. loaded from a framework
    snapshot) so later :func:`build_api_database` calls over the same
    spec object are dictionary hits."""
    _DEFAULT_CACHE[id(spec)] = apidb
