"""Analysis metrics and the deterministic cost model.

Every detector run produces an :class:`AnalysisMetrics` record with
*measured* wall time plus cost-model quantities derived from what the
run actually loaded and analyzed.  The cost model converts abstract
units into the paper's reporting units:

* ``modeled_seconds`` — analysis effort → seconds, calibrated so that
  SAINTDroid's average over the synthetic real-world corpus lands near
  the paper's 6.2 s/app (Figure 3);
* ``modeled_memory_mb`` — resident loaded code → MB, calibrated so
  SAINTDroid's average lands near the paper's 329 MB (Figure 4).

The calibration constants are single multipliers applied uniformly to
*all* tools; the SAINTDroid-vs-baseline ratios therefore come entirely
from the differing amounts of work/loading each tool performs, never
from per-tool fudge factors.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.clvm import LoadStats

__all__ = [
    "SECONDS_PER_WORK_UNIT",
    "MB_PER_MEMORY_UNIT",
    "BASE_SECONDS",
    "BASE_MEMORY_MB",
    "AnalysisMetrics",
]

#: Seconds of (paper-scale) analysis time per cost-model work unit.
SECONDS_PER_WORK_UNIT = 6.0e-5
#: Fixed per-app startup cost (process + parsing), seconds.
BASE_SECONDS = 1.2
#: MB of resident memory per cost-model memory unit.
MB_PER_MEMORY_UNIT = 5.0e-3
#: Fixed runtime footprint (JVM + analysis harness), MB.
BASE_MEMORY_MB = 95.0


@dataclass
class AnalysisMetrics:
    """What one tool spent analyzing one app."""

    tool: str
    app: str
    wall_time_s: float = 0.0
    stats: LoadStats = field(default_factory=LoadStats)
    #: Extra cost-model work beyond CLVM accounting, e.g. Lint's build
    #: step or CID's whole-framework pre-scan.
    extra_work_units: int = 0
    extra_memory_units: int = 0
    #: True when the tool failed or exceeded its budget (Table III
    #: renders these as dashes).
    failed: bool = False
    failure_reason: str = ""
    #: Measured wall seconds per pipeline phase (``load`` / ``explore``
    #: / ``guards`` / ``detect`` for SAINTDroid, ``detect`` for the
    #: baselines).  Observational like ``wall_time_s``: excluded from
    #: fingerprints and from the cost model below.
    phase_seconds: dict = field(default_factory=dict)
    #: Measured wall seconds per individual pipeline pass, keyed by
    #: pass name (finer-grained than ``phase_seconds``; several passes
    #: share one phase bucket).  Observational, fingerprint-excluded.
    pass_seconds: dict = field(default_factory=dict)

    @property
    def work_units(self) -> int:
        return self.stats.work_units + self.extra_work_units

    @property
    def memory_units(self) -> int:
        return self.stats.memory_units + self.extra_memory_units

    @property
    def modeled_seconds(self) -> float:
        """Paper-scale analysis time from the cost model."""
        return BASE_SECONDS + self.work_units * SECONDS_PER_WORK_UNIT

    @property
    def modeled_memory_mb(self) -> float:
        """Paper-scale peak memory from the cost model."""
        return BASE_MEMORY_MB + self.memory_units * MB_PER_MEMORY_UNIT

    # -- cache accounting (cold vs warm loads) -------------------------
    #
    # Warm counters are observational: they say how much framework
    # materialization this run *skipped* because an earlier analysis
    # over the same repository already paid for it.  The cost model
    # above deliberately ignores them — modeled seconds/MB must not
    # depend on where an app lands in a corpus run (or which worker
    # analyzes it), or parallel results would diverge from serial.

    @property
    def framework_classes_reused(self) -> int:
        """Framework classes served warm from the shared cache."""
        return self.stats.framework_classes_reused

    @property
    def framework_instructions_reused(self) -> int:
        return self.stats.framework_instructions_reused

    @property
    def warm_load_fraction(self) -> float:
        """Fraction of framework class loads that were warm; 0.0 on a
        cold (first-app) run, approaching 1.0 deep into a corpus."""
        return self.stats.framework_reuse_rate

    # -- dedup accounting (``--dedup`` class-artifact replay) ----------
    #
    # Same observational contract as the warm counters: these say how
    # much per-class derivation this run skipped because the corpus
    # store already held the class's artifact.  Findings and cost-model
    # quantities are replay-invariant (enforced by the parity suite).

    @property
    def app_classes_deduped(self) -> int:
        """App classes whose explore effects were replayed from the
        corpus-wide class-artifact store."""
        return self.stats.app_classes_deduped

    @property
    def instructions_deduped(self) -> int:
        return self.stats.instructions_deduped

    @property
    def class_dedup_fraction(self) -> float:
        """Fraction of analyzed app classes answered by the store."""
        loaded = self.stats.app_classes_loaded
        if not loaded:
            return 0.0
        return self.stats.app_classes_deduped / loaded

    @property
    def guard_contexts_deduped(self) -> int:
        """Guard-propagation contexts answered from cached rows."""
        return self.stats.guard_contexts_deduped

    @property
    def guard_contexts_computed(self) -> int:
        return self.stats.guard_contexts_computed
