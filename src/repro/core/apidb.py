"""The API database — ARM's primary artifact.

Stores, for every framework class, the set of API levels at which each
method exists, whether it is a callback, the class hierarchy links,
and the permission map.  The database answers the three queries the
AMD algorithms issue:

* ``apidb.CONTAINS(block, lvl)`` → :meth:`exists` (inheritance-aware);
* callback lookup for Algorithm 3 → :meth:`callback_entry`;
* permission lookup for Algorithm 4 → :meth:`permissions_for`.

The database is built once per framework (paper section III-B) and
reused across every app analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..apk.manifest import MAX_API_LEVEL, MIN_API_LEVEL
from ..framework.permissions import PermissionMap
from ..framework.spec import SemanticDelta
from ..ir.types import ClassName, MethodRef
from ..analysis.intervals import ApiInterval

__all__ = ["ApiEntry", "ApiClassEntry", "ApiDatabase", "DbCacheCounters"]


@dataclass(frozen=True)
class ApiEntry:
    """One framework method's database record.

    ``semantic_deltas`` are the method's behavior-only changes, sorted
    by (level, change, detail) — the facts the SEM detector consumes.
    """

    class_name: ClassName
    name: str
    descriptor: str
    levels: frozenset[int]
    callback: bool = False
    semantic_deltas: tuple[SemanticDelta, ...] = ()

    @property
    def signature(self) -> str:
        return f"{self.name}{self.descriptor}"

    @property
    def ref(self) -> MethodRef:
        return MethodRef(self.class_name, self.name, self.descriptor)

    def exists_at(self, level: int) -> bool:
        return level in self.levels

    @property
    def lifetime(self) -> tuple[int, int]:
        return (min(self.levels), max(self.levels))

    def missing_within(self, interval: ApiInterval) -> ApiInterval:
        """The hull of levels in ``interval`` where the method is
        absent (empty when fully covered)."""
        missing = [
            level for level in interval if level not in self.levels
        ]
        if not missing:
            return ApiInterval.empty()
        return ApiInterval.of(min(missing), max(missing))


@dataclass
class ApiClassEntry:
    """One framework class's database record."""

    name: ClassName
    super_name: ClassName | None
    levels: frozenset[int]
    methods: dict[str, ApiEntry] = field(default_factory=dict)

    def exists_at(self, level: int) -> bool:
        return level in self.levels


@dataclass
class DbCacheCounters:
    """Hit/miss accounting for the database's memoized lookups.

    ``resolve`` covers :meth:`ApiDatabase.resolve` (and everything
    built on it: callbacks, permission resolution); ``levels`` covers
    the per-signature callable-level sets behind :meth:`exists` /
    :meth:`missing_levels`; ``permissions`` covers
    :meth:`permissions_for`.
    """

    resolve_hits: int = 0
    resolve_misses: int = 0
    levels_hits: int = 0
    levels_misses: int = 0
    permission_hits: int = 0
    permission_misses: int = 0

    @property
    def hits(self) -> int:
        return self.resolve_hits + self.levels_hits + self.permission_hits

    @property
    def misses(self) -> int:
        return (
            self.resolve_misses
            + self.levels_misses
            + self.permission_misses
        )

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict:
        return {
            "resolve_hits": self.resolve_hits,
            "resolve_misses": self.resolve_misses,
            "levels_hits": self.levels_hits,
            "levels_misses": self.levels_misses,
            "permission_hits": self.permission_hits,
            "permission_misses": self.permission_misses,
            "hit_rate": self.hit_rate,
        }


class ApiDatabase:
    """Queryable view over every modeled framework level.

    The database is immutable after construction (``classes`` and the
    permission map are never modified), so the hierarchy-walking
    queries — :meth:`resolve`, :meth:`exists`, :meth:`missing_levels`,
    :meth:`permissions_for` — are memoized: each (class, signature)
    pair is resolved against the hierarchy once and every later query
    is a dict lookup.  :attr:`cache_counters` exposes the hit/miss
    accounting so corpus-scale harnesses can report amortization.
    """

    def __init__(
        self,
        classes: dict[ClassName, ApiClassEntry],
        permission_map: PermissionMap,
    ) -> None:
        self._classes = classes
        self._permission_map = permission_map
        self._resolve_cache: dict[
            tuple[ClassName, str], ApiEntry | None
        ] = {}
        self._levels_cache: dict[
            tuple[ClassName, str], frozenset[int]
        ] = {}
        self._permission_cache: dict[
            tuple[MethodRef, bool], frozenset[str]
        ] = {}
        self._missing_cache: dict[
            tuple[ClassName, str, int, int], "ApiInterval"
        ] = {}
        self.cache_counters = DbCacheCounters()
        # Per-level API counts, computed once: api_count_at used to
        # rescan every method of every class on every call.
        self._level_counts: dict[int, int] = {
            level: 0
            for level in range(MIN_API_LEVEL, MAX_API_LEVEL + 1)
        }
        for entry in classes.values():
            for method in entry.methods.values():
                for level in method.levels:
                    if level in self._level_counts:
                        self._level_counts[level] += 1

    def reset_cache_counters(self) -> None:
        self.cache_counters = DbCacheCounters()

    # -- introspection ---------------------------------------------------

    def __len__(self) -> int:
        return len(self._classes)

    def __contains__(self, name: ClassName) -> bool:
        return name in self._classes

    @property
    def class_names(self) -> tuple[ClassName, ...]:
        return tuple(self._classes)

    @property
    def permission_map(self) -> PermissionMap:
        return self._permission_map

    def clazz(self, name: ClassName) -> ApiClassEntry | None:
        return self._classes.get(name)

    @property
    def method_count(self) -> int:
        return sum(len(entry.methods) for entry in self._classes.values())

    # -- hierarchy ---------------------------------------------------------

    def ancestors(self, name: ClassName) -> tuple[ClassName, ...]:
        """Super-class chain of ``name``, nearest first (level-agnostic)."""
        chain: list[ClassName] = []
        seen = {name}
        entry = self._classes.get(name)
        while entry is not None and entry.super_name is not None:
            if entry.super_name in seen:
                break
            seen.add(entry.super_name)
            chain.append(entry.super_name)
            entry = self._classes.get(entry.super_name)
        return tuple(chain)

    # -- method resolution --------------------------------------------------

    def resolve(
        self, name: ClassName, signature: str
    ) -> ApiEntry | None:
        """Find the nearest declaration of ``signature`` on ``name`` or
        its ancestors (level-agnostic).  Memoized."""
        key = (name, signature)
        counters = self.cache_counters
        try:
            found = self._resolve_cache[key]
            counters.resolve_hits += 1
            return found
        except KeyError:
            counters.resolve_misses += 1
        found = None
        entry = self._classes.get(name)
        seen: set[ClassName] = set()
        while entry is not None and entry.name not in seen:
            seen.add(entry.name)
            declared = entry.methods.get(signature)
            if declared is not None:
                found = declared
                break
            if entry.super_name is None:
                break
            entry = self._classes.get(entry.super_name)
        self._resolve_cache[key] = found
        return found

    def _callable_levels(
        self, name: ClassName, signature: str
    ) -> frozenset[int]:
        """Every level at which ``signature`` is callable on ``name``:
        the union, over the super chain, of levels where a declaring
        class and its declaration are both alive.  Memoized — this is
        the single hierarchy walk behind :meth:`exists` and
        :meth:`missing_levels`."""
        key = (name, signature)
        counters = self.cache_counters
        try:
            levels = self._levels_cache[key]
            counters.levels_hits += 1
            return levels
        except KeyError:
            counters.levels_misses += 1
        callable_levels: set[int] = set()
        entry = self._classes.get(name)
        seen: set[ClassName] = set()
        while entry is not None and entry.name not in seen:
            seen.add(entry.name)
            found = entry.methods.get(signature)
            if found is not None:
                callable_levels |= entry.levels & found.levels
            if entry.super_name is None:
                break
            entry = self._classes.get(entry.super_name)
        levels = frozenset(callable_levels)
        self._levels_cache[key] = levels
        return levels

    def exists(self, name: ClassName, signature: str, level: int) -> bool:
        """Algorithm 2's ``apidb.CONTAINS``: is the method callable on
        ``name`` at ``level``?  Inheritance-aware and sensitive to the
        declaring class's own lifetime."""
        return level in self._callable_levels(name, signature)

    def missing_levels(
        self, name: ClassName, signature: str, interval: ApiInterval
    ) -> ApiInterval:
        """Hull of levels within ``interval`` at which the method is
        not callable (empty = fully supported).  Memoized: detection
        asks the same (api, window) question for every usage site."""
        key = (name, signature, interval.lo, interval.hi)
        cached = self._missing_cache.get(key)
        if cached is not None:
            # A warm (api, window) answer is a hit on the underlying
            # callable-level set — keep the observability contract
            # (hit counters climb as memo tables warm) intact.
            self.cache_counters.levels_hits += 1
            return cached
        callable_levels = self._callable_levels(name, signature)
        missing = [
            level for level in interval if level not in callable_levels
        ]
        result = (
            ApiInterval.empty()
            if not missing
            else ApiInterval.of(min(missing), max(missing))
        )
        self._missing_cache[key] = result
        return result

    # -- callbacks -----------------------------------------------------------

    def callback_entry(
        self, name: ClassName, signature: str
    ) -> ApiEntry | None:
        """The callback declaration ``signature`` resolves to on
        ``name``/ancestors, or None when it is not a callback."""
        found = self.resolve(name, signature)
        if found is not None and found.callback:
            return found
        return None

    def callbacks_of(self, name: ClassName) -> tuple[ApiEntry, ...]:
        """All callbacks declared by ``name`` and its ancestors."""
        out: list[ApiEntry] = []
        for class_name in (name, *self.ancestors(name)):
            entry = self._classes.get(class_name)
            if entry is None:
                continue
            out.extend(
                method for method in entry.methods.values()
                if method.callback
            )
        return tuple(out)

    # -- semantics ----------------------------------------------------------

    def semantic_deltas_for(
        self, name: ClassName, signature: str
    ) -> tuple[SemanticDelta, ...]:
        """Behavior-only changes of the method ``signature`` resolves
        to on ``name``/ancestors (empty for unknown methods)."""
        found = self.resolve(name, signature)
        if found is None:
            return ()
        return found.semantic_deltas

    # -- permissions ------------------------------------------------------------

    def permissions_for(
        self, ref: MethodRef, *, deep: bool = True
    ) -> frozenset[str]:
        """Permissions required to execute ``ref`` (resolved against
        the hierarchy first, so inherited APIs map correctly).
        Memoized — called once per API usage per app otherwise."""
        key = (ref, deep)
        counters = self.cache_counters
        try:
            permissions = self._permission_cache[key]
            counters.permission_hits += 1
            return permissions
        except KeyError:
            counters.permission_misses += 1
        resolved = self.resolve(ref.class_name, ref.name + ref.descriptor)
        target = resolved.ref if resolved is not None else ref
        permissions = self._permission_map.permissions_for(
            target, deep=deep
        )
        self._permission_cache[key] = permissions
        return permissions

    # -- summaries ----------------------------------------------------------------

    def api_count_at(self, level: int) -> int:
        """How many API methods exist at ``level`` (precomputed)."""
        if not MIN_API_LEVEL <= level <= MAX_API_LEVEL:
            raise ValueError(f"level {level} outside modeled range")
        return self._level_counts[level]
