"""The API database — ARM's primary artifact.

Stores, for every framework class, the set of API levels at which each
method exists, whether it is a callback, the class hierarchy links,
and the permission map.  The database answers the three queries the
AMD algorithms issue:

* ``apidb.CONTAINS(block, lvl)`` → :meth:`exists` (inheritance-aware);
* callback lookup for Algorithm 3 → :meth:`callback_entry`;
* permission lookup for Algorithm 4 → :meth:`permissions_for`.

The database is built once per framework (paper section III-B) and
reused across every app analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..apk.manifest import MAX_API_LEVEL, MIN_API_LEVEL
from ..framework.permissions import PermissionMap
from ..ir.types import ClassName, MethodRef
from ..analysis.intervals import ApiInterval

__all__ = ["ApiEntry", "ApiClassEntry", "ApiDatabase"]


@dataclass(frozen=True)
class ApiEntry:
    """One framework method's database record."""

    class_name: ClassName
    name: str
    descriptor: str
    levels: frozenset[int]
    callback: bool = False

    @property
    def signature(self) -> str:
        return f"{self.name}{self.descriptor}"

    @property
    def ref(self) -> MethodRef:
        return MethodRef(self.class_name, self.name, self.descriptor)

    def exists_at(self, level: int) -> bool:
        return level in self.levels

    @property
    def lifetime(self) -> tuple[int, int]:
        return (min(self.levels), max(self.levels))

    def missing_within(self, interval: ApiInterval) -> ApiInterval:
        """The hull of levels in ``interval`` where the method is
        absent (empty when fully covered)."""
        missing = [
            level for level in interval if level not in self.levels
        ]
        if not missing:
            return ApiInterval.empty()
        return ApiInterval.of(min(missing), max(missing))


@dataclass
class ApiClassEntry:
    """One framework class's database record."""

    name: ClassName
    super_name: ClassName | None
    levels: frozenset[int]
    methods: dict[str, ApiEntry] = field(default_factory=dict)

    def exists_at(self, level: int) -> bool:
        return level in self.levels


class ApiDatabase:
    """Queryable view over every modeled framework level."""

    def __init__(
        self,
        classes: dict[ClassName, ApiClassEntry],
        permission_map: PermissionMap,
    ) -> None:
        self._classes = classes
        self._permission_map = permission_map

    # -- introspection ---------------------------------------------------

    def __len__(self) -> int:
        return len(self._classes)

    def __contains__(self, name: ClassName) -> bool:
        return name in self._classes

    @property
    def class_names(self) -> tuple[ClassName, ...]:
        return tuple(self._classes)

    @property
    def permission_map(self) -> PermissionMap:
        return self._permission_map

    def clazz(self, name: ClassName) -> ApiClassEntry | None:
        return self._classes.get(name)

    @property
    def method_count(self) -> int:
        return sum(len(entry.methods) for entry in self._classes.values())

    # -- hierarchy ---------------------------------------------------------

    def ancestors(self, name: ClassName) -> tuple[ClassName, ...]:
        """Super-class chain of ``name``, nearest first (level-agnostic)."""
        chain: list[ClassName] = []
        seen = {name}
        entry = self._classes.get(name)
        while entry is not None and entry.super_name is not None:
            if entry.super_name in seen:
                break
            seen.add(entry.super_name)
            chain.append(entry.super_name)
            entry = self._classes.get(entry.super_name)
        return tuple(chain)

    # -- method resolution --------------------------------------------------

    def resolve(
        self, name: ClassName, signature: str
    ) -> ApiEntry | None:
        """Find the nearest declaration of ``signature`` on ``name`` or
        its ancestors (level-agnostic)."""
        entry = self._classes.get(name)
        seen: set[ClassName] = set()
        while entry is not None and entry.name not in seen:
            seen.add(entry.name)
            found = entry.methods.get(signature)
            if found is not None:
                return found
            if entry.super_name is None:
                return None
            entry = self._classes.get(entry.super_name)
        return None

    def exists(self, name: ClassName, signature: str, level: int) -> bool:
        """Algorithm 2's ``apidb.CONTAINS``: is the method callable on
        ``name`` at ``level``?  Inheritance-aware and sensitive to the
        declaring class's own lifetime."""
        entry = self._classes.get(name)
        seen: set[ClassName] = set()
        while entry is not None and entry.name not in seen:
            seen.add(entry.name)
            if entry.exists_at(level):
                found = entry.methods.get(signature)
                if found is not None and found.exists_at(level):
                    return True
            if entry.super_name is None:
                return False
            entry = self._classes.get(entry.super_name)
        return False

    def missing_levels(
        self, name: ClassName, signature: str, interval: ApiInterval
    ) -> ApiInterval:
        """Hull of levels within ``interval`` at which the method is
        not callable (empty = fully supported)."""
        missing = [
            level
            for level in interval
            if not self.exists(name, signature, level)
        ]
        if not missing:
            return ApiInterval.empty()
        return ApiInterval.of(min(missing), max(missing))

    # -- callbacks -----------------------------------------------------------

    def callback_entry(
        self, name: ClassName, signature: str
    ) -> ApiEntry | None:
        """The callback declaration ``signature`` resolves to on
        ``name``/ancestors, or None when it is not a callback."""
        found = self.resolve(name, signature)
        if found is not None and found.callback:
            return found
        return None

    def callbacks_of(self, name: ClassName) -> tuple[ApiEntry, ...]:
        """All callbacks declared by ``name`` and its ancestors."""
        out: list[ApiEntry] = []
        for class_name in (name, *self.ancestors(name)):
            entry = self._classes.get(class_name)
            if entry is None:
                continue
            out.extend(
                method for method in entry.methods.values()
                if method.callback
            )
        return tuple(out)

    # -- permissions ------------------------------------------------------------

    def permissions_for(
        self, ref: MethodRef, *, deep: bool = True
    ) -> frozenset[str]:
        """Permissions required to execute ``ref`` (resolved against
        the hierarchy first, so inherited APIs map correctly)."""
        resolved = self.resolve(ref.class_name, ref.name + ref.descriptor)
        target = resolved.ref if resolved is not None else ref
        return self._permission_map.permissions_for(target, deep=deep)

    # -- summaries ----------------------------------------------------------------

    def api_count_at(self, level: int) -> int:
        if not MIN_API_LEVEL <= level <= MAX_API_LEVEL:
            raise ValueError(f"level {level} outside modeled range")
        return sum(
            1
            for entry in self._classes.values()
            for method in entry.methods.values()
            if method.exists_at(level)
        )
