"""A tiny stdlib client for the serve daemon.

Used by the ``saintdroid submit`` CLI, the CI smoke script, the
throughput benchmark, and the end-to-end tests — one implementation of
the wire protocol instead of four ad-hoc ``urllib`` loops.  The client
understands the daemon's backpressure: :meth:`submit_retry` honours
429 ``Retry-After`` hints, and :meth:`result_of` decodes a terminal
job document back into a fingerprint-identical
:class:`~repro.eval.runner.AppResult`.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover — import cycle guard
    from ..apk.package import Apk
    from ..eval.runner import AppResult

__all__ = ["ServeClient", "ServeClientError"]


class ServeClientError(Exception):
    """A non-2xx daemon answer, with its status and decoded body."""

    def __init__(self, status: int, doc: dict) -> None:
        detail = doc.get("detail", doc.get("error", ""))
        super().__init__(f"HTTP {status}: {detail}")
        self.status = status
        self.doc = doc

    @property
    def retry_after_s(self) -> float | None:
        value = self.doc.get("retryAfterS")
        return float(value) if value is not None else None


class ServeClient:
    """One daemon endpoint (``http://host:port``)."""

    def __init__(self, base_url: str, *, timeout_s: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s

    # -- transport -----------------------------------------------------

    def _request(
        self, method: str, path: str, body: dict | None = None
    ) -> tuple[int, dict]:
        data = json.dumps(body).encode() if body is not None else None
        request = urllib.request.Request(
            self.base_url + path,
            data=data,
            method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout_s
            ) as response:
                doc = json.loads(response.read() or b"{}")
                status = response.status
        except urllib.error.HTTPError as exc:
            # The daemon's error answers are JSON too.
            try:
                doc = json.loads(exc.read() or b"{}")
            except (json.JSONDecodeError, UnicodeDecodeError):
                doc = {"error": "HTTPError", "detail": str(exc)}
            retry_after = exc.headers.get("Retry-After")
            if retry_after is not None and "retryAfterS" not in doc:
                try:
                    doc["retryAfterS"] = float(retry_after)
                except ValueError:
                    pass
            status = exc.code
        return status, doc

    def _checked(
        self, method: str, path: str, body: dict | None = None
    ) -> dict:
        status, doc = self._request(method, path, body)
        if status >= 400:
            raise ServeClientError(status, doc)
        return doc

    # -- the protocol --------------------------------------------------

    def submit(
        self,
        apk: "Apk | dict",
        truth: dict | None = None,
        *,
        job_id: str | None = None,
    ) -> dict:
        """Submit one package; returns the job document (state
        ``queued``, or terminal immediately on a dedup hit).  Raises
        :class:`ServeClientError` on any rejection, 429 included."""
        body: dict = {"apk": self._apk_doc(apk)}
        if truth is not None:
            body["truth"] = truth
        if job_id is not None:
            body["id"] = job_id
        return self._checked("POST", "/jobs", body)

    def submit_retry(
        self,
        apk: "Apk | dict",
        truth: dict | None = None,
        *,
        job_id: str | None = None,
        attempts: int = 50,
        default_backoff_s: float = 0.2,
    ) -> dict:
        """Submit, honouring 429 backpressure: sleep the daemon's
        ``Retry-After`` hint and try again, up to ``attempts``."""
        last: ServeClientError | None = None
        for _attempt in range(max(1, attempts)):
            try:
                return self.submit(apk, truth, job_id=job_id)
            except ServeClientError as exc:
                if exc.status != 429:
                    raise
                last = exc
                time.sleep(exc.retry_after_s or default_backoff_s)
        raise last  # type: ignore[misc]  — loop ran at least once

    def job(self, job_id: str) -> dict:
        return self._checked("GET", f"/jobs/{job_id}")

    def wait(
        self,
        job_id: str,
        *,
        timeout_s: float = 60.0,
        poll_s: float = 0.2,
    ) -> dict:
        """Block until the job is terminal (long-polling the daemon);
        raises :class:`TimeoutError` past the deadline."""
        deadline = time.monotonic() + timeout_s
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(f"{job_id} not terminal in {timeout_s}s")
            wait_s = max(0.05, min(remaining, 5.0))
            doc = self._checked(
                "GET", f"/jobs/{job_id}?wait={wait_s:.2f}"
            )
            if doc.get("state") in ("completed", "quarantined"):
                return doc
            time.sleep(min(poll_s, max(0.0, deadline - time.monotonic())))

    def healthz(self) -> dict:
        return self._checked("GET", "/healthz")

    def statsz(self) -> dict:
        return self._checked("GET", "/statsz")

    def readyz(self) -> tuple[bool, dict]:
        status, doc = self._request("GET", "/readyz")
        return status == 200, doc

    # -- decoding ------------------------------------------------------

    @staticmethod
    def _apk_doc(apk: "Apk | dict") -> dict:
        if isinstance(apk, dict):
            return apk
        from ..apk.serialization import apk_to_dict

        return apk_to_dict(apk)

    @staticmethod
    def result_of(job_doc: dict) -> "AppResult | None":
        """Reconstruct the terminal job's :class:`AppResult`
        (fingerprint-identical to the daemon's in-memory record)."""
        result_doc = job_doc.get("result")
        if result_doc is None:
            return None
        from ..eval.checkpoint import result_from_dict

        return result_from_dict(result_doc)[1]
