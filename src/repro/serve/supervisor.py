"""The worker-pool supervisor: long-lived workers, continuously
replaced.

The batch pool (:class:`~repro.eval.parallel.PoolBackend`) builds a
fresh ``ProcessPoolExecutor`` per round and lets a broken pool end the
round — acceptable when a round is the unit of work, fatal for a
daemon that must keep answering for days.  The supervisor manages its
workers *individually*:

* each worker is one forked process with a private duplex pipe and a
  slot in a shared heartbeat array; it bootstraps through the exact
  substrate ladder of the batch engine
  (:func:`repro.eval.parallel._init_worker`: inherited parent
  substrate → build memo → shared segment → snapshot → mine) and then
  loops ``recv task → analyze_app → send result``;
* the dispatch loop detects a **dead** worker (its process exited —
  injected ``worker-death``, an OOM kill, an operator's ``kill -9``)
  and a **hung** one (busy past the hang deadline despite
  ``analyze_app``'s own in-worker timeouts — a wedged interpreter),
  synthesizes retryable ``worker-lost`` records for whatever it held,
  and **respawns the slot in place**: the pool never shrinks, and no
  other worker's in-flight job is disturbed;
* results are matched on ``(seq, attempt)`` with a done-set, so a
  synthesized loss and a late real result can never double-deliver.

It implements :class:`~repro.eval.orchestration.CorpusBackend`, so the
streaming engine (:func:`~repro.eval.orchestration.run_stream`) drives
it exactly like any batch scheduler — retry/quarantine policy stays in
one place.
"""

from __future__ import annotations

import os
import time
from collections import deque
from dataclasses import dataclass
from multiprocessing import connection
from typing import TYPE_CHECKING

from ..core.arm import register_database
from ..eval import parallel as _parallel
from ..eval.orchestration import CorpusBackend, Entry
from ..eval.parallel import (
    _init_worker,
    _merge_cache_stats,
    _pool_context,
    _worker_lost_results,
)
from ..eval.runner import DEFAULT_TOOLS, AppResult, analyze_app
from ..framework.spec import FrameworkSpec

if TYPE_CHECKING:  # pragma: no cover — import cycle guard
    from ..eval.faults import FaultPlan
    from ..framework.repository import FrameworkRepository

__all__ = ["PoolSupervisor"]


def _worker_main(
    conn,
    heartbeat,
    slot: int,
    spec: FrameworkSpec,
    include: tuple[str, ...],
    snapshot_file: str | None,
    shared_handle,
    summaries: bool,
    cache_dir: str | None,
    dedup: bool,
) -> None:
    """One supervised worker: bootstrap the substrate, then serve
    tasks off the pipe until the ``None`` sentinel (or pipe loss)."""
    import signal as _signal

    # The daemon's drain handler belongs to the parent; a worker that
    # inherited it must die plainly when terminated.
    try:
        _signal.signal(_signal.SIGTERM, _signal.SIG_DFL)
    except (ValueError, OSError):  # pragma: no cover
        pass
    _init_worker(
        spec,
        include,
        None,  # faults ship per task, not per process
        snapshot_file,
        shared_handle,
        summaries,
        cache_dir,
        dedup,
    )
    toolset = _parallel._WORKER_TOOLSET
    heartbeat[slot] = time.time()
    parent = os.getppid()
    while True:
        try:
            # A plain blocking recv() would wedge forever if the
            # parent is SIGKILLed: forked siblings inherit each
            # other's parent-end pipe fds, so EOF never arrives.
            # Poll with a deadline and watch for reparenting instead.
            while not conn.poll(1.0):
                if os.getppid() != parent:  # orphaned by kill -9
                    return
            task = conn.recv()
        except (EOFError, OSError):  # parent died or closed the pipe
            return
        if task is None:
            return
        seq, forged, attempt, timeout_s, fault = task
        heartbeat[slot] = time.time()
        result = analyze_app(
            toolset,
            forged,
            timeout_s=timeout_s,
            fault=fault,
            attempt=attempt,
            allow_process_death=True,
        )
        heartbeat[slot] = time.time()
        try:
            conn.send(
                (os.getpid(), seq, attempt, result, toolset.cache_stats())
            )
        except (BrokenPipeError, OSError):  # pragma: no cover
            return


@dataclass
class _Worker:
    slot: int
    process: object
    conn: object
    spawned_at: float


class PoolSupervisor(CorpusBackend):
    """Supervised resident worker pool behind the streaming engine."""

    def __init__(
        self,
        spec: FrameworkSpec,
        *,
        workers: int = 2,
        include: tuple[str, ...] = DEFAULT_TOOLS,
        timeout_s: float | None = 20.0,
        hang_timeout_s: float = 30.0,
        summaries: bool = False,
        cache_dir: str | None = None,
        dedup: bool = False,
        fault_plan: "FaultPlan | None" = None,
        drain_poll_s: float = 0.05,
    ) -> None:
        self._spec = spec
        self.workers = max(1, workers)
        self.include = tuple(include)
        self.timeout_s = timeout_s
        self.hang_timeout_s = hang_timeout_s
        self.summaries = summaries
        self.cache_dir = cache_dir
        self.dedup = dedup
        self.fault_plan = fault_plan
        self.drain_poll_s = drain_poll_s
        self._ctx = _pool_context()
        self._heartbeat = self._ctx.Array("d", self.workers)
        self._pool: list[_Worker | None] = [None] * self.workers
        self._inflight: dict[int, tuple[Entry, float]] = {}
        self._worker_stats: dict[int, dict] = {}
        self._snapshot_file: str | None = None
        self._segment = None
        self._started = False
        self._closed = False
        self.restarts = 0
        self.substrate_source: str | None = None

    # -- CorpusBackend surface -----------------------------------------

    @property
    def spec(self) -> FrameworkSpec:
        return self._spec

    @property
    def tool_names(self) -> tuple[str, ...]:
        return self.include

    def config_options(self) -> dict:
        options: dict = {}
        if self.summaries:
            options["summaries"] = True
        if self.dedup:
            options["dedup"] = True
        return options

    def prepare(self, cache_dir, pending=()) -> None:
        # The service starts the pool before the dispatcher runs; this
        # makes the backend self-sufficient for direct run_stream use.
        self.start()

    # -- lifecycle -----------------------------------------------------

    def start(
        self,
        substrate: "tuple[FrameworkRepository, object] | None" = None,
    ) -> None:
        """Load (or adopt) the substrate once, publish it to workers,
        and spawn the pool.  Idempotent."""
        if self._started:
            return
        if substrate is None:
            from ..cache.snapshot import load_or_build_substrate

            framework, apidb, source = load_or_build_substrate(
                self.cache_dir, self._spec
            )
        else:
            framework, apidb = substrate
            source = "provided"
        self.substrate_source = source
        register_database(self._spec, apidb)
        if self.cache_dir is not None:
            from ..cache import ensure_snapshot

            self._snapshot_file = str(
                ensure_snapshot(self.cache_dir, framework, apidb)
            )
        if self.summaries:
            from ..analysis.fwsummaries import summary_table

            # Materialize the table parent-side so forked workers
            # inherit it as copy-on-write pages.
            summary_table(framework, apidb, store_dir=self.cache_dir)
        # Fork workers inherit the substrate; non-fork platforms (and
        # chaos runs forcing the segment path) attach a shared segment.
        _parallel._PARENT_SUBSTRATE = (framework, apidb)
        if (
            self._ctx.get_start_method() != "fork"
            or os.environ.get("REPRO_FORCE_SHARED_SUBSTRATE")
        ):
            from ..cache import fingerprint_spec
            from ..cache.shared import SharedSubstrate
            from ..cache.snapshot import substrate_payload

            key = fingerprint_spec(self._spec)
            self._segment = SharedSubstrate.publish(
                substrate_payload(framework, apidb, key), key
            )
        for slot in range(self.workers):
            self._spawn(slot)
        self._started = True

    def _spawn(self, slot: int) -> None:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_worker_main,
            args=(
                child_conn,
                self._heartbeat,
                slot,
                self._spec,
                self.include,
                self._snapshot_file,
                self._segment.handle if self._segment is not None else None,
                self.summaries,
                self.cache_dir,
                self.dedup,
            ),
            daemon=True,
        )
        process.start()
        child_conn.close()
        self._pool[slot] = _Worker(
            slot=slot,
            process=process,
            conn=parent_conn,
            spawned_at=time.time(),
        )

    def _respawn(self, slot: int) -> None:
        worker = self._pool[slot]
        if worker is not None:
            try:
                worker.conn.close()
            except OSError:  # pragma: no cover
                pass
            if worker.process.is_alive():
                worker.process.kill()
            worker.process.join(timeout=5.0)
        self.restarts += 1
        self._spawn(slot)

    def close(self) -> None:
        """Stop every worker and unlink shared resources.  Idempotent
        and safe mid-round (run_stream calls it from the service's
        drain path, the chaos suite from ``finally`` blocks)."""
        if self._closed:
            return
        self._closed = True
        for worker in self._pool:
            if worker is None:
                continue
            try:
                worker.conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for worker in self._pool:
            if worker is None:
                continue
            worker.process.join(timeout=1.0)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=1.0)
            if worker.process.is_alive():  # pragma: no cover — stuck
                worker.process.kill()
                worker.process.join(timeout=1.0)
            try:
                worker.conn.close()
            except OSError:  # pragma: no cover
                pass
        self._pool = [None] * self.workers
        self._inflight.clear()
        if self._segment is not None:
            self._segment.close(unlink=True)
            self._segment = None
        if (
            _parallel._PARENT_SUBSTRATE is not None
            and _parallel._PARENT_SUBSTRATE[0].spec is self._spec
        ):
            _parallel._PARENT_SUBSTRATE = None

    def finish(self, cache_dir) -> dict:
        merged = _merge_cache_stats(self._worker_stats)
        if self.dedup and self.cache_dir is not None:
            # Same adoption discipline as PoolBackend.finish: workers
            # write class artifacts atomically but save the shared
            # manifest last-writer-wins; the parent adopts anything the
            # surviving manifest missed and enforces the byte budget.
            from ..cache import fingerprint_config, fingerprint_spec
            from ..cache.classes import CLASS_ARTIFACT_VERSION, class_store

            store = class_store(
                self.cache_dir,
                framework_fingerprint=fingerprint_spec(self._spec),
                config_fingerprint=fingerprint_config(
                    ("SAINTDroid",), {"classes": CLASS_ARTIFACT_VERSION}
                ),
            )
            store.flush()
        return merged

    def cache_stats(self) -> dict:
        """Merged per-worker cache statistics (latest snapshot per
        pid) without the flush side effects of :meth:`finish` — the
        ``/statsz`` read path."""
        return _merge_cache_stats(self._worker_stats)

    # -- dispatch ------------------------------------------------------

    def _hang_deadline(self) -> float:
        # analyze_app enforces timeout_s inside the worker, so a
        # healthy worker answers within roughly one timeout; the hang
        # deadline is the backstop for a truly wedged process.
        return (self.timeout_s or 0.0) + self.hang_timeout_s

    def run_round(
        self, pending: list[Entry], round_no: int
    ) -> list[tuple[Entry, AppResult]]:
        """Dispatch one micro-batch over the resident pool, surviving
        worker death and hangs without losing a single entry."""
        if not self._started:
            self.start()
        out: list[tuple[Entry, AppResult]] = []
        todo: deque[Entry] = deque(pending)
        done: set[tuple[int, int]] = set()

        def _settle(entry: Entry, result: AppResult) -> None:
            key = (entry[0], entry[2])
            if key in done:
                return
            done.add(key)
            out.append((entry, result))

        while len(out) < len(pending):
            # 1. Feed idle live workers.
            for slot, worker in enumerate(self._pool):
                if not todo:
                    break
                if worker is None or slot in self._inflight:
                    continue
                if not worker.process.is_alive():
                    self._respawn(slot)
                    worker = self._pool[slot]
                entry = todo.popleft()
                fault = (
                    self.fault_plan.analysis_fault_for(entry[0])
                    if self.fault_plan is not None
                    else None
                )
                try:
                    worker.conn.send(
                        (entry[0], entry[1], entry[2], self.timeout_s, fault)
                    )
                except (BrokenPipeError, OSError):
                    todo.appendleft(entry)
                    self._respawn(slot)
                    continue
                self._inflight[slot] = (entry, time.monotonic())

            # 2. Drain whatever is ready.
            busy = [
                (slot, worker)
                for slot, worker in enumerate(self._pool)
                if worker is not None and slot in self._inflight
            ]
            conns = [worker.conn for _slot, worker in busy]
            by_conn = {worker.conn: slot for slot, worker in busy}
            ready = (
                connection.wait(conns, timeout=self.drain_poll_s)
                if conns
                else []
            )
            for ready_conn in ready:
                slot = by_conn[ready_conn]
                entry, _t0 = self._inflight[slot]
                try:
                    pid, seq, attempt, result, stats = ready_conn.recv()
                except (EOFError, OSError):
                    # Worker died between wait() and recv(): the
                    # death path below synthesizes the loss.
                    continue
                self._inflight.pop(slot, None)
                self._worker_stats[pid] = stats
                if (seq, attempt) != (entry[0], entry[2]):
                    # A stale answer on a recycled slot (should be
                    # unreachable with per-respawn fresh pipes): drop
                    # the message, re-dispatch the held entry.
                    todo.append(entry)
                    continue
                _settle(entry, result)

            # 3. Liveness: replace dead workers, kill hung ones.
            now = time.monotonic()
            for slot, worker in enumerate(self._pool):
                if worker is None:
                    continue
                held = self._inflight.get(slot)
                if not worker.process.is_alive():
                    if held is not None:
                        self._inflight.pop(slot, None)
                        entry, _t0 = held
                        exc = RuntimeError(
                            f"worker pid {worker.process.pid} died"
                        )
                        for _idx, result in _worker_lost_results(
                            [entry], exc
                        ):
                            _settle(entry, result)
                    self._respawn(slot)
                elif (
                    held is not None
                    and now - held[1] > self._hang_deadline()
                ):
                    entry, _t0 = held
                    self._inflight.pop(slot, None)
                    exc = TimeoutError(
                        f"worker pid {worker.process.pid} hung past "
                        f"{self._hang_deadline():.1f}s"
                    )
                    for _idx, result in _worker_lost_results(
                        [entry], exc
                    ):
                        _settle(entry, result)
                    self._respawn(slot)
        return out

    # -- observability -------------------------------------------------

    def liveness(self) -> dict:
        """Pool health for ``/healthz``: per-slot liveness, busyness,
        heartbeats, and the respawn count.  PIDs are exposed so chaos
        tests (and the CI smoke) can kill a real worker."""
        now = time.time()
        alive = busy = 0
        pids: list[int | None] = []
        heartbeat_age: list[float | None] = []
        for slot, worker in enumerate(self._pool):
            if worker is None:
                pids.append(None)
                heartbeat_age.append(None)
                continue
            if worker.process.is_alive():
                alive += 1
            if slot in self._inflight:
                busy += 1
            pids.append(worker.process.pid)
            beat = self._heartbeat[slot]
            heartbeat_age.append(round(now - beat, 3) if beat else None)
        return {
            "workers": self.workers,
            "alive": alive,
            "busy": busy,
            "restarts": self.restarts,
            "pids": pids,
            "heartbeat_age_s": heartbeat_age,
            "substrate_source": self.substrate_source,
        }
