"""The daemon's job model: one submitted APK, from admission to a
terminal state.

A job is *terminal* when it is ``COMPLETED`` (clean analysis, possibly
served in O(1) from the dedup cache) or ``QUARANTINED`` (its final
error record attached after the retry budget was spent).  The daemon's
core invariant — what the journal, the queue, and the chaos suite all
enforce — is that every acknowledged job reaches exactly one terminal
state, across worker deaths, daemon restarts, and overload.
"""

from __future__ import annotations

import enum
import itertools
import os
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover — import cycle guard
    from ..eval.runner import AppResult

__all__ = ["JobState", "Job", "new_job_id"]

_JOB_COUNTER = itertools.count()


def new_job_id(seq: int) -> str:
    """A unique, humanly sortable job id.  The pid + counter suffix
    keeps ids unique across daemon restarts sharing one journal."""
    return f"job-{seq:06d}-{os.getpid():x}-{next(_JOB_COUNTER):x}"


class JobState(enum.Enum):
    QUEUED = "queued"
    RUNNING = "running"
    COMPLETED = "completed"
    QUARANTINED = "quarantined"

    @property
    def terminal(self) -> bool:
        return self in (JobState.COMPLETED, JobState.QUARANTINED)


@dataclass
class Job:
    """One submitted APK's lifecycle record."""

    id: str
    #: Monotone admission sequence number — the streaming engine's
    #: entry index; keys fault plans exactly like a corpus index.
    seq: int
    app: str
    #: Content fingerprint of the APK (``None`` when the package is
    #: too hostile to serialize — such jobs are simply undedupable).
    fingerprint: str | None
    state: JobState = JobState.QUEUED
    #: 1-based analysis attempts consumed (0 until first dispatch).
    attempts: int = 0
    #: Served in O(1) from the content-addressed result cache.
    dedup: bool = False
    #: Re-enqueued from the journal after a daemon restart.
    replayed: bool = False
    submitted_at: float = field(default_factory=time.time)
    started_at: float | None = None
    finished_at: float | None = None
    result: "AppResult | None" = None

    @property
    def terminal(self) -> bool:
        return self.state.terminal

    def to_doc(self, *, include_result: bool = True) -> dict:
        """The job's wire representation (HTTP and journal-free
        introspection).  The result rides in the checkpoint journal's
        codec so a client can reconstruct a fingerprint-identical
        :class:`~repro.eval.runner.AppResult`."""
        doc = {
            "id": self.id,
            "seq": self.seq,
            "app": self.app,
            "fingerprint": self.fingerprint,
            "state": self.state.value,
            "attempts": self.attempts,
            "dedup": self.dedup,
            "replayed": self.replayed,
            "submittedAt": self.submitted_at,
            "startedAt": self.started_at,
            "finishedAt": self.finished_at,
            "error": None,
            "result": None,
        }
        if self.result is not None and self.result.error is not None:
            doc["error"] = self.result.error.to_dict()
        if include_result and self.result is not None:
            from ..eval.checkpoint import result_to_dict

            doc["result"] = result_to_dict(self.seq, self.result)
        return doc
