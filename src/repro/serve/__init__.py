"""``saintdroid serve``: the resident, crash-safe analysis daemon.

The batch CLI pays substrate setup on every invocation and forgets
everything when it exits.  This package turns the same analysis
machinery into a long-lived *service*: the framework snapshot,
ApiDatabase, and (optionally) the framework summary table are loaded
once and held warm; APK-analysis jobs arrive over a small HTTP/JSON
API, flow through a bounded admission queue into the streaming
orchestration engine (:func:`repro.eval.orchestration.run_stream`),
and come back as the same fingerprint-stable
:class:`~repro.eval.runner.AppResult` records a batch run produces.

Robustness is the headline, not a footnote:

* every admitted job is **write-ahead journaled** before it is
  acknowledged, and every terminal result is journaled when it lands —
  a killed daemon (even ``kill -9``) replays exactly the in-flight
  jobs on restart, with no losses and no duplicates;
* a **supervisor** owns the worker pool: heartbeat/deadline monitoring
  detects hung and dead workers, replaces them continuously, and
  poison jobs are quarantined after bounded retries with full-jitter
  backoff;
* **admission control** keeps the daemon answering under overload —
  full queue ⇒ 429 with ``Retry-After``, oversized APK ⇒ 413,
  malformed package ⇒ 400 — and identical APK fingerprints are
  answered in O(1) from the content-addressed result cache;
* **graceful drain** on SIGTERM: stop admitting, finish in-flight
  work, flush the journal, unlink shared-memory segments.

Layers (one module each): :mod:`jobs` (the job model),
:mod:`journal` (the WAL), :mod:`queue` (admission + job source),
:mod:`supervisor` (the worker pool), :mod:`service` (the daemon
object), :mod:`server` (HTTP), :mod:`client` (a tiny client).
"""

from .client import ServeClient, ServeClientError
from .jobs import Job, JobState
from .journal import ServeJournal
from .queue import (
    JobQueue,
    MalformedJobError,
    OversizedJobError,
    QueueClosedError,
    QueueFullError,
)
from .server import install_signal_handlers, start_server
from .service import AnalysisService, ServeConfig
from .supervisor import PoolSupervisor

__all__ = [
    "AnalysisService",
    "ServeConfig",
    "Job",
    "JobState",
    "JobQueue",
    "ServeJournal",
    "PoolSupervisor",
    "ServeClient",
    "ServeClientError",
    "QueueFullError",
    "QueueClosedError",
    "OversizedJobError",
    "MalformedJobError",
    "start_server",
    "install_signal_handlers",
]
