"""The daemon object: substrate + journal + queue + supervisor +
dispatcher, wired and lifecycle-managed.

:class:`AnalysisService` is the HTTP-free heart of ``saintdroid
serve`` — tests and benchmarks drive it in-process, the HTTP layer
(:mod:`repro.serve.server`) is a thin adapter over it.  Lifecycle:

``start()``
    loads (or adopts) the substrate once, replays the write-ahead
    journal — terminal results are adopted verbatim, acknowledged but
    unfinished jobs are re-enqueued with their original ids — opens
    the persistent result cache for cross-restart dedup, spawns the
    supervised worker pool, and starts the dispatcher thread
    (:func:`repro.eval.orchestration.run_stream` over the queue).

``drain()``
    the graceful-shutdown path (SIGTERM): stop admitting, let the
    dispatcher finish every in-flight job, stop the workers, flush
    journal and cache, unlink shared-memory segments.  Idempotent —
    a second SIGTERM mid-drain is absorbed, not amplified.

``health()`` / ``ready()``
    the ``/healthz``–``/readyz`` payloads: queue depth, worker
    liveness, cache hit rates, drain state.  ``health()`` always
    answers; ``ready()`` is the load-balancer gate (started, not
    draining, at least one live worker, queue below capacity).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..apk.serialization import apk_from_dict
from ..cache.fingerprint import fingerprint_config, fingerprint_spec
from ..eval.faults import FaultKind
from ..eval.orchestration import run_stream
from ..eval.runner import DEFAULT_TOOLS
from ..framework.spec import FrameworkSpec
from ..workload.appgen import ForgedApp
from ..workload.groundtruth import GroundTruth
from .jobs import Job
from .journal import ServeJournal
from .queue import JobQueue
from .supervisor import PoolSupervisor

if TYPE_CHECKING:  # pragma: no cover — import cycle guard
    from ..eval.faults import FaultPlan
    from ..framework.repository import FrameworkRepository

__all__ = ["ServeConfig", "AnalysisService"]


@dataclass
class ServeConfig:
    """Knobs for one daemon."""

    #: Supervised worker processes.
    workers: int = 2
    #: Tool names each worker instantiates.
    include: tuple[str, ...] = DEFAULT_TOOLS
    #: Bound the CLVM with whole-framework pre-summaries.
    summaries: bool = False
    #: Delta analysis against the corpus-wide class-artifact store —
    #: a resident daemon's hit rate climbs as its corpus streams in.
    dedup: bool = False
    #: Persistent cache directory (snapshots + cross-restart dedup);
    #: ``None`` disables both.
    cache_dir: str | None = None
    #: Write-ahead journal path; ``None`` disables crash recovery.
    journal: str | None = None
    #: fsync every journal append (off only for benchmarks).
    journal_fsync: bool = True
    #: Admission-queue capacity (queued + running).
    queue_limit: int = 64
    #: Load-shed serialized packages above this size (``None`` = no
    #: limit).
    max_apk_bytes: int | None = None
    #: Retry-After hint sent with 429 rejections.
    retry_after_s: float = 0.5
    #: Per-app wall-clock budget inside workers.
    timeout_s: float | None = 20.0
    #: Backstop deadline before a busy worker is declared hung.
    hang_timeout_s: float = 30.0
    #: Retry budget for retryable failures before quarantine.
    max_retries: int = 2
    #: Full-jitter backoff base between retries.
    retry_backoff_s: float = 0.05
    #: Dispatcher micro-batch size (``None`` = 2 × workers).
    batch_limit: int | None = None
    #: Dispatcher poll interval.
    poll_s: float = 0.05
    #: Drain budget for in-flight work on shutdown.
    drain_timeout_s: float = 30.0
    #: Injected faults (chaos testing only).
    fault_plan: "FaultPlan | None" = None

    def resolved_batch_limit(self) -> int:
        if self.batch_limit is not None:
            return max(1, self.batch_limit)
        return max(1, 2 * self.workers)


@dataclass
class _ServiceState:
    started_at: float | None = None
    draining: bool = False
    drained: bool = False
    stream_stats: dict = field(default_factory=dict)
    recovery: dict = field(default_factory=dict)
    drain_reentries: int = 0
    worker_cache_stats: dict = field(default_factory=dict)


class AnalysisService:
    """One resident analysis daemon (HTTP-free)."""

    def __init__(
        self,
        config: ServeConfig,
        spec: FrameworkSpec,
        *,
        substrate: "tuple[FrameworkRepository, object] | None" = None,
    ) -> None:
        self.config = config
        self.spec = spec
        self._substrate = substrate
        self.journal: ServeJournal | None = None
        self.queue: JobQueue | None = None
        self.supervisor: PoolSupervisor | None = None
        self._result_cache = None
        self._dispatcher: threading.Thread | None = None
        self._state = _ServiceState()
        self._drain_lock = threading.Lock()
        #: Set once drain completes — the CLI blocks on this.
        self.drained = threading.Event()

    # -- lifecycle -----------------------------------------------------

    def start(self) -> "AnalysisService":
        config = self.config
        if config.journal is not None:
            self.journal = ServeJournal(
                config.journal,
                tools=config.include,
                fsync=config.journal_fsync,
            )
        recovery = (
            self.journal.load() if self.journal is not None else None
        )
        if config.cache_dir is not None:
            from ..cache.results import ResultCache

            options: dict = {}
            if config.summaries:
                options["summaries"] = True
            if config.dedup:
                options["dedup"] = True
            self._result_cache = ResultCache(
                config.cache_dir,
                framework_fingerprint=fingerprint_spec(self.spec),
                # ``or None`` keeps the default configuration's key
                # byte-identical to the batch engine's (and to the
                # pre-options era), so caches stay shared and warm.
                config_fingerprint=fingerprint_config(
                    config.include, options or None
                ),
            )
        self.queue = JobQueue(
            journal=self.journal,
            result_cache=self._result_cache,
            limit=config.queue_limit,
            max_apk_bytes=config.max_apk_bytes,
            retry_after_s=config.retry_after_s,
            fault_plan=config.fault_plan,
            start_seq=(recovery.max_seq + 1) if recovery else 0,
        )
        self.supervisor = PoolSupervisor(
            self.spec,
            workers=config.workers,
            include=config.include,
            timeout_s=config.timeout_s,
            hang_timeout_s=config.hang_timeout_s,
            summaries=config.summaries,
            cache_dir=config.cache_dir,
            dedup=config.dedup,
            fault_plan=config.fault_plan,
        )
        self.supervisor.start(self._substrate)
        replayed = self._replay(recovery)
        self._dispatcher = threading.Thread(
            target=self._dispatch, name="serve-dispatcher", daemon=True
        )
        self._state.started_at = time.time()
        self._state.recovery = replayed
        self._dispatcher.start()
        return self

    def _replay(self, recovery) -> dict:
        """Adopt journaled terminal results; re-enqueue acknowledged
        jobs the previous incarnation never finished."""
        replayed = {"terminal": 0, "pending": 0, "corrupt": 0, "dropped": 0}
        if recovery is None:
            return replayed
        replayed["corrupt"] = recovery.corrupt
        for recovered in recovery.terminal():
            self.queue.adopt(recovered.job)
            replayed["terminal"] += 1
        for recovered in recovery.pending():
            if recovered.apk_doc is None:
                # A torn job record with no package: nothing to rerun
                # (and the submission was never acknowledged).
                replayed["dropped"] += 1
                continue
            try:
                apk = apk_from_dict(recovered.apk_doc, strict=True)
                truth = (
                    GroundTruth.from_dict(recovered.truth_doc)
                    if recovered.truth_doc is not None
                    else GroundTruth(app=apk.name)
                )
            except Exception:  # noqa: BLE001 — damaged payload
                replayed["dropped"] += 1
                continue
            self.queue.resubmit(
                recovered.job, ForgedApp(apk=apk, truth=truth)
            )
            replayed["pending"] += 1
        return replayed

    def _dispatch(self) -> None:
        self._state.stream_stats = run_stream(
            self.queue,
            self.supervisor,
            max_retries=self.config.max_retries,
            retry_backoff_s=self.config.retry_backoff_s,
            batch_limit=self.config.resolved_batch_limit(),
            poll_s=self.config.poll_s,
            cache_dir=self.config.cache_dir,
        )

    def drain(self, timeout_s: float | None = None) -> str:
        """Graceful shutdown.  Idempotent: the first caller drains,
        every concurrent or repeated caller gets ``already-draining``
        back immediately — which is exactly how a second SIGTERM
        mid-drain is absorbed."""
        if not self._drain_lock.acquire(blocking=False):
            self._state.drain_reentries += 1
            return "already-draining"
        try:
            if self._state.drained:
                return "drained"
            self._state.draining = True
            budget = (
                timeout_s
                if timeout_s is not None
                else self.config.drain_timeout_s
            )
            if self.queue is not None:
                self.queue.close()
            self._inject_drain_fault()
            if self._dispatcher is not None:
                self._dispatcher.join(timeout=budget)
            if self.supervisor is not None:
                # Adopt worker-written class artifacts into the shared
                # manifest and enforce the byte budget (no-op without
                # ``--dedup``), then stop the pool.
                self._state.worker_cache_stats = self.supervisor.finish(
                    self.config.cache_dir
                )
                self.supervisor.close()
            if self.journal is not None:
                self.journal.close()
            if self._result_cache is not None:
                self._result_cache.flush()
            self._state.drained = True
            self.drained.set()
            return "drained"
        finally:
            self._drain_lock.release()

    def _inject_drain_fault(self) -> None:
        """The ``drain-sigterm`` chaos fault: a second shutdown
        request arrives while this drain is in progress.  Injected as
        a concurrent :meth:`drain` call — the exact code path a
        re-delivered SIGTERM takes through the server's handler."""
        plan = self.config.fault_plan
        if plan is None or not plan.has_kind(FaultKind.DRAIN_SIGTERM):
            return
        second = threading.Thread(target=self.drain, daemon=True)
        second.start()
        second.join(timeout=5.0)

    # -- submissions (in-process surface; HTTP delegates here) ---------

    def submit(
        self,
        apk_doc: dict,
        truth_doc: dict | None = None,
        *,
        job_id: str | None = None,
    ) -> Job:
        if self.queue is None:
            from .queue import QueueClosedError

            raise QueueClosedError("service not started")
        return self.queue.submit(apk_doc, truth_doc, job_id=job_id)

    def submit_batch(
        self,
        submissions,
        *,
        wait_timeout_s: float = 60.0,
    ) -> list[Job]:
        """Submit many ``(apk_doc, truth_doc)`` pairs and wait for
        every job to reach a terminal state.

        The corpus-campaign ingestion path (``saintdroid compare
        --via-serve``): admission backpressure is honored in-process —
        a full queue sleeps the advertised ``Retry-After`` and
        resubmits instead of surfacing 429 to the caller — and the
        returned jobs are in submission order regardless of completion
        order, so batch results join against the corpus by index.
        Raises :class:`TimeoutError` when a job fails to settle inside
        ``wait_timeout_s``.
        """
        from .queue import QueueFullError

        jobs: list[Job] = []
        for apk_doc, truth_doc in submissions:
            while True:
                try:
                    jobs.append(self.submit(apk_doc, truth_doc))
                    break
                except QueueFullError as exc:
                    time.sleep(max(exc.retry_after_s, 0.01))
        settled: list[Job] = []
        for job in jobs:
            done = self.wait(job.id, timeout_s=wait_timeout_s)
            if done is None or not done.terminal:
                raise TimeoutError(
                    f"job {job.id} did not settle within "
                    f"{wait_timeout_s:.0f}s"
                )
            settled.append(done)
        return settled

    def job(self, job_id: str) -> Job | None:
        return self.queue.job(job_id) if self.queue is not None else None

    def wait(self, job_id: str, timeout_s: float = 30.0) -> Job | None:
        if self.queue is None:
            return None
        return self.queue.wait(job_id, timeout_s)

    # -- observability -------------------------------------------------

    def health(self) -> dict:
        """Always answers — degraded states are *reported*, not
        hidden behind a connection error."""
        state = self._state
        queue_stats = self.queue.stats() if self.queue is not None else {}
        cache_stats = (
            self._result_cache.stats.as_dict()
            if self._result_cache is not None
            else None
        )
        return {
            "status": (
                "drained"
                if state.drained
                else "draining"
                if state.draining
                else "ok"
                if state.started_at is not None
                else "starting"
            ),
            "uptime_s": (
                round(time.time() - state.started_at, 3)
                if state.started_at is not None
                else 0.0
            ),
            "queue": queue_stats,
            "pool": (
                self.supervisor.liveness()
                if self.supervisor is not None
                else {}
            ),
            "result_cache": cache_stats,
            "stream": dict(state.stream_stats),
            "recovery": dict(state.recovery),
            "drain_reentries": state.drain_reentries,
        }

    def statsz(self) -> dict:
        """Cumulative cache counters for capacity planning — the
        ``/statsz`` payload.  Distinct from :meth:`health` (liveness):
        this answers *how much re-analysis the daemon is avoiding* —
        result-cache admission dedup, per-worker API/class-store
        traffic (the ``classes`` section carries class-artifact and
        guard-row hit rates that climb as a corpus streams in), and
        the on-disk footprint per store under the shared byte budget.
        """
        state = self._state
        worker_caches = (
            self.supervisor.cache_stats()
            if self.supervisor is not None
            else dict(state.worker_cache_stats)
        )
        doc: dict = {
            "uptime_s": (
                round(time.time() - state.started_at, 3)
                if state.started_at is not None
                else 0.0
            ),
            "dedup": self.config.dedup,
            "result_cache": (
                self._result_cache.stats.as_dict()
                if self._result_cache is not None
                else None
            ),
            "worker_caches": worker_caches,
            "stream": dict(state.stream_stats),
        }
        if self.config.cache_dir is not None:
            from ..cache.manifest import shared_manifest

            doc["store_sizes"] = shared_manifest(
                self.config.cache_dir
            ).sizes_by_store()
        return doc

    def ready(self) -> tuple[bool, dict]:
        """The load-balancer gate: can this daemon usefully accept a
        submission right now?"""
        doc = self.health()
        checks = {
            "started": self._state.started_at is not None,
            "not_draining": not self._state.draining,
            "workers_alive": bool(doc["pool"].get("alive", 0)),
            "queue_has_room": (
                doc["queue"].get("depth", 0)
                < doc["queue"].get("limit", 1)
            ),
        }
        doc["checks"] = checks
        return all(checks.values()), doc
