"""The daemon's HTTP surface: stdlib-only, four routes, honest
status codes.

======  ==============  =====================================================
method  path            semantics
======  ==============  =====================================================
POST    ``/jobs``       submit ``{"apk": <sapk doc>, "truth"?: ..., "id"?:
                        ...}`` — **202** queued, **200** answered terminally
                        on admission (dedup hit), **400** malformed, **413**
                        oversized, **429** + ``Retry-After`` when the queue
                        is full, **503** while draining
GET     ``/jobs/<id>``  the job document (**404** unknown); ``?wait=<s>``
                        long-polls until terminal or the deadline
GET     ``/healthz``    always **200**: queue depth, worker liveness, cache
                        hit rates, recovery counters — degradation is
                        reported, never masked
GET     ``/readyz``     **200** when the daemon can usefully accept work,
                        **503** otherwise (starting, draining, dead pool,
                        full queue)
GET     ``/statsz``     always **200**: cumulative cache counters — result-
                        cache dedup, per-worker class-artifact and guard-row
                        hit rates, on-disk footprint per store
======  ==============  =====================================================

:func:`install_signal_handlers` wires SIGTERM/SIGINT to the graceful
drain: stop admitting, finish in-flight jobs, flush the journal,
unlink shared segments, then stop the HTTP loop.  The handler is
once-guarded *and* the drain itself is idempotent, so a second signal
mid-drain is absorbed.
"""

from __future__ import annotations

import json
import signal
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from .queue import AdmissionError, QueueFullError
from .service import AnalysisService

__all__ = ["ServeHTTPServer", "start_server", "install_signal_handlers"]

_MAX_BODY_BYTES = 64 * 1024 * 1024  # absolute transport sanity bound


class ServeHTTPServer(ThreadingHTTPServer):
    """Threaded HTTP server carrying its :class:`AnalysisService`."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, service: AnalysisService) -> None:
        super().__init__(address, _Handler)
        self.service = service


class _Handler(BaseHTTPRequestHandler):
    server_version = "saintdroid-serve/1"
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> AnalysisService:
        return self.server.service

    def log_message(self, *args) -> None:  # silence per-request noise
        pass

    def _reply(
        self, status: int, doc: dict, headers: dict | None = None
    ) -> None:
        body = json.dumps(doc).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    # -- POST /jobs ----------------------------------------------------

    def do_POST(self) -> None:
        path = urlparse(self.path).path
        if path != "/jobs":
            self._reply(404, {"error": "NotFound", "detail": path})
            return
        try:
            length = int(self.headers.get("Content-Length", 0))
        except ValueError:
            length = 0
        if length <= 0 or length > _MAX_BODY_BYTES:
            self._reply(
                413 if length > _MAX_BODY_BYTES else 400,
                {"error": "BadRequest", "detail": "missing or huge body"},
            )
            return
        try:
            doc = json.loads(self.rfile.read(length))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            self._reply(
                400, {"error": "MalformedJobError", "detail": str(exc)}
            )
            return
        if not isinstance(doc, dict) or "apk" not in doc:
            self._reply(
                400,
                {
                    "error": "MalformedJobError",
                    "detail": 'body must be {"apk": <sapk document>, ...}',
                },
            )
            return
        try:
            job = self.service.submit(
                doc["apk"],
                doc.get("truth"),
                job_id=doc.get("id"),
            )
        except QueueFullError as exc:
            self._reply(
                exc.status,
                exc.to_doc(),
                {"Retry-After": f"{exc.retry_after_s:.3f}"},
            )
            return
        except AdmissionError as exc:
            self._reply(exc.status, exc.to_doc())
            return
        if job.terminal:
            self._reply(200, job.to_doc())
        else:
            self._reply(202, job.to_doc(include_result=False))

    # -- GET routes ----------------------------------------------------

    def do_GET(self) -> None:
        parsed = urlparse(self.path)
        path = parsed.path
        if path == "/healthz":
            self._reply(200, self.service.health())
            return
        if path == "/readyz":
            ok, doc = self.service.ready()
            self._reply(200 if ok else 503, doc)
            return
        if path == "/statsz":
            self._reply(200, self.service.statsz())
            return
        if path.startswith("/jobs/"):
            job_id = path[len("/jobs/"):]
            query = parse_qs(parsed.query)
            wait_s = 0.0
            if "wait" in query:
                try:
                    wait_s = min(60.0, float(query["wait"][0]))
                except ValueError:
                    wait_s = 0.0
            job = (
                self.service.wait(job_id, wait_s)
                if wait_s > 0
                else self.service.job(job_id)
            )
            if job is None:
                self._reply(404, {"error": "NotFound", "detail": job_id})
            else:
                self._reply(200, job.to_doc())
            return
        self._reply(404, {"error": "NotFound", "detail": path})


def start_server(
    service: AnalysisService,
    host: str = "127.0.0.1",
    port: int = 0,
) -> ServeHTTPServer:
    """Bind and start serving on a daemon thread; ``port=0`` picks a
    free port (``server.server_address`` has the real one)."""
    server = ServeHTTPServer((host, port), service)
    thread = threading.Thread(
        target=server.serve_forever,
        name="serve-http",
        daemon=True,
        kwargs={"poll_interval": 0.1},
    )
    thread.start()
    return server


def install_signal_handlers(
    service: AnalysisService, server: ServeHTTPServer
) -> None:
    """SIGTERM/SIGINT → graceful drain, then stop the HTTP loop.

    Shutdown runs on a dedicated thread: a signal handler must return
    promptly, and ``server.shutdown()`` would deadlock if called from
    a handler executing on the serving thread.  The once-guard plus
    the service's own idempotent drain make repeated signals safe.
    """
    fired = threading.Event()

    def _shutdown(signum, frame):
        if fired.is_set():
            return  # second signal mid-drain: absorbed
        fired.set()

        def _run():
            try:
                service.drain()
            finally:
                server.shutdown()

        threading.Thread(
            target=_run, name="serve-drain", daemon=True
        ).start()

    for signum in (signal.SIGTERM, signal.SIGINT):
        signal.signal(signum, _shutdown)
