"""The daemon's write-ahead job journal.

The batch engine's :class:`~repro.eval.checkpoint.CheckpointJournal`
records *completions*; a daemon must also survive losing the work it
has merely *accepted*.  This journal is therefore a WAL: a ``job``
record is durably appended **before** the submission is acknowledged,
and a ``result`` record when the job reaches a terminal state.  A
daemon killed at any instant — including ``kill -9``, which flushes
nothing — replays on restart exactly the acknowledged-but-unfinished
jobs, and adopts every journaled terminal result verbatim (the result
payload rides the checkpoint codec, so replayed results are
fingerprint-identical to the originals).

Format — JSONL, one record per line::

    {"type": "header", "version": 1, "kind": "serve", "tools": [...]}
    {"type": "job", "id": ..., "seq": 0, "app": ..., "fingerprint":
     ..., "apk": {...}, "truth": {...}}
    {"type": "result", "id": ..., "state": "completed", "dedup":
     false, "attempts": 1, "result": {...}}

Durability and recovery discipline:

* every append is flushed **and fsynced** (configurable off for
  tests/benchmarks) — the ack the client saw is on disk;
* appends are self-healing: if the previous write was torn (a crash —
  or an injected ``partial-write`` fault — left no trailing newline),
  the next append starts with a newline so one torn record never
  corrupts its successor;
* ``load()`` is *lenient*, unlike the checkpoint journal's strict
  reader: a corrupt line anywhere is counted and skipped, because in
  a WAL a torn record is an expected crash artifact, not an integrity
  failure.  A torn ``job`` record simply means that submission was
  never acknowledged; a ``result`` without a surviving ``job`` record
  is still adopted as terminal (the result embeds everything needed).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

from ..eval.checkpoint import result_from_dict, result_to_dict
from .jobs import Job, JobState

if TYPE_CHECKING:  # pragma: no cover — import cycle guard
    from ..apk.package import Apk
    from ..eval.runner import AppResult

__all__ = ["ServeJournal", "ServeRecovery", "RecoveredJob", "FORMAT_VERSION"]

FORMAT_VERSION = 1


@dataclass
class RecoveredJob:
    """One journaled job after replaying the WAL."""

    job: Job
    #: The serialized package, kept as a document so replay can defer
    #: (and survive) deserialization.
    apk_doc: dict | None
    truth_doc: dict | None

    @property
    def terminal(self) -> bool:
        return self.job.terminal


@dataclass
class ServeRecovery:
    """Everything ``load()`` reconstructed from the journal."""

    jobs: dict[str, RecoveredJob] = field(default_factory=dict)
    #: Corrupt (torn) lines skipped — observability, never an error.
    corrupt: int = 0
    max_seq: int = -1

    def pending(self) -> list[RecoveredJob]:
        """Acknowledged jobs with no terminal result, in admission
        order — exactly the work a restarted daemon must redo."""
        return sorted(
            (r for r in self.jobs.values() if not r.terminal),
            key=lambda r: r.job.seq,
        )

    def terminal(self) -> list[RecoveredJob]:
        return sorted(
            (r for r in self.jobs.values() if r.terminal),
            key=lambda r: r.job.seq,
        )


class ServeJournal:
    """Append-only WAL for one daemon (crosses restarts)."""

    def __init__(
        self,
        path: str | Path,
        *,
        tools: tuple[str, ...],
        fsync: bool = True,
    ) -> None:
        self.path = Path(path)
        self.tools = tuple(tools)
        self.fsync = fsync
        self._handle = None
        #: The previous append was deliberately torn (fault injection)
        #: or the tail byte on open was not a newline.
        self._dirty_tail = False

    # -- writing -------------------------------------------------------

    def _open(self):
        if self._handle is None:
            fresh = (
                not self.path.exists()
                or self.path.stat().st_size == 0
            )
            self._handle = open(self.path, "ab")
            if fresh:
                self._write_line(
                    json.dumps(
                        {
                            "type": "header",
                            "version": FORMAT_VERSION,
                            "kind": "serve",
                            "tools": list(self.tools),
                        }
                    )
                )
            else:
                # Crash-recovery tail check: a previous torn write
                # must not glue itself onto our first record.
                with open(self.path, "rb") as probe:
                    probe.seek(-1, os.SEEK_END)
                    self._dirty_tail = probe.read(1) != b"\n"
        return self._handle

    def _write_line(self, text: str) -> None:
        handle = self._open()
        prefix = "\n" if self._dirty_tail else ""
        handle.write((prefix + text + "\n").encode())
        self._dirty_tail = False
        handle.flush()
        if self.fsync:
            os.fsync(handle.fileno())

    def append_job(
        self,
        job: Job,
        apk: "Apk",
        truth_doc: dict | None = None,
        *,
        tear: bool = False,
    ) -> bool:
        """Write-ahead record one admitted job (call BEFORE acking).

        ``tear=True`` injects a partial write — half the record, no
        newline, flushed — modelling a crash mid-append; the journal
        stays usable (the next append self-heals, ``load()`` skips the
        torn line) and the caller should re-append.  Returns whether a
        complete record landed.
        """
        from ..apk.serialization import apk_to_dict

        record = json.dumps(
            {
                "type": "job",
                "id": job.id,
                "seq": job.seq,
                "app": job.app,
                "fingerprint": job.fingerprint,
                "submittedAt": job.submitted_at,
                "apk": apk_to_dict(apk),
                "truth": truth_doc,
            }
        )
        if tear:
            handle = self._open()
            prefix = "\n" if self._dirty_tail else ""
            handle.write((prefix + record[: len(record) // 2]).encode())
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())
            self._dirty_tail = True
            return False
        self._write_line(record)
        return True

    def append_result(self, job: Job) -> None:
        """Durably record one terminal state (completed/quarantined)."""
        if job.result is None:  # pragma: no cover — caller invariant
            raise ValueError(f"{job.id}: terminal record without result")
        self._write_line(
            json.dumps(
                {
                    "type": "result",
                    "id": job.id,
                    "seq": job.seq,
                    "state": job.state.value,
                    "dedup": job.dedup,
                    "attempts": job.attempts,
                    "finishedAt": job.finished_at,
                    "result": result_to_dict(job.seq, job.result),
                }
            )
        )

    def flush(self) -> None:
        if self._handle is not None:
            self._handle.flush()
            if self.fsync:
                os.fsync(self._handle.fileno())

    def close(self) -> None:
        if self._handle is not None:
            self.flush()
            self._handle.close()
            self._handle = None

    # -- recovery ------------------------------------------------------

    def load(self) -> ServeRecovery:
        """Replay the WAL (lenient: torn lines are counted, skipped)."""
        recovery = ServeRecovery()
        if not self.path.exists():
            return recovery
        for line in self.path.read_text().splitlines():
            if not line.strip():
                continue
            try:
                doc = json.loads(line)
            except json.JSONDecodeError:
                recovery.corrupt += 1
                continue
            kind = doc.get("type")
            try:
                if kind == "job":
                    self._replay_job(recovery, doc)
                elif kind == "result":
                    self._replay_result(recovery, doc)
                # headers (and unknown future kinds) are skipped.
            except Exception:  # noqa: BLE001 — damaged record == torn
                recovery.corrupt += 1
        return recovery

    def _replay_job(self, recovery: ServeRecovery, doc: dict) -> None:
        job = Job(
            id=doc["id"],
            seq=int(doc["seq"]),
            app=doc["app"],
            fingerprint=doc.get("fingerprint"),
            submitted_at=doc.get("submittedAt", 0.0),
            replayed=True,
        )
        recovery.jobs[job.id] = RecoveredJob(
            job=job,
            apk_doc=doc.get("apk"),
            truth_doc=doc.get("truth"),
        )
        recovery.max_seq = max(recovery.max_seq, job.seq)

    def _replay_result(self, recovery: ServeRecovery, doc: dict) -> None:
        _, result = result_from_dict(doc["result"])
        recovered = recovery.jobs.get(doc["id"])
        if recovered is None:
            # The job record was torn but the result survived: adopt
            # it anyway — the result embeds app + truth.
            recovered = RecoveredJob(
                job=Job(
                    id=doc["id"],
                    seq=int(doc.get("seq", -1)),
                    app=result.app,
                    fingerprint=None,
                    replayed=True,
                ),
                apk_doc=None,
                truth_doc=None,
            )
            recovery.jobs[doc["id"]] = recovered
        job = recovered.job
        job.state = JobState(doc["state"])
        job.dedup = bool(doc.get("dedup", False))
        job.attempts = int(doc.get("attempts", 0))
        job.finished_at = doc.get("finishedAt")
        job.result = result
        recovery.max_seq = max(recovery.max_seq, job.seq)
