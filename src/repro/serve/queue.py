"""Bounded admission queue: the daemon's :class:`JobSource`.

This is where load-shedding policy lives, and the contract is strict:
an error is raised **before** any state changes, an acknowledgement
means the job is journaled and will reach a terminal state.  The
admission ladder, in order:

1. **malformed** packages are rejected at the edge with a strict
   parse (:exc:`MalformedJobError` → HTTP 400) — a hostile document
   never reaches a worker;
2. **oversized** packages are shed (:exc:`OversizedJobError` → 413)
   so one pathological submission cannot monopolize the pool;
3. **duplicates** — an APK whose content fingerprint already has a
   clean result (in-memory index first, then the persistent
   :class:`~repro.cache.results.ResultCache`, which survives daemon
   restarts) — are answered terminally in O(1), no queue slot spent;
4. a **full queue** rejects with a retry hint
   (:exc:`QueueFullError` → 429 + ``Retry-After``) instead of
   buffering unboundedly — backpressure is the client's signal, not
   the daemon's memory growth;
5. a **draining** queue admits nothing (:exc:`QueueClosedError` →
   503).

Everything admitted is write-ahead journaled, then queued for
:meth:`take` (called by the streaming engine's dispatcher).  Injected
stream faults fire here: a ``slow-consumer`` fault stalls the
dispatcher after taking the job; a ``partial-write`` fault tears the
job's WAL record mid-append (the queue immediately re-appends — the
degradation is observable in the journal, the ack stays truthful).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import TYPE_CHECKING

from ..apk.serialization import SerializationError, apk_from_dict
from ..cache.fingerprint import canonical_json
from ..eval.faults import FaultKind
from ..eval.orchestration import JobSource, apk_fingerprint
from ..workload.appgen import ForgedApp
from ..workload.groundtruth import GroundTruth
from .jobs import Job, JobState, new_job_id

if TYPE_CHECKING:  # pragma: no cover — import cycle guard
    from ..cache.results import ResultCache
    from ..eval.faults import FaultPlan
    from ..eval.runner import AppResult
    from .journal import ServeJournal

__all__ = [
    "JobQueue",
    "AdmissionError",
    "MalformedJobError",
    "OversizedJobError",
    "QueueFullError",
    "QueueClosedError",
]


class AdmissionError(Exception):
    """A submission the daemon refused; carries the HTTP mapping."""

    status = 500

    def to_doc(self) -> dict:
        return {"error": type(self).__name__, "detail": str(self)}


class MalformedJobError(AdmissionError):
    """The submitted package document does not decode (HTTP 400)."""

    status = 400


class OversizedJobError(AdmissionError):
    """The submitted package exceeds the size budget (HTTP 413)."""

    status = 413


class QueueFullError(AdmissionError):
    """Admission control: the queue is at capacity (HTTP 429)."""

    status = 429

    def __init__(self, message: str, retry_after_s: float) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s

    def to_doc(self) -> dict:
        doc = super().to_doc()
        doc["retryAfterS"] = self.retry_after_s
        return doc


class QueueClosedError(AdmissionError):
    """The daemon is draining; nothing is admitted (HTTP 503)."""

    status = 503


class JobQueue(JobSource):
    """Thread-safe bounded queue bridging HTTP admission to the
    streaming engine (:func:`repro.eval.orchestration.run_stream`)."""

    def __init__(
        self,
        *,
        journal: "ServeJournal | None" = None,
        result_cache: "ResultCache | None" = None,
        limit: int = 64,
        max_apk_bytes: int | None = None,
        retry_after_s: float = 0.5,
        fault_plan: "FaultPlan | None" = None,
        start_seq: int = 0,
    ) -> None:
        self._journal = journal
        self._result_cache = result_cache
        self.limit = max(1, limit)
        self.max_apk_bytes = max_apk_bytes
        self.retry_after_s = retry_after_s
        self._fault_plan = fault_plan
        self._cond = threading.Condition()
        self._jobs: dict[str, Job] = {}
        self._by_seq: dict[int, str] = {}
        self._ready: deque[tuple[Job, ForgedApp]] = deque()
        #: Taken but not yet delivered — counts against the limit.
        self._running = 0
        self._next_seq = start_seq
        self._closed = False
        #: Clean results by APK content fingerprint (this process's
        #: lifetime; the ResultCache extends it across restarts).
        self._dedup: dict[str, "AppResult"] = {}
        self.counters = {
            "submitted": 0,
            "completed": 0,
            "quarantined": 0,
            "dedup_hits": 0,
            "rejected_full": 0,
            "rejected_oversize": 0,
            "rejected_malformed": 0,
            "rejected_closed": 0,
            "replayed": 0,
            "stalls": 0,
            "torn_writes": 0,
        }

    # -- admission (HTTP side) -----------------------------------------

    def submit(
        self,
        apk_doc: dict,
        truth_doc: dict | None = None,
        *,
        job_id: str | None = None,
    ) -> Job:
        """Admit one submission; raises an :class:`AdmissionError`
        subclass (with its HTTP status) or returns the job — terminal
        immediately on a dedup hit, queued otherwise.

        ``job_id`` makes resubmission idempotent: a client retrying an
        acked-but-unanswered submission gets the existing job back.
        """
        forged, fingerprint = self._decode(apk_doc, truth_doc)
        with self._cond:
            if job_id is not None and job_id in self._jobs:
                return self._jobs[job_id]
            if self._closed:
                self.counters["rejected_closed"] += 1
                raise QueueClosedError("daemon is draining")
            hit = (
                self._dedup_lookup(fingerprint)
                if fingerprint is not None
                else None
            )
            if hit is not None:
                return self._admit_terminal(
                    forged, fingerprint, hit, job_id
                )
            if self.depth_locked() >= self.limit:
                self.counters["rejected_full"] += 1
                raise QueueFullError(
                    f"queue at capacity ({self.limit})",
                    self.retry_after_s,
                )
            job = self._new_job(forged, fingerprint, job_id)
            self._write_ahead(job, forged, truth_doc)
            self._ready.append((job, forged))
            self.counters["submitted"] += 1
            self._cond.notify_all()
            return job

    def resubmit(self, job: Job, forged: ForgedApp) -> None:
        """Re-enqueue a journal-replayed job (already write-ahead
        recorded by the previous incarnation — no new WAL record)."""
        with self._cond:
            job.state = JobState.QUEUED
            self._jobs[job.id] = job
            self._by_seq[job.seq] = job.id
            self._ready.append((job, forged))
            self.counters["submitted"] += 1
            self.counters["replayed"] += 1
            self._cond.notify_all()

    def adopt(self, job: Job) -> None:
        """Register a journal-replayed *terminal* job (no re-run)."""
        with self._cond:
            self._jobs[job.id] = job
            if job.seq >= 0:
                self._by_seq[job.seq] = job.id
            if (
                job.result is not None
                and job.result.ok
                and job.fingerprint is not None
            ):
                self._dedup.setdefault(job.fingerprint, job.result)
            self.counters["replayed"] += 1

    def _decode(
        self, apk_doc: dict, truth_doc: dict | None
    ) -> tuple[ForgedApp, str]:
        if not isinstance(apk_doc, dict):
            self.counters["rejected_malformed"] += 1
            raise MalformedJobError("submission is not a package document")
        if self.max_apk_bytes is not None:
            size = len(canonical_json(apk_doc))
            if size > self.max_apk_bytes:
                self.counters["rejected_oversize"] += 1
                raise OversizedJobError(
                    f"package is {size} bytes; "
                    f"limit is {self.max_apk_bytes}"
                )
        try:
            apk = apk_from_dict(apk_doc, strict=True)
            truth = (
                GroundTruth.from_dict(truth_doc)
                if truth_doc is not None
                else GroundTruth(app=apk.name)
            )
        except (SerializationError, KeyError, TypeError, ValueError) as exc:
            self.counters["rejected_malformed"] += 1
            raise MalformedJobError(f"undecodable package: {exc}") from exc
        forged = ForgedApp(apk=apk, truth=truth)
        return forged, apk_fingerprint(forged)

    def _dedup_lookup(self, fingerprint: str) -> "AppResult | None":
        hit = self._dedup.get(fingerprint)
        if hit is not None:
            return hit
        if self._result_cache is not None:
            hit = self._result_cache.get(fingerprint)
            if hit is not None:
                self._dedup[fingerprint] = hit
        return hit

    def _new_job(
        self, forged: ForgedApp, fingerprint: str, job_id: str | None
    ) -> Job:
        seq = self._next_seq
        self._next_seq += 1
        job = Job(
            id=job_id if job_id is not None else new_job_id(seq),
            seq=seq,
            app=forged.apk.name,
            fingerprint=fingerprint,
        )
        self._jobs[job.id] = job
        self._by_seq[seq] = job.id
        return job

    def _admit_terminal(
        self,
        forged: ForgedApp,
        fingerprint: str,
        result: "AppResult",
        job_id: str | None,
    ) -> Job:
        job = self._new_job(forged, fingerprint, job_id)
        job.state = JobState.COMPLETED
        job.dedup = True
        job.result = result
        job.finished_at = time.time()
        self.counters["dedup_hits"] += 1
        self.counters["completed"] += 1
        if self._journal is not None:
            # Terminal on admission: one combined record pair keeps
            # the WAL invariant (every acked job reaches the journal).
            self._journal.append_job(job, forged.apk)
            self._journal.append_result(job)
        self._cond.notify_all()
        return job

    def _write_ahead(
        self, job: Job, forged: ForgedApp, truth_doc: dict | None
    ) -> None:
        if self._journal is None:
            return
        fault = (
            self._fault_plan.stream_fault_for(job.seq)
            if self._fault_plan is not None
            else None
        )
        tear = (
            fault is not None
            and fault.kind is FaultKind.PARTIAL_WRITE
            and fault.fires(0)
        )
        if tear:
            # Injected torn append, then an immediate re-append: the
            # ack stays truthful, and the torn line stays in the WAL
            # for load() to count as a crash artifact.
            self.counters["torn_writes"] += 1
            self._journal.append_job(job, forged.apk, truth_doc, tear=True)
        self._journal.append_job(job, forged.apk, truth_doc)

    # -- the JobSource side (dispatcher thread) ------------------------

    def take(self, limit: int, timeout_s: float):
        with self._cond:
            if not self._ready and not self._closed and timeout_s > 0:
                self._cond.wait(timeout_s)
            if not self._ready:
                if self._closed and self._running == 0:
                    return None
                return []
            batch: list[tuple[Job, ForgedApp]] = []
            while self._ready and len(batch) < max(1, limit):
                batch.append(self._ready.popleft())
            now = time.time()
            for job, _forged in batch:
                job.state = JobState.RUNNING
                job.started_at = now
                self._running += 1
        entries = []
        for job, forged in batch:
            self._stall(job.seq)
            entries.append((job.seq, forged, 0))
        return entries

    def _stall(self, seq: int) -> None:
        """Injected ``slow-consumer`` fault: the dispatcher wedges
        briefly after taking the job — the job must still complete."""
        if self._fault_plan is None:
            return
        fault = self._fault_plan.stream_fault_for(seq)
        if (
            fault is not None
            and fault.kind is FaultKind.SLOW_CONSUMER
            and fault.fires(0)
        ):
            self.counters["stalls"] += 1
            time.sleep(fault.hang_s)

    def deliver(self, entry, result: "AppResult") -> None:
        seq, _forged, attempt = entry
        with self._cond:
            job_id = self._by_seq.get(seq)
            job = self._jobs.get(job_id) if job_id is not None else None
            if job is None or job.terminal:  # pragma: no cover — guard
                return
            job.attempts = (
                result.error.attempts
                if result.error is not None and result.error.attempts
                else attempt + 1
            )
            job.finished_at = time.time()
            job.result = result
            if result.error is None:
                job.state = JobState.COMPLETED
                self.counters["completed"] += 1
                if job.fingerprint is not None:
                    self._dedup.setdefault(job.fingerprint, result)
                    if self._result_cache is not None:
                        self._result_cache.put(job.fingerprint, result)
            else:
                job.state = JobState.QUARANTINED
                self.counters["quarantined"] += 1
            if self._journal is not None:
                self._journal.append_result(job)
            self._running -= 1
            self._cond.notify_all()

    # -- introspection / lifecycle -------------------------------------

    def job(self, job_id: str) -> Job | None:
        with self._cond:
            return self._jobs.get(job_id)

    def wait(self, job_id: str, timeout_s: float = 30.0) -> Job | None:
        """Block until the job is terminal (or timeout); returns the
        job (``None`` for an unknown id)."""
        deadline = time.monotonic() + timeout_s
        with self._cond:
            while True:
                job = self._jobs.get(job_id)
                if job is None or job.terminal:
                    return job
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return job
                self._cond.wait(remaining)

    def wait_idle(self, timeout_s: float = 30.0) -> bool:
        """Block until nothing is queued or running."""
        deadline = time.monotonic() + timeout_s
        with self._cond:
            while self._ready or self._running:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._cond.wait(remaining)
            return True

    def depth_locked(self) -> int:
        return len(self._ready) + self._running

    def depth(self) -> int:
        with self._cond:
            return self.depth_locked()

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Stop admitting; :meth:`take` returns ``None`` once the
        already-admitted backlog is fully delivered."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def stats(self) -> dict:
        with self._cond:
            out = dict(self.counters)
            out["depth"] = self.depth_locked()
            out["limit"] = self.limit
            out["closed"] = self._closed
            out["jobs"] = len(self._jobs)
            return out
