"""Class-hierarchy resolution across the app/framework boundary.

The resolver answers hierarchy questions ("what does this app class
extend, transitively, into the framework?", "which framework callback
does this app method override?") while *loading lazily*: framework
ancestors are materialized one class at a time through the repository,
never as a whole image.  It is shared by the CLVM, the call-graph
builder, and the callback mismatch detector.
"""

from __future__ import annotations

from ..apk.package import Apk
from ..framework.repository import FrameworkRepository
from ..ir.clazz import Clazz
from ..ir.types import ClassName, MethodRef

__all__ = ["HierarchyResolver"]


class HierarchyResolver:
    """Resolve classes and hierarchy walks for one (app, device level)."""

    def __init__(
        self,
        apk: Apk,
        framework: FrameworkRepository,
        level: int,
        *,
        include_secondary_dex: bool = True,
        loaded_hook=None,
    ) -> None:
        self._apk = apk
        self._framework = framework
        self._level = level
        self._include_secondary = include_secondary_dex
        self._cache: dict[ClassName, Clazz | None] = {}
        # Ancestor walks are pure for a fixed (apk, framework, level)
        # and re-requested for every dispatch/override query on the
        # same receiver class, so both walk shapes are memoized.
        self._chain_cache: dict[ClassName, tuple[Clazz, ...]] = {}
        self._supers_cache: dict[ClassName, tuple[Clazz, ...]] = {}
        #: Optional ``hook(clazz, warm)`` fired the first time a class
        #: is resolved; the CLVM uses it to account for load costs.
        #: ``warm`` is True when a framework class came from the shared
        #: repository cache rather than being materialized afresh.
        self._loaded_hook = loaded_hook

    @property
    def level(self) -> int:
        return self._level

    def resolve(self, name: ClassName) -> Clazz | None:
        """Find ``name`` in the app dex files or the framework image."""
        if name in self._cache:
            return self._cache[name]
        clazz: Clazz | None
        warm = False
        if self._include_secondary:
            clazz = self._apk.lookup(name)
        else:
            clazz = self._apk.lookup_primary(name)
        if clazz is None:
            clazz, warm = self._framework.load_class_cached(
                name, self._level
            )
        self._cache[name] = clazz
        if clazz is not None and self._loaded_hook is not None:
            self._loaded_hook(clazz, warm)
        return clazz

    # -- hierarchy walks ------------------------------------------------

    def supertype_chain(self, name: ClassName) -> tuple[Clazz, ...]:
        """All resolvable ancestors of ``name``, nearest first.

        The walk follows super classes only (interfaces are handled by
        :meth:`all_supertypes`); it stops at unresolvable names and
        guards against cycles in malformed input.
        """
        cached = self._chain_cache.get(name)
        if cached is not None:
            return cached
        chain: list[Clazz] = []
        seen: set[ClassName] = {name}
        current = self.resolve(name)
        while current is not None and current.super_name is not None:
            if current.super_name in seen:
                break
            seen.add(current.super_name)
            parent = self.resolve(current.super_name)
            if parent is None:
                break
            chain.append(parent)
            current = parent
        result = tuple(chain)
        self._chain_cache[name] = result
        return result

    def all_supertypes(self, name: ClassName) -> tuple[Clazz, ...]:
        """Ancestors including interfaces, breadth-first, deduplicated."""
        cached = self._supers_cache.get(name)
        if cached is not None:
            return cached
        out: list[Clazz] = []
        seen: set[ClassName] = {name}
        queue: list[ClassName] = []
        first = self.resolve(name)
        if first is not None:
            queue.extend(first.supertypes)
        while queue:
            super_name = queue.pop(0)
            if super_name in seen:
                continue
            seen.add(super_name)
            clazz = self.resolve(super_name)
            if clazz is None:
                continue
            out.append(clazz)
            queue.extend(clazz.supertypes)
        result = tuple(out)
        self._supers_cache[name] = result
        return result

    def framework_ancestors(self, name: ClassName) -> tuple[Clazz, ...]:
        """The subset of :meth:`all_supertypes` owned by the framework."""
        return tuple(
            clazz for clazz in self.all_supertypes(name)
            if clazz.origin == "framework"
        )

    def extends_framework(self, name: ClassName) -> bool:
        return bool(self.framework_ancestors(name))

    # -- dispatch -----------------------------------------------------

    def dispatch(self, ref: MethodRef) -> Clazz | None:
        """The class whose declaration a virtual call to ``ref``
        resolves against: the receiver class or its nearest ancestor
        declaring the signature."""
        clazz = self.resolve(ref.class_name)
        if clazz is None:
            return None
        if clazz.declares(ref.signature):
            return clazz
        for ancestor in self.all_supertypes(ref.class_name):
            if ancestor.declares(ref.signature):
                return ancestor
        return None

    def overridden_framework_method(
        self, app_class: ClassName, signature: str
    ) -> Clazz | None:
        """The nearest framework ancestor declaring ``signature``, i.e.
        the callback an app method with that signature overrides —
        or ``None`` when the method overrides nothing framework-owned.

        Intervening app-class declarations do not end the search: if
        ``B extends A extends android.app.Activity`` and both ``A`` and
        ``B`` override ``onCreate``, both override the framework
        callback."""
        for ancestor in self.all_supertypes(app_class):
            if ancestor.origin == "framework" and ancestor.declares(signature):
                return ancestor
        return None
