"""Generic forward dataflow framework over CFGs.

Clients describe an analysis as an :class:`Analysis` subclass — initial
state, join, and a per-instruction transfer function (optionally
edge-sensitive at branches) — and :func:`solve_forward` runs the
standard worklist algorithm to a fixpoint in reverse postorder.

Both the reaching-constants analysis and the SDK_INT guard analysis
are instances; keeping the engine generic means their transfer
functions stay small and testable.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Generic, TypeVar

from ..ir.instructions import Instruction
from .cfg import ControlFlowGraph, EXIT

__all__ = ["Analysis", "BlockStates", "solve_forward"]

State = TypeVar("State")

#: Safety valve: a single method's fixpoint should converge in far
#: fewer passes than this; hitting it indicates a broken transfer
#: function (non-monotone join) and raises instead of spinning.
MAX_ITERATIONS_PER_BLOCK = 64


class Analysis(abc.ABC, Generic[State]):
    """A forward dataflow problem."""

    @abc.abstractmethod
    def initial_state(self) -> State:
        """State at the method entry."""

    @abc.abstractmethod
    def bottom(self) -> State:
        """State for not-yet-visited blocks (identity of join)."""

    @abc.abstractmethod
    def join(self, left: State, right: State) -> State:
        """Merge states at a control-flow confluence."""

    @abc.abstractmethod
    def transfer(self, state: State, instruction: Instruction) -> State:
        """State after executing ``instruction`` (non-branching part)."""

    def transfer_edge(
        self,
        state: State,
        instruction: Instruction,
        taken: bool,
    ) -> State:
        """Refine the post-state along a specific out-edge of a branch.

        ``taken`` is True on the branch-target edge and False on the
        fall-through edge.  The default adds no refinement.
        """
        return state

    @abc.abstractmethod
    def equal(self, left: State, right: State) -> bool:
        """Fixpoint test."""


@dataclass
class BlockStates(Generic[State]):
    """Solution of a dataflow run: per-block entry states plus a
    convenience evaluator replaying the transfer inside one block."""

    analysis: Analysis[State]
    cfg: ControlFlowGraph
    entry_states: dict[int, State]

    def state_before(self, block_index: int, offset: int) -> State:
        """State immediately before ``block.instructions[offset]``."""
        block = self.cfg.blocks[block_index]
        state = self.entry_states[block_index]
        for instruction in block.instructions[:offset]:
            state = self.analysis.transfer(state, instruction)
        return state

    def instruction_states(self, block_index: int):
        """Yield ``(instruction_offset, state_before, instruction)``
        for every instruction in the block."""
        block = self.cfg.blocks[block_index]
        state = self.entry_states[block_index]
        for offset, instruction in enumerate(block.instructions):
            yield offset, state, instruction
            state = self.analysis.transfer(state, instruction)


def solve_forward(
    analysis: Analysis[State], cfg: ControlFlowGraph
) -> BlockStates[State]:
    """Run ``analysis`` to fixpoint over ``cfg``."""
    if not cfg.blocks:
        return BlockStates(analysis=analysis, cfg=cfg, entry_states={})

    order = cfg.reverse_postorder()
    position = {block: rank for rank, block in enumerate(order)}
    entry_states: dict[int, State] = {
        block.index: analysis.bottom() for block in cfg.blocks
    }
    entry_index = cfg.blocks[0].index
    entry_states[entry_index] = analysis.initial_state()
    visits: dict[int, int] = {}

    # Worklist keyed by reverse-postorder rank.
    pending: set[int] = set(order)
    while pending:
        block_index = min(pending, key=lambda b: position.get(b, 1 << 30))
        pending.discard(block_index)
        visits[block_index] = visits.get(block_index, 0) + 1
        if visits[block_index] > MAX_ITERATIONS_PER_BLOCK:
            raise RuntimeError(
                f"dataflow did not converge in "
                f"{cfg.method.ref}: block {block_index}"
            )

        block = cfg.blocks[block_index]
        state = entry_states[block_index]
        for instruction in block.instructions[:-1]:
            state = analysis.transfer(state, instruction)

        last = block.last
        if last is None:
            continue
        base = analysis.transfer(state, last)
        successors = cfg.successors.get(block_index, ())
        has_branch = bool(last.branch_targets)
        for target in successors:
            if target == EXIT or target < 0:
                continue
            if has_branch:
                # The branch target is the block starting at the label;
                # every other successor is the fall-through.
                target_start = cfg.blocks[target].start
                label_starts = {
                    cfg.method.body.resolve(lbl)
                    for lbl in last.branch_targets
                }
                taken = target_start in label_starts
                fall_through_start = block.end
                # A conditional branching to the lexically-next block
                # makes both edges land on the same block: join both
                # refinements for soundness.
                if taken and target_start == fall_through_start:
                    out = analysis.join(
                        analysis.transfer_edge(base, last, True),
                        analysis.transfer_edge(base, last, False),
                    )
                else:
                    out = analysis.transfer_edge(base, last, taken)
            else:
                out = base
            merged = analysis.join(entry_states[target], out)
            if not analysis.equal(merged, entry_states[target]):
                entry_states[target] = merged
                pending.add(target)

    return BlockStates(analysis=analysis, cfg=cfg, entry_states=entry_states)
