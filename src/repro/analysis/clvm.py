"""CLVM — the Class Loader Virtual Machine (paper Algorithm 1).

SAINTDroid's scalability contribution: instead of loading the whole
application *and* the whole framework before analysis (the closed-world
assumption of SOOT-style tools), the CLVM mimics the Android runtime's
class loading.  A worklist of method references drives exploration;
resolving a method loads (only) its declaring class, every method of a
newly loaded class is analyzed once, and the calls found are appended
to the worklist.  Classes never referenced are never loaded — neither
from the app nor from the framework — which is what keeps both time
and peak memory low.

The explorer also implements the paper's late-binding rule: string
constants reaching ``loadClass`` call sites name classes that are
pulled into the exploration when they are statically discoverable
(bundled in any dex file of the APK).

:class:`LoadStats` is the source of the deterministic cost model used
by the performance experiments (Table III, Figures 3 and 4): work is
counted in instructions analyzed and memory in instructions loaded.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field
from functools import lru_cache

from ..apk.package import Apk
from ..framework.repository import FrameworkRepository
from ..ir.clazz import Clazz
from ..ir.instructions import Invoke, InvokeKind, NewInstance
from ..ir.method import Method
from ..ir.types import ClassName, MethodRef, is_framework_class
from .callgraph import CallGraph, CallSite
from .hierarchy import HierarchyResolver
from .reaching import strings_at_invocations

__all__ = ["LoadStats", "ExplorationResult", "ClassLoaderVM",
           "LOADCLASS_SIGNATURES"]

#: Reflective load entry points whose string argument names a class.
LOADCLASS_SIGNATURES = frozenset(
    (
        ("dalvik.system.DexClassLoader", "loadClass"),
        ("java.lang.ClassLoader", "loadClass"),
    )
)

#: Cost-model constants (documented in DESIGN.md section 2): a loaded
#: class costs its code size plus a fixed structural overhead, in
#: abstract "units" convertible to bytes/seconds by the eval layer.
CLASS_OVERHEAD_UNITS = 48
INSTRUCTION_UNITS = 1

#: Default bound on framework-internal call depth followed from an API
#: entry point.  Deep enough to see enforcement sites and dispatchers
#: several frames in (CID stops at depth 0), bounded so exploration
#: does not percolate across the entire platform image.
DEFAULT_FRAMEWORK_DEPTH = 2

_INVOKE_KINDS = {kind.value: kind for kind in InvokeKind}


@lru_cache(maxsize=1 << 20)
def _intern_ref(
    class_name: ClassName, name: str, descriptor: str
) -> MethodRef:
    """Process-wide ref intern table for effect replay.

    Effect streams carry refs as plain string triples (they must be
    JSON-serializable); replaying a corpus re-materializes the same
    triples once per app, so interning both skips re-validation and
    hands back refs whose hash is already cached."""
    return MethodRef(class_name, name, descriptor)


@lru_cache(maxsize=1 << 20)
def _intern_site(
    caller: MethodRef, callee: MethodRef, resolved: MethodRef | None
) -> CallSite:
    """Process-wide call-site intern table.

    The same (caller, callee, resolved) edge recurs in every app that
    bundles the class declaring it; ``CallSite`` is frozen, so one
    object can appear in every app's callgraph."""
    return CallSite(caller=caller, callee=callee, resolved=resolved)


_VIRTUAL_KINDS = frozenset((InvokeKind.VIRTUAL, InvokeKind.INTERFACE))

#: artifact -> per-method *prepared* effect streams.  Raw streams hold
#: JSON-ish tuples (string invoke kinds, refs as string triples); the
#: prepared form pre-converts them — interned refs, ``InvokeKind``
#: members, the virtual-dispatch flag — once per artifact per process
#: instead of once per effect per app.  Weakly keyed so evicted
#: artifacts drop their preparations.
_PREPARED_STREAMS: weakref.WeakKeyDictionary = weakref.WeakKeyDictionary()


def _prepare_stream(raw: tuple[tuple, ...]) -> tuple[tuple, ...]:
    """Convert one raw effect stream into its prepared (apply-ready)
    form; order is preserved exactly."""
    prepared: list[tuple] = []
    for effect in raw:
        kind = effect[0]
        if kind == "invoke":
            invoke_kind = _INVOKE_KINDS[effect[1]]
            cls, name, descriptor = effect[2]
            prepared.append(
                (
                    "invoke",
                    invoke_kind,
                    _intern_ref(cls, name, descriptor),
                    invoke_kind in _VIRTUAL_KINDS,
                )
            )
        elif kind == "new":
            prepared.append(
                ("new", _intern_ref(effect[1], "<init>", "()void"))
            )
        else:  # "loadclass"
            prepared.append(effect)
    return tuple(prepared)


#: Fraction of a framework class's code that stays resident after the
#: incremental analysis has summarized it.  The CLVM releases framework
#: method bodies once their facts (API presence, permission effects,
#: call edges) are extracted; only class metadata and summaries remain.
#: Whole-world tools keep full IR for everything (retention 1.0).
FRAMEWORK_RETENTION = 0.3

#: Cost of consulting a precomputed framework class summary instead of
#: loading the class (work) and of keeping the summary record resident
#: (memory).  Both are small constants — the whole point of the
#: pre-summary table is that the per-app cost of a framework class
#: drops from O(its code size) to O(1) (docs/cost-model.md).
SUMMARY_WORK_UNITS = 3
SUMMARY_RESIDENT_UNITS = 6


@dataclass
class LoadStats:
    """What the exploration loaded and analyzed."""

    classes_loaded: int = 0
    app_classes_loaded: int = 0
    framework_classes_loaded: int = 0
    instructions_loaded: int = 0
    framework_instructions_loaded: int = 0
    methods_analyzed: int = 0
    instructions_analyzed: int = 0
    dynamic_classes_resolved: int = 0
    dynamic_sites_unresolved: int = 0
    #: Framework classes served warm from the shared repository cache
    #: (materialized by an earlier analysis over the same repository).
    #: Purely observational: the cost model charges every load the
    #: same, so corpus results do not depend on analysis order.
    framework_classes_reused: int = 0
    framework_instructions_reused: int = 0
    #: True when loaded code is never released (eager / closed-world
    #: mode); the lazy CLVM keeps only framework summaries resident.
    retain_framework_bodies: bool = False
    #: Pre-summary mode accounting: table consultations, framework
    #: classes whose analysis was replaced by a summary application,
    #: and the framework instructions those summaries stand in for
    #: (code the lazy mode would have loaded and scanned).
    summary_lookups: int = 0
    classes_summarized: int = 0
    instructions_summarized: int = 0
    #: Dedup-mode accounting (``--dedup``): app classes whose explore
    #: effects were replayed from the corpus-wide class-artifact store
    #: instead of re-derived, and the instructions those artifacts
    #: stand in for.  Observational, like the warm-reuse counters —
    #: replay applies the identical effects, so the cost model and the
    #: findings are unchanged; only wall time drops.
    app_classes_deduped: int = 0
    instructions_deduped: int = 0
    #: Guard-propagation contexts answered from cached guard rows vs
    #: computed by running the dataflow (observational).
    guard_contexts_deduped: int = 0
    guard_contexts_computed: int = 0

    def record_load(self, clazz: Clazz, warm: bool = False) -> None:
        self.classes_loaded += 1
        if clazz.origin == "framework":
            self.framework_classes_loaded += 1
            self.framework_instructions_loaded += clazz.instruction_count
            if warm:
                self.framework_classes_reused += 1
                self.framework_instructions_reused += (
                    clazz.instruction_count
                )
        else:
            self.app_classes_loaded += 1
        self.instructions_loaded += clazz.instruction_count

    def adopt_load_accounting(self, other: "LoadStats") -> None:
        """Take over another run's *load* counters (the eager
        ablation's whole-world load replaces the lazy exploration's
        accounting).  Analysis-effort counters and the retention flag
        are deliberately untouched: the eager run re-loads, it does
        not re-analyze, and the memory model keeps charging this run's
        own retention mode."""
        self.classes_loaded = other.classes_loaded
        self.app_classes_loaded = other.app_classes_loaded
        self.framework_classes_loaded = other.framework_classes_loaded
        self.instructions_loaded = other.instructions_loaded

    @property
    def framework_reuse_rate(self) -> float:
        """Fraction of framework loads that were warm (cache reuse)."""
        if not self.framework_classes_loaded:
            return 0.0
        return self.framework_classes_reused / self.framework_classes_loaded

    @property
    def memory_units(self) -> int:
        """Peak memory in cost-model units.

        App code stays resident (the mismatch algorithms revisit it);
        framework bodies are released after summarization unless the
        run is eager (``retain_framework_bodies``).
        """
        resident = self.instructions_loaded
        if not self.retain_framework_bodies:
            released = int(
                self.framework_instructions_loaded
                * (1.0 - FRAMEWORK_RETENTION)
            )
            resident -= released
        return (
            self.classes_loaded * CLASS_OVERHEAD_UNITS
            + resident * INSTRUCTION_UNITS
            + self.classes_summarized * SUMMARY_RESIDENT_UNITS
        )

    @property
    def work_units(self) -> int:
        """Analysis effort in cost-model units."""
        return (
            self.instructions_analyzed
            + self.classes_loaded * CLASS_OVERHEAD_UNITS // 4
            + self.classes_summarized * SUMMARY_WORK_UNITS
        )


@dataclass
class ExplorationResult:
    """Output of one CLVM run."""

    callgraph: CallGraph
    loaded_classes: dict[ClassName, Clazz]
    stats: LoadStats
    #: Classes named at loadClass sites but absent from every dex file
    #: (late-bound code that is not statically analyzable).
    unresolved_dynamic_classes: tuple[ClassName, ...] = ()


class ClassLoaderVM:
    """Worklist-driven lazy exploration of app + framework code."""

    def __init__(
        self,
        apk: Apk,
        framework: FrameworkRepository,
        level: int,
        *,
        follow_framework: bool = True,
        include_secondary_dex: bool = True,
        max_framework_depth: int | None = DEFAULT_FRAMEWORK_DEPTH,
        summaries=None,
        class_store=None,
    ) -> None:
        """``follow_framework=False`` restricts exploration to app code
        (framework callees stay terminal nodes) — how first-level tools
        such as CID behave.  ``max_framework_depth`` bounds how many
        framework-to-framework call levels are followed (None = all).

        ``summaries`` is an optional
        :class:`~repro.analysis.fwsummaries.FrameworkSummaryTable`:
        when set (and ``follow_framework`` is on), a framework method
        popped from the worklist is answered by replaying the class's
        precomputed worklist effects instead of materializing its body
        — same app-method reachability, no framework loading.

        ``class_store`` is an optional
        :class:`~repro.cache.classes.ClassStore`: when set, the
        explore effects of every *app* class are answered from (or
        recorded into) the corpus-wide content-addressed artifact
        store — the same-boundary trick as the framework summaries,
        applied at the class boundary, so two apps bundling one
        byte-identical library class derive its effects once.
        Artifacts store only static facts (static call targets,
        constant-resolved loadclass names); virtual dispatch is
        re-resolved live per app, keeping replay exact.
        """
        self._apk = apk
        self._framework = framework
        self._level = level
        self._follow_framework = follow_framework
        self._max_framework_depth = max_framework_depth
        self._summaries = summaries if follow_framework else None
        self._include_secondary = include_secondary_dex
        self.class_store = class_store
        #: Class name -> artifact consulted or recorded during this
        #: app's exploration; the helper-collection and guard phases
        #: read from here so every phase shares one artifact view.
        self.dedup_artifacts: dict[ClassName, object] = {}
        #: Class name -> store key, so later phases (guard rows) can
        #: address the artifact without re-digesting the class.
        self.dedup_keys: dict[ClassName, str] = {}
        self.stats = LoadStats()
        self._loaded: dict[ClassName, Clazz] = {}
        #: Dispatch resolution is pure for a fixed (apk, framework,
        #: level) — the resolvable world never changes mid-exploration
        #: — and the same callee recurs at thousands of sites, so the
        #: walk is memoized.  First resolution per callee still does
        #: the full (load-accounted) hierarchy walk.
        self._dispatch_memo: dict[
            tuple[InvokeKind, MethodRef], MethodRef | None
        ] = {}
        #: True when the app bundles a class in a framework namespace;
        #: shadowing makes framework resolution app-dependent, which
        #: disables every cross-app framework shortcut below.
        self._framework_shadows = any(
            is_framework_class(clazz.name) for clazz in apk.all_classes
        )
        #: Cross-app dispatch resolutions for framework callees,
        #: shared through the framework repository (dedup mode only:
        #: lazy accounting must not depend on sibling apps).
        self._shared_dispatch = (
            framework.dispatch_memo(level)
            if class_store is not None and not self._framework_shadows
            else None
        )
        self.resolver = HierarchyResolver(
            apk,
            framework,
            level,
            include_secondary_dex=include_secondary_dex,
            loaded_hook=self._on_class_loaded,
        )
        # Reverse subtype index over app classes, for virtual dispatch
        # into app overrides.  Built from declared super/interface
        # names only — no class loading required.
        self._app_subtypes: dict[ClassName, list[ClassName]] = {}
        for clazz in apk.all_classes:
            queue: list[ClassName] = list(clazz.supertypes)
            seen: set[ClassName] = set()
            while queue:
                walk = queue.pop()
                if walk in seen:
                    continue
                seen.add(walk)
                self._app_subtypes.setdefault(walk, []).append(clazz.name)
                parent = apk.lookup(walk)
                if parent is not None:
                    queue.extend(parent.supertypes)
                    continue
                spec_history = framework.spec.clazz(walk)
                if spec_history is not None:
                    if spec_history.super_name is not None:
                        queue.append(spec_history.super_name)
                    queue.extend(spec_history.interfaces)

    # -- load accounting ------------------------------------------------

    def _on_class_loaded(self, clazz: Clazz, warm: bool = False) -> None:
        if clazz.name not in self._loaded:
            self._loaded[clazz.name] = clazz
            self.stats.record_load(clazz, warm)

    # -- exploration (Algorithm 1) ---------------------------------------

    def explore(self, entry_points: tuple[MethodRef, ...]) -> ExplorationResult:
        """Run the worklist to exhaustion from ``entry_points``."""
        callgraph = CallGraph()
        worklist: list[tuple[MethodRef, int]] = []
        analyzed_classes: set[ClassName] = set()
        queued: set[MethodRef] = set()
        unresolved_dynamic: list[ClassName] = []

        for entry in entry_points:
            callgraph.add_entry_point(entry)
            worklist.append((entry, 0))
            queued.add(entry)

        while worklist:
            method_ref, depth = worklist.pop()
            if self._summaries is not None and self._try_summarize(
                method_ref, depth, analyzed_classes, callgraph,
                worklist, queued, unresolved_dynamic,
            ):
                continue
            clazz = self.resolver.resolve(method_ref.class_name)
            if clazz is None:
                continue
            if clazz.origin == "framework" and not self._follow_framework:
                if depth > 0:
                    continue
            if clazz.name in analyzed_classes:
                continue
            analyzed_classes.add(clazz.name)

            # Loading a class makes its whole hierarchy resolvable —
            # dispatch and override checks need the ancestors present.
            self.resolver.supertype_chain(clazz.name)

            effects_by_method = None
            if (
                self.class_store is not None
                and clazz.origin != "framework"
            ):
                effects_by_method = self._dedup_effects(clazz)
            for index, method in enumerate(clazz.methods):
                self._analyze_method(
                    method, depth, callgraph, worklist, queued,
                    unresolved_dynamic,
                    effects=(
                        effects_by_method[index]
                        if effects_by_method is not None
                        else None
                    ),
                )

        return ExplorationResult(
            callgraph=callgraph,
            loaded_classes=dict(self._loaded),
            stats=self.stats,
            unresolved_dynamic_classes=tuple(unresolved_dynamic),
        )

    def _analyze_method(
        self,
        method: Method,
        depth: int,
        callgraph: CallGraph,
        worklist: list[tuple[MethodRef, int]],
        queued: set[MethodRef],
        unresolved_dynamic: list[ClassName],
        effects: tuple[tuple, ...] | None = None,
    ) -> None:
        callgraph.add_method(method)
        self.stats.methods_analyzed += 1
        if method.body is not None:
            self.stats.instructions_analyzed += len(method.body)

        if method.body is None:
            return

        # The effect stream is a pure function of the method body; in
        # dedup mode a cached one is replayed instead of re-derived.
        # Framework methods additionally replay a pre-resolved apply
        # plan (dedup mode, unshadowed apps): framework-internal
        # dispatch never varies between such apps.
        if (
            effects is None
            and self._shared_dispatch is not None
            and method.ref.is_framework
        ):
            self._replay_framework_plan(
                method, depth, callgraph, worklist, queued,
                unresolved_dynamic,
            )
            return
        if effects is None:
            effects = self._prepared_method_effects(method)
        self._apply_effects(
            method.ref, effects, depth, callgraph, worklist, queued,
            unresolved_dynamic,
        )

    def _prepared_method_effects(self, method: Method) -> tuple[tuple, ...]:
        """The prepared (apply-ready) effect stream of one method,
        memoized on the method object alongside the raw stream."""
        cached = method.__dict__.get("_prepared_effects")
        if cached is None:
            cached = _prepare_stream(self._method_effects(method))
            object.__setattr__(method, "_prepared_effects", cached)
        return cached

    def _method_effects(self, method: Method) -> tuple[tuple, ...]:
        """Derive the ordered worklist-effect stream of one method.

        Pure per method (no app or hierarchy state): constant-string
        resolution at loadClass sites, allocations, and invocation
        sites with their *static* callee refs.  This is exactly the
        per-class computation the ``--dedup`` store caches.

        Memoized on the method object: framework ``Method`` instances
        are shared process-wide by the framework repository, so a
        corpus run derives each framework body's stream once rather
        than once per app.
        """
        if method.body is None:
            return ()
        cached = method.__dict__.get("_effects")
        if cached is not None:
            return cached
        effects: list[tuple] = []
        # Dynamic-load resolution needs the reaching-strings analysis;
        # only pay for it when the method contains a loadClass site.
        has_dynamic_site = any(
            (invoke.method.class_name, invoke.method.name)
            in LOADCLASS_SIGNATURES
            for invoke in method.invocations
        )
        if has_dynamic_site:
            for invoke, resolved in strings_at_invocations(method):
                key = (invoke.method.class_name, invoke.method.name)
                if key in LOADCLASS_SIGNATURES:
                    names = resolved.get(0, frozenset())
                    effects.append(("loadclass", tuple(names)))
        for instruction in method.body.instructions:
            if isinstance(instruction, NewInstance):
                effects.append(("new", instruction.class_name))
            elif isinstance(instruction, Invoke):
                callee = instruction.method
                effects.append(
                    (
                        "invoke",
                        instruction.kind.value,
                        (callee.class_name, callee.name, callee.descriptor),
                    )
                )
        stream = tuple(effects)
        object.__setattr__(method, "_effects", stream)
        return stream

    def _apply_effects(
        self,
        caller: MethodRef,
        effects: tuple[tuple, ...],
        depth: int,
        callgraph: CallGraph,
        worklist: list[tuple[MethodRef, int]],
        queued: set[MethodRef],
        unresolved_dynamic: list[ClassName],
    ) -> None:
        """Process one method's *prepared* effect stream with the live
        app state: dispatch resolution, subtype overrides, and
        dynamic-class lookups happen here (never in the cached
        stream), so a replay is exact for whichever app bundles the
        class."""
        in_framework = caller.is_framework
        next_depth = depth + 1 if in_framework else depth
        # All edges of this stream share one caller; grab its bucket
        # once instead of paying a dict setdefault per call site.
        bucket: list | None = None

        for effect in effects:
            kind = effect[0]
            if kind == "invoke":
                _, invoke_kind, callee, virtual = effect
                resolved = self._resolve_dispatch_ref(invoke_kind, callee)
                if bucket is None:
                    bucket = callgraph.edges.setdefault(caller, [])
                bucket.append(_intern_site(caller, callee, resolved))
                target = resolved or callee
                if target.is_framework:
                    if not self._follow_framework:
                        continue
                    if (
                        self._max_framework_depth is not None
                        and next_depth > self._max_framework_depth
                    ):
                        continue
                    self._enqueue(target, next_depth, worklist, queued)
                else:
                    self._enqueue(target, depth, worklist, queued)
                # Virtual calls may dispatch into app overrides of the
                # static receiver type (how framework dispatchers reach
                # app callbacks).
                if virtual:
                    for subtype in self._app_subtypes.get(
                        callee.class_name, ()
                    ):
                        override = _intern_ref(
                            subtype, callee.name, callee.descriptor
                        )
                        subtype_class = self._apk.lookup(subtype)
                        if (
                            subtype_class is not None
                            and subtype_class.declares(override.signature)
                        ):
                            bucket.append(
                                _intern_site(caller, callee, override)
                            )
                            self._enqueue(override, depth, worklist, queued)
            elif kind == "new":
                # Allocation loads the class; enqueue its constructor
                # so its code participates in the exploration.
                self._enqueue(effect[1], depth, worklist, queued)
            else:  # "loadclass"
                names = effect[1]
                if names:
                    for class_name in names:
                        self._enqueue_class(
                            class_name, depth, worklist, queued,
                            unresolved_dynamic,
                        )
                    self.stats.dynamic_classes_resolved += len(names)
                else:
                    self.stats.dynamic_sites_unresolved += 1

    # -- framework apply plans (dedup mode) -----------------------------

    def _framework_plan(self, method: Method) -> tuple:
        """The pre-resolved apply plan of one framework method.

        Cached on the ``Method`` object, which the framework
        repository shares process-wide per (class, level) — so the
        dispatch walks and ``CallSite`` construction happen once per
        corpus, not once per app.  Only valid (and only consulted)
        when the app shadows no framework class name; callees outside
        the framework namespace stay ``live`` entries replayed through
        the ordinary path.
        """
        plan = method.__dict__.get("_fw_plan")
        if plan is not None:
            return plan
        caller = method.ref
        entries: list[tuple] = []
        for effect in self._prepared_method_effects(method):
            kind = effect[0]
            if kind == "invoke":
                _, invoke_kind, callee, virtual = effect
                if not callee.is_framework:
                    # App-world callee from framework code: resolution
                    # is app-dependent, keep it live.
                    entries.append(("live", effect))
                    continue
                resolved = self._resolve_dispatch_ref(invoke_kind, callee)
                target = resolved or callee
                entries.append(
                    (
                        "call",
                        _intern_site(caller, callee, resolved),
                        target,
                        target.is_framework,
                        virtual,
                    )
                )
            else:  # "loadclass" / "new" — already app-independent
                entries.append(effect)
        plan = tuple(entries)
        object.__setattr__(method, "_fw_plan", plan)
        return plan

    def _replay_framework_plan(
        self,
        method: Method,
        depth: int,
        callgraph: CallGraph,
        worklist: list[tuple[MethodRef, int]],
        queued: set[MethodRef],
        unresolved_dynamic: list[ClassName],
    ) -> None:
        """Apply a framework method's cached plan — same edges, same
        enqueues, same order as :meth:`_apply_effects`, with the
        depth policy and app-override expansion evaluated live."""
        caller = method.ref
        next_depth = depth + 1
        bucket: list | None = None
        for entry in self._framework_plan(method):
            op = entry[0]
            if op == "call":
                _, site, target, target_is_framework, virtual = entry
                if bucket is None:
                    bucket = callgraph.edges.setdefault(caller, [])
                bucket.append(site)
                if target_is_framework:
                    if self._follow_framework and (
                        self._max_framework_depth is None
                        or next_depth <= self._max_framework_depth
                    ):
                        if target not in queued:
                            queued.add(target)
                            worklist.append((target, next_depth))
                elif target not in queued:
                    queued.add(target)
                    worklist.append((target, depth))
                if virtual:
                    callee = site.callee
                    for subtype in self._app_subtypes.get(
                        callee.class_name, ()
                    ):
                        override = _intern_ref(
                            subtype, callee.name, callee.descriptor
                        )
                        subtype_class = self._apk.lookup(subtype)
                        if (
                            subtype_class is not None
                            and subtype_class.declares(override.signature)
                        ):
                            bucket.append(
                                _intern_site(caller, callee, override)
                            )
                            self._enqueue(override, depth, worklist, queued)
            elif op == "loadclass":
                names = entry[1]
                if names:
                    for class_name in names:
                        self._enqueue_class(
                            class_name, depth, worklist, queued,
                            unresolved_dynamic,
                        )
                    self.stats.dynamic_classes_resolved += len(names)
                else:
                    self.stats.dynamic_sites_unresolved += 1
            elif op == "new":
                self._enqueue(entry[1], depth, worklist, queued)
            else:  # "live"
                self._apply_effects(
                    caller, (entry[1],), depth, callgraph, worklist,
                    queued, unresolved_dynamic,
                )

    # -- dedup mode (corpus-wide class artifacts) -----------------------

    def _dedup_effects(self, clazz: Clazz) -> tuple[tuple, ...]:
        """The per-method effect streams of one app class, answered
        from the corpus-wide store when a byte-identical class was
        analyzed before (by any app, any run, any worker over the same
        cache directory) and recorded otherwise."""
        artifact = self.dedup_artifacts.get(clazz.name)
        if artifact is None:
            self.dedup_keys[clazz.name] = self.class_store.key_for(clazz)
            artifact = self.class_store.get(clazz)
            if artifact is not None:
                self.stats.app_classes_deduped += 1
                self.stats.instructions_deduped += clazz.instruction_count
            else:
                artifact = self._record_artifact(clazz)
            self.dedup_artifacts[clazz.name] = artifact
        prepared = _PREPARED_STREAMS.get(artifact)
        if prepared is None:
            prepared = _PREPARED_STREAMS[artifact] = tuple(
                _prepare_stream(stream) for stream in artifact.effects
            )
        return prepared

    def _record_artifact(self, clazz: Clazz):
        """Derive and stage the full artifact of one app class: effect
        streams plus version-helper summaries (the expensive pure
        per-class computations).  Guard rows accumulate later, as the
        guard phase observes contexts."""
        from ..cache.classes import ClassArtifact
        from .summaries import summarize_version_helper

        effects = tuple(
            self._method_effects(method) for method in clazz.methods
        )
        helpers: dict[tuple[str, str], frozenset[int]] = {}
        for method in clazz.methods:
            if method.ref.return_type not in ("boolean", "int"):
                continue
            levels = summarize_version_helper(method)
            if levels is not None:
                helpers[(method.ref.name, method.ref.descriptor)] = levels
        artifact = ClassArtifact(effects=effects, helpers=helpers)
        self.class_store.stage(self.class_store.key_for(clazz), artifact)
        return artifact

    # -- summarized mode (framework pre-summaries) ---------------------

    def _try_summarize(
        self,
        ref: MethodRef,
        depth: int,
        analyzed_classes: set[ClassName],
        callgraph: CallGraph,
        worklist: list[tuple[MethodRef, int]],
        queued: set[MethodRef],
        unresolved_dynamic: list[ClassName],
    ) -> bool:
        """Answer a framework worklist entry from the pre-summary
        table.  Replays the class's recorded worklist effects with the
        exact depth/dedup rules of the lazy analysis, so the app
        methods reached (and therefore the findings) are identical;
        only the load/analysis accounting differs.  Returns False when
        the entry is not summarizable (app code, a name the app
        shadows, or a class absent from the table) — the caller falls
        through to the lazy path.
        """
        if not ref.is_framework:
            return False
        lookup = (
            self._apk.lookup
            if self._include_secondary
            else self._apk.lookup_primary
        )
        if lookup(ref.class_name) is not None:
            # The app shadows the framework name; lazy resolution
            # would analyze the app class, so must we.
            return False
        summary = self._summaries.class_summary(
            ref.class_name, self._level
        )
        self.stats.summary_lookups += 1
        if summary is None:
            return False
        if ref.class_name in analyzed_classes:
            return True
        analyzed_classes.add(ref.class_name)
        self.stats.classes_summarized += 1
        self.stats.instructions_summarized += summary.instruction_count

        next_depth = depth + 1
        for kind, target, container in summary.effects:
            if kind == "loadclass":
                if target:
                    for class_name in target:
                        self._enqueue_class(
                            class_name, depth, worklist, queued,
                            unresolved_dynamic,
                        )
                    self.stats.dynamic_classes_resolved += len(target)
                else:
                    self.stats.dynamic_sites_unresolved += 1
            elif kind == "new":
                init = MethodRef(target, "<init>", "()void")
                self._enqueue(init, depth, worklist, queued)
            elif kind == "call":
                if target.is_framework:
                    if (
                        self._max_framework_depth is not None
                        and next_depth > self._max_framework_depth
                    ):
                        continue
                    self._enqueue(target, next_depth, worklist, queued)
                else:
                    self._enqueue(target, depth, worklist, queued)
            else:  # dispatch into app overrides
                for subtype in self._app_subtypes.get(
                    target.class_name, ()
                ):
                    override = MethodRef(
                        subtype, target.name, target.descriptor
                    )
                    subtype_class = self._apk.lookup(subtype)
                    if (
                        subtype_class is not None
                        and subtype_class.declares(override.signature)
                    ):
                        callgraph.add_edge(
                            CallSite(
                                caller=container,
                                callee=target,
                                resolved=override,
                            )
                        )
                        self._enqueue(override, depth, worklist, queued)
        return True

    def _resolve_dispatch(self, instruction: Invoke) -> MethodRef | None:
        return self._resolve_dispatch_ref(instruction.kind, instruction.method)

    def _resolve_dispatch_ref(
        self, kind: InvokeKind, callee: MethodRef
    ) -> MethodRef | None:
        memo_key = (kind, callee)
        if memo_key in self._dispatch_memo:
            return self._dispatch_memo[memo_key]
        shared = (
            self._shared_dispatch
            if self._shared_dispatch is not None and callee.is_framework
            else None
        )
        if shared is not None and memo_key in shared:
            resolved = shared[memo_key]
            self._dispatch_memo[memo_key] = resolved
            return resolved
        if kind in (InvokeKind.STATIC, InvokeKind.DIRECT):
            clazz = self.resolver.resolve(callee.class_name)
            resolved = (
                callee
                if clazz is not None and clazz.declares(callee.signature)
                else None
            )
        else:
            declaring = self.resolver.dispatch(callee)
            resolved = (
                None
                if declaring is None
                else MethodRef(declaring.name, callee.name, callee.descriptor)
            )
        self._dispatch_memo[memo_key] = resolved
        if shared is not None:
            shared[memo_key] = resolved
        return resolved

    def _enqueue(
        self,
        ref: MethodRef,
        depth: int,
        worklist: list[tuple[MethodRef, int]],
        queued: set[MethodRef],
    ) -> None:
        if ref not in queued:
            queued.add(ref)
            worklist.append((ref, depth))

    def _enqueue_class(
        self,
        class_name: ClassName,
        depth: int,
        worklist: list[tuple[MethodRef, int]],
        queued: set[MethodRef],
        unresolved_dynamic: list[ClassName],
    ) -> None:
        clazz = self._apk.lookup(class_name)
        if clazz is None:
            # Late-bound code from outside the APK: not statically
            # analyzable (paper section III-A caveat).
            if class_name not in unresolved_dynamic:
                unresolved_dynamic.append(class_name)
            return
        for method in clazz.methods:
            self._enqueue(method.ref, depth, worklist, queued)

    # -- eager mode (ablation / whole-world baselines) -----------------

    def load_everything(self) -> None:
        """Closed-world load: every app class and the entire framework
        image.  Used by the eager ablation and to model whole-framework
        baselines' memory footprint."""
        self.stats.retain_framework_bodies = True
        for clazz in self._apk.all_classes:
            self._on_class_loaded(clazz)
        hits_before = self._framework.cache_stats.image_hits
        image = self._framework.load_image(self._level)
        warm = self._framework.cache_stats.image_hits > hits_before
        for clazz in image.values():
            self._on_class_loaded(clazz, warm)
