"""Version-predicate summaries for guard helper methods.

Real apps rarely inline every ``Build.VERSION.SDK_INT`` comparison;
they wrap them in helpers::

    static boolean isAtLeastM() { return Build.VERSION.SDK_INT >= 23; }
    ...
    if (VersionUtils.isAtLeastM()) { context.getColorStateList(...); }

A context-sensitive analysis must understand that branching on the
helper's return value *is* an SDK guard.  This module computes, for a
candidate helper method, the exact set of device levels at which it
returns true — by abstractly executing its body once per level (the
body must be self-contained: no calls, no heap, only SDK_INT,
constants, moves, arithmetic, and branches).  The guard analysis then
treats ``if (helper())`` edges as interval refinements.

Tools without inter-procedural reasoning (Lint's NewApi, CID's
backward intra-method slicing) do not see through helpers — one more
mechanism behind the paper's false-alarm gap.
"""

from __future__ import annotations

from ..apk.manifest import MAX_API_LEVEL, MIN_API_LEVEL
from ..ir.instructions import (
    BinOp,
    ConstInt,
    Goto,
    IfCmp,
    IfCmpZero,
    Move,
    Nop,
    Return,
    ReturnVoid,
    SdkIntLoad,
    FieldGet,
)
from ..ir.method import Method
from ..ir.types import SDK_INT_FIELD

__all__ = ["summarize_version_helper", "collect_version_helpers"]

#: Helpers are tiny by nature; anything longer is not summarized.
MAX_HELPER_INSTRUCTIONS = 24
#: Step budget per concrete evaluation (helpers must be loop-free in
#: effect; the budget catches accidental loops).
MAX_EVAL_STEPS = 200

_SUPPORTED = (
    ConstInt, SdkIntLoad, FieldGet, Move, BinOp, IfCmp, IfCmpZero,
    Goto, Return, ReturnVoid, Nop,
)


def _evaluate(method: Method, sdk_level: int) -> int | None:
    """Concretely run a candidate helper at ``sdk_level``.

    Returns the integer it returns (booleans as 0/1), or ``None`` when
    the body uses anything outside the supported fragment.
    """
    body = method.body
    registers: dict[int, int] = {}
    pc = 0
    steps = 0
    while 0 <= pc < len(body.instructions):
        steps += 1
        if steps > MAX_EVAL_STEPS:
            return None
        instruction = body.instructions[pc]
        if not isinstance(instruction, _SUPPORTED):
            return None
        if isinstance(instruction, ConstInt):
            registers[instruction.dest] = instruction.value
        elif isinstance(instruction, SdkIntLoad):
            registers[instruction.dest] = sdk_level
        elif isinstance(instruction, FieldGet):
            if instruction.fieldref != SDK_INT_FIELD:
                return None
            registers[instruction.dest] = sdk_level
        elif isinstance(instruction, Move):
            if instruction.src not in registers:
                return None
            registers[instruction.dest] = registers[instruction.src]
        elif isinstance(instruction, BinOp):
            lhs = registers.get(instruction.lhs)
            rhs = registers.get(instruction.rhs)
            if lhs is None or rhs is None:
                return None
            if instruction.op == "+":
                registers[instruction.dest] = lhs + rhs
            elif instruction.op == "-":
                registers[instruction.dest] = lhs - rhs
            elif instruction.op == "*":
                registers[instruction.dest] = lhs * rhs
            else:
                return None
        elif isinstance(instruction, IfCmp):
            lhs = registers.get(instruction.lhs)
            rhs = registers.get(instruction.rhs)
            if lhs is None or rhs is None:
                return None
            if instruction.op.evaluate(lhs, rhs):
                pc = body.resolve(instruction.target)
                continue
        elif isinstance(instruction, IfCmpZero):
            lhs = registers.get(instruction.lhs)
            if lhs is None:
                return None
            if instruction.op.evaluate(lhs, 0):
                pc = body.resolve(instruction.target)
                continue
        elif isinstance(instruction, Goto):
            pc = body.resolve(instruction.target)
            continue
        elif isinstance(instruction, Return):
            return registers.get(instruction.src)
        elif isinstance(instruction, ReturnVoid):
            return None
        pc += 1
    return None


def summarize_version_helper(method: Method) -> frozenset[int] | None:
    """The device levels at which ``method`` returns non-zero.

    ``None`` when the method is not a summarizable version predicate:
    it must return a value, be short, reference ``SDK_INT``, and use
    only the self-contained instruction fragment.
    """
    body = method.body
    if body is None or not body.instructions:
        return None
    if len(body.instructions) > MAX_HELPER_INSTRUCTIONS:
        return None
    reads_sdk = any(
        isinstance(i, SdkIntLoad)
        or (isinstance(i, FieldGet) and i.fieldref == SDK_INT_FIELD)
        for i in body.instructions
    )
    if not reads_sdk:
        return None
    if not any(isinstance(i, Return) for i in body.instructions):
        return None

    true_levels: set[int] = set()
    for level in range(MIN_API_LEVEL, MAX_API_LEVEL + 1):
        value = _evaluate(method, level)
        if value is None:
            return None
        if value != 0:
            true_levels.add(level)
    if not true_levels or len(true_levels) == (
        MAX_API_LEVEL - MIN_API_LEVEL + 1
    ):
        return None  # constant predicates carry no guard information
    return frozenset(true_levels)


def collect_version_helpers(methods) -> dict[str, frozenset[int]]:
    """Summarize every candidate in ``methods``.

    Returns a map from ``class.name(descriptor)``-style call key —
    ``(class_name, name, descriptor)`` tuples — to true-level sets.
    """
    summaries: dict[tuple, frozenset[int]] = {}
    for method in methods:
        if method.ref.return_type not in ("boolean", "int"):
            continue
        levels = summarize_version_helper(method)
        if levels is not None:
            summaries[
                (method.ref.class_name, method.ref.name,
                 method.ref.descriptor)
            ] = levels
    return summaries
