"""Reaching string-constant analysis.

Tracks, per register, the set of string constants that may reach each
program point.  Two detector features consume it:

* resolving class names flowing into ``DexClassLoader.loadClass`` and
  ``ClassLoader.loadClass`` — the statically-discoverable late-binding
  targets the AUM pulls into the analysis (paper section III-A);
* rediscovering permission strings at framework enforcement sites when
  ARM mines framework *images* instead of trusting the spec.

A register not present in the state is *unresolved*: some non-constant
value may flow there.  Call sites whose operand is unresolved are
reported as such, mirroring the paper's caveat that late-bound code
"may not always be statically analyzable".
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir.instructions import (
    BinOp,
    ConstInt,
    ConstNull,
    ConstString,
    FieldGet,
    Instruction,
    Invoke,
    Move,
    MoveResult,
    NewInstance,
    SdkIntLoad,
)
from ..ir.method import Method
from .cfg import build_cfg
from .dataflow import Analysis, BlockStates, solve_forward

__all__ = [
    "StringState",
    "StringConstantAnalysis",
    "analyze_string_constants",
    "strings_at_invocations",
]

#: State: register → frozenset of strings possibly held; missing
#: register = unresolved.
StringState = tuple[tuple[int, frozenset[str]], ...]


def _lookup(state: StringState, register: int) -> frozenset[str] | None:
    for number, values in state:
        if number == register:
            return values
    return None


def _store(
    state: StringState, register: int, values: frozenset[str] | None
) -> StringState:
    table = dict(state)
    if values is None:
        table.pop(register, None)
    else:
        table[register] = values
    return tuple(sorted(table.items()))


class StringConstantAnalysis(Analysis[StringState | None]):
    """Forward may-analysis over string-held registers."""

    def initial_state(self) -> StringState:
        return ()

    def bottom(self) -> None:
        return None

    def join(
        self, left: StringState | None, right: StringState | None
    ) -> StringState | None:
        if left is None:
            return right
        if right is None:
            return left
        left_table = dict(left)
        right_table = dict(right)
        merged: dict[int, frozenset[str]] = {}
        for register in left_table.keys() & right_table.keys():
            merged[register] = left_table[register] | right_table[register]
        return tuple(sorted(merged.items()))

    def equal(
        self, left: StringState | None, right: StringState | None
    ) -> bool:
        return left == right

    def transfer(
        self, state: StringState | None, instruction: Instruction
    ) -> StringState | None:
        if state is None:
            return None
        if isinstance(instruction, ConstString):
            return _store(
                state, instruction.dest, frozenset((instruction.value,))
            )
        if isinstance(instruction, Move):
            return _store(
                state, instruction.dest, _lookup(state, instruction.src)
            )
        if isinstance(
            instruction,
            (ConstInt, ConstNull, SdkIntLoad, MoveResult,
             NewInstance, FieldGet),
        ):
            return _store(state, instruction.dest, None)
        if isinstance(instruction, BinOp):
            return _store(state, instruction.dest, None)
        return state


def analyze_string_constants(
    method: Method,
) -> BlockStates[StringState | None]:
    cfg = build_cfg(method)
    return solve_forward(StringConstantAnalysis(), cfg)


def strings_at_invocations(method: Method):
    """Yield ``(invoke, arg_index → possible strings)`` per call site.

    The mapping covers only arguments that *are* resolved string
    constants; unresolved arguments are absent.
    """
    states = analyze_string_constants(method)
    for block in states.cfg.blocks:
        if states.entry_states.get(block.index) is None:
            continue
        for _, state, instruction in states.instruction_states(block.index):
            if state is None:
                break
            if isinstance(instruction, Invoke):
                resolved: dict[int, frozenset[str]] = {}
                for position, register in enumerate(instruction.args):
                    values = _lookup(state, register)
                    if values:
                        resolved[position] = values
                yield instruction, resolved
