"""Method-call graph representation.

The graph is produced *incrementally* by the CLVM as classes load
(paper: "the method-call graph is generated as the analysis
progresses"), so this module only defines the data structure plus
queries; construction lives with the explorer that discovers the
edges.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.method import Method
from ..ir.types import MethodRef

__all__ = ["CallSite", "CallGraph"]


@dataclass(frozen=True, slots=True)
class CallSite:
    """One invocation edge: caller, static callee reference, and the
    resolved target (post virtual-dispatch), if any."""

    caller: MethodRef
    callee: MethodRef
    resolved: MethodRef | None


@dataclass
class CallGraph:
    """Nodes are methods (by reference); edges are call sites."""

    methods: dict[MethodRef, Method] = field(default_factory=dict)
    edges: dict[MethodRef, list[CallSite]] = field(default_factory=dict)
    entry_points: list[MethodRef] = field(default_factory=list)
    _entry_set: set[MethodRef] = field(default_factory=set, repr=False)

    def add_method(self, method: Method) -> None:
        self.methods.setdefault(method.ref, method)

    def add_edge(self, site: CallSite) -> None:
        self.edges.setdefault(site.caller, []).append(site)

    def add_entry_point(self, ref: MethodRef) -> None:
        if ref not in self._entry_set:
            self._entry_set.add(ref)
            self.entry_points.append(ref)

    # -- queries -------------------------------------------------------

    def __contains__(self, ref: MethodRef) -> bool:
        return ref in self.methods

    def __len__(self) -> int:
        return len(self.methods)

    def method(self, ref: MethodRef) -> Method | None:
        return self.methods.get(ref)

    def callees(self, ref: MethodRef) -> tuple[CallSite, ...]:
        return tuple(self.edges.get(ref, ()))

    def callers_of(self, ref: MethodRef) -> tuple[MethodRef, ...]:
        out = []
        for caller, sites in self.edges.items():
            for site in sites:
                if site.resolved == ref or site.callee == ref:
                    out.append(caller)
                    break
        return tuple(out)

    @property
    def edge_count(self) -> int:
        return sum(len(sites) for sites in self.edges.values())

    def reachable_from(
        self, roots: tuple[MethodRef, ...] | None = None
    ) -> frozenset[MethodRef]:
        """Methods reachable from ``roots`` (default: entry points)."""
        start = list(roots) if roots is not None else list(self.entry_points)
        seen: set[MethodRef] = set()
        stack = [ref for ref in start if ref in self.methods]
        seen.update(stack)
        while stack:
            current = stack.pop()
            for site in self.edges.get(current, ()):
                target = site.resolved or site.callee
                if target in self.methods and target not in seen:
                    seen.add(target)
                    stack.append(target)
        return frozenset(seen)

    def app_methods(self) -> tuple[MethodRef, ...]:
        """Methods whose class is outside the framework namespace."""
        return tuple(
            ref for ref in self.methods if not ref.is_framework
        )
